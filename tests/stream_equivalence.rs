//! Streamed conversions are byte-identical to the in-memory paths.
//!
//! The streaming pipeline (chunked blocks → parallel pre-sort → external
//! merge sort with disk spills → pack) must reproduce the in-memory engine's
//! output *exactly* — same arrays, same duplicate order, same value bits —
//! for every chunk size (1, a prime, larger than the input) and every
//! budget (never spilling, spilling once mid-stream, spilling constantly).
//! A deterministic acceptance test converts inputs several times larger
//! than the budget and checks the tracked working set stayed under it.

use proptest::prelude::*;

use taco_conversion_repro::conv::convert::{AnyMatrix, FormatId};
use taco_conversion_repro::formats::{CooMatrix, CooTensor};
use taco_conversion_repro::runtime::{ConversionService, ServiceConfig, StreamOptions};
use taco_conversion_repro::stream::{CooBlockStream, MemoryBudget};
use taco_conversion_repro::tensor::Shape;

fn service() -> ConversionService {
    ConversionService::new(ServiceConfig {
        threads: 3,
        parallel_nnz_threshold: 0,
        ..ServiceConfig::default()
    })
}

/// Chunk sizes the equivalence sweep exercises: single-entry blocks, a prime
/// stride, and one block holding the whole input.
const CHUNKS: [usize; 3] = [1, 7, 1 << 20];

/// Budgets from "everything fits" down to "spill constantly".
fn budgets() -> [MemoryBudget; 3] {
    [
        MemoryBudget::mib(1),
        MemoryBudget::bytes(512),
        MemoryBudget::bytes(96),
    ]
}

/// Random matrices *with* duplicate coordinates — duplicates are stored
/// verbatim by COO→CSR, so they stress the stability of the external sort.
fn arb_matrix() -> impl Strategy<Value = CooMatrix> {
    (1usize..12, 1usize..12).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(((0..rows), (0..cols), -100i32..100), 0..80).prop_map(
            move |entries| {
                let mut m = CooMatrix::new(rows, cols);
                for (i, j, v) in entries {
                    m.push(i, j, v as f64);
                }
                m
            },
        )
    })
}

/// Random order-3 tensors with duplicates, for plain CSF.
fn arb_tensor3() -> impl Strategy<Value = CooTensor> {
    (1usize..8, 1usize..8, 1usize..8).prop_flat_map(|(d0, d1, d2)| {
        proptest::collection::vec(((0..d0), (0..d1), (0..d2), -100i32..100), 0..80).prop_map(
            move |entries| {
                let mut t = CooTensor::new(Shape::tensor3(d0, d1, d2));
                for (i, j, k, v) in entries {
                    t.push(&[i, j, k], v as f64);
                }
                t
            },
        )
    })
}

/// Duplicate-free order-3 tensors: the `CSF@...` registry wrapper rejects
/// duplicate coordinates on every path, streamed or not.
fn arb_tensor3_dedup() -> impl Strategy<Value = CooTensor> {
    arb_tensor3().prop_map(|t| {
        let mut seen = std::collections::HashSet::new();
        let mut out = CooTensor::new(t.shape().clone());
        for p in 0..t.nnz() {
            let coord = [t.crd(0)[p], t.crd(1)[p], t.crd(2)[p]];
            if seen.insert(coord) {
                out.push(&coord, t.values()[p]);
            }
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Streamed COO→CSR equals the in-memory conversion for every chunk
    /// size and budget, bit for bit.
    #[test]
    fn streamed_csr_is_byte_identical(m in arb_matrix()) {
        let svc = service();
        let want = svc
            .convert(&AnyMatrix::Coo(m.clone()), FormatId::Csr)
            .expect("in-memory COO→CSR");
        for chunk in CHUNKS {
            for budget in budgets() {
                let stream = CooBlockStream::from_matrix(&m, chunk);
                let got = svc
                    .convert_stream(stream, FormatId::Csr, &StreamOptions::with_budget(budget))
                    .expect("streamed COO→CSR");
                prop_assert_eq!(&got.tensor, &want, "chunk={} budget={}", chunk, budget.bytes);
                prop_assert_eq!(got.stats.entries, m.nnz() as u64);
                if budget.bytes >= 1 << 20 {
                    prop_assert!(got.stats.in_memory, "1 MiB budget never spills here");
                }
                if got.stats.spilled_runs == 0 {
                    prop_assert!(got.stats.in_memory);
                }
            }
        }
    }

    /// Streamed COO3→CSF equals the in-memory conversion for every chunk
    /// size and budget.
    #[test]
    fn streamed_csf_is_byte_identical(t in arb_tensor3()) {
        let svc = service();
        let want = svc
            .convert(&AnyMatrix::Coo3(t.clone()), FormatId::Csf)
            .expect("in-memory COO3→CSF");
        for chunk in CHUNKS {
            for budget in budgets() {
                let stream = CooBlockStream::new(t.clone(), chunk);
                let got = svc
                    .convert_stream(stream, FormatId::Csf, &StreamOptions::with_budget(budget))
                    .expect("streamed COO3→CSF");
                prop_assert_eq!(&got.tensor, &want, "chunk={} budget={}", chunk, budget.bytes);
            }
        }
    }

    /// Streamed COO3→CSF@perm (mode-permuted registry targets) equals the
    /// in-memory conversion; the permutation is applied by remapping the
    /// sort key, not by materialising a permuted tensor.
    #[test]
    fn streamed_permuted_csf_is_byte_identical(t in arb_tensor3_dedup()) {
        let svc = service();
        for order_name in ["CSF@2,0,1", "CSF@1,2,0"] {
            let target: taco_conversion_repro::conv::Format = order_name.parse().unwrap();
            let want = svc
                .convert(&AnyMatrix::Coo3(t.clone()), target.clone())
                .expect("in-memory COO3→CSF@perm");
            for chunk in [1usize, 7, 1 << 20] {
                let stream = CooBlockStream::new(t.clone(), chunk);
                let got = svc
                    .convert_stream(
                        stream,
                        target.clone(),
                        &StreamOptions::with_budget(MemoryBudget::bytes(96)),
                    )
                    .expect("streamed COO3→CSF@perm");
                prop_assert_eq!(&got.tensor, &want, "{} chunk={}", order_name, chunk);
            }
        }
    }
}

/// The budget dial works as specified: a roomy budget never spills, a
/// mid-size budget spills once mid-stream (plus the final buffer flush), a
/// tiny budget spills on almost every block.
#[test]
fn budgets_control_spill_counts() {
    let mut m = CooMatrix::new(64, 64);
    for p in 0..100usize {
        m.push((p * 13) % 64, (p * 7) % 64, p as f64);
    }
    let svc = service();
    let want = svc
        .convert(&AnyMatrix::Coo(m.clone()), FormatId::Csr)
        .unwrap();
    // (budget bytes, expected spilled runs): 100 entries * 24 B in 5-entry
    // blocks of 120 B each. 1 MiB holds everything; 2 KiB (threshold 1536)
    // overflows once at 13 runs, and the drain flushes the remainder as a
    // second run; 256 B (threshold 192) spills on every push after the
    // first.
    for (budget, expect) in [
        (MemoryBudget::mib(1), 0u64),
        (MemoryBudget::bytes(2048), 2),
        (MemoryBudget::bytes(256), 20),
    ] {
        let got = svc
            .convert_stream(
                CooBlockStream::from_matrix(&m, 5),
                FormatId::Csr,
                &StreamOptions::with_budget(budget),
            )
            .unwrap();
        assert_eq!(got.tensor, want, "budget={}", budget.bytes);
        assert_eq!(got.stats.spilled_runs, expect, "budget={}", budget.bytes);
        assert_eq!(got.stats.in_memory, expect == 0);
        if expect > 0 {
            assert_eq!(got.stats.merged_entries, 100, "all entries re-read");
            assert!(got.stats.spilled_bytes > 0);
        }
    }
    let stats = svc.stats();
    assert_eq!(stats.streams, 3);
    assert!(stats.stream_spilled_runs >= 22);
    assert!(stats.stream_peak_bytes > 0);
}

/// Acceptance: inputs ≥ 4× the memory budget convert COO→CSR and COO3→CSF
/// with the tracked working set staying under the budget, spill counters
/// moving, and output identical to the in-memory path.
#[test]
fn oversized_inputs_convert_under_budget() {
    let budget = MemoryBudget::bytes(8 * 1024);
    let opts = StreamOptions {
        budget,
        channel_blocks: 1,
        spill_dir: None,
    };
    let svc = ConversionService::new(ServiceConfig {
        threads: 2,
        parallel_nnz_threshold: 0,
        ..ServiceConfig::default()
    });

    // COO→CSR: 1400 entries * 24 B ≈ 33 KiB ≈ 4.1× the 8 KiB budget.
    let mut m = CooMatrix::new(128, 128);
    for p in 0..1400usize {
        m.push((p * 31) % 128, (p * 17) % 128, p as f64 * 0.5);
    }
    assert!(1400 * 24 >= 4 * budget.bytes, "input is ≥ 4× the budget");
    let want = svc
        .convert(&AnyMatrix::Coo(m.clone()), FormatId::Csr)
        .unwrap();
    let got = svc
        .convert_stream(CooBlockStream::from_matrix(&m, 10), FormatId::Csr, &opts)
        .unwrap();
    assert_eq!(got.tensor, want);
    assert!(got.stats.spilled_runs > 0, "the budget forced spills");
    assert!(
        got.stats.peak_tracked_bytes < budget.bytes,
        "peak working set {} stayed under the {} budget",
        got.stats.peak_tracked_bytes,
        budget.bytes
    );

    // COO3→CSF: 1100 entries * 32 B ≈ 34 KiB ≈ 4.3× the budget.
    let mut t = CooTensor::new(Shape::tensor3(32, 32, 32));
    for p in 0..1100usize {
        t.push(&[(p * 29) % 32, (p * 13) % 32, (p * 7) % 32], p as f64);
    }
    assert!(1100 * 32 >= 4 * budget.bytes, "input is ≥ 4× the budget");
    let want = svc
        .convert(&AnyMatrix::Coo3(t.clone()), FormatId::Csf)
        .unwrap();
    let got = svc
        .convert_stream(CooBlockStream::new(t.clone(), 8), FormatId::Csf, &opts)
        .unwrap();
    assert_eq!(got.tensor, want);
    assert!(got.stats.spilled_runs > 0);
    assert!(got.stats.peak_tracked_bytes < budget.bytes);

    let stats = svc.stats();
    assert_eq!(stats.streams, 2);
    assert!(stats.stream_spilled_bytes > 0);
    assert!(stats.stream_peak_bytes < budget.bytes);
    assert_eq!(stats.materialized, 0);
}

/// Targets without a streamed packer fall back to materialising the stream
/// and converting in memory, and the service counts the fallback.
#[test]
fn unstreamed_targets_materialize_and_match() {
    let mut m = CooMatrix::new(10, 10);
    for p in 0..30usize {
        m.push((p * 3) % 10, (p * 7) % 10, p as f64);
    }
    let svc = service();
    let want = svc
        .convert(&AnyMatrix::Coo(m.clone()), FormatId::Ell)
        .unwrap();
    let got = svc
        .convert_stream(
            CooBlockStream::from_matrix(&m, 4),
            FormatId::Ell,
            &StreamOptions::default(),
        )
        .unwrap();
    assert_eq!(got.tensor, want);
    assert!(got.stats.in_memory);
    assert_eq!(got.stats.entries, 30);
    assert_eq!(svc.stats().materialized, 1);
}
