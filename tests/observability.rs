//! Integration tests for the observability layer: traced conversions
//! produce structurally valid per-phase reports, parallel kernel spans nest
//! under their kernel phase, streamed conversions surface spill counts, and
//! the exported JSON passes the documented schema check.

#![cfg(feature = "conv-obs")]

use taco_conversion_repro::conv::convert::{AnyMatrix, FormatId};
use taco_conversion_repro::formats::{CooMatrix, CooTensor};
use taco_conversion_repro::obs::{validate_json, PhaseReport, Registry};
use taco_conversion_repro::runtime::{ConversionService, ServiceConfig, StreamOptions};
use taco_conversion_repro::stream::{CooBlockStream, MemoryBudget};
use taco_conversion_repro::workloads::{irregular, tensor3_uniform};

fn service(threads: usize) -> ConversionService {
    ConversionService::new(ServiceConfig {
        threads,
        parallel_nnz_threshold: 0,
        ..ServiceConfig::default()
    })
}

fn matrix_source() -> AnyMatrix {
    let t = irregular(256, 256, 20_000, 256, 7).expect("valid generator parameters");
    AnyMatrix::Coo(CooMatrix::from_triples(&t))
}

#[test]
fn traced_conversions_report_route_cache_and_phases() {
    let svc = service(1);
    let src = matrix_source();
    let (out, first) = svc.convert_traced(&src, FormatId::Csr).unwrap();
    assert_eq!(out.format(), FormatId::Csr);
    assert_eq!(first.source, "COO");
    assert_eq!(first.target, "CSR");
    assert_eq!(first.route, "direct");
    assert!(!first.plan_cache_hit, "first conversion builds the plan");
    assert!(first.in_memory && !first.streamed);

    let (_, second) = svc.convert_traced(&src, FormatId::Csr).unwrap();
    assert!(
        second.plan_cache_hit,
        "second conversion hits the plan cache"
    );
    second.validate().expect("structurally valid report");
    assert!(second.total_ns > 0, "the collector measured the conversion");
    assert!(second.phase_sum_ns() <= second.total_ns);
    let execute = second.phase("service.execute").expect("execute phase");
    assert!(execute.duration_ns > 0);
    assert!(
        !execute.children.is_empty(),
        "the engine recorded sub-phases under the dispatch"
    );
    // The report the service stored last is the report it returned last.
    assert_eq!(svc.last_report().unwrap(), second);
    // The JSON export satisfies its own documented schema.
    validate_json(&second.to_json()).expect("schema-valid JSON");
    assert!(second.to_prometheus().contains("conversion_total_ns"));
}

/// Sums the span widths of every phase named `name` in the tree.
fn spans_named(phases: &[PhaseReport], name: &str) -> u64 {
    phases
        .iter()
        .map(|p| {
            let own = if p.name == name { p.spans } else { 0 };
            own + spans_named(&p.children, name)
        })
        .sum()
}

#[test]
fn parallel_kernel_spans_nest_under_the_kernel_phases() {
    let threads = 4;
    let svc = service(threads);
    let src = matrix_source();
    let (_, report) = svc.convert_traced(&src, FormatId::Csr).unwrap();
    assert!(report.parallel_kernel, "threshold 0 forces the kernel");
    assert_eq!(report.threads, threads);
    let execute = report.phase("service.execute").expect("execute phase");
    let analysis = execute
        .children
        .iter()
        .find(|p| p.name == "kernel.analysis")
        .expect("kernel analysis phase under the dispatch");
    // Each worker's span lands as a child of the phase that spawned it, so
    // the per-thread spans are structurally inside the parent kernel span.
    let histograms = analysis
        .children
        .iter()
        .find(|p| p.name == "chunk_histogram")
        .expect("per-thread histogram spans under kernel.analysis");
    assert_eq!(histograms.spans as usize, threads);
    assert_eq!(histograms.count as usize, src.nnz());
    assert_eq!(
        spans_named(&report.phases, "chunk_scatter") as usize,
        threads
    );
}

#[test]
fn streamed_conversions_report_spills_and_mirror_the_registry() {
    let t = tensor3_uniform([48, 48, 48], 6_000, 11).expect("valid generator parameters");
    let svc = service(2);
    let dir = std::env::temp_dir().join(format!("obs-stream-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let opts = StreamOptions {
        budget: MemoryBudget::kib(16),
        channel_blocks: 2,
        spill_dir: Some(dir.clone()),
    };
    let stream = CooBlockStream::new(CooTensor::from_triples(&t), 64);
    let result = svc.convert_stream(stream, FormatId::Csf, &opts).unwrap();
    assert!(result.stats.spilled_runs > 0, "the budget forces spills");

    let report = svc.last_report().expect("stream stored a report");
    assert_eq!(report.route, "stream");
    assert!(report.streamed);
    assert!(!report.in_memory);
    assert_eq!(report.source, "stream");
    assert_eq!(report.target, "CSF");
    assert_eq!(report.spilled_runs, result.stats.spilled_runs);
    assert_eq!(report.spilled_bytes, result.stats.spilled_bytes);
    assert_eq!(report.threads, 2);
    assert!(report.phase("stream.pump").is_some());
    assert!(report.phase("stream.assemble").is_some());
    validate_json(&report.to_json()).expect("schema-valid JSON");

    // The sorter mirrored its stats into the global metrics registry.
    let snapshot = Registry::global().snapshot();
    assert!(snapshot.counters["stream.spilled_runs"] >= result.stats.spilled_runs);
    assert!(snapshot.counters["stream.spilled_bytes"] >= result.stats.spilled_bytes);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reset_stats_isolates_measurement_from_warm_up() {
    let svc = service(1);
    let src = matrix_source();
    svc.convert(&src, FormatId::Csr).unwrap();
    assert_eq!(svc.stats().conversions, 1);
    assert_eq!(svc.stats().plan_misses, 1);
    svc.reset_stats();
    let stats = svc.stats();
    assert_eq!(stats.conversions, 0);
    assert_eq!((stats.plan_hits, stats.plan_misses), (0, 0));
    assert_eq!(stats.cached_plans, 1, "reset keeps the cached plans");
    // The next conversion is a plan hit against the preserved cache.
    let (_, report) = svc.convert_traced(&src, FormatId::Csr).unwrap();
    assert!(report.plan_cache_hit);
    assert_eq!(svc.stats().conversions, 1);
}
