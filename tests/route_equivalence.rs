//! Planned-route equivalence: every route the planner can pick — direct,
//! via-COO, or a multi-hop chain, from stock and custom sources alike — must
//! produce output bit-identical to the sequential direct conversion, at
//! every thread count. On top of the random sweep, the interesting route
//! shapes are pinned deterministically (1-, 2-, and 3-hop paths, the
//! custom → stock → stock chain, the no-path fallback), and the calibration
//! loop is checked for monotonicity: an edge that keeps measuring slow keeps
//! getting more expensive.

use proptest::prelude::*;

use taco_conversion_repro::conv::convert::{convert, AnyMatrix};
use taco_conversion_repro::conv::prelude::LevelKind;
use taco_conversion_repro::conv::Format;
use taco_conversion_repro::formats::CooMatrix;
use taco_conversion_repro::planner::{PlannerConfig, TensorAttrs};
use taco_conversion_repro::remap::stock::mode_permutation;
use taco_conversion_repro::runtime::{ConversionService, Route, RoutingPolicy, ServiceConfig};
use taco_conversion_repro::tensor::{Shape, SparseTriples};
use taco_conversion_repro::workloads::generators::{banded, irregular};

/// The thread counts every equivalence assertion sweeps.
const THREADS: [usize; 3] = [1, 2, 4];

fn service(threads: usize, routing: RoutingPolicy) -> ConversionService {
    ConversionService::new(ServiceConfig {
        threads,
        parallel_nnz_threshold: 0,
        routing,
        ..ServiceConfig::default()
    })
}

/// Converts through a service under the given policy and requires the result
/// to be bit-identical to the sequential direct engine.
fn assert_route_equivalent(src: &AnyMatrix, target: &Format) {
    let expected = convert(src, target).expect("direct conversion");
    for threads in THREADS {
        for routing in [
            RoutingPolicy::CostModel,
            RoutingPolicy::MultiHop,
            RoutingPolicy::Legacy,
        ] {
            let got = service(threads, routing)
                .convert(src, target.clone())
                .expect("routed conversion");
            assert_eq!(
                got,
                expected,
                "{} -> {target} differs under {routing:?} at {threads} thread(s)",
                src.format()
            );
        }
    }
}

/// A registered custom format (compressed/compressed, identity remap) used
/// as a chain *source*.
fn custom_dcsr(name: &str) -> Format {
    Format::builder(name)
        .remapping(mode_permutation(&[0, 1]))
        .dims(["i", "j"])
        .levels([LevelKind::Compressed, LevelKind::Compressed])
        .build()
        .expect("compressed/compressed spec is valid")
}

/// A large-ish shuffled irregular matrix: the instance class whose
/// COO → BCSR conversions the cost model routes through CSR. The generator
/// emits row-major triples, so the entry order is broken deterministically
/// before packing.
fn shuffled_irregular() -> AnyMatrix {
    let triples = irregular(256, 256, 12_000, 96, 7).expect("irregular parameters are valid");
    let mut entries: Vec<(Vec<i64>, f64)> = triples
        .iter()
        .map(|tr| (tr.coord.to_vec(), tr.value))
        .collect();
    let n = entries.len();
    for i in 0..n {
        let j = ((i as u64).wrapping_mul(6364136223846793005).wrapping_add(1) >> 16) as usize % n;
        entries.swap(i, j);
    }
    let mut shuffled = SparseTriples::new(triples.shape().clone());
    for (coord, value) in entries {
        shuffled.push(coord, value).unwrap();
    }
    AnyMatrix::Coo(CooMatrix::from_triples(&shuffled))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random matrices (random shape, population, and entry order) times
    /// the full stock target set: whatever the planner decides per pair and
    /// thread count must match the direct engine byte for byte.
    #[test]
    fn planned_routes_match_direct_results(
        (rows, cols, density, shuffle_seed, target_ix) in
            (4usize..40, 4usize..40, 1usize..8, 0u64..4, 0usize..6)
    ) {
        let targets = ["CSR", "CSC", "ELL", "DIA", "JAD", "BCSR4x4"];
        let target: Format = targets[target_ix].parse().expect("stock target parses");
        let nnz = (rows * cols * density / 16).max(1);
        let mut t = SparseTriples::new(Shape::matrix(rows, cols));
        // Deterministic scatter, then optionally break row order with a
        // multiplicative shuffle of the insertion sequence.
        let mut coords: Vec<(i64, i64)> = (0..nnz)
            .map(|k| {
                let h = (k as u64).wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17);
                ((h % rows as u64) as i64, ((h >> 32) % cols as u64) as i64)
            })
            .collect();
        coords.sort_unstable();
        coords.dedup();
        if shuffle_seed > 0 {
            let n = coords.len();
            for i in 0..n {
                let j = ((i as u64).wrapping_mul(6364136223846793005).wrapping_add(shuffle_seed) as usize) % n;
                coords.swap(i, j);
            }
        }
        for (k, &(i, j)) in coords.iter().enumerate() {
            t.push(vec![i, j], 1.0 + k as f64).unwrap();
        }
        let src = AnyMatrix::Coo(CooMatrix::from_triples(&t));
        assert_route_equivalent(&src, &target);
    }
}

/// 1-hop: an already row-ordered COO stays on the direct edge, and the
/// result matches.
#[test]
fn ordered_sources_take_the_direct_route() {
    let triples = banded(64, 64, &[-1, 0, 1], 3).expect("banded parameters are valid");
    let src = AnyMatrix::Coo(CooMatrix::from_triples(&triples));
    let svc = service(1, RoutingPolicy::CostModel);
    let route = svc.route_for(&src, Format::csr()).expect("plans");
    assert_eq!(route, Route::Direct);
    assert_route_equivalent(&src, &Format::csr());
}

/// 2-hop: the shuffled irregular COO → BCSR pair is the cost model's
/// flagship chain (COO → CSR → BCSR), and the chained bytes match direct.
#[test]
fn shuffled_coo_to_bcsr_chains_through_csr_and_matches() {
    let src = shuffled_irregular();
    let target: Format = "BCSR4x4".parse().expect("stock target parses");
    let svc = service(1, RoutingPolicy::CostModel);
    let route = svc.route_for(&src, target.clone()).expect("plans");
    match route {
        Route::MultiHop(path) => {
            let names: Vec<String> = path.iter().map(|f| f.to_string()).collect();
            assert_eq!(names, ["COO", "CSR", "BCSR4x4"]);
        }
        other => panic!("expected a multi-hop route, got {other:?}"),
    }
    assert_route_equivalent(&src, &target);
}

/// 3-hop: a padded DIA source heading to a block target composes
/// DIA → COO → CSR → BCSR, and the bytes still match.
#[test]
fn padded_sources_compose_three_hops_and_match() {
    let triples = irregular(160, 160, 4_000, 60, 11).expect("irregular parameters are valid");
    let coo = AnyMatrix::Coo(CooMatrix::from_triples(&triples));
    let dia = convert(&coo, Format::dia()).expect("DIA stores any matrix");
    let target: Format = "BCSR4x4".parse().expect("stock target parses");
    let svc = service(1, RoutingPolicy::CostModel);
    if let Route::MultiHop(path) = svc.route_for(&dia, target.clone()).expect("plans") {
        let names: Vec<String> = path.iter().map(|f| f.to_string()).collect();
        assert_eq!(names, ["DIA", "COO", "CSR", "BCSR4x4"]);
    } else {
        panic!("expected a multi-hop route for the padded source");
    }
    assert_route_equivalent(&dia, &target);
}

/// Custom → stock → stock: a registry-format source forced onto the format
/// graph chains through a stock intermediate and matches the direct result.
#[test]
fn custom_sources_chain_through_stock_intermediates() {
    let format = custom_dcsr("RTEQ-DCSR");
    let src = convert(&shuffled_irregular(), &format).expect("custom packs");
    let target = Format::csc();
    let svc = service(1, RoutingPolicy::MultiHop);
    if let Route::MultiHop(path) = svc.route_for(&src, target.clone()).expect("plans") {
        assert_eq!(path.len(), 3, "custom -> stock -> stock, got {path:?}");
        assert_eq!(path[0], format);
        assert!(path[1].spec().is_none() || path[1].id().is_some());
        assert_eq!(path[2], target);
    } else {
        panic!("forced multi-hop should produce a chain for a custom source");
    }
    assert_route_equivalent(&src, &target);
}

/// No-path fallback: when the forced-hop planner finds no admissible chain
/// (the order-2 intermediate pool is exactly {COO, CSR}, and both ends of
/// CSR → COO sit in it), the service degrades to the direct edge instead of
/// failing. The fully-unplannable case (planner returns no route at all,
/// e.g. a DOK target) is covered by `conv-planner`'s own unit tests.
#[test]
fn no_path_falls_back_to_the_legacy_router() {
    let triples = banded(32, 32, &[0, 2], 5).expect("banded parameters are valid");
    let coo = AnyMatrix::Coo(CooMatrix::from_triples(&triples));
    let csr = convert(&coo, Format::csr()).expect("CSR stores any matrix");
    let svc = service(1, RoutingPolicy::MultiHop);
    let route = svc.route_for(&csr, Format::coo()).expect("plans");
    assert_eq!(route, Route::Direct);
    assert_route_equivalent(&csr, &Format::coo());
}

/// Calibration monotonicity: with a steady reference edge, an edge that
/// keeps measuring slower than predicted gets a monotonically non-decreasing
/// multiplier (until the safety clamp).
#[test]
fn repeated_slow_observations_monotonically_raise_an_edge() {
    let svc = service(1, RoutingPolicy::CostModel);
    let graph = svc.format_graph();
    let attrs = TensorAttrs {
        order: 2,
        nnz: 10_000,
        stored_entries: 10_000,
        rows: 256,
        cols: 256,
        rows_in_order: false,
        max_nnz_per_row: None,
    };
    let cfg = PlannerConfig::default();
    let (coo, csr, csc) = (Format::coo(), Format::csr(), Format::csc());
    let nominal = graph
        .edge_units(&coo, &csr, attrs.stored_entries, false, &attrs, &cfg)
        .expect("stock edge exists") as u64;
    // Reference edge observed at roughly its predicted speed.
    for _ in 0..8 {
        graph.observe(
            &coo,
            &csc,
            attrs.stored_entries,
            false,
            &attrs,
            &cfg,
            2 * nominal,
        );
    }
    let mut last = graph.cost_model().multiplier(&coo, &csr);
    let mut slow_ns = 4 * nominal;
    for _ in 0..12 {
        graph.observe(
            &coo,
            &csr,
            attrs.stored_entries,
            false,
            &attrs,
            &cfg,
            slow_ns,
        );
        let now = graph.cost_model().multiplier(&coo, &csr);
        assert!(
            now + 1e-9 >= last,
            "multiplier regressed: {now} after {last}"
        );
        last = now;
        slow_ns = slow_ns.saturating_mul(2);
    }
    assert!(last > 1.0, "a consistently slow edge must end up penalised");
}
