//! Workspace-level property tests for the rank-3 conversion stack: COO3→CSF
//! round-trips preserve the tensor, and the three execution paths (engine,
//! generic spec-driven, generated code through the interpreter) agree bit
//! for bit — the tensor mirror of `tests/roundtrip.rs`.

use proptest::prelude::*;

use taco_conversion_repro::conv::codegen;
use taco_conversion_repro::conv::convert::{convert, AnyMatrix, FormatId};
use taco_conversion_repro::conv::engine;
use taco_conversion_repro::conv::generic::{convert_with_spec, LevelOutput};
use taco_conversion_repro::conv::FormatSpec;
use taco_conversion_repro::formats::{CooTensor, CsfTensor};
use taco_conversion_repro::tensor::{Shape, SparseTriples};

/// Strategy generating small random order-3 tensors (duplicate-free) plus a
/// shuffle seed, so COO3 inputs arrive in arbitrary storage order.
fn arb_tensor3() -> impl Strategy<Value = (SparseTriples, u64)> {
    (1usize..10, 1usize..10, 1usize..10).prop_flat_map(|(d0, d1, d2)| {
        let max_nnz = (d0 * d1 * d2).min(64);
        (
            proptest::collection::vec(((0..d0), (0..d1), (0..d2), -100i32..100), 0..max_nnz),
            1u64..u64::MAX,
        )
            .prop_map(move |(entries, seed)| {
                let mut t = SparseTriples::new(Shape::tensor3(d0, d1, d2));
                for (i, j, k, v) in entries {
                    let coord = vec![i as i64, j as i64, k as i64];
                    if v != 0 && t.get(&coord) == 0.0 {
                        t.push(coord, v as f64).expect("in bounds");
                    }
                }
                (t, seed)
            })
    })
}

fn shuffled_coo3(t: &SparseTriples, seed: u64) -> CooTensor {
    let mut coo = CooTensor::from_triples(t);
    let mut state = seed;
    coo.shuffle_with(|bound| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state as usize) % bound
    });
    coo
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// COO3 → CSF → COO3 preserves the tensor and emits sorted triples (the
    /// pack walks the fiber tree lexicographically).
    #[test]
    fn coo3_csf_roundtrip_preserves_sorted_triples((t, seed) in arb_tensor3()) {
        let coo3 = AnyMatrix::Coo3(shuffled_coo3(&t, seed));
        let csf = convert(&coo3, FormatId::Csf).expect("COO3 -> CSF");
        prop_assert_eq!(csf.format(), FormatId::Csf);
        prop_assert!(csf.to_triples().same_values(&t), "CSF lost values");
        let back = convert(&csf, FormatId::Coo3).expect("CSF -> COO3");
        let triples = back.to_triples();
        prop_assert!(triples.is_sorted(), "CSF emits fiber-tree order");
        prop_assert!(triples.same_values(&t), "round-trip lost values");
        prop_assert_eq!(triples, t.sorted(), "round-trip equals the sorted input");
    }

    /// The CSF container's reference constructor, the engine kernel, and the
    /// parallel runtime kernel all build the same fiber tree.
    #[test]
    fn csf_constructions_agree((t, seed) in arb_tensor3()) {
        let coo = shuffled_coo3(&t, seed);
        let reference = CsfTensor::from_triples(&coo.to_triples());
        prop_assert_eq!(&engine::to_csf(&coo), &reference);
        prop_assert_eq!(&taco_conversion_repro::runtime::kernels::coo_to_csf(&coo, 3), &reference);
    }

    /// The generic (spec-driven) path assembles exactly the engine's CSF
    /// arrays: same crd per level, same pos arrays, same values.
    #[test]
    fn generic_csf_agrees_with_engine((t, seed) in arb_tensor3()) {
        let coo = shuffled_coo3(&t, seed);
        let reference = engine::to_csf(&coo);
        let spec = FormatSpec::stock(FormatId::Csf).expect("stock CSF spec");
        let custom = convert_with_spec(&AnyMatrix::Coo3(coo), &spec).expect("generic CSF");
        let expected = [
            (reference.crd(0).to_vec(), vec![0, reference.num_fibers(0)]),
            (reference.crd(1).to_vec(), reference.pos(0).to_vec()),
            (reference.crd(2).to_vec(), reference.pos(1).to_vec()),
        ];
        for (level, (crd_ref, pos_ref)) in expected.into_iter().enumerate() {
            match &custom.levels[level] {
                LevelOutput::Compressed { pos, crd } => {
                    let crd_usize: Vec<usize> = crd.iter().map(|&c| c as usize).collect();
                    prop_assert_eq!(crd_usize, crd_ref, "crd at level {}", level);
                    prop_assert_eq!(pos, &pos_ref, "pos at level {}", level);
                }
                other => prop_assert!(false, "unexpected level output {:?}", other),
            }
        }
        prop_assert_eq!(&custom.vals, reference.values());
    }

    /// A builder-made order-3 format (mode-reversed CSF, named in no enum)
    /// is a valid conversion source and target: COO3 → custom → CSF
    /// round-trips, and the read-back recovers the canonical coordinates
    /// through the inverted remapping.
    #[test]
    fn custom_order3_format_roundtrips((t, seed) in arb_tensor3()) {
        use taco_conversion_repro::conv::prelude::{Format, LevelKind};
        let reversed = Format::builder("TENSOR-RT-KJI")
            .remap_str("(i,j,k) -> (k,j,i)").expect("remapping parses")
            .dims(["k", "j", "i"])
            .levels([
                LevelKind::Compressed,
                LevelKind::Compressed,
                LevelKind::Compressed,
            ])
            .build()
            .expect("mode-reversed CSF validates");
        let coo3 = AnyMatrix::Coo3(shuffled_coo3(&t, seed));
        let packed = convert(&coo3, &reversed).expect("COO3 -> custom");
        prop_assert_eq!(packed.format(), reversed);
        prop_assert_eq!(packed.order(), 3);
        prop_assert!(packed.to_triples().same_values(&t), "custom pack lost values");
        let csf = convert(&packed, FormatId::Csf).expect("custom -> CSF");
        prop_assert_eq!(
            &csf,
            &convert(&coo3, FormatId::Csf).expect("direct COO3 -> CSF"),
            "custom round-trip must rebuild the exact fiber tree"
        );
    }

    /// The generated COO3→CSF routine (three counting sorts + pack executed
    /// by the IR interpreter) matches the engine bit for bit, as does the
    /// generated CSF→COO3 unpacking loop.
    #[test]
    fn generated_tensor_code_agrees_with_engine((t, seed) in arb_tensor3()) {
        let coo3 = AnyMatrix::Coo3(shuffled_coo3(&t, seed));
        let generated = codegen::execute(&coo3, FormatId::Csf).expect("generated COO3 -> CSF");
        let engine_result = convert(&coo3, FormatId::Csf).expect("engine COO3 -> CSF");
        prop_assert_eq!(&generated, &engine_result);
        let unpacked = codegen::execute(&generated, FormatId::Coo3).expect("generated CSF -> COO3");
        prop_assert_eq!(&unpacked, &convert(&engine_result, FormatId::Coo3).expect("engine"));
    }
}
