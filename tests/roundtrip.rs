//! Workspace-level integration tests: conversions between every pair of
//! supported formats preserve the matrix, on both hand-picked and randomly
//! generated inputs (property-based).

use proptest::prelude::*;

use taco_conversion_repro::conv::convert::{convert, AnyMatrix, FormatId};
use taco_conversion_repro::conv::engine;
use taco_conversion_repro::conv::prelude::{Format, LevelKind};
use taco_conversion_repro::formats::{baselines, CooMatrix, CsrMatrix, DokMatrix};
use taco_conversion_repro::tensor::{MatrixStats, SparseTriples};

fn all_targets() -> Vec<FormatId> {
    vec![
        FormatId::Coo,
        FormatId::Csr,
        FormatId::Csc,
        FormatId::Dia,
        FormatId::Ell,
        FormatId::Bcsr {
            block_rows: 2,
            block_cols: 3,
        },
        FormatId::Jad,
    ]
}

/// Every matrix in every target format, plus DOK (a source-only format built
/// through its reference constructor; `convert` rejects it as a target).
fn all_sources(t: &SparseTriples) -> Vec<AnyMatrix> {
    let coo = AnyMatrix::Coo(CooMatrix::from_triples(t));
    let mut sources: Vec<AnyMatrix> = all_targets()
        .into_iter()
        .map(|f| convert(&coo, f).expect("source conversion"))
        .collect();
    sources.push(AnyMatrix::Dok(DokMatrix::from_triples(t)));
    sources
}

/// Strategy generating small random sparse matrices (as coordinate/value
/// lists with possibly duplicated coordinates removed).
fn arb_matrix() -> impl Strategy<Value = SparseTriples> {
    (1usize..24, 1usize..24).prop_flat_map(|(rows, cols)| {
        let max_nnz = (rows * cols).min(64);
        proptest::collection::vec(((0..rows), (0..cols), -100i32..100), 0..max_nnz).prop_map(
            move |entries| {
                let mut t =
                    SparseTriples::new(taco_conversion_repro::tensor::Shape::matrix(rows, cols));
                for (i, j, v) in entries {
                    if v != 0 && t.get(&[i as i64, j as i64]) == 0.0 {
                        t.push(vec![i as i64, j as i64], v as f64)
                            .expect("in bounds");
                    }
                }
                t
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Converting through any pair of formats preserves the matrix values.
    #[test]
    fn conversion_preserves_values(t in arb_matrix()) {
        for src in all_sources(&t) {
            prop_assert!(src.to_triples().same_values(&t), "building {} lost values", src.format());
            for dst_format in all_targets() {
                let dst = convert(&src, dst_format).expect("target conversion");
                prop_assert!(
                    dst.to_triples().same_values(&t),
                    "{} -> {} lost values",
                    src.format(),
                    dst_format
                );
            }
            prop_assert!(convert(&src, FormatId::Dok).is_err(), "DOK target must be rejected");
        }
    }

    /// The generated conversions agree with the library baselines.
    #[test]
    fn generated_routines_agree_with_baselines(t in arb_matrix()) {
        let coo = CooMatrix::from_triples(&t);
        let csr = CsrMatrix::from_triples(&t);

        let ours = engine::to_csr(&coo);
        let skit = baselines::sparskit::coo_to_csr(&coo);
        prop_assert_eq!(ours.pos(), skit.pos());
        prop_assert!(ours.to_triples().same_values(&skit.to_triples()));
        let noext = baselines::taco_noext::coo_to_csr(&coo);
        prop_assert!(noext.to_triples().same_values(&t));

        let ours = engine::to_dia(&csr).expect("DIA conversion");
        let skit = baselines::sparskit::csr_to_dia(&csr);
        prop_assert_eq!(ours.offsets(), skit.offsets());
        prop_assert_eq!(ours.values(), skit.values());

        let ours = engine::to_ell(&csr);
        let skit = baselines::sparskit::csr_to_ell(&csr);
        prop_assert_eq!(ours.slices(), skit.slices());
        prop_assert_eq!(ours.values(), skit.values());

        let ours = engine::to_csc(&csr);
        let mkl = baselines::mkl::csr_to_csc(&csr);
        prop_assert!(ours.to_triples().same_values(&mkl.to_triples()));
    }

    /// SpMV gives identical results before and after conversion (the
    /// end-to-end property applications actually rely on).
    #[test]
    fn spmv_is_preserved_by_conversion(t in arb_matrix()) {
        let reference = engine::spmv_fingerprint(&CooMatrix::from_triples(&t));
        for converted in all_sources(&t) {
            let format = converted.format();
            let fingerprint = match &converted {
                AnyMatrix::Coo(m) => engine::spmv_fingerprint(m),
                AnyMatrix::Csr(m) => engine::spmv_fingerprint(m),
                AnyMatrix::Csc(m) => engine::spmv_fingerprint(m),
                AnyMatrix::Dia(m) => engine::spmv_fingerprint(m),
                AnyMatrix::Ell(m) => engine::spmv_fingerprint(m),
                AnyMatrix::Bcsr(m) => engine::spmv_fingerprint(m),
                AnyMatrix::Skyline(m) => engine::spmv_fingerprint(m),
                AnyMatrix::Jad(m) => engine::spmv_fingerprint(m),
                AnyMatrix::Dok(m) => engine::spmv_fingerprint(m),
                AnyMatrix::Coo3(_) | AnyMatrix::Csf(_) | AnyMatrix::Custom(_) => {
                    unreachable!("all_sources builds order-2 stock containers only")
                }
            };
            for (a, b) in reference.iter().zip(&fingerprint) {
                prop_assert!((a - b).abs() < 1e-9, "{}: {} vs {}", format, a, b);
            }
        }
    }

    /// Spec identity: two independently built specs with equal fingerprints
    /// are the *same* `Format` in the registry — the same handle, the same
    /// entry — regardless of which block shape parametrises them.
    #[test]
    fn equal_fingerprints_are_the_same_registry_format((br, bc) in (1usize..6, 1usize..6)) {
        let build = || {
            Format::builder(&format!("BCSR{br}x{bc}"))
                .remapping(taco_conversion_repro::remap::stock::bcsr_with_blocks(br, bc))
                .dims(["bi", "bj", "li", "lj"])
                .levels([
                    LevelKind::Dense,
                    LevelKind::Compressed,
                    LevelKind::Dense,
                    LevelKind::Dense,
                ])
                .build()
                .expect("the stock BCSR composition validates")
        };
        let a = build();
        let b = build();
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        prop_assert_eq!(&a, &b);
        prop_assert!(a.same_entry(&b), "interning deduplicates equal specs");
        // The rebuilt spec *is* the stock preset: same fingerprint, so the
        // registry resolves it to the BCSR entry with its stock identity.
        let stock = Format::bcsr(br, bc);
        prop_assert_eq!(&a, &stock);
        prop_assert!(a.same_entry(&stock));
        prop_assert_eq!(a.id(), Some(FormatId::Bcsr { block_rows: br, block_cols: bc }));
    }

    /// Custom-format round-trip: stock → custom → stock preserves the
    /// triples, for a DCSR-like builder format that exists in no enum.
    #[test]
    fn stock_to_custom_to_stock_preserves_triples(t in arb_matrix()) {
        let dcsr = Format::builder("ROUNDTRIP-DCSR")
            .remap_str("(i,j) -> (i,j)").expect("remapping parses")
            .dims(["i", "j"])
            .levels([LevelKind::Compressed, LevelKind::Compressed])
            .build()
            .expect("DCSR composition validates");
        for src in all_sources(&t) {
            let packed = convert(&src, &dcsr).expect("stock -> custom");
            prop_assert_eq!(packed.format(), dcsr.clone());
            prop_assert_eq!(packed.nnz(), t.nnz());
            prop_assert!(
                packed.to_triples().same_values(&t),
                "{} -> custom lost values",
                src.format()
            );
            let back = convert(&packed, FormatId::Csr).expect("custom -> stock");
            prop_assert!(back.to_triples().same_values(&t), "round-trip lost values");
            // Bit-identical to converting the lex-sorted input directly (the
            // custom read-back walks its compressed levels in sorted order).
            let sorted = AnyMatrix::Coo(CooMatrix::from_triples(&t.sorted()));
            let direct = convert(&sorted, FormatId::Csr).expect("direct conversion");
            prop_assert_eq!(back, direct);
        }
        // Custom -> custom round-trips too (through the read-back lowering).
        let blocked = Format::builder("ROUNDTRIP-BLOCKHASH")
            .remap_str("(i,j) -> (i/2,j/2,i%2,j%2)").expect("remapping parses")
            .dims(["bi", "bj", "li", "lj"])
            .levels([
                LevelKind::Dense,
                LevelKind::Hashed,
                LevelKind::Dense,
                LevelKind::Dense,
            ])
            .build()
            .expect("blocked composition validates");
        let packed = convert(&AnyMatrix::Coo(CooMatrix::from_triples(&t)), &dcsr)
            .expect("stock -> custom");
        let reblocked = convert(&packed, &blocked).expect("custom -> custom");
        prop_assert!(reblocked.to_triples().same_values(&t));
    }

    /// Matrix statistics (Table 2 columns) are invariant under conversion.
    #[test]
    fn statistics_are_invariant_under_conversion(t in arb_matrix()) {
        let reference = MatrixStats::compute(&t);
        let coo = AnyMatrix::Coo(CooMatrix::from_triples(&t));
        for format in [FormatId::Csr, FormatId::Dia, FormatId::Ell, FormatId::Jad] {
            let converted = convert(&coo, format).expect("conversion");
            let stats = MatrixStats::compute(&converted.to_triples());
            prop_assert_eq!(stats.nnz, reference.nnz);
            prop_assert_eq!(stats.nonzero_diagonals, reference.nonzero_diagonals);
            prop_assert_eq!(stats.max_nnz_per_row, reference.max_nnz_per_row);
        }
    }
}
