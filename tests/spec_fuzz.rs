//! Adversarial spec/tensor fuzz sweep.
//!
//! Random builder specs — permutation remappings crossed with every level
//! kind — must either be rejected by `FormatSpec::validate` with the typed
//! `ConvertError::UnsupportedSpec` (never a panic) or assemble and read back
//! every surviving nonzero. On top of the sweep, the mode-ordered CSF path
//! is pinned down exactly: all six order-3 mode orderings produce
//! bit-identical output across the engine, the generic (spec-driven)
//! driver, and the generated-code interpreter, and round-trip back to the
//! canonical triple set at every runtime thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use proptest::prelude::*;

use taco_conversion_repro::conv::convert::{convert, AnyMatrix, FormatId};
use taco_conversion_repro::conv::generic::convert_with_spec;
use taco_conversion_repro::conv::prelude::LevelKind;
use taco_conversion_repro::conv::select::ORDER3_MODE_ORDERS;
use taco_conversion_repro::conv::{codegen, mode, ConvertError, Format, FormatSpec};
use taco_conversion_repro::formats::{CooMatrix, CooTensor};
use taco_conversion_repro::remap::stock::mode_permutation;
use taco_conversion_repro::runtime::{ConversionService, ServiceConfig};
use taco_conversion_repro::tensor::{Shape, SparseTriples};
use taco_conversion_repro::workloads::generators::{banded, tensor3_fibered, tensor3_uniform};

/// Every level kind the builder accepts, indexable by the fuzz strategies.
const KINDS: [LevelKind; 8] = [
    LevelKind::Dense,
    LevelKind::Compressed,
    LevelKind::CompressedNonUnique,
    LevelKind::Singleton,
    LevelKind::Sliced,
    LevelKind::Squeezed,
    LevelKind::Banded,
    LevelKind::Hashed,
];

const ORDER2_MODE_ORDERS: [[usize; 2]; 2] = [[0, 1], [1, 0]];

static FUZZ_NAME: AtomicUsize = AtomicUsize::new(0);

/// Builds a format from a permutation mode order and a level composition,
/// then checks the fuzz contract: rejection is the typed spec error, and
/// acceptance means the tensor converts and reads back every nonzero that
/// survives the composition's banded (skyline-profile) filtering.
fn check_fuzz_case(t: &SparseTriples, order: &[usize], kinds: &[LevelKind]) {
    let names = ["i", "j", "k"];
    let name = format!("FUZZ-{}", FUZZ_NAME.fetch_add(1, Ordering::Relaxed));
    let built = Format::builder(&name)
        .remapping(mode_permutation(order))
        .dims(order.iter().map(|&m| names[m]))
        .levels(kinds.iter().copied())
        .build();
    let format = match built {
        Ok(format) => format,
        Err(err) => {
            assert!(
                matches!(err, ConvertError::UnsupportedSpec { .. }),
                "builder rejection must be the typed spec error, got: {err}"
            );
            return;
        }
    };
    let src = if t.order() == 2 {
        AnyMatrix::Coo(CooMatrix::from_triples(t))
    } else {
        AnyMatrix::Coo3(CooTensor::from_triples(t))
    };
    let packed = match convert(&src, &format) {
        Ok(packed) => packed,
        Err(err) => panic!("spec {kinds:?} @ {order:?} validated but failed to convert: {err}"),
    };
    // Banded levels store the skyline profile: a nonzero survives only when
    // its banded storage coordinate does not exceed the parent dimension's.
    let mut expected = SparseTriples::new(t.shape().clone());
    for tr in t.iter() {
        let kept = kinds.iter().enumerate().all(|(k, kind)| {
            !matches!(kind, LevelKind::Banded) || tr.coord[order[k]] <= tr.coord[order[k - 1]]
        });
        if kept {
            expected
                .push(tr.coord.clone(), tr.value)
                .expect("in bounds");
        }
    }
    assert_eq!(
        packed.nnz(),
        expected.nnz(),
        "spec {kinds:?} @ {order:?} lost or invented nonzeros"
    );
    assert!(
        packed.to_triples().same_values(&expected),
        "spec {kinds:?} @ {order:?} read back the wrong values"
    );
}

fn arb_matrix() -> impl Strategy<Value = SparseTriples> {
    (1usize..12, 1usize..12).prop_flat_map(|(rows, cols)| {
        let max_nnz = (rows * cols).min(48);
        proptest::collection::vec(((0..rows), (0..cols), -100i32..100), 0..max_nnz).prop_map(
            move |entries| {
                let mut t = SparseTriples::new(Shape::matrix(rows, cols));
                for (i, j, v) in entries {
                    if v != 0 && t.get(&[i as i64, j as i64]) == 0.0 {
                        t.push(vec![i as i64, j as i64], v as f64)
                            .expect("in bounds");
                    }
                }
                t
            },
        )
    })
}

/// Small random order-3 tensors (duplicate-free) plus a shuffle seed, so
/// COO3 inputs arrive in arbitrary storage order.
fn arb_tensor3() -> impl Strategy<Value = (SparseTriples, u64)> {
    (1usize..10, 1usize..10, 1usize..10).prop_flat_map(|(d0, d1, d2)| {
        let max_nnz = (d0 * d1 * d2).min(64);
        (
            proptest::collection::vec(((0..d0), (0..d1), (0..d2), -100i32..100), 0..max_nnz),
            1u64..u64::MAX,
        )
            .prop_map(move |(entries, seed)| {
                let mut t = SparseTriples::new(Shape::tensor3(d0, d1, d2));
                for (i, j, k, v) in entries {
                    let coord = vec![i as i64, j as i64, k as i64];
                    if v != 0 && t.get(&coord) == 0.0 {
                        t.push(coord, v as f64).expect("in bounds");
                    }
                }
                (t, seed)
            })
    })
}

fn shuffled_coo3(t: &SparseTriples, seed: u64) -> CooTensor {
    let mut coo = CooTensor::from_triples(t);
    let mut state = seed;
    coo.shuffle_with(|bound| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state as usize) % bound
    });
    coo
}

/// The explicit (non-collapsing) spec of a mode-ordered CSF, so the three
/// execution paths can be compared even for the canonical order (which
/// `Format::csf_ordered` folds into the stock CSF handle).
fn ordered_csf_spec(order: &[usize; 3]) -> FormatSpec {
    let names = ["i", "j", "k"];
    FormatSpec::new(
        &mode::csf_ordered_name(order),
        mode_permutation(order),
        order.iter().map(|&m| names[m]).collect(),
        vec![LevelKind::Compressed; 3],
    )
}

fn services() -> &'static [(usize, ConversionService)] {
    static SERVICES: OnceLock<Vec<(usize, ConversionService)>> = OnceLock::new();
    SERVICES.get_or_init(|| {
        [1usize, 2, 4]
            .into_iter()
            .map(|threads| {
                (
                    threads,
                    ConversionService::new(ServiceConfig {
                        threads,
                        parallel_nnz_threshold: 0,
                        ..ServiceConfig::default()
                    }),
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// Random rank-2 specs: every (permutation, level-composition) pair is
    /// either rejected with the typed spec error or assembles and reads
    /// back correctly. Nothing panics.
    #[test]
    fn random_rank2_specs_are_rejected_or_assemble(
        (t, pi, ki) in (
            arb_matrix(),
            0usize..ORDER2_MODE_ORDERS.len(),
            proptest::collection::vec(0usize..KINDS.len(), 2..3),
        )
    ) {
        let kinds: Vec<LevelKind> = ki.iter().map(|&x| KINDS[x]).collect();
        check_fuzz_case(&t, &ORDER2_MODE_ORDERS[pi], &kinds);
    }

    /// Random rank-3 specs, same contract as the rank-2 sweep.
    #[test]
    fn random_rank3_specs_are_rejected_or_assemble(
        (case, pi, ki) in (
            arb_tensor3(),
            0usize..ORDER3_MODE_ORDERS.len(),
            proptest::collection::vec(0usize..KINDS.len(), 3..4),
        )
    ) {
        let kinds: Vec<LevelKind> = ki.iter().map(|&x| KINDS[x]).collect();
        check_fuzz_case(&case.0, &ORDER3_MODE_ORDERS[pi], &kinds);
    }

    /// All six order-3 CSF mode orderings produce bit-identical assembled
    /// tensors on the engine fast path (`convert`), the generic spec-driven
    /// driver, and the generated counting-sort routine.
    #[test]
    fn mode_ordered_csf_paths_are_bit_identical((t, seed) in arb_tensor3()) {
        let coo3 = AnyMatrix::Coo3(shuffled_coo3(&t, seed));
        for order in ORDER3_MODE_ORDERS {
            let spec = ordered_csf_spec(&order);
            let format = Format::from_spec(spec.clone()).expect("ordered CSF spec validates");
            let via_engine = convert(&coo3, &format).expect("engine path");
            let via_generic = convert_with_spec(&coo3, &spec).expect("generic path");
            let via_codegen = codegen::execute_format(&coo3, &format).expect("codegen path");
            match (&via_engine, &via_codegen) {
                (AnyMatrix::Custom(a), AnyMatrix::Custom(b)) => {
                    prop_assert_eq!(&**a, &via_generic, "engine != generic for CSF@{:?}", order);
                    prop_assert_eq!(&**b, &via_generic, "codegen != generic for CSF@{:?}", order);
                }
                other => prop_assert!(false, "expected custom tensors, got {:?}", other),
            }
        }
    }

    /// Every mode ordering round-trips COO3 -> CSF@order -> COO3 to the
    /// identical canonical triple set, and the packed tensor is
    /// bit-identical at 1, 2, and 4 runtime threads.
    #[test]
    fn mode_orders_roundtrip_at_every_thread_count((t, seed) in arb_tensor3()) {
        let coo3 = AnyMatrix::Coo3(shuffled_coo3(&t, seed));
        for order in ORDER3_MODE_ORDERS {
            let format = Format::csf_ordered(&order).expect("permutation");
            let mut packed_by_threads = Vec::new();
            for (threads, svc) in services() {
                let packed = svc.convert(&coo3, format.clone()).expect("pack");
                let back = svc.convert(&packed, FormatId::Coo3).expect("unpack");
                let triples = back.to_triples();
                prop_assert!(
                    triples.same_values(&t),
                    "CSF@{:?} at {} threads lost values", order, threads
                );
                prop_assert_eq!(
                    triples.sorted(), t.sorted(),
                    "CSF@{:?} at {} threads changed the canonical triple set", order, threads
                );
                packed_by_threads.push(packed);
            }
            prop_assert!(
                packed_by_threads.windows(2).all(|w| w[0] == w[1]),
                "CSF@{:?} is not bit-identical across thread counts", order
            );
        }
    }
}

/// The builder rejects malformed shapes (missing remapping, count
/// mismatches) with the typed spec error, not a panic.
#[test]
fn malformed_builder_shapes_are_typed_errors() {
    let no_remap = Format::builder("FUZZ-NO-REMAP")
        .dims(["i", "j"])
        .levels([LevelKind::Dense, LevelKind::Compressed])
        .build();
    assert!(matches!(
        no_remap,
        Err(ConvertError::UnsupportedSpec { .. })
    ));
    let short_dims = Format::builder("FUZZ-SHORT-DIMS")
        .remapping(mode_permutation(&[0, 1]))
        .dims(["i"])
        .levels([LevelKind::Dense, LevelKind::Compressed])
        .build();
    assert!(matches!(
        short_dims,
        Err(ConvertError::UnsupportedSpec { .. })
    ));
    let short_levels = Format::builder("FUZZ-SHORT-LEVELS")
        .remapping(mode_permutation(&[0, 1, 2]))
        .dims(["i", "j", "k"])
        .levels([LevelKind::Dense, LevelKind::Compressed])
        .build();
    assert!(matches!(
        short_levels,
        Err(ConvertError::UnsupportedSpec { .. })
    ));
}

/// Hashed levels compose in rank-3 builder specs: an all-hashed,
/// mode-reversed format assembles and reads back every nonzero.
#[test]
fn hashed_levels_compose_in_rank3_specs() {
    let t = taco_conversion_repro::tensor::example::example3_tensor();
    let format = Format::builder("FUZZ-HASH3")
        .remapping(mode_permutation(&[2, 1, 0]))
        .dims(["k", "j", "i"])
        .levels([LevelKind::Hashed, LevelKind::Hashed, LevelKind::Hashed])
        .build()
        .expect("hashed chains validate");
    let src = AnyMatrix::Coo3(CooTensor::from_triples(&t));
    let packed = convert(&src, &format).expect("COO3 -> hashed");
    assert_eq!(packed.nnz(), t.nnz());
    assert!(packed.to_triples().same_values(&t));
}

/// Banded levels compose in rank-3 builder specs: a CSF-like fiber tree
/// with a banded innermost level stores the skyline profile of each fiber
/// (coordinates above the parent dimension's are dropped, exactly like the
/// stock skyline kernel's lower triangle).
#[test]
fn banded_levels_compose_in_rank3_specs() {
    let mut t = SparseTriples::new(Shape::tensor3(4, 4, 4));
    // In-profile entries (k <= j) plus two above-profile entries.
    for coord in [[0, 2, 0], [0, 2, 2], [1, 3, 1], [2, 1, 1], [3, 0, 0]] {
        t.push(coord.to_vec(), 1.0).expect("in bounds");
    }
    t.push(vec![0, 1, 3], 9.0).expect("in bounds"); // k > j: dropped
    t.push(vec![2, 0, 2], 9.0).expect("in bounds"); // k > j: dropped
    let format = Format::builder("FUZZ-BAND3")
        .remapping(mode_permutation(&[0, 1, 2]))
        .dims(["i", "j", "k"])
        .levels([
            LevelKind::Compressed,
            LevelKind::Compressed,
            LevelKind::Banded,
        ])
        .build()
        .expect("banded under a compressed chain validates");
    let src = AnyMatrix::Coo3(CooTensor::from_triples(&t));
    let packed = convert(&src, &format).expect("COO3 -> banded fiber tree");
    assert_eq!(packed.nnz(), 5, "above-profile entries are dropped");
    let mut expected = SparseTriples::new(Shape::tensor3(4, 4, 4));
    for tr in t.iter().filter(|tr| tr.coord[2] <= tr.coord[1]) {
        expected
            .push(tr.coord.clone(), tr.value)
            .expect("in bounds");
    }
    assert!(packed.to_triples().same_values(&expected));
}

/// `Display`/`FromStr` round-trip for mode-ordered format names: each of
/// the six orderings parses back to an equal handle, the canonical name
/// collapses to the stock CSF, and malformed orderings are parse errors.
#[test]
fn mode_ordered_names_roundtrip_through_parse() {
    for order in ORDER3_MODE_ORDERS {
        let format = Format::csf_ordered(&order).expect("permutation");
        let reparsed: Format = format.to_string().parse().expect("display name parses");
        assert_eq!(reparsed, format, "Display/FromStr round-trip for {order:?}");
        let by_name: Format = mode::csf_ordered_name(&order).parse().expect("name parses");
        assert_eq!(by_name, format, "spelled-out name parses for {order:?}");
        assert_eq!(by_name.mode_order(), Some(order.to_vec()));
    }
    // The canonical ordering is the stock format under both spellings.
    assert_eq!("CSF@0,1,2".parse::<Format>().unwrap(), Format::csf());
    assert_eq!("CSF@0,1,2".parse::<Format>().unwrap().name(), "CSF");
    // Parsing is case-insensitive like the stock format names.
    assert_eq!(
        "csf@2,1,0".parse::<Format>().unwrap(),
        Format::csf_ordered(&[2, 1, 0]).unwrap()
    );
    for bad in ["CSF@0,0,1", "CSF@1,2,3", "CSF@", "CSF@a,b,c", "CSF@0,1,2,2"] {
        assert!(bad.parse::<Format>().is_err(), "{bad} must not parse");
    }
}

/// `auto_select` reads the stats of each workload class and picks a
/// different format for each: structureless uniform tensors keep plain
/// coordinates, fibered tensors take the CSF tree, banded matrices take
/// DIA.
#[test]
fn auto_select_distinguishes_workload_classes() {
    let uniform = tensor3_uniform([30, 30, 30], 1000, 7).expect("uniform generator");
    let fibered = tensor3_fibered([16, 32, 64], 4, 8, 7).expect("fibered generator");
    let band = banded(64, 64, &[0, 1, -1], 5).expect("banded generator");
    let u = taco_conversion_repro::conv::auto_select(&AnyMatrix::Coo3(CooTensor::from_triples(
        &uniform,
    )));
    let f = taco_conversion_repro::conv::auto_select(&AnyMatrix::Coo3(CooTensor::from_triples(
        &fibered,
    )));
    let b =
        taco_conversion_repro::conv::auto_select(&AnyMatrix::Coo(CooMatrix::from_triples(&band)));
    assert_eq!(u, Format::coo3(), "uniform scatter keeps coordinates");
    assert_eq!(f, Format::csf(), "fiber structure pays for the CSF tree");
    assert_eq!(b, Format::dia(), "banded structure pays for DIA");
    assert!(u != f && f != b && u != b, "three classes, three formats");
}
