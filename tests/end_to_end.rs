//! End-to-end tests over the Table 2 stand-in matrices: every cell of the
//! Table 3 reproduction computes the same result regardless of which
//! implementation produces it, and the specification languages round-trip.

use taco_conversion_repro::conv::convert::FormatId;
use taco_conversion_repro::conv::spec::FormatSpec;
use taco_conversion_repro::query::parse_query;
use taco_conversion_repro::remap::{parse_remapping, EvalContext};
use taco_conversion_repro::tensor::MatrixStats;
use taco_conversion_repro::workloads::{table2, MatrixClass};

use conv_bench::{BenchInputs, Conversion, Impl};

#[test]
fn table3_cells_agree_across_implementations_on_real_workloads() {
    for spec in table2()
        .into_iter()
        .filter(|s| s.class == MatrixClass::Banded)
        .take(3)
    {
        let inputs = BenchInputs::build(&spec, 0.01);
        for conversion in Conversion::all() {
            if !conversion.reported_for(&inputs.spec) {
                continue;
            }
            let mut outputs = Vec::new();
            for implementation in [Impl::Generated, Impl::Sparskit, Impl::Mkl, Impl::TacoNoExt] {
                if implementation.supports(conversion) {
                    outputs.push(conv_bench::run_conversion(
                        &inputs,
                        conversion,
                        implementation,
                    ));
                }
            }
            assert!(
                outputs.windows(2).all(|w| w[0] == w[1]),
                "{}: implementations disagree on {}: {outputs:?}",
                spec.name,
                conversion.label()
            );
        }
    }
}

#[test]
fn synthetic_suite_matches_paper_statistics_for_banded_matrices() {
    for spec in table2()
        .into_iter()
        .filter(|s| s.class == MatrixClass::Banded)
    {
        let m = spec.generate(0.01);
        let stats = MatrixStats::compute(&m);
        assert_eq!(
            stats.nonzero_diagonals,
            spec.nonzero_diagonals.min(spec.max_nnz_per_row),
            "{}: diagonal count mismatch",
            spec.name
        );
        assert!(
            stats.max_nnz_per_row <= spec.max_nnz_per_row + 2,
            "{}",
            spec.name
        );
    }
}

#[test]
fn specification_languages_cover_all_stock_formats() {
    for id in [
        FormatId::Coo,
        FormatId::Csr,
        FormatId::Csc,
        FormatId::Dia,
        FormatId::Ell,
        FormatId::Skyline,
        FormatId::Jad,
    ] {
        let spec = FormatSpec::stock(id).expect("stock spec");
        // Remapping text round-trips through the parser.
        let reparsed = parse_remapping(&spec.remapping.to_string()).expect("remapping parses");
        assert_eq!(reparsed, spec.remapping, "{id}");
        // Required queries are valid query-language programs.
        for query in spec.required_queries() {
            let reparsed = parse_query(&query.to_string()).expect("query parses");
            assert_eq!(reparsed, query, "{id}");
        }
    }
}

#[test]
fn dia_remapping_matches_measured_diagonal_statistics() {
    // The remapped first coordinate of each nonzero is its diagonal offset;
    // the number of distinct offsets equals MatrixStats::nonzero_diagonals.
    let spec = table2()
        .into_iter()
        .find(|s| s.name == "denormal")
        .expect("in suite");
    let m = spec.generate(0.01);
    let remap = parse_remapping("(i,j) -> (j-i,i,j)").unwrap();
    let mut ctx = EvalContext::new(&remap);
    let remapped = ctx.apply_all(&m).unwrap();
    let mut offsets: Vec<i64> = remapped.triples.iter().map(|(c, _)| c[0]).collect();
    offsets.sort_unstable();
    offsets.dedup();
    assert_eq!(offsets.len(), MatrixStats::compute(&m).nonzero_diagonals);
}
