//! Integration tests for the compiler path: generated IR routines executed
//! through the interpreter must agree with the monomorphised engine and with
//! the library baselines on realistic (Table 2 stand-in) matrices.

use taco_conversion_repro::conv::codegen;
use taco_conversion_repro::conv::convert::plan_for;
use taco_conversion_repro::conv::convert::{convert, AnyMatrix, FormatId};
use taco_conversion_repro::conv::plan::CounterStrategy;
use taco_conversion_repro::formats::{CooMatrix, CscMatrix, CsrMatrix};
use taco_conversion_repro::workloads::table2;

fn small_suite() -> Vec<(String, sparse_tensor::SparseTriples)> {
    // One matrix per generator class, at a very small scale so the IR
    // interpreter stays fast.
    ["jnlbrng1", "cant", "scircuit"]
        .iter()
        .map(|name| {
            let spec = table2()
                .into_iter()
                .find(|s| &s.name == name)
                .expect("known matrix");
            (name.to_string(), spec.generate(0.003))
        })
        .collect()
}

#[test]
fn generated_ir_agrees_with_engine_on_workload_matrices() {
    for (name, triples) in small_suite() {
        let sources = [
            AnyMatrix::Coo(CooMatrix::from_triples(&triples)),
            AnyMatrix::Csr(CsrMatrix::from_triples(&triples)),
            AnyMatrix::Csc(CscMatrix::from_triples(&triples)),
        ];
        for src in &sources {
            for (s, t) in codegen::supported_pairs() {
                if s != src.format() {
                    continue;
                }
                let generated = codegen::execute(src, t).expect("generated code runs");
                let engine = convert(src, t).expect("engine conversion");
                assert_eq!(generated, engine, "{name}: {s} -> {t} disagrees");
            }
        }
    }
}

#[test]
fn listings_exist_for_all_supported_pairs() {
    for (s, t) in codegen::supported_pairs() {
        let listing = codegen::listing(s, t).expect("listing");
        assert!(listing.contains("void convert_"), "{s} -> {t}");
        // Every routine ends by storing values into the output.
        assert!(listing.contains("B_vals"), "{s} -> {t}:\n{listing}");
    }
}

#[test]
fn plans_match_the_papers_code_generation_decisions() {
    let triples = table2()[1].generate(0.003);
    let coo = AnyMatrix::Coo(CooMatrix::from_triples(&triples));
    let csr = AnyMatrix::Csr(CsrMatrix::from_triples(&triples));

    // CSR -> ELL uses the scalar-counter optimisation; COO -> ELL cannot.
    assert_eq!(
        plan_for(&csr, FormatId::Ell).unwrap().counters,
        CounterStrategy::Scalar
    );
    assert_eq!(
        plan_for(&coo, FormatId::Ell).unwrap().counters,
        CounterStrategy::Array
    );
    // DIA and ELL targets assemble in a single pass (no edge insertion); CSR
    // targets need the two-phase pos/crd construction.
    assert!(plan_for(&coo, FormatId::Dia).unwrap().single_pass_assembly);
    assert!(!plan_for(&coo, FormatId::Csr).unwrap().single_pass_assembly);
    // The generated listing for a CSR source must not materialise a CSR
    // temporary for DIA targets (the paper's key advantage over libraries).
    let listing = codegen::listing(FormatId::Coo, FormatId::Dia).unwrap();
    assert!(!listing.contains("temp"), "{listing}");
}
