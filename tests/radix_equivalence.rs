//! Radix-path equivalence suite.
//!
//! The packed-key LSD radix sort and the blocked transpose are pure
//! performance rewrites: every path must be *bit-identical* to the stable
//! comparison-sort baseline. Three layers pin that down:
//!
//! * raw index sorts — [`radix::sort_perm`] against the comparison
//!   [`lex_sort_perm`] over random columns whose per-dimension bit widths
//!   sweep across the u64 / u128 / comparison-fallback boundaries,
//! * the COO3→CSF kernels — every sort strategy, all six mode orderings,
//!   at 1 / 2 / 4 threads, against the sequential engine,
//! * CSR→CSC — the parallel kernel (whose wide chunks take the blocked
//!   write-combining scatter) against the naive sequential transpose, on
//!   an input large and wide enough to cross both blocking cutoffs.

use proptest::prelude::*;

use taco_conversion_repro::conv::engine;
use taco_conversion_repro::conv::select::ORDER3_MODE_ORDERS;
use taco_conversion_repro::formats::csf::lex_sort_perm;
use taco_conversion_repro::formats::radix::{self, SortPath, SortStrategy};
use taco_conversion_repro::formats::{CooTensor, CsrMatrix};
use taco_conversion_repro::runtime::kernels;
use taco_conversion_repro::tensor::{Shape, SparseTriples};

/// Random coordinate columns with per-dimension bit widths drawn so the
/// packed key's total width sweeps the interesting regions: comfortably
/// inside u64, straddling 64, inside u128, and past 128 (comparison
/// fallback).
fn arb_columns() -> impl Strategy<Value = Vec<Vec<usize>>> {
    (1usize..5, 1usize..50, 0usize..200).prop_flat_map(|(dims, bits, n)| {
        proptest::collection::vec(
            proptest::collection::vec(0usize..(1usize << bits), n..n + 1),
            dims..dims + 1,
        )
    })
}

proptest! {
    /// The radix permutation equals the stable comparison permutation for
    /// any key width, including the fallback regions.
    #[test]
    fn radix_perm_matches_comparison_perm(columns in arb_columns()) {
        prop_assert_eq!(radix::sort_perm(&columns), lex_sort_perm(&columns));
    }
}

/// Pinned width boundaries: exactly 64 bits packs into u64, 65 spills to
/// u128, beyond 128 falls back to the comparison sort — and all three agree
/// with the baseline.
#[test]
fn width_boundaries_agree_with_the_comparison_sort() {
    let mut state = 0xdeadbeefcafef00du64;
    let mut next = move |bound: usize| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state as usize) % bound
    };
    // (per-dim widths, expected path) — widths are realised by planting one
    // maximal value per column so the layout sees the full width.
    let cases: [(&[u32], SortPath); 4] = [
        (&[32, 31], SortPath::Radix64),        // 63 bits
        (&[32, 32], SortPath::Radix64),        // exactly 64
        (&[33, 32], SortPath::Radix128),       // 65
        (&[50, 50, 50], SortPath::Comparison), // 150: fallback
    ];
    for (widths, expected) in cases {
        let n = 300;
        let columns: Vec<Vec<usize>> = widths
            .iter()
            .map(|&w| {
                let max = if w >= 64 {
                    usize::MAX
                } else {
                    (1usize << w) - 1
                };
                let mut col: Vec<usize> = (0..n).map(|_| next(max)).collect();
                col[n / 2] = max; // pin the width the layout derives
                col
            })
            .collect();
        let mut span: Vec<usize> = (0..n).collect();
        let path = radix::sort_index_span(&columns, &mut span);
        assert_eq!(path, expected, "widths {widths:?}");
        assert_eq!(span, lex_sort_perm(&columns), "widths {widths:?}");
    }
}

/// Small random order-3 tensors plus a shuffle seed, so COO3 inputs arrive
/// in arbitrary storage order.
fn arb_tensor3() -> impl Strategy<Value = (SparseTriples, u64)> {
    (1usize..10, 1usize..10, 1usize..10).prop_flat_map(|(d0, d1, d2)| {
        let max_nnz = (d0 * d1 * d2).min(64);
        (
            proptest::collection::vec(((0..d0), (0..d1), (0..d2), -100i32..100), 0..max_nnz),
            1u64..u64::MAX,
        )
            .prop_map(move |(entries, seed)| {
                let mut t = SparseTriples::new(Shape::tensor3(d0, d1, d2));
                for (i, j, k, v) in entries {
                    let coord = vec![i as i64, j as i64, k as i64];
                    if v != 0 && t.get(&coord) == 0.0 {
                        t.push(coord, v as f64).expect("in bounds");
                    }
                }
                (t, seed)
            })
    })
}

fn shuffled_coo3(t: &SparseTriples, seed: u64) -> CooTensor {
    let mut coo = CooTensor::from_triples(t);
    let mut state = seed;
    coo.shuffle_with(|bound| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state as usize) % bound
    });
    coo
}

proptest! {
    // Each case runs 6 orders x 3 strategies x 3 thread counts = 54
    // conversions, so take a quarter of the configured case count (the
    // `PROPTEST_CASES` boost still scales it).
    #![proptest_config(ProptestConfig::with_cases(ProptestConfig::default().cases / 4))]

    /// Every sort strategy, all six CSF mode orderings, 1 / 2 / 4 threads:
    /// bit-identical to the sequential engine.
    #[test]
    fn csf_kernels_are_strategy_and_thread_invariant((t, seed) in arb_tensor3()) {
        let coo = shuffled_coo3(&t, seed);
        let strategies = [
            SortStrategy::Radix,
            SortStrategy::Comparison,
            SortStrategy::Counting,
        ];
        for order in ORDER3_MODE_ORDERS {
            let reference = engine::to_csf_ordered(&coo, &order);
            for strategy in strategies {
                for threads in [1, 2, 4] {
                    let got = kernels::coo_to_csf_ordered_with(&coo, &order, threads, strategy);
                    prop_assert_eq!(
                        &got, &reference,
                        "{:?} with {:?} at {} threads", order, strategy, threads
                    );
                }
            }
        }
        // The canonical kernel too (it shares the radix span sorts).
        let reference = engine::to_csf(&coo);
        for threads in [1, 2, 4] {
            prop_assert_eq!(&kernels::coo_to_csf(&coo, threads), &reference);
        }
    }
}

/// The blocked transpose paths — sequential and the parallel kernel's
/// per-chunk write-combining scatter — are bit-identical to the naive
/// sequential transpose on an input wide and dense enough to cross the
/// tile cutoffs (cols > 4096, ≥ 2^14 nonzeros per chunk).
#[test]
fn blocked_transpose_paths_match_the_naive_transpose() {
    let rows = 256;
    let cols = 3 * 4096 + 17;
    let mut pos = vec![0usize];
    let mut crd = Vec::new();
    let mut vals = Vec::new();
    for i in 0..rows {
        let mut row: Vec<usize> = (0..300).map(|k| (i * 31 + k * 97 + k * k) % cols).collect();
        row.sort_unstable();
        row.dedup();
        for (n, &j) in row.iter().enumerate() {
            crd.push(j);
            vals.push((i * 7 + n) as f64 * 0.25 - 3.0);
        }
        pos.push(crd.len());
    }
    let csr = CsrMatrix::from_parts(rows, cols, pos, crd, vals).expect("valid CSR");
    assert!(
        csr.nnz() >= 1 << 16,
        "input must cross the blocking cutoffs"
    );
    let naive = engine::to_csc(&csr);
    let blocked = engine::csr_to_csc_blocked(&csr);
    assert_eq!(blocked.pos(), naive.pos());
    assert_eq!(blocked.crd(), naive.crd());
    assert_eq!(blocked.values(), naive.values());
    for threads in [1, 2, 4] {
        let parallel = kernels::csr_to_csc(&csr, threads);
        assert_eq!(parallel.pos(), naive.pos(), "{threads} threads");
        assert_eq!(parallel.crd(), naive.crd(), "{threads} threads");
        assert_eq!(parallel.values(), naive.values(), "{threads} threads");
    }
}
