//! Integration tests for the `conv-runtime` conversion service, driving it
//! with the Table 2 synthetic workloads: batched conversions agree with the
//! sequential engine at every pool width, planning is amortised across a
//! batch, and routing never changes results.

use taco_conversion_repro::conv::convert::{convert, AnyMatrix, FormatId};
use taco_conversion_repro::formats::{CooMatrix, CsrMatrix};
use taco_conversion_repro::runtime::{ConversionService, ServiceConfig};
use taco_conversion_repro::workloads::table2;

fn workload_inputs() -> Vec<AnyMatrix> {
    table2()
        .iter()
        .filter(|s| ["jnlbrng1", "cant", "scircuit"].contains(&s.name))
        .flat_map(|s| {
            let t = s.generate(0.01);
            [
                AnyMatrix::Coo(CooMatrix::from_triples(&t)),
                AnyMatrix::Csr(CsrMatrix::from_triples(&t)),
            ]
        })
        .collect()
}

#[test]
fn batched_service_conversions_match_the_sequential_engine() {
    let sources = workload_inputs();
    let targets = [
        FormatId::Coo,
        FormatId::Csr,
        FormatId::Csc,
        FormatId::Ell,
        FormatId::Jad,
        FormatId::Bcsr {
            block_rows: 4,
            block_cols: 4,
        },
    ];
    let jobs: Vec<(AnyMatrix, FormatId)> = sources
        .iter()
        .flat_map(|s| targets.iter().map(move |&t| (s.clone(), t)))
        .collect();

    let expected: Vec<AnyMatrix> = jobs
        .iter()
        .map(|(src, target)| convert(src, *target).expect("sequential conversion"))
        .collect();

    for threads in [1, 4] {
        let service = ConversionService::new(ServiceConfig {
            threads,
            parallel_nnz_threshold: 0,
            ..ServiceConfig::default()
        });
        let results = service.convert_batch(&jobs);
        assert_eq!(results.len(), expected.len());
        for ((job, result), want) in jobs.iter().zip(&results).zip(&expected) {
            let got = result.as_ref().expect("service conversion");
            assert_eq!(
                got,
                want,
                "{} -> {} differs at {} threads",
                job.0.format(),
                job.1,
                threads
            );
        }
        let stats = service.stats();
        assert_eq!(stats.batch_jobs, jobs.len() as u64);
        // 2 source formats x 6 targets = 12 distinct pairs; everything else
        // must come from the cache.
        assert_eq!(stats.plan_misses, 12, "planning is amortised");
        assert!(stats.plan_hits >= (jobs.len() as u64) - 12);
    }
}

#[test]
fn single_conversions_amortise_planning_across_calls() {
    let service = ConversionService::new(ServiceConfig::with_threads(2));
    let sources = workload_inputs();
    for src in &sources {
        service.convert(src, FormatId::Csc).expect("conversion");
    }
    let stats = service.stats();
    // Two distinct source formats -> two plans, regardless of matrix count.
    assert_eq!(stats.plan_misses, 2);
    assert_eq!(stats.conversions, sources.len() as u64);
}

#[test]
fn service_rejects_dok_targets_like_the_engine() {
    let service = ConversionService::default();
    let src = workload_inputs().remove(0);
    assert!(service.convert(&src, FormatId::Dok).is_err());
    assert!(convert(&src, FormatId::Dok).is_err());
}

#[test]
fn custom_formats_get_plan_caching_and_round_trip_through_the_service() {
    use taco_conversion_repro::conv::prelude::{Format, LevelKind};

    // A user-defined format never named in any enum: doubly compressed rows.
    let dcsr = Format::builder("SERVICE-TEST-DCSR")
        .remap_str("(i,j) -> (i,j)")
        .unwrap()
        .dims(["i", "j"])
        .levels([LevelKind::Compressed, LevelKind::Compressed])
        .build()
        .unwrap();

    let service = ConversionService::new(ServiceConfig::with_threads(2));
    let sources = workload_inputs();
    let coo = &sources[0];
    let reference = coo.to_triples();

    // Custom format as *target*: second convert call for the same pair is a
    // plan-cache hit (plans key on the spec fingerprint).
    let packed = service.convert(coo, &dcsr).expect("stock -> custom");
    let stats = service.stats();
    assert_eq!(stats.plan_misses, 1);
    assert_eq!(stats.plan_hits, 0);
    let packed_again = service.convert(coo, &dcsr).expect("stock -> custom again");
    let stats = service.stats();
    assert_eq!(
        stats.plan_misses, 1,
        "second custom conversion replans nothing"
    );
    assert_eq!(stats.plan_hits, 1);
    assert_eq!(packed, packed_again);
    assert_eq!(packed.format(), dcsr);

    // Custom format as *source*: the service converts back out, and the
    // round-trip preserves the matrix.
    let back = service
        .convert(&packed, FormatId::Csr)
        .expect("custom -> stock");
    assert!(back.to_triples().same_values(&reference));
    let stats = service.stats();
    assert_eq!(stats.plan_misses, 2, "custom-source pair planned once");

    // Batches mix stock and custom targets through the same generic API.
    let jobs: Vec<_> = sources.iter().map(|s| (s.clone(), dcsr.clone())).collect();
    let results = service.convert_batch(&jobs);
    for (job, result) in jobs.iter().zip(&results) {
        let got = result.as_ref().expect("batched custom conversion");
        assert!(got.to_triples().same_values(&job.0.to_triples()));
    }
    // Warm-up accepts handles too.
    service
        .warm_up(&[(Format::coo(), dcsr.clone()), (dcsr.clone(), Format::csr())])
        .expect("warm-up with custom handles");
}
