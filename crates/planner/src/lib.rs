//! Cost-model-driven multi-hop route planning over the format graph.
//!
//! The conversion service's original router made one hard-coded choice per
//! request: convert directly, or materialise COO first when the source is
//! padded. This crate generalises that decision into *routing over a format
//! graph*: formats are nodes, known conversion kernels are weighted edges,
//! and a conversion is planned as a shortest path — so a shuffled COO→BCSR
//! request can discover that hopping through CSR (whose row-major output
//! feeds BCSR's block analysis in order) is cheaper than the direct kernel,
//! and a padded DIA→BCSR request composes both tricks into a three-hop
//! `DIA → COO → CSR → BCSR` route.
//!
//! Edge weights come from three sources, layered:
//!
//! 1. **static per-kernel cost functions** ([`cost::static_edge_units`])
//!    over the request's [`TensorAttrs`] — pass counts from the symbolic
//!    [`ConversionPlan`](sparse_conv::ConversionPlan), padded storage sizes,
//!    per-kernel write weights, and an out-of-order penalty for the
//!    block-analysis kernels;
//! 2. **seeded calibration** ([`FormatGraph::seed_from_bench_json`]) from a
//!    committed `BENCH_conversions.json` snapshot; and
//! 3. **online refinement** ([`FormatGraph::observe`]) from per-hop
//!    durations the service measures while executing routes, folded into a
//!    bounded, thread-safe EWMA per directed edge.
//!
//! Calibrated ratios are normalised by a global machine factor, so a
//! uniformly slower machine does not bias the search toward unobserved
//! edges; per-edge multipliers are clamped to a bounded band around the
//! static estimate.
//!
//! Routing never trades correctness for speed: intermediates are filtered
//! by an admissibility rule derived from each target's sensitivity to
//! iteration order ([`graph`] module docs), so every planned route is
//! bit-identical to the direct conversion.

#![warn(missing_docs)]

pub mod cost;
pub mod graph;

pub use cost::{static_edge_units, CostModel, TensorAttrs};
pub use graph::{FormatGraph, PlannerConfig, RoutePlan};
