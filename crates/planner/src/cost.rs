//! Static per-kernel cost functions and the calibrated multiplier store.
//!
//! Costs are expressed in *entry units*: one unit is one simple read or
//! write of a stored entry. The static model for an edge `A → B` is
//!
//! ```text
//! units(A→B) = passes(A,B) · stored(A)            (scan work)
//!            + weight(B) · penalty · writes(B)    (assembly work)
//!            + HOP_SETUP                          (per-hop constant)
//! ```
//!
//! where `passes` comes from the symbolic conversion plan (padded sources
//! are re-scanned by every pass — the original via-COO rule falls out of
//! this term), `weight(B)` captures how heavy the target's assembly is per
//! entry (a CSC scatter is cheap, a BCSR block analysis with its per-block
//! sort/dedup and binary-search scatter is not), and `penalty` charges
//! block-analysis targets extra when the feeding source does not iterate
//! rows in order (measured: shuffled COO→BCSR pays ~1.3–1.8× over the same
//! kernel fed row-major). Parallel-kernel edges get a modest credit when
//! the pool is wide enough and the input large enough to engage them.
//!
//! [`CostModel`] layers measured reality on top: every observation stores
//! the ratio `measured_ns / predicted_ns` per directed edge (bounded EWMA),
//! normalised by the *median* ratio across observed edges — a robust
//! machine-speed factor — so that a uniformly faster or slower machine
//! cancels out instead of biasing the search toward unobserved edges, and a
//! single pathological edge cannot drag every other multiplier with it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use sparse_conv::convert::{AnyMatrix, FormatId};
use sparse_conv::Format;

use crate::graph::PlannerConfig;

/// Nanoseconds one entry unit is assumed to cost on the reference machine.
/// Only the *ratio* between edges matters for routing; this constant anchors
/// calibration observations to the static scale.
pub(crate) const NS_PER_UNIT: f64 = 2.0;
/// Fixed per-hop cost (allocation, dispatch, cache warm-up) in entry units;
/// keeps multi-hop routes away from tiny inputs.
pub(crate) const HOP_SETUP: f64 = 256.0;
/// Work discount on parallel-kernel edges when the pool engages. Kept
/// deliberately modest so routing decisions stay stable across thread
/// counts.
const PARALLEL_CREDIT: f64 = 0.75;
/// Extra weight on block-analysis (BCSR) assembly fed by a source that does
/// not iterate rows in order.
const BCSR_UNSORTED_PENALTY: f64 = 1.8;
/// Calibrated multiplier band around the static estimate.
const MULTIPLIER_MIN: f64 = 0.25;
const MULTIPLIER_MAX: f64 = 4.0;
/// EWMA smoothing for per-edge ratios.
const EWMA_EDGE: f64 = 0.25;

/// Attribute summary of a conversion request's source tensor — everything
/// the cost model reads. All fields are O(1) queries except
/// [`TensorAttrs::rows_in_order`], which for COO sources is an early-exit
/// monotonicity scan (first out-of-order pair returns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorAttrs {
    /// Tensor order (2 for matrices, 3 for third-order tensors).
    pub order: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Entries of the value array, padding included — what a plan pass
    /// actually scans (equals `nnz` for unpadded formats).
    pub stored_entries: usize,
    /// Extent of the first dimension.
    pub rows: usize,
    /// Extent of the second dimension.
    pub cols: usize,
    /// Whether the source's iteration visits rows in non-decreasing order.
    pub rows_in_order: bool,
    /// Maximum nonzeros in any row, when a stats pass has already computed
    /// it (see `sparse_conv::select::TensorProfile`); refines the write
    /// estimate of padded-by-row targets such as ELL.
    pub max_nnz_per_row: Option<usize>,
}

impl TensorAttrs {
    /// The attribute queries for a concrete source instance.
    pub fn from_matrix(src: &AnyMatrix) -> TensorAttrs {
        TensorAttrs {
            order: src.order(),
            nnz: src.nnz(),
            stored_entries: src.stored_entries(),
            rows: src.rows(),
            cols: src.cols(),
            rows_in_order: src.iterates_rows_in_order(),
            max_nnz_per_row: None,
        }
    }

    /// Attaches a previously computed per-row maximum (from a shared stats
    /// pass), refining padded-target write estimates.
    pub fn with_max_nnz_per_row(mut self, k: usize) -> TensorAttrs {
        self.max_nnz_per_row = Some(k);
        self
    }

    /// Folds in the statistics a [`sparse_conv::TensorProfile`] already
    /// computed for `auto_select`, so pricing ELL-style padded targets does
    /// not trigger a second pass over the coordinates.
    pub fn with_profile(self, profile: &sparse_conv::TensorProfile) -> TensorAttrs {
        match profile.max_nnz_per_row {
            Some(k) => self.with_max_nnz_per_row(k),
            None => self,
        }
    }
}

/// Per-entry assembly weight of a target format, relative to a plain
/// coordinate write.
fn kernel_weight(target: &Format) -> f64 {
    match target.id() {
        Some(FormatId::Coo) | Some(FormatId::Coo3) => 1.0,
        Some(FormatId::Csr) => 1.2,
        Some(FormatId::Csc) => 1.4,
        Some(FormatId::Ell) => 1.5,
        Some(FormatId::Jad) => 2.5,
        Some(FormatId::Dia) => 6.0,
        Some(FormatId::Bcsr { .. }) => 6.0,
        Some(FormatId::Skyline) => 4.0,
        Some(FormatId::Csf) => 2.5,
        Some(FormatId::Dok) => f64::INFINITY,
        // Registry formats run the generic driver: interpreted assembly,
        // plus a sort when the spec needs prefix grouping.
        None => match target.spec() {
            Some(spec) if sparse_conv::generic::needs_prefix_grouping(&spec.levels) => 3.5,
            _ => 2.5,
        },
    }
}

/// Whether the runtime has a partitioned parallel kernel for this pair.
fn is_parallel_pair(src: &Format, dst: &Format) -> bool {
    matches!(
        (src.id(), dst.id()),
        (Some(FormatId::Coo), Some(FormatId::Csr))
            | (Some(FormatId::Csr), Some(FormatId::Csc))
            | (Some(FormatId::Csr), Some(FormatId::Bcsr { .. }))
            | (Some(FormatId::Coo3), Some(FormatId::Csf))
    ) || (src.id() == Some(FormatId::Coo3)
        && dst.id().is_none()
        && dst.mode_order().is_some_and(|o| o.len() == 3))
}

/// Estimated entries the target materialises.
fn write_entries(dst: &Format, attrs: &TensorAttrs) -> f64 {
    match dst.id() {
        // ELL pads every row to the maximum row length; use it when a stats
        // pass has provided it, the nonzero count otherwise.
        Some(FormatId::Ell) => attrs
            .max_nnz_per_row
            .map(|k| (k * attrs.rows).max(attrs.nnz))
            .unwrap_or(attrs.nnz) as f64,
        _ => attrs.nnz as f64,
    }
}

/// The static cost, in entry units, of converting along the edge
/// `src → dst`, fed by `entries_in` stored entries whose iteration order is
/// row-major iff `feeds_rows_in_order`. `passes` is the symbolic plan's
/// input pass count for the pair.
pub fn static_edge_units(
    src: &Format,
    dst: &Format,
    passes: usize,
    entries_in: usize,
    feeds_rows_in_order: bool,
    attrs: &TensorAttrs,
    cfg: &PlannerConfig,
) -> f64 {
    let read = (passes * entries_in) as f64;
    let mut weight = kernel_weight(dst);
    if matches!(dst.id(), Some(FormatId::Bcsr { .. })) && !feeds_rows_in_order {
        weight *= BCSR_UNSORTED_PENALTY;
    }
    let mut work = read + weight * write_entries(dst, attrs);
    if cfg.threads > 1 && attrs.nnz >= cfg.parallel_nnz_threshold && is_parallel_pair(src, dst) {
        work *= PARALLEL_CREDIT;
    }
    work + HOP_SETUP
}

/// Thread-safe store of calibrated edge-cost multipliers.
///
/// Each observation records the ratio between a measured duration and the
/// static prediction for that edge, folded into a per-edge EWMA. The
/// multiplier applied during routing is the per-edge ratio *normalised by
/// the median ratio across observed edges* and clamped to `[0.25, 4.0]`:
/// the median estimates the machine's overall speed relative to the
/// reference, so systematic machine speed cancels, an edge that is merely
/// unobserved keeps multiplier 1, and only an edge's deviation from its
/// siblings shifts the search.
#[derive(Debug, Default)]
pub struct CostModel {
    /// Directed `(source fingerprint, target fingerprint)` → EWMA of
    /// `measured / predicted`.
    edges: Mutex<HashMap<(u64, u64), f64>>,
    version: AtomicU64,
}

/// Robust machine-speed factor: the (lower) median of per-edge ratios.
fn machine_factor(edges: &HashMap<(u64, u64), f64>) -> Option<f64> {
    if edges.is_empty() {
        return None;
    }
    let mut ratios: Vec<f64> = edges.values().copied().collect();
    ratios.sort_by(f64::total_cmp);
    Some(ratios[(ratios.len() - 1) / 2])
}

impl CostModel {
    /// An empty model: every multiplier is 1 until observations arrive.
    pub fn new() -> CostModel {
        CostModel::default()
    }

    /// The calibrated multiplier for an edge (1.0 when unobserved).
    pub fn multiplier(&self, src: &Format, dst: &Format) -> f64 {
        let edges = self.edges.lock().unwrap();
        match (
            edges.get(&(src.fingerprint(), dst.fingerprint())),
            machine_factor(&edges),
        ) {
            (Some(&edge), Some(global)) if global > 0.0 => {
                (edge / global).clamp(MULTIPLIER_MIN, MULTIPLIER_MAX)
            }
            _ => 1.0,
        }
    }

    /// Folds one measured duration for an edge whose static estimate was
    /// `predicted_units` into the calibration state.
    pub fn observe_units(
        &self,
        src: &Format,
        dst: &Format,
        predicted_units: f64,
        measured_ns: u64,
    ) {
        if predicted_units <= 0.0 || !predicted_units.is_finite() || measured_ns == 0 {
            return;
        }
        let ratio = measured_ns as f64 / (predicted_units * NS_PER_UNIT);
        let mut edges = self.edges.lock().unwrap();
        let edge = edges
            .entry((src.fingerprint(), dst.fingerprint()))
            .or_insert(ratio);
        *edge += EWMA_EDGE * (ratio - *edge);
        drop(edges);
        self.version.fetch_add(1, Ordering::Relaxed);
    }

    /// Monotonic counter incremented by every observation — lets cached
    /// routing decisions detect that edge costs moved.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Relaxed)
    }

    /// Number of directed edges with at least one observation.
    pub fn observed_edges(&self) -> usize {
        self.edges.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs(nnz: usize) -> TensorAttrs {
        TensorAttrs {
            order: 2,
            nnz,
            stored_entries: nnz,
            rows: 100,
            cols: 100,
            rows_in_order: false,
            max_nnz_per_row: None,
        }
    }

    #[test]
    fn one_profile_pass_serves_selection_and_pricing() {
        use sparse_conv::convert::AnyTensor;
        use sparse_conv::TensorProfile;
        use sparse_tensor::{Shape, SparseTriples};

        // One dense row of 6 in an otherwise empty 8x8 matrix.
        let mut t = SparseTriples::new(Shape::matrix(8, 8));
        for j in 0..6i64 {
            t.push(vec![2, j], 1.0).unwrap();
        }
        let coo = sparse_formats::CooMatrix::from_triples(&t);
        let profile = TensorProfile::compute(&AnyTensor::Coo(coo.clone()));
        assert_eq!(
            profile.selected,
            sparse_conv::auto_select(&AnyTensor::Coo(coo.clone()))
        );

        let attrs = TensorAttrs::from_matrix(&sparse_conv::convert::AnyMatrix::Coo(coo))
            .with_profile(&profile);
        assert_eq!(attrs.max_nnz_per_row, Some(6));
        // The refined row maximum tightens the ELL write estimate: 6-wide
        // padding over 8 rows stores 48 slots, not nnz = 6.
        assert_eq!(write_entries(&Format::ell(), &attrs), 48.0);
    }

    #[test]
    fn unsorted_sources_pay_extra_on_block_targets() {
        let cfg = PlannerConfig::default();
        let coo = Format::coo();
        let bcsr = Format::stock(FormatId::Bcsr {
            block_rows: 4,
            block_cols: 4,
        });
        let a = attrs(10_000);
        let shuffled = static_edge_units(&coo, &bcsr, 2, a.nnz, false, &a, &cfg);
        let ordered = static_edge_units(&coo, &bcsr, 2, a.nnz, true, &a, &cfg);
        assert!(shuffled > ordered * 1.2, "{shuffled} vs {ordered}");
        // The penalty is specific to block analysis: CSC costs the same
        // either way.
        let csc = Format::csc();
        let s = static_edge_units(&coo, &csc, 2, a.nnz, false, &a, &cfg);
        let o = static_edge_units(&coo, &csc, 2, a.nnz, true, &a, &cfg);
        assert_eq!(s, o);
    }

    #[test]
    fn machine_speed_cancels_out_of_multipliers() {
        let model = CostModel::new();
        let (coo, csr, csc) = (Format::coo(), Format::csr(), Format::csc());
        // A machine uniformly 3x slower than the reference: every edge
        // observes ratio 3, so no edge should look cheap or expensive.
        for _ in 0..16 {
            model.observe_units(&coo, &csr, 1000.0, 3_000_000 / 500);
            model.observe_units(&coo, &csc, 1000.0, 3_000_000 / 500);
        }
        let m = model.multiplier(&coo, &csr);
        assert!((0.8..1.3).contains(&m), "multiplier {m} should stay near 1");
        // An edge measured far slower than its siblings does move.
        for _ in 0..16 {
            model.observe_units(&csr, &csc, 1000.0, 10 * 3_000_000 / 500);
        }
        assert!(model.multiplier(&csr, &csc) > 2.0);
        assert_eq!(model.observed_edges(), 3);
        assert!(model.version() >= 48);
    }

    #[test]
    fn multipliers_stay_bounded() {
        let model = CostModel::new();
        let (coo, csr) = (Format::coo(), Format::csr());
        let (dia, ell) = (Format::stock(FormatId::Dia), Format::stock(FormatId::Ell));
        for _ in 0..64 {
            model.observe_units(&coo, &csr, 1000.0, 1); // absurdly fast
            model.observe_units(&dia, &ell, 1000.0, u64::MAX / 1024); // absurdly slow
        }
        assert!(model.multiplier(&coo, &csr) >= 0.25);
        assert!(model.multiplier(&dia, &ell) <= 4.0);
    }
}
