//! The format graph and its shortest-path route search.
//!
//! Nodes are interned [`Format`] handles; a directed edge `A → B` exists
//! when the symbolic planner can produce a conversion plan for the pair
//! (stock engine kernels, the runtime's parallel kernels, and generic-driver
//! edges for registry formats all plan through the same entry point). Edge
//! weights are [`static_edge_units`] scaled by the [`CostModel`]'s
//! calibrated multiplier.
//!
//! # Admissibility
//!
//! A route is only useful if it produces *bytes identical* to the direct
//! conversion, so intermediates are filtered by the target's sensitivity to
//! the source's iteration order:
//!
//! | target                                | sensitive to            | admissible intermediates |
//! |---------------------------------------|-------------------------|--------------------------|
//! | DIA, BCSR, SKY, CSF, sorted customs   | nothing (canonicalises) | COO, CSR, CSF            |
//! | CSR, ELL, JAD                         | within-row order        | COO, CSR                 |
//! | CSC                                   | within-column order     | COO                      |
//! | COO, COO3, unsorted customs           | full iteration order    | COO                      |
//!
//! The rules follow from what each intermediate does to the nonzero
//! stream: a COO hop *replays* its source's iteration exactly (so it is
//! always safe), a CSR hop stably groups by row (preserving within-row
//! order but rewriting everything else), and a CSF hop sorts
//! lexicographically (safe only for targets that canonicalise anyway).
//! Registry (custom) targets count as canonicalising exactly when their
//! spec makes the generic driver sort (`needs_prefix_grouping`).
//!
//! # Search
//!
//! The per-request subgraph is tiny — the source, the target, and at most
//! [`PlannerConfig::max_intermediates`] stock way-points of the same order —
//! so the shortest-path search enumerates every admissible path in cost
//! order (Dijkstra degenerates to exhaustive enumeration on a graph this
//! small) with a deterministic tie-break: cheaper first, then fewer hops,
//! then lexicographic by fingerprint.

use std::collections::HashMap;
use std::sync::Mutex;

use sparse_conv::convert::FormatId;
use sparse_conv::Format;

use crate::cost::{static_edge_units, CostModel, TensorAttrs};

/// Knobs of a route search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerConfig {
    /// Worker threads the executing service would use (engages the
    /// parallel-kernel credit).
    pub threads: usize,
    /// Minimum nonzeros before parallel kernels engage (mirrors the
    /// service's threshold).
    pub parallel_nnz_threshold: usize,
    /// Maximum way-points between source and target (2 allows three-hop
    /// routes such as `DIA → COO → CSR → BCSR`).
    pub max_intermediates: usize,
    /// Drop the direct path whenever an admissible multi-hop route exists
    /// (the `--route=multi-hop` ablation); falls back to direct when no
    /// chain is admissible.
    pub exclude_direct: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            threads: 1,
            parallel_nnz_threshold: 1 << 14,
            max_intermediates: 2,
            exclude_direct: false,
        }
    }
}

/// A planned conversion route: the full node path (source first, target
/// last) and its estimated cost.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutePlan {
    /// Formats visited, source and target included (`len() >= 2`).
    pub path: Vec<Format>,
    /// Estimated total cost in entry units (calibration applied).
    pub cost_units: f64,
}

impl RoutePlan {
    /// Whether the plan is the single direct hop.
    pub fn is_direct(&self) -> bool {
        self.path.len() == 2
    }

    /// Number of conversions executed along the route.
    pub fn hop_count(&self) -> usize {
        self.path.len().saturating_sub(1)
    }

    /// The path as display names (what reports record).
    pub fn names(&self) -> Vec<String> {
        self.path.iter().map(|f| f.to_string()).collect()
    }
}

/// How a target's stored bytes depend on the order its nonzeros arrive in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sensitivity {
    /// Assembly canonicalises (sorts or scatters by coordinate): any
    /// admissible intermediate is safe.
    Insensitive,
    /// Only the relative order of nonzeros *within a row* matters.
    RowOrder,
    /// Only the relative order of nonzeros *within a column* matters.
    ColumnOrder,
    /// The full iteration order is stored verbatim.
    Full,
}

fn sensitivity(target: &Format) -> Sensitivity {
    match target.id() {
        Some(FormatId::Coo) | Some(FormatId::Coo3) | Some(FormatId::Dok) => Sensitivity::Full,
        Some(FormatId::Csr) | Some(FormatId::Ell) | Some(FormatId::Jad) => Sensitivity::RowOrder,
        Some(FormatId::Csc) => Sensitivity::ColumnOrder,
        Some(FormatId::Dia)
        | Some(FormatId::Bcsr { .. })
        | Some(FormatId::Skyline)
        | Some(FormatId::Csf) => Sensitivity::Insensitive,
        None => match target.spec() {
            // The generic driver re-establishes fiber grouping by sorting
            // for these specs, so the input order cannot leak into bytes.
            Some(spec) if sparse_conv::generic::needs_prefix_grouping(&spec.levels) => {
                Sensitivity::Insensitive
            }
            // Full-rooted custom chains keep the source iteration order:
            // be conservative (replay-only intermediates).
            _ => Sensitivity::Full,
        },
    }
}

/// Whether `mid` may appear as a way-point on a route into a target with
/// the given sensitivity.
fn intermediate_admissible(mid: &Format, sens: Sensitivity) -> bool {
    match mid.id() {
        // A COO hop replays its source's iteration exactly.
        Some(FormatId::Coo) | Some(FormatId::Coo3) => true,
        // A CSR hop stably groups by row: within-row order survives.
        Some(FormatId::Csr) => matches!(sens, Sensitivity::Insensitive | Sensitivity::RowOrder),
        // A CSF hop sorts lexicographically.
        Some(FormatId::Csf) => matches!(sens, Sensitivity::Insensitive),
        _ => false,
    }
}

/// The format graph: memoised symbolic edges plus the calibrated cost
/// model. One graph lives inside each `ConversionService` and is shared by
/// every request; all state is interior-mutable and thread-safe.
#[derive(Debug, Default)]
pub struct FormatGraph {
    cost: CostModel,
    /// `(source, target)` fingerprints → the symbolic plan's input pass
    /// count, or `None` when the pair has no conversion routine.
    passes: Mutex<HashMap<(u64, u64), Option<usize>>>,
}

impl FormatGraph {
    /// An empty graph with an uncalibrated cost model.
    pub fn new() -> FormatGraph {
        FormatGraph::default()
    }

    /// The calibrated multiplier store.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Monotonic version of the calibration state (see
    /// [`CostModel::version`]).
    pub fn version(&self) -> u64 {
        self.cost.version()
    }

    /// The symbolic plan's input pass count for an edge, memoised; `None`
    /// when the pair cannot be planned (no edge in the graph).
    fn passes(&self, src: &Format, dst: &Format) -> Option<usize> {
        let key = (src.fingerprint(), dst.fingerprint());
        let replay_target = matches!(dst.id(), Some(FormatId::Coo) | Some(FormatId::Coo3));
        *self.passes.lock().unwrap().entry(key).or_insert_with(|| {
            sparse_conv::plan_for_formats(src, dst).ok().map(|p| {
                // The engine lowers coordinate targets to a single
                // replay pass (`to_coo` pushes as it scans); the
                // symbolic plan's count-then-fill structure
                // overestimates them.
                if replay_target {
                    p.input_passes.min(1)
                } else {
                    p.input_passes
                }
            })
        })
    }

    /// The calibrated cost of one edge, or `None` when no kernel exists.
    pub fn edge_units(
        &self,
        src: &Format,
        dst: &Format,
        entries_in: usize,
        feeds_rows_in_order: bool,
        attrs: &TensorAttrs,
        cfg: &PlannerConfig,
    ) -> Option<f64> {
        let passes = self.passes(src, dst)?;
        let units = static_edge_units(
            src,
            dst,
            passes,
            entries_in,
            feeds_rows_in_order,
            attrs,
            cfg,
        );
        Some(units * self.cost.multiplier(src, dst))
    }

    /// Folds a measured edge duration back into the cost model (online
    /// calibration). `entries_in` and `feeds_rows_in_order` describe the
    /// instance that actually fed the hop.
    // The parameter list mirrors `static_edge_units` plus the measurement:
    // collapsing it into a struct would just move the same seven names.
    #[allow(clippy::too_many_arguments)]
    pub fn observe(
        &self,
        src: &Format,
        dst: &Format,
        entries_in: usize,
        feeds_rows_in_order: bool,
        attrs: &TensorAttrs,
        cfg: &PlannerConfig,
        measured_ns: u64,
    ) {
        if let Some(passes) = self.passes(src, dst) {
            let predicted = static_edge_units(
                src,
                dst,
                passes,
                entries_in,
                feeds_rows_in_order,
                attrs,
                cfg,
            );
            self.cost.observe_units(src, dst, predicted, measured_ns);
        }
    }

    /// Total calibrated cost of a full path, walking the stored-entry count
    /// and iteration-order flag through each hop; `None` when any edge is
    /// missing.
    fn path_units(&self, path: &[Format], attrs: &TensorAttrs, cfg: &PlannerConfig) -> Option<f64> {
        let mut total = 0.0;
        let mut entries = attrs.stored_entries;
        let mut in_order = attrs.rows_in_order;
        for pair in path.windows(2) {
            total += self.edge_units(&pair[0], &pair[1], entries, in_order, attrs, cfg)?;
            // Whatever the hop produced: intermediates are unpadded stock
            // containers storing exactly the nonzeros.
            entries = attrs.nnz;
            in_order = match pair[1].id() {
                Some(FormatId::Csr) | Some(FormatId::Skyline) | Some(FormatId::Csf) => true,
                // A COO hop replays its input, preserving whatever order
                // fed it.
                Some(FormatId::Coo) | Some(FormatId::Coo3) => in_order,
                _ => false,
            };
        }
        Some(total)
    }

    /// Plans the cheapest admissible route from `source` to `target` for a
    /// tensor described by `attrs`. Returns `None` when the graph has no
    /// path at all (the caller should fall back to its legacy router, which
    /// will surface the planning error).
    pub fn plan_route(
        &self,
        source: &Format,
        target: &Format,
        attrs: &TensorAttrs,
        cfg: &PlannerConfig,
    ) -> Option<RoutePlan> {
        let direct_path = vec![source.clone(), target.clone()];
        let direct = self
            .path_units(&direct_path, attrs, cfg)
            .map(|cost_units| RoutePlan {
                path: direct_path,
                cost_units,
            });
        // Empty and identity conversions never profit from hops.
        if attrs.nnz == 0 || source.fingerprint() == target.fingerprint() {
            return direct;
        }
        let pool: Vec<Format> = match attrs.order {
            2 => vec![Format::coo(), Format::csr()],
            3 => vec![Format::coo3(), Format::csf()],
            _ => Vec::new(),
        };
        let sens = sensitivity(target);
        let mids: Vec<Format> = pool
            .into_iter()
            .filter(|f| {
                f.fingerprint() != source.fingerprint()
                    && f.fingerprint() != target.fingerprint()
                    && intermediate_admissible(f, sens)
            })
            .collect();
        let mut candidates: Vec<Vec<Format>> = Vec::new();
        if cfg.max_intermediates >= 1 {
            for a in &mids {
                candidates.push(vec![source.clone(), a.clone(), target.clone()]);
            }
        }
        if cfg.max_intermediates >= 2 {
            for a in &mids {
                for b in &mids {
                    if a.fingerprint() != b.fingerprint() {
                        candidates.push(vec![source.clone(), a.clone(), b.clone(), target.clone()]);
                    }
                }
            }
        }
        let mut routed: Vec<RoutePlan> = candidates
            .into_iter()
            .filter_map(|path| {
                let cost_units = self.path_units(&path, attrs, cfg)?;
                Some(RoutePlan { path, cost_units })
            })
            .collect();
        // Deterministic order: cheapest, then fewest hops, then
        // lexicographic by fingerprint sequence.
        routed.sort_by(|a, b| {
            a.cost_units
                .total_cmp(&b.cost_units)
                .then(a.path.len().cmp(&b.path.len()))
                .then_with(|| {
                    let fa: Vec<u64> = a.path.iter().map(Format::fingerprint).collect();
                    let fb: Vec<u64> = b.path.iter().map(Format::fingerprint).collect();
                    fa.cmp(&fb)
                })
        });
        let best_chain = routed.into_iter().next();
        match (direct, best_chain) {
            (Some(d), Some(c)) => {
                if cfg.exclude_direct || c.cost_units < d.cost_units {
                    Some(c)
                } else {
                    Some(d)
                }
            }
            (Some(d), None) => Some(d),
            (None, c) => c,
        }
    }

    /// Seeds the cost model from a `BENCH_conversions.json` document:
    /// single-thread rows measured on a *direct* route become calibration
    /// observations for their edge. Returns the number of rows applied.
    /// Rows naming unregistered custom formats, multi-thread rows, and rows
    /// measured over multi-hop or streamed routes are skipped.
    pub fn seed_from_bench_json(&self, json: &str) -> usize {
        let cfg = PlannerConfig::default();
        let mut applied = 0;
        for line in json.lines() {
            if !line.contains("\"median_ns\"") {
                continue;
            }
            let Some(src) = json_str(line, "source").and_then(|s| s.parse::<Format>().ok()) else {
                continue;
            };
            let Some(dst) = json_str(line, "target").and_then(|s| s.parse::<Format>().ok()) else {
                continue;
            };
            if json_num(line, "threads").unwrap_or(1.0) as usize != 1 {
                continue;
            }
            if let Some(route) = json_str(line, "route") {
                if route != "direct" {
                    continue;
                }
            }
            let nnz = json_num(line, "nnz").unwrap_or(0.0) as usize;
            let median_ns = json_num(line, "median_ns").unwrap_or(0.0) as u64;
            if nnz == 0 || median_ns == 0 {
                continue;
            }
            let attrs = TensorAttrs {
                order: src.order().max(dst.order()),
                nnz,
                stored_entries: nnz,
                rows: 0,
                cols: 0,
                // Structural only: a bench row's COO source is shuffled.
                rows_in_order: src.id().is_some_and(FormatId::iterates_rows_in_order),
                max_nnz_per_row: None,
            };
            self.observe(
                &src,
                &dst,
                nnz,
                attrs.rows_in_order,
                &attrs,
                &cfg,
                median_ns,
            );
            applied += 1;
        }
        applied
    }
}

/// Extracts `"key": "value"` from a single JSON object line.
fn json_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_string())
}

/// Extracts `"key": number` from a single JSON object line.
fn json_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::NS_PER_UNIT;

    fn bcsr4() -> Format {
        Format::stock(FormatId::Bcsr {
            block_rows: 4,
            block_cols: 4,
        })
    }

    fn shuffled(nnz: usize) -> TensorAttrs {
        TensorAttrs {
            order: 2,
            nnz,
            stored_entries: nnz,
            rows: 3000,
            cols: 3000,
            rows_in_order: false,
            max_nnz_per_row: None,
        }
    }

    fn names(plan: &RoutePlan) -> Vec<String> {
        plan.names()
    }

    #[test]
    fn shuffled_coo_to_bcsr_routes_via_csr() {
        let g = FormatGraph::new();
        let cfg = PlannerConfig::default();
        let plan = g
            .plan_route(&Format::coo(), &bcsr4(), &shuffled(20_000), &cfg)
            .unwrap();
        assert_eq!(names(&plan), ["COO", "CSR", "BCSR4x4"]);
        // Row-ordered input feeds the block analysis directly.
        let mut ordered = shuffled(20_000);
        ordered.rows_in_order = true;
        let plan = g
            .plan_route(&Format::coo(), &bcsr4(), &ordered, &cfg)
            .unwrap();
        assert!(plan.is_direct());
        // Tiny inputs never pay the extra hop.
        let plan = g
            .plan_route(&Format::coo(), &bcsr4(), &shuffled(64), &cfg)
            .unwrap();
        assert!(plan.is_direct());
    }

    #[test]
    fn padded_sources_route_via_coo_and_compose_three_hops() {
        let g = FormatGraph::new();
        let cfg = PlannerConfig::default();
        let dia = Format::stock(FormatId::Dia);
        let padded = TensorAttrs {
            order: 2,
            nnz: 95,
            stored_entries: 2048,
            rows: 64,
            cols: 64,
            rows_in_order: false,
            max_nnz_per_row: None,
        };
        let plan = g
            .plan_route(&dia, &Format::stock(FormatId::Ell), &padded, &cfg)
            .unwrap();
        assert_eq!(names(&plan), ["DIA", "COO", "ELL"]);
        // A padded source *and* a block-analysis target compose: shed the
        // padding first, then feed the block analysis row-major.
        let padded_large = TensorAttrs {
            nnz: 4000,
            stored_entries: 40_000,
            ..padded
        };
        let plan = g.plan_route(&dia, &bcsr4(), &padded_large, &cfg).unwrap();
        assert_eq!(names(&plan), ["DIA", "COO", "CSR", "BCSR4x4"]);
        assert_eq!(plan.hop_count(), 3);
        // COO targets replay the source directly; hops cannot help.
        let plan = g.plan_route(&dia, &Format::coo(), &padded, &cfg).unwrap();
        assert!(plan.is_direct());
    }

    #[test]
    fn column_sensitive_targets_only_accept_replay_intermediates() {
        let g = FormatGraph::new();
        let forced = PlannerConfig {
            exclude_direct: true,
            ..PlannerConfig::default()
        };
        // Forced multi-hop into CSC may only use the COO replay hop: a CSR
        // way-point would rewrite within-column order.
        let plan = g
            .plan_route(&Format::csr(), &Format::csc(), &shuffled(20_000), &forced)
            .unwrap();
        assert_eq!(names(&plan), ["CSR", "COO", "CSC"]);
        // From COO the only admissible way-point coincides with the source,
        // so the forced search falls back to direct.
        let plan = g
            .plan_route(&Format::coo(), &Format::csc(), &shuffled(20_000), &forced)
            .unwrap();
        assert!(plan.is_direct());
    }

    #[test]
    fn unplannable_pairs_yield_no_route() {
        let g = FormatGraph::new();
        let cfg = PlannerConfig::default();
        // DOK has no coordinate-hierarchy spec: no edge can reach it.
        assert!(g
            .plan_route(
                &Format::coo(),
                &Format::stock(FormatId::Dok),
                &shuffled(1000),
                &cfg
            )
            .is_none());
    }

    #[test]
    fn a_slower_measured_edge_loses_its_shortest_path_slot() {
        let g = FormatGraph::new();
        let cfg = PlannerConfig::default();
        let attrs = shuffled(20_000);
        let (coo, csr, bcsr) = (Format::coo(), Format::csr(), bcsr4());
        let before = g.plan_route(&coo, &bcsr, &attrs, &cfg).unwrap();
        assert_eq!(names(&before), ["COO", "CSR", "BCSR4x4"]);
        // Establish a truthful baseline on the sibling edges (measured =
        // predicted), then repeatedly measure the COO→CSR hop far slower
        // than its static estimate.
        let nominal = |src: &Format, dst: &Format, in_order: bool| {
            let units = g
                .edge_units(src, dst, attrs.nnz, in_order, &attrs, &cfg)
                .unwrap();
            (units * NS_PER_UNIT) as u64
        };
        for _ in 0..4 {
            let ns = nominal(&csr, &bcsr, true);
            g.observe(&csr, &bcsr, attrs.nnz, true, &attrs, &cfg, ns);
            let ns = nominal(&coo, &bcsr, false);
            g.observe(&coo, &bcsr, attrs.nnz, false, &attrs, &cfg, ns);
        }
        let version = g.version();
        for _ in 0..8 {
            let ns = 10 * nominal(&coo, &csr, false);
            g.observe(&coo, &csr, attrs.nnz, false, &attrs, &cfg, ns);
        }
        assert!(g.version() > version);
        let after = g.plan_route(&coo, &bcsr, &attrs, &cfg).unwrap();
        assert!(
            after.is_direct(),
            "slow COO→CSR edge should lose its slot, got {:?}",
            names(&after)
        );
    }

    #[test]
    fn bench_json_rows_seed_the_model() {
        let g = FormatGraph::new();
        let json = concat!(
            r#"{"matrix": "m", "source": "COO", "source_fp": "0", "target": "CSR", "#,
            r#""target_fp": "1", "threads": 1, "scale": 0.02, "nnz": 20000, "#,
            r#""median_ns": 160000, "throughput_mnnz_s": 125.0, "route": "direct"},"#,
            "\n",
            r#"{"matrix": "m", "source": "CSR", "source_fp": "1", "target": "CSC", "#,
            r#""target_fp": "2", "threads": 1, "scale": 0.02, "nnz": 20000, "#,
            r#""median_ns": 190000, "throughput_mnnz_s": 105.0, "route": "direct"},"#,
            "\n",
            // Skipped: multi-thread, multi-hop route, unknown custom name.
            r#"{"matrix": "m", "source": "COO", "target": "CSR", "threads": 4, "#,
            r#""nnz": 20000, "median_ns": 90000},"#,
            "\n",
            r#"{"matrix": "m", "source": "COO", "target": "BCSR4x4", "threads": 1, "#,
            r#""nnz": 20000, "median_ns": 1300000, "route": "multi-hop"},"#,
            "\n",
            r#"{"matrix": "m", "source": "NO-SUCH-FORMAT", "target": "CSR", "threads": 1, "#,
            r#""nnz": 20000, "median_ns": 90000}"#,
        );
        assert_eq!(g.seed_from_bench_json(json), 2);
        assert_eq!(g.cost_model().observed_edges(), 2);
    }
}
