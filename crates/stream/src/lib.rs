//! Out-of-core streaming conversion primitives.
//!
//! Every conversion path in the core crates materializes the whole tensor in
//! memory. This crate removes that cap by restating the paper's sort-then-pack
//! decomposition (Chou et al., PLDI 2020) over *chunks*:
//!
//! * [`TensorStream`] / [`TensorSink`] — a pull-based source (and push-based
//!   sink) of [`CoordBlock`]s: bounded coordinate blocks carrying a rank-`N`
//!   [`Shape`](sparse_tensor::Shape) and sorted-run metadata;
//! * [`ExternalSorter`] — an external merge sort over sorted runs: blocks are
//!   pre-sorted (in parallel, by the caller) and buffered as in-memory runs
//!   until a configurable [`MemoryBudget`] fills, at which point the buffer is
//!   k-way-merged into one spill run on disk; [`ExternalSorter::drain`]
//!   k-way-merges every run back in sorted order, feeding the same packing
//!   loops (`CsfBuilder`, CSR assembly) the in-memory engine uses — so the
//!   streamed output is **byte-identical** to the in-memory conversion;
//! * [`MemTracker`] / [`StreamStats`] — honest accounting of the streaming
//!   working set (sort buffers, in-flight blocks, merge read buffers) and of
//!   spill traffic, surfaced by the runtime service next to its plan-cache
//!   statistics.
//!
//! Why byte-identical: the sort key is a list of coordinate dimensions
//! (`[row]` for CSR, the full mode order for CSF), every run is *stably*
//! sorted, runs are created in arrival order, and merges break key ties by
//! run index — together that reproduces exactly the stable sort the in-memory
//! engine performs, including the arrival order of duplicate keys.

#![warn(missing_docs)]

pub mod block;
pub mod budget;
pub mod run;
pub mod sorter;
pub mod source;
pub mod stats;

pub use block::CoordBlock;
pub use budget::{MemTracker, MemoryBudget};
pub use sorter::{ExternalSorter, SorterConfig};
pub use source::{CooBlockStream, CooSink, TensorSink, TensorStream};
pub use stats::StreamStats;

/// Bytes one streamed nonzero occupies in a sort buffer or spill run:
/// `order` coordinates plus the value, all 8 bytes wide.
pub fn entry_bytes(order: usize) -> usize {
    (order + 1) * 8
}
