//! Stream sources and sinks: where coordinate blocks come from and go.
//!
//! A [`TensorStream`] yields [`CoordBlock`]s one at a time, so a conversion
//! never needs the whole input resident; loaders (file readers, in-memory
//! adapters) implement the producing side and sinks the consuming side.

use sparse_conv::ConvertError;
use sparse_formats::{CooMatrix, CooTensor};
use sparse_tensor::{Shape, SparseTriples};

use crate::block::CoordBlock;

/// A pull-based source of coordinate blocks. Every block carries the same
/// rank-`N` [`Shape`]; blocks arrive in a stable source order (ties in later
/// sorts are broken by this arrival order).
pub trait TensorStream {
    /// The shape of the tensor being streamed.
    fn shape(&self) -> &Shape;

    /// The next block, or `None` when the stream is exhausted.
    ///
    /// # Errors
    ///
    /// Propagates I/O or parse failures from the underlying source.
    fn next_block(&mut self) -> Result<Option<CoordBlock>, ConvertError>;

    /// Total nonzeros if the source knows it up front (file loaders usually
    /// do, from the header).
    fn size_hint(&self) -> Option<u64> {
        None
    }
}

/// A push-based consumer of coordinate blocks.
pub trait TensorSink {
    /// The shape this sink accepts.
    fn shape(&self) -> &Shape;

    /// Consumes one block.
    ///
    /// # Errors
    ///
    /// Propagates validation or I/O failures from the underlying consumer.
    fn push_block(&mut self, block: CoordBlock) -> Result<(), ConvertError>;
}

/// A sink that accumulates every block into an in-memory [`CooTensor`] in
/// arrival order — the materialising endpoint (and the fallback the runtime
/// uses for targets without a streaming kernel).
#[derive(Debug, Clone)]
pub struct CooSink {
    tensor: CooTensor,
}

impl CooSink {
    /// An empty sink for tensors of `shape`.
    pub fn new(shape: Shape) -> Self {
        CooSink {
            tensor: CooTensor::new(shape),
        }
    }

    /// The accumulated tensor.
    pub fn into_tensor(self) -> CooTensor {
        self.tensor
    }
}

impl TensorSink for CooSink {
    fn shape(&self) -> &Shape {
        self.tensor.shape()
    }

    fn push_block(&mut self, block: CoordBlock) -> Result<(), ConvertError> {
        let mut coord = vec![0usize; block.order()];
        for p in 0..block.nnz() {
            for (d, c) in coord.iter_mut().enumerate() {
                *c = block.crd(d)[p];
            }
            self.tensor.push(&coord, block.values()[p]);
        }
        Ok(())
    }
}

/// Streams an in-memory COO tensor as fixed-size blocks — the adapter that
/// lets resident data flow through the same pipeline as file loaders (and the
/// workhorse of the equivalence tests, which sweep its block size).
#[derive(Debug, Clone)]
pub struct CooBlockStream {
    tensor: CooTensor,
    block_nnz: usize,
    pos: usize,
}

impl CooBlockStream {
    /// Streams `tensor` in blocks of at most `block_nnz` nonzeros (at least
    /// one), preserving stored order.
    pub fn new(tensor: CooTensor, block_nnz: usize) -> Self {
        CooBlockStream {
            tensor,
            block_nnz: block_nnz.max(1),
            pos: 0,
        }
    }

    /// Streams a COO matrix (an order-2 tensor) in blocks.
    pub fn from_matrix(m: &CooMatrix, block_nnz: usize) -> Self {
        let shape = Shape::matrix(m.rows(), m.cols());
        let tensor = CooTensor::from_parts(
            shape,
            vec![m.row_indices().to_vec(), m.col_indices().to_vec()],
            m.values().to_vec(),
        )
        .expect("a valid CooMatrix is a valid order-2 CooTensor");
        Self::new(tensor, block_nnz)
    }

    /// Streams canonical triples in blocks, preserving their order.
    pub fn from_triples(t: &SparseTriples, block_nnz: usize) -> Self {
        Self::new(CooTensor::from_triples(t), block_nnz)
    }
}

impl TensorStream for CooBlockStream {
    fn shape(&self) -> &Shape {
        self.tensor.shape()
    }

    fn next_block(&mut self) -> Result<Option<CoordBlock>, ConvertError> {
        if self.pos >= self.tensor.nnz() {
            return Ok(None);
        }
        let end = (self.pos + self.block_nnz).min(self.tensor.nnz());
        let mut block = CoordBlock::with_capacity(self.tensor.shape().clone(), end - self.pos);
        let mut coord = vec![0usize; self.tensor.order()];
        for p in self.pos..end {
            for (d, c) in coord.iter_mut().enumerate() {
                *c = self.tensor.crd(d)[p];
            }
            block.push(&coord, self.tensor.values()[p])?;
        }
        self.pos = end;
        Ok(Some(block))
    }

    fn size_hint(&self) -> Option<u64> {
        Some(self.tensor.nnz() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooTensor {
        let mut t = CooTensor::new(Shape::tensor3(3, 3, 3));
        for p in 0..7usize {
            t.push(&[p % 3, (p * 2) % 3, p % 2], p as f64);
        }
        t
    }

    #[test]
    fn blocks_partition_the_tensor_in_order() {
        let t = sample();
        for block_nnz in [1, 3, 100] {
            let mut stream = CooBlockStream::new(t.clone(), block_nnz);
            assert_eq!(stream.size_hint(), Some(7));
            let mut sink = CooSink::new(stream.shape().clone());
            let mut blocks = 0usize;
            while let Some(b) = stream.next_block().unwrap() {
                assert!(b.nnz() <= block_nnz);
                blocks += 1;
                sink.push_block(b).unwrap();
            }
            assert_eq!(blocks, 7usize.div_ceil(block_nnz));
            assert_eq!(sink.into_tensor(), t, "round-trip preserves order");
        }
    }

    #[test]
    fn matrix_and_triples_adapters_agree() {
        let mut m = CooMatrix::new(4, 5);
        m.push(3, 1, 1.0);
        m.push(0, 2, 2.0);
        let mut from_matrix = CooBlockStream::from_matrix(&m, 10);
        let mut from_triples = CooBlockStream::from_triples(&m.to_triples(), 10);
        assert_eq!(from_matrix.shape().dims(), &[4, 5]);
        assert_eq!(
            from_matrix.next_block().unwrap(),
            from_triples.next_block().unwrap()
        );
        assert!(from_matrix.next_block().unwrap().is_none());
    }
}
