//! Counters describing one streaming conversion.

/// What one streamed conversion did: how much data flowed, how often the
/// external sort spilled, and the working-set high-water mark. Surfaced by
/// the runtime service next to its plan-cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Blocks consumed from the source stream.
    pub blocks: u64,
    /// Nonzeros consumed from the source stream.
    pub entries: u64,
    /// Sorted runs spilled to disk (0 when the input fit the budget).
    pub spilled_runs: u64,
    /// Bytes written to spill files.
    pub spilled_bytes: u64,
    /// Entries re-read from disk during the final k-way merge.
    pub merged_entries: u64,
    /// High-water mark of the tracked streaming working set (sort buffers,
    /// in-flight blocks, merge read buffers) in bytes.
    pub peak_tracked_bytes: usize,
    /// True when the whole input fit the memory budget and the conversion
    /// never touched disk — the in-memory fast case.
    pub in_memory: bool,
}
