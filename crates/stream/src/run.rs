//! Spill runs: sorted runs of nonzeros written to (and re-read from) disk by
//! the external merge sort.
//!
//! The on-disk encoding is deliberately trivial: a `u64` entry count followed
//! by `order + 1` little-endian 8-byte words per entry (`order` coordinates
//! plus the value's IEEE-754 bits). Values round-trip through
//! [`f64::to_bits`], so spilling never perturbs them — a prerequisite for the
//! byte-identical guarantee.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use sparse_conv::ConvertError;
use sparse_tensor::Value;

/// Process-wide counter making spill-file names unique.
static RUN_ID: AtomicU64 = AtomicU64::new(0);

/// A sorted run spilled to disk. The file is deleted when the run is dropped.
#[derive(Debug)]
pub struct SpilledRun {
    path: PathBuf,
    order: usize,
    entries: u64,
    bytes: u64,
}

impl SpilledRun {
    /// Entries in this run.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Bytes this run occupies on disk.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Opens the run for sequential re-reading with a read buffer of
    /// `read_buf` bytes.
    pub fn open(&self, read_buf: usize) -> Result<RunCursor, ConvertError> {
        let file = File::open(&self.path)?;
        let mut reader = BufReader::with_capacity(read_buf.max(64), file);
        let mut header = [0u8; 8];
        reader.read_exact(&mut header)?;
        let entries = u64::from_le_bytes(header);
        debug_assert_eq!(entries, self.entries);
        Ok(RunCursor {
            reader,
            order: self.order,
            remaining: entries,
            coord: vec![0usize; self.order],
            value: 0.0,
        })
    }
}

impl Drop for SpilledRun {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Writes one sorted run to disk; [`RunWriter::finish`] seals it into a
/// [`SpilledRun`].
#[derive(Debug)]
pub struct RunWriter {
    path: PathBuf,
    writer: BufWriter<File>,
    order: usize,
    entries: u64,
}

impl RunWriter {
    /// Creates a run file in `dir` (the system temp directory when `None`).
    pub fn create(dir: Option<&std::path::Path>, order: usize) -> Result<Self, ConvertError> {
        let dir = dir.map_or_else(std::env::temp_dir, |d| d.to_path_buf());
        let path = dir.join(format!(
            "conv-stream-{}-{}.run",
            std::process::id(),
            RUN_ID.fetch_add(1, Ordering::Relaxed)
        ));
        let file = File::create(&path)?;
        let mut writer = BufWriter::with_capacity(8 * 1024, file);
        // Header placeholder; rewritten by `finish`.
        writer.write_all(&0u64.to_le_bytes())?;
        Ok(RunWriter {
            path,
            writer,
            order,
            entries: 0,
        })
    }

    /// Appends one nonzero (coordinates must already be in run order).
    pub fn push(&mut self, coord: &[usize], value: Value) -> Result<(), ConvertError> {
        debug_assert_eq!(coord.len(), self.order);
        for &c in coord {
            self.writer.write_all(&(c as u64).to_le_bytes())?;
        }
        self.writer.write_all(&value.to_bits().to_le_bytes())?;
        self.entries += 1;
        Ok(())
    }

    /// Flushes, rewrites the entry-count header, and seals the run.
    pub fn finish(self) -> Result<SpilledRun, ConvertError> {
        let RunWriter {
            path,
            writer,
            order,
            entries,
        } = self;
        let mut file = writer
            .into_inner()
            .map_err(|e| ConvertError::Io(e.to_string()))?;
        use std::io::Seek;
        file.seek(std::io::SeekFrom::Start(0))?;
        file.write_all(&entries.to_le_bytes())?;
        file.sync_data().ok();
        let bytes = 8 + entries * (order as u64 + 1) * 8;
        Ok(SpilledRun {
            path,
            order,
            entries,
            bytes,
        })
    }
}

/// Sequential reader over a [`SpilledRun`], holding the current (head) entry.
#[derive(Debug)]
pub struct RunCursor {
    reader: BufReader<File>,
    order: usize,
    remaining: u64,
    coord: Vec<usize>,
    value: Value,
}

impl RunCursor {
    /// Advances to the next entry; returns `false` at the end of the run.
    pub fn advance(&mut self) -> Result<bool, ConvertError> {
        if self.remaining == 0 {
            return Ok(false);
        }
        let mut word = [0u8; 8];
        for d in 0..self.order {
            self.reader.read_exact(&mut word)?;
            self.coord[d] = u64::from_le_bytes(word) as usize;
        }
        self.reader.read_exact(&mut word)?;
        self.value = Value::from_bits(u64::from_le_bytes(word));
        self.remaining -= 1;
        Ok(true)
    }

    /// The current entry's coordinates (valid after a successful advance).
    pub fn coord(&self) -> &[usize] {
        &self.coord
    }

    /// The current entry's value.
    pub fn value(&self) -> Value {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_roundtrip_and_clean_up() {
        let mut w = RunWriter::create(None, 3).unwrap();
        w.push(&[0, 1, 2], 1.5).unwrap();
        w.push(&[4, 5, 6], -2.25).unwrap();
        let run = w.finish().unwrap();
        assert_eq!(run.entries(), 2);
        assert_eq!(run.bytes(), 8 + 2 * 4 * 8);
        let path = run.path.clone();
        assert!(path.exists());
        let mut c = run.open(128).unwrap();
        assert!(c.advance().unwrap());
        assert_eq!(c.coord(), &[0, 1, 2]);
        assert_eq!(c.value(), 1.5);
        assert!(c.advance().unwrap());
        assert_eq!(c.coord(), &[4, 5, 6]);
        assert_eq!(c.value(), -2.25);
        assert!(!c.advance().unwrap());
        drop(c);
        drop(run);
        assert!(!path.exists(), "dropping a run removes its file");
    }

    #[test]
    fn values_round_trip_bit_exactly() {
        let tricky = [0.0, -0.0, f64::MIN_POSITIVE, 1.0 / 3.0, f64::INFINITY];
        let mut w = RunWriter::create(None, 1).unwrap();
        for (i, &v) in tricky.iter().enumerate() {
            w.push(&[i], v).unwrap();
        }
        let run = w.finish().unwrap();
        let mut c = run.open(64).unwrap();
        for &v in &tricky {
            assert!(c.advance().unwrap());
            assert_eq!(c.value().to_bits(), v.to_bits());
        }
    }
}
