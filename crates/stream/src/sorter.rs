//! The external merge sort over sorted runs.
//!
//! [`ExternalSorter`] accepts pre-sorted [`MemRun`]s (usually built from
//! [`CoordBlock`]s, possibly in parallel by the caller) and buffers them until
//! the [`MemoryBudget`]'s threshold fills; the buffer is then k-way-merged
//! into a single [`SpilledRun`] on disk.
//! [`ExternalSorter::drain`] merges all runs — purely in memory when nothing
//! spilled (the fast case), otherwise across the spill files with small,
//! budget-capped read buffers — and emits nonzeros in globally sorted order.
//!
//! **Stability.** The sort key is a list of coordinate dimensions compared
//! lexicographically; entries with equal keys must come out in arrival order
//! for the result to match the in-memory engine's stable sorts. Three facts
//! guarantee it: every run is stably sorted, runs enter the buffer in arrival
//! order and each spill drains the *whole* buffer (so spill files are
//! totally ordered by arrival too), and every merge breaks key ties by run
//! index.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::path::PathBuf;

use obs::{Registry, Span};
use sparse_conv::ConvertError;
use sparse_tensor::{Shape, Value};

use crate::block::CoordBlock;
use crate::budget::{MemTracker, MemoryBudget};
use crate::run::{RunCursor, RunWriter, SpilledRun};
use crate::stats::StreamStats;

/// Tuning knobs of an [`ExternalSorter`].
#[derive(Debug, Clone, Default)]
pub struct SorterConfig {
    /// Working-set budget; the sort buffer spills at
    /// [`MemoryBudget::buffer_threshold`].
    pub budget: MemoryBudget,
    /// Directory for spill runs (the system temp directory when `None`).
    pub spill_dir: Option<PathBuf>,
}

/// One stably sorted run of nonzeros held in memory, entry-major.
#[derive(Debug, Clone, PartialEq)]
pub struct MemRun {
    order: usize,
    /// Entry `p` occupies `coords[p * order .. (p + 1) * order]`.
    coords: Vec<usize>,
    vals: Vec<Value>,
}

impl MemRun {
    /// Builds a run from a block: a stable sort by the key dimensions (via
    /// the packed-key radix kernel, [`sparse_formats::radix::sort_index_span`],
    /// with its built-in comparison fallback for very wide keys), unless the
    /// block is already in key order (declared via sorted-run metadata or
    /// detected by one linear scan), in which case the sort is skipped.
    pub fn from_block(block: &CoordBlock, key: &[usize]) -> MemRun {
        let n = block.nnz();
        let order = block.order();
        let mut perm: Vec<usize> = (0..n).collect();
        let presorted = block.sorted_by() == Some(key) || block.is_sorted_by(key);
        if !presorted {
            let key_columns: Vec<&[usize]> = key.iter().map(|&d| block.crd(d)).collect();
            sparse_formats::radix::sort_index_span(&key_columns, &mut perm);
        }
        let mut coords = Vec::with_capacity(n * order);
        let mut vals = Vec::with_capacity(n);
        for &p in &perm {
            for d in 0..order {
                coords.push(block.crd(d)[p]);
            }
            vals.push(block.values()[p]);
        }
        MemRun {
            order,
            coords,
            vals,
        }
    }

    /// Entries in this run.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// True when the run holds no entries.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// The full coordinate tuple of entry `p`.
    pub fn coord(&self, p: usize) -> &[usize] {
        &self.coords[p * self.order..(p + 1) * self.order]
    }

    /// The value of entry `p`.
    pub fn value(&self, p: usize) -> Value {
        self.vals[p]
    }

    /// Tracked bytes this run occupies.
    pub fn bytes(&self) -> usize {
        crate::entry_bytes(self.order) * self.len()
    }
}

/// Min-heap head: the current entry's extracted key, with ties broken by run
/// index (`Vec<usize>` already compares lexicographically).
type Head = (Vec<usize>, usize);

fn extract_key(key: &[usize], coord: &[usize]) -> Vec<usize> {
    key.iter().map(|&d| coord[d]).collect()
}

/// K-way-merges in-memory runs, emitting `(coord, value)` in key order with
/// arrival-order ties.
fn merge_mem_runs<F>(runs: &[MemRun], key: &[usize], mut emit: F) -> Result<(), ConvertError>
where
    F: FnMut(&[usize], Value) -> Result<(), ConvertError>,
{
    let mut pos = vec![0usize; runs.len()];
    let mut heap: BinaryHeap<Reverse<Head>> = runs
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.is_empty())
        .map(|(i, r)| Reverse((extract_key(key, r.coord(0)), i)))
        .collect();
    while let Some(Reverse((_, i))) = heap.pop() {
        let p = pos[i];
        emit(runs[i].coord(p), runs[i].value(p))?;
        pos[i] += 1;
        if pos[i] < runs[i].len() {
            heap.push(Reverse((extract_key(key, runs[i].coord(pos[i])), i)));
        }
    }
    Ok(())
}

/// The external merge sort: buffers sorted runs under a memory budget,
/// spills to disk when the buffer fills, and drains everything back in
/// globally sorted order.
#[derive(Debug)]
pub struct ExternalSorter {
    shape: Shape,
    key: Vec<usize>,
    cfg: SorterConfig,
    tracker: MemTracker,
    buffer: Vec<MemRun>,
    buffered_bytes: usize,
    spills: Vec<SpilledRun>,
    stats: StreamStats,
}

impl ExternalSorter {
    /// A sorter for tensors of `shape`, ordering entries by the `key`
    /// dimensions (compared lexicographically, arrival order breaking ties).
    /// `[0]` reproduces the engine's stable row sort for CSR; the full mode
    /// order reproduces its stable lexicographic sort for CSF.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::UnsupportedSpec`] when `key` is empty, repeats
    /// a dimension, or names one beyond the shape's order.
    pub fn new(
        shape: Shape,
        key: Vec<usize>,
        cfg: SorterConfig,
        tracker: MemTracker,
    ) -> Result<Self, ConvertError> {
        let order = shape.order();
        let mut seen = vec![false; order];
        if key.is_empty() {
            return Err(ConvertError::UnsupportedSpec {
                reason: "streaming sort key must name at least one dimension".to_string(),
            });
        }
        for &d in &key {
            if d >= order || seen[d] {
                return Err(ConvertError::UnsupportedSpec {
                    reason: format!(
                        "streaming sort key {key:?} is not a set of dimensions < {order}"
                    ),
                });
            }
            seen[d] = true;
        }
        Ok(ExternalSorter {
            shape,
            key,
            cfg,
            tracker,
            buffer: Vec::new(),
            buffered_bytes: 0,
            spills: Vec::new(),
            stats: StreamStats::default(),
        })
    }

    /// The sort key dimensions.
    pub fn key(&self) -> &[usize] {
        &self.key
    }

    /// The shared working-set gauge.
    pub fn tracker(&self) -> &MemTracker {
        &self.tracker
    }

    /// Statistics so far (final numbers come from [`ExternalSorter::drain`]).
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// Buffers one pre-sorted run, spilling the buffer first when adding it
    /// would cross the budget threshold.
    pub fn push_run(&mut self, run: MemRun) -> Result<(), ConvertError> {
        self.stats.blocks += 1;
        self.stats.entries += run.len() as u64;
        if run.is_empty() {
            return Ok(());
        }
        let bytes = run.bytes();
        if self.buffered_bytes > 0
            && self.buffered_bytes + bytes > self.cfg.budget.buffer_threshold()
        {
            self.spill()?;
        }
        self.tracker.add(bytes);
        self.buffered_bytes += bytes;
        self.buffer.push(run);
        Ok(())
    }

    /// Sorts a block by the sorter's key and buffers it — the sequential
    /// convenience over [`MemRun::from_block`] + [`ExternalSorter::push_run`]
    /// (parallel pipelines pre-sort blocks on worker threads instead).
    pub fn push_block(&mut self, block: &CoordBlock) -> Result<(), ConvertError> {
        let run = MemRun::from_block(block, &self.key);
        self.push_run(run)
    }

    /// Merges the buffered runs into one spill run on disk and empties the
    /// buffer.
    fn spill(&mut self) -> Result<(), ConvertError> {
        let span = Span::enter("stream.spill_write");
        span.add_items(self.buffer.iter().map(|r| r.len() as u64).sum());
        let mut writer = RunWriter::create(self.cfg.spill_dir.as_deref(), self.shape.order())?;
        merge_mem_runs(&self.buffer, &self.key, |coord, value| {
            writer.push(coord, value)
        })?;
        let run = writer.finish()?;
        span.add_bytes(run.bytes());
        self.stats.spilled_runs += 1;
        self.stats.spilled_bytes += run.bytes();
        let registry = Registry::global();
        registry.counter("stream.spilled_runs").inc();
        registry.counter("stream.spilled_bytes").add(run.bytes());
        registry
            .histogram("stream.spill_run_bytes")
            .observe(run.bytes());
        self.spills.push(run);
        self.tracker.sub(self.buffered_bytes);
        self.buffered_bytes = 0;
        self.buffer.clear();
        Ok(())
    }

    /// Emits every buffered and spilled nonzero in globally sorted order and
    /// returns the final statistics. When nothing spilled, the merge runs
    /// purely over the in-memory buffer (the fast case); otherwise the
    /// remaining buffer is spilled too and the merge streams across the run
    /// files through budget-capped read buffers.
    pub fn drain<F>(mut self, mut emit: F) -> Result<StreamStats, ConvertError>
    where
        F: FnMut(&[usize], Value) -> Result<(), ConvertError>,
    {
        if self.spills.is_empty() {
            self.stats.in_memory = true;
            let span = Span::enter("stream.merge_mem");
            span.add_items(self.buffer.iter().map(|r| r.len() as u64).sum());
            merge_mem_runs(&self.buffer, &self.key, &mut emit)?;
            drop(span);
            self.tracker.sub(self.buffered_bytes);
            self.buffered_bytes = 0;
            self.buffer.clear();
        } else {
            if self.buffered_bytes > 0 {
                self.spill()?;
            }
            let k = self.spills.len();
            let read_buf = self.cfg.budget.merge_read_buffer(k);
            self.tracker.add(k * read_buf);
            let span = Span::enter("stream.merge_spills");
            let result = self.merge_spills(read_buf, &mut emit);
            span.add_items(self.stats.merged_entries);
            span.add_bytes(self.stats.spilled_bytes);
            drop(span);
            self.tracker.sub(k * read_buf);
            result?;
        }
        self.stats.peak_tracked_bytes = self.tracker.peak();
        // Mirror the final per-conversion stats into the process-wide
        // metrics registry (the same numbers StreamStats reports locally).
        let registry = Registry::global();
        registry.counter("stream.blocks").add(self.stats.blocks);
        registry.counter("stream.entries").add(self.stats.entries);
        registry
            .counter("stream.merged_entries")
            .add(self.stats.merged_entries);
        Ok(self.stats)
    }

    fn merge_spills<F>(&mut self, read_buf: usize, emit: &mut F) -> Result<(), ConvertError>
    where
        F: FnMut(&[usize], Value) -> Result<(), ConvertError>,
    {
        let mut cursors: Vec<RunCursor> = Vec::with_capacity(self.spills.len());
        for run in &self.spills {
            cursors.push(run.open(read_buf)?);
        }
        let mut heap: BinaryHeap<Reverse<Head>> = BinaryHeap::with_capacity(cursors.len());
        for (i, c) in cursors.iter_mut().enumerate() {
            if c.advance()? {
                heap.push(Reverse((extract_key(&self.key, c.coord()), i)));
            }
        }
        while let Some(Reverse((_, i))) = heap.pop() {
            emit(cursors[i].coord(), cursors[i].value())?;
            self.stats.merged_entries += 1;
            if cursors[i].advance()? {
                heap.push(Reverse((extract_key(&self.key, cursors[i].coord()), i)));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_of(shape: &Shape, entries: &[(&[usize], Value)]) -> CoordBlock {
        let mut b = CoordBlock::with_capacity(shape.clone(), entries.len());
        for (c, v) in entries {
            b.push(c, *v).unwrap();
        }
        b
    }

    fn collect(sorter: ExternalSorter) -> (Vec<(Vec<usize>, Value)>, StreamStats) {
        let mut out = Vec::new();
        let stats = sorter
            .drain(|c, v| {
                out.push((c.to_vec(), v));
                Ok(())
            })
            .unwrap();
        (out, stats)
    }

    #[test]
    fn in_memory_merge_is_a_stable_key_sort() {
        let shape = Shape::matrix(4, 4);
        let mut s = ExternalSorter::new(
            shape.clone(),
            vec![0],
            SorterConfig::default(),
            MemTracker::new(),
        )
        .unwrap();
        // Two blocks; key is the row only, so same-row entries must keep
        // arrival order across blocks.
        s.push_block(&block_of(&shape, &[(&[2, 9 % 4], 1.0), (&[0, 3], 2.0)]))
            .unwrap();
        s.push_block(&block_of(&shape, &[(&[0, 1], 3.0), (&[2, 0], 4.0)]))
            .unwrap();
        let (out, stats) = collect(s);
        assert_eq!(
            out,
            vec![
                (vec![0, 3], 2.0),
                (vec![0, 1], 3.0),
                (vec![2, 1], 1.0),
                (vec![2, 0], 4.0),
            ]
        );
        assert!(stats.in_memory);
        assert_eq!(stats.spilled_runs, 0);
        assert_eq!(stats.entries, 4);
        assert_eq!(stats.blocks, 2);
    }

    #[test]
    fn tiny_budgets_spill_and_still_sort_stably() {
        let shape = Shape::matrix(8, 8);
        let dir = std::env::temp_dir();
        let mut s = ExternalSorter::new(
            shape.clone(),
            vec![0, 1],
            SorterConfig {
                budget: MemoryBudget::bytes(96),
                spill_dir: Some(dir),
            },
            MemTracker::new(),
        )
        .unwrap();
        // 96-byte budget -> 72-byte threshold -> each 24-byte-per-entry block
        // pair overflows, forcing several spills.
        let mut expected = Vec::new();
        for round in 0..6usize {
            let i = (7 - round) % 8;
            let b = block_of(
                &shape,
                &[
                    (&[i, 0][..], round as f64),
                    (&[i, 0][..], 10.0 + round as f64),
                ],
            );
            expected.push((vec![i, 0], round as f64));
            expected.push((vec![i, 0], 10.0 + round as f64));
            s.push_block(&b).unwrap();
        }
        expected.sort_by_key(|(c, _)| c.clone());
        let (out, stats) = collect(s);
        // Duplicate keys keep arrival order (values increase within a key
        // because rounds with the same row pushed in ascending value order).
        assert_eq!(out, expected);
        assert!(!stats.in_memory);
        assert!(stats.spilled_runs > 0, "budget forced spills");
        assert_eq!(stats.merged_entries, 12);
        assert!(stats.spilled_bytes > 0);
        assert!(stats.peak_tracked_bytes > 0);
    }

    #[test]
    fn presorted_blocks_skip_the_sort_and_match() {
        let shape = Shape::tensor3(3, 3, 3);
        let mut sorted = block_of(
            &shape,
            &[
                (&[0, 1, 2][..], 1.0),
                (&[1, 0, 0][..], 2.0),
                (&[1, 2, 0][..], 3.0),
            ],
        );
        sorted.mark_sorted_by(vec![0, 1, 2]);
        let run_fast = MemRun::from_block(&sorted, &[0, 1, 2]);
        let mut unsorted = block_of(
            &shape,
            &[
                (&[0, 1, 2][..], 1.0),
                (&[1, 2, 0][..], 3.0),
                (&[1, 0, 0][..], 2.0),
            ],
        );
        unsorted.mark_sorted_by(vec![0]); // true but not the key we need
        assert!(!unsorted.is_sorted_by(&[0, 1, 2]));
        let run_slow = MemRun::from_block(&unsorted, &[0, 1, 2]);
        assert_eq!(run_fast, run_slow);
        assert_eq!(run_fast.coord(1), &[1, 0, 0]);
        assert_eq!(run_fast.value(2), 3.0);
        assert_eq!(run_fast.bytes(), 3 * 4 * 8);
    }

    #[test]
    fn bad_keys_are_rejected() {
        let shape = Shape::matrix(2, 2);
        let t = MemTracker::new();
        for key in [vec![], vec![2], vec![0, 0]] {
            assert!(matches!(
                ExternalSorter::new(shape.clone(), key, SorterConfig::default(), t.clone()),
                Err(ConvertError::UnsupportedSpec { .. })
            ));
        }
    }

    #[test]
    fn tracker_returns_to_zero_after_drain() {
        let shape = Shape::matrix(4, 4);
        let tracker = MemTracker::new();
        let mut s = ExternalSorter::new(
            shape.clone(),
            vec![0, 1],
            SorterConfig {
                budget: MemoryBudget::bytes(128),
                spill_dir: None,
            },
            tracker.clone(),
        )
        .unwrap();
        for i in 0..4 {
            s.push_block(&block_of(&shape, &[(&[i, i][..], i as f64); 3]))
                .unwrap();
        }
        let (_, stats) = collect(s);
        assert_eq!(tracker.current(), 0, "all tracked memory released");
        assert_eq!(tracker.peak(), stats.peak_tracked_bytes);
    }
}
