//! Memory budget and working-set tracking for streaming conversions.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A configurable cap on the streaming *working set*: sort buffers, blocks in
/// flight through pipeline channels, and merge read buffers. The final packed
/// output is **not** counted — a conversion's result is as large as its input
/// no matter how it is computed; the budget bounds everything the streaming
/// pipeline allocates *on top of* the output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    /// Budget in bytes.
    pub bytes: usize,
}

impl MemoryBudget {
    /// A budget of `bytes` bytes (clamped to at least one spill entry).
    pub fn bytes(bytes: usize) -> Self {
        MemoryBudget {
            bytes: bytes.max(64),
        }
    }

    /// A budget of `kib` kibibytes.
    pub fn kib(kib: usize) -> Self {
        Self::bytes(kib * 1024)
    }

    /// A budget of `mib` mebibytes.
    pub fn mib(mib: usize) -> Self {
        Self::bytes(mib * 1024 * 1024)
    }

    /// The sort-buffer fill threshold: buffered runs spill to disk once they
    /// exceed this. Kept at 3/4 of the budget so the remaining quarter covers
    /// blocks in flight and merge buffers without busting the cap.
    pub fn buffer_threshold(&self) -> usize {
        (self.bytes / 4) * 3
    }

    /// Per-run read-buffer size when k runs are merged: an equal share of a
    /// quarter of the budget, clamped to `[64 B, 64 KiB]`.
    pub fn merge_read_buffer(&self, runs: usize) -> usize {
        (self.bytes / 4 / runs.max(1)).clamp(64, 64 * 1024)
    }
}

impl Default for MemoryBudget {
    /// 256 MiB — conservative for production hosts, far above test inputs.
    fn default() -> Self {
        MemoryBudget::mib(256)
    }
}

#[derive(Debug, Default)]
struct TrackerInner {
    current: AtomicUsize,
    peak: AtomicUsize,
}

/// A shared gauge of the streaming pipeline's tracked allocation. Producers
/// add bytes when a block enters a channel or a run buffer grows; consumers
/// subtract when the memory is released. The high-water mark is what
/// acceptance checks compare against the [`MemoryBudget`].
#[derive(Debug, Clone, Default)]
pub struct MemTracker(Arc<TrackerInner>);

impl MemTracker {
    /// A fresh tracker at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `bytes` of tracked allocation.
    pub fn add(&self, bytes: usize) {
        let now = self.0.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.0.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Releases `bytes` of tracked allocation.
    pub fn sub(&self, bytes: usize) {
        self.0.current.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Currently tracked bytes.
    pub fn current(&self) -> usize {
        self.0.current.load(Ordering::Relaxed)
    }

    /// High-water mark of tracked bytes.
    pub fn peak(&self) -> usize {
        self.0.peak.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_records_the_high_water_mark() {
        let t = MemTracker::new();
        t.add(100);
        t.add(50);
        t.sub(120);
        t.add(10);
        assert_eq!(t.current(), 40);
        assert_eq!(t.peak(), 150);
        let clone = t.clone();
        clone.add(1);
        assert_eq!(t.current(), 41, "clones share the gauge");
    }

    #[test]
    fn budget_derives_thresholds() {
        let b = MemoryBudget::kib(64);
        assert_eq!(b.bytes, 65536);
        assert_eq!(b.buffer_threshold(), 49152);
        assert_eq!(b.merge_read_buffer(4), 4096);
        assert_eq!(b.merge_read_buffer(0), 16384);
        // Tiny budgets clamp the read buffer to at least one entry's worth.
        assert_eq!(MemoryBudget::bytes(100).merge_read_buffer(100), 64);
        assert!(MemoryBudget::bytes(0).bytes >= 64);
        assert_eq!(MemoryBudget::default().bytes, 256 * 1024 * 1024);
    }
}
