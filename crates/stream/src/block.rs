//! Bounded coordinate blocks — the unit a [`crate::TensorStream`] yields.

use sparse_conv::ConvertError;
use sparse_tensor::{Shape, Value};

/// A bounded chunk of COO nonzeros: one coordinate column per dimension plus
/// values, tagged with the tensor's full rank-`N` [`Shape`] and optional
/// sorted-run metadata (`sorted_by`), which lets downstream sorters skip
/// re-sorting blocks a loader already produced in key order.
#[derive(Debug, Clone, PartialEq)]
pub struct CoordBlock {
    shape: Shape,
    crd: Vec<Vec<usize>>,
    vals: Vec<Value>,
    /// The key (a sequence of dimension indices) this block's entries are
    /// known to be sorted by, if any.
    sorted_by: Option<Vec<usize>>,
}

impl CoordBlock {
    /// An empty block for tensors of the given shape.
    pub fn new(shape: Shape) -> Self {
        Self::with_capacity(shape, 0)
    }

    /// An empty block with room for `cap` nonzeros.
    pub fn with_capacity(shape: Shape, cap: usize) -> Self {
        let order = shape.order();
        CoordBlock {
            shape,
            crd: vec![Vec::with_capacity(cap); order],
            vals: Vec::with_capacity(cap),
            sorted_by: None,
        }
    }

    /// Appends a nonzero, clearing any sorted-run metadata.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::Structure`] when the coordinate's arity or a
    /// component is out of bounds.
    pub fn push(&mut self, coord: &[usize], value: Value) -> Result<(), ConvertError> {
        if coord.len() != self.order() {
            return Err(ConvertError::Structure(
                sparse_tensor::TensorError::InvalidStructure(format!(
                    "coordinate arity {} for an order-{} block",
                    coord.len(),
                    self.order()
                )),
            ));
        }
        for (d, &c) in coord.iter().enumerate() {
            if c >= self.shape.dim(d) {
                return Err(ConvertError::Structure(
                    sparse_tensor::TensorError::InvalidStructure(format!(
                        "coordinate {c} out of bounds for dimension {d} of {}",
                        self.shape
                    )),
                ));
            }
        }
        for (d, &c) in coord.iter().enumerate() {
            self.crd[d].push(c);
        }
        self.vals.push(value);
        self.sorted_by = None;
        Ok(())
    }

    /// The tensor's shape (shared by every block of one stream).
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The tensor's order.
    pub fn order(&self) -> usize {
        self.shape.order()
    }

    /// Number of nonzeros in this block.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The coordinate column of dimension `d`.
    pub fn crd(&self, d: usize) -> &[usize] {
        &self.crd[d]
    }

    /// Value column.
    pub fn values(&self) -> &[Value] {
        &self.vals
    }

    /// Approximate heap bytes this block holds, the unit the
    /// [`crate::MemTracker`] accounts in.
    pub fn approx_bytes(&self) -> usize {
        crate::entry_bytes(self.order()) * self.nnz()
    }

    /// Declares that this block's entries are sorted by the given key (a
    /// sequence of dimension indices compared lexicographically). The claim
    /// is verified in debug builds; sorters re-verify cheaply before relying
    /// on it.
    pub fn mark_sorted_by(&mut self, key: Vec<usize>) {
        debug_assert!(self.is_sorted_by(&key), "sorted-run metadata is wrong");
        self.sorted_by = Some(key);
    }

    /// The key this block declares itself sorted by, if any.
    pub fn sorted_by(&self) -> Option<&[usize]> {
        self.sorted_by.as_deref()
    }

    /// True when the block's entries are in non-decreasing order of the given
    /// key dimensions (one linear scan).
    pub fn is_sorted_by(&self, key: &[usize]) -> bool {
        (1..self.nnz()).all(|p| {
            key.iter()
                .map(|&d| (self.crd[d][p - 1], self.crd[d][p]))
                .find(|(a, b)| a != b)
                .is_none_or(|(a, b)| a < b)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates_and_tracks_bytes() {
        let mut b = CoordBlock::with_capacity(Shape::tensor3(2, 3, 4), 4);
        b.push(&[1, 2, 3], 5.0).unwrap();
        b.push(&[0, 0, 0], 1.0).unwrap();
        assert_eq!(b.nnz(), 2);
        assert_eq!(b.crd(1), &[2, 0]);
        assert_eq!(b.values(), &[5.0, 1.0]);
        assert_eq!(b.approx_bytes(), 2 * 4 * 8);
        assert!(b.push(&[0, 0], 1.0).is_err());
        assert!(b.push(&[0, 3, 0], 1.0).is_err());
    }

    #[test]
    fn sortedness_checks_follow_the_key() {
        let mut b = CoordBlock::new(Shape::matrix(4, 4));
        for (i, j) in [(0, 3), (1, 0), (1, 2), (3, 1)] {
            b.push(&[i, j], 1.0).unwrap();
        }
        assert!(b.is_sorted_by(&[0]));
        assert!(b.is_sorted_by(&[0, 1]));
        assert!(!b.is_sorted_by(&[1]));
        b.mark_sorted_by(vec![0, 1]);
        assert_eq!(b.sorted_by(), Some(&[0usize, 1][..]));
        // Pushing clears the metadata.
        b.push(&[0, 0], 2.0).unwrap();
        assert_eq!(b.sorted_by(), None);
    }
}
