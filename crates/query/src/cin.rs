//! Concrete index notation (CIN) for attribute queries.
//!
//! Section 5.2 lowers every attribute query to a canonical form in concrete
//! index notation — nested `forall` loops around a single reduction statement,
//! optionally with a `where` clause defining a temporary — and then optimises
//! that form with the rewrite rules of Table 1. This module defines the CIN
//! data structures, the lowering, and a display form used by tests and the
//! `codegen_dump` example.

use std::fmt;

use coord_remap::{BinOp, IndexExpr, Remapping};

use crate::ast::{Aggregate, AttrQuery};
use crate::error::QueryError;

/// An access `T[e1, ..., ek]` where each index is an expression over the
/// statement's loop variables.
#[derive(Debug, Clone, PartialEq)]
pub struct Access {
    /// Tensor (or query-result) name.
    pub tensor: String,
    /// Index expressions.
    pub indices: Vec<IndexExpr>,
}

impl Access {
    /// Creates an access with plain-variable indices.
    pub fn with_vars(tensor: &str, vars: &[String]) -> Self {
        Access {
            tensor: tensor.to_string(),
            indices: vars.iter().map(|v| IndexExpr::Var(v.clone())).collect(),
        }
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let idx: Vec<String> = self.indices.iter().map(|e| e.to_string()).collect();
        write!(f, "{}[{}]", self.tensor, idx.join(","))
    }
}

/// The reduction operator of a CIN assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reduction {
    /// Plain assignment `=`.
    Assign,
    /// Sum reduction `+=`.
    Add,
    /// Max reduction `max=`.
    Max,
    /// Boolean OR reduction `|=`.
    Or,
}

impl fmt::Display for Reduction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Reduction::Assign => "=",
            Reduction::Add => "+=",
            Reduction::Max => "max=",
            Reduction::Or => "|=",
        })
    }
}

/// A value expression on the right-hand side of a CIN assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum CinExpr {
    /// An integer constant.
    Const(i64),
    /// A coordinate-valued expression over loop variables (the extension of
    /// concrete index notation described in Section 5.2).
    Coord(IndexExpr),
    /// `map(source, value)`: `value` if the source component is nonzero, else 0.
    Map {
        /// The guarding tensor access.
        source: Access,
        /// The produced value.
        value: Box<CinExpr>,
    },
    /// A read of a (temporary) tensor.
    Read(Access),
    /// The number of stored nonzeros of `tensor` along dimension `over` for
    /// the slice identified by `indices` — the `B'` operand introduced by the
    /// `simplify-width-count` transformation, computed from level functions
    /// (e.g. `pos[i+1] - pos[i]`) rather than materialised.
    Width {
        /// Source tensor.
        tensor: String,
        /// The reduced (innermost) index variable.
        over: String,
        /// Indices identifying the slice.
        indices: Vec<IndexExpr>,
    },
    /// Product of two value expressions.
    Mul(Box<CinExpr>, Box<CinExpr>),
}

impl fmt::Display for CinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CinExpr::Const(c) => write!(f, "{c}"),
            CinExpr::Coord(e) => write!(f, "{e}"),
            CinExpr::Map { source, value } => write!(f, "map({source}, {value})"),
            CinExpr::Read(a) => write!(f, "{a}"),
            CinExpr::Width {
                tensor,
                over,
                indices,
            } => {
                let idx: Vec<String> = indices.iter().map(|e| e.to_string()).collect();
                write!(f, "width({tensor}; {over})[{}]", idx.join(","))
            }
            CinExpr::Mul(l, r) => write!(f, "{l} * {r}"),
        }
    }
}

/// A CIN statement: `forall v1 ... vn: dest <red> value [ where <stmt> ]`.
#[derive(Debug, Clone, PartialEq)]
pub struct CinStmt {
    /// The loop variables, outermost first.
    pub loop_vars: Vec<String>,
    /// The reduction destination.
    pub dest: Access,
    /// The reduction operator.
    pub reduction: Reduction,
    /// The right-hand side.
    pub value: CinExpr,
    /// Optional `where` clause computing a temporary used by `value`.
    pub where_stmt: Option<Box<CinStmt>>,
}

impl fmt::Display for CinStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let foralls: Vec<String> = self
            .loop_vars
            .iter()
            .map(|v| format!("forall {v}"))
            .collect();
        write!(
            f,
            "{}: {} {} {}",
            foralls.join(" "),
            self.dest,
            self.reduction,
            self.value
        )?;
        if let Some(inner) = &self.where_stmt {
            write!(f, " where ({inner})")?;
        }
        Ok(())
    }
}

/// Context needed to lower a query: how the remapped dimensions the query
/// ranges over are computed from the source tensor's index variables.
#[derive(Debug, Clone)]
pub struct LowerContext<'a> {
    /// The target format's coordinate remapping.
    pub remapping: &'a Remapping,
    /// Name of each remapped dimension, in remapping destination order. Query
    /// variables must refer to these names.
    pub dim_names: Vec<String>,
    /// Name of the source tensor (`B` in the paper).
    pub source: String,
    /// Smallest possible coordinate of each remapped dimension (the `s` of
    /// the max-query lowering); defaults to zero for ordinary dimensions.
    pub dim_lower_bounds: Vec<i64>,
}

impl<'a> LowerContext<'a> {
    /// Creates a context with all lower bounds zero.
    pub fn new(remapping: &'a Remapping, dim_names: Vec<String>, source: &str) -> Self {
        let n = remapping.dest_order();
        assert_eq!(dim_names.len(), n, "one name per remapped dimension");
        LowerContext {
            remapping,
            dim_names,
            source: source.to_string(),
            dim_lower_bounds: vec![0; n],
        }
    }

    /// Overrides the lower bound of a remapped dimension.
    pub fn with_lower_bound(mut self, dim: usize, lower: i64) -> Self {
        self.dim_lower_bounds[dim] = lower;
        self
    }

    fn dim_expr(&self, name: &str) -> Result<(usize, IndexExpr), QueryError> {
        let d = self
            .dim_names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| QueryError::UnknownIndexVariable(name.to_string()))?;
        let dst = &self.remapping.dst[d];
        // Inline let bindings so the destination expression is a closed form
        // over the source index variables.
        let mut expr = dst.expr.clone();
        for (let_name, let_expr) in dst.lets.iter().rev() {
            expr = substitute_let(&expr, let_name, let_expr);
        }
        Ok((d, expr))
    }
}

fn substitute_let(expr: &IndexExpr, name: &str, replacement: &IndexExpr) -> IndexExpr {
    match expr {
        IndexExpr::LetVar(n) if n == name => replacement.clone(),
        IndexExpr::Binary(op, l, r) => IndexExpr::Binary(
            *op,
            Box::new(substitute_let(l, name, replacement)),
            Box::new(substitute_let(r, name, replacement)),
        ),
        other => other.clone(),
    }
}

/// Lowers a single-aggregate attribute query to its canonical CIN form
/// (Section 5.2). Multi-aggregate queries are lowered field by field.
///
/// # Errors
///
/// Returns an error when the query refers to unknown remapped dimensions.
pub fn lower_query(
    query: &AttrQuery,
    field_label: &str,
    ctx: &LowerContext<'_>,
) -> Result<CinStmt, QueryError> {
    let field = query
        .field(field_label)
        .ok_or_else(|| QueryError::UnknownField(field_label.to_string()))?;
    let src_vars = ctx.remapping.src.clone();
    let source_access = Access::with_vars(&ctx.source, &src_vars);

    // Destination indices: the group-by coordinates as expressions over the
    // source index variables.
    let mut dest_indices = Vec::with_capacity(query.group_by.len());
    for g in &query.group_by {
        dest_indices.push(ctx.dim_expr(g)?.1);
    }
    let dest = Access {
        tensor: field_label.to_string(),
        indices: dest_indices.clone(),
    };

    match &field.aggregate {
        Aggregate::Id => Ok(CinStmt {
            loop_vars: src_vars,
            dest,
            reduction: Reduction::Or,
            value: CinExpr::Map {
                source: source_access,
                value: Box::new(CinExpr::Const(1)),
            },
            where_stmt: None,
        }),
        Aggregate::Count(counted) => {
            // Temporary W indexed by group-by plus counted dimensions.
            let mut w_dims = query.group_by.clone();
            w_dims.extend(counted.iter().cloned());
            let mut w_indices = Vec::with_capacity(w_dims.len());
            for name in &w_dims {
                w_indices.push(ctx.dim_expr(name)?.1);
            }
            let w_name = format!("W_{field_label}");
            let inner = CinStmt {
                loop_vars: src_vars,
                dest: Access {
                    tensor: w_name.clone(),
                    indices: w_indices,
                },
                reduction: Reduction::Or,
                value: CinExpr::Map {
                    source: source_access,
                    value: Box::new(CinExpr::Const(1)),
                },
                where_stmt: None,
            };
            let outer_loop_vars = w_dims.clone();
            Ok(CinStmt {
                loop_vars: outer_loop_vars.clone(),
                dest: Access {
                    tensor: field_label.to_string(),
                    indices: query
                        .group_by
                        .iter()
                        .map(|g| IndexExpr::Var(g.clone()))
                        .collect(),
                },
                reduction: Reduction::Add,
                value: CinExpr::Map {
                    source: Access::with_vars(&w_name, &outer_loop_vars),
                    value: Box::new(CinExpr::Const(1)),
                },
                where_stmt: Some(Box::new(inner)),
            })
        }
        Aggregate::Max(v) => {
            let (d, expr) = ctx.dim_expr(v)?;
            let shift = 1 - ctx.dim_lower_bounds[d];
            let value_expr = IndexExpr::binary(BinOp::Add, expr, IndexExpr::Const(shift));
            Ok(CinStmt {
                loop_vars: src_vars,
                dest,
                reduction: Reduction::Max,
                value: CinExpr::Map {
                    source: source_access,
                    value: Box::new(CinExpr::Coord(value_expr)),
                },
                where_stmt: None,
            })
        }
        Aggregate::Min(v) => {
            let (d, expr) = ctx.dim_expr(v)?;
            // min over coordinates = max over negated, shifted coordinates.
            let upper_shift = ctx.dim_lower_bounds[d]; // placeholder for t; callers supply bounds
            let negated = IndexExpr::binary(
                BinOp::Add,
                IndexExpr::binary(BinOp::Sub, IndexExpr::Const(0), expr),
                IndexExpr::Const(upper_shift + 1),
            );
            Ok(CinStmt {
                loop_vars: src_vars,
                dest,
                reduction: Reduction::Max,
                value: CinExpr::Map {
                    source: source_access,
                    value: Box::new(CinExpr::Coord(negated)),
                },
                where_stmt: None,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use coord_remap::parse_remapping;

    fn dia_ctx(remap: &Remapping) -> LowerContext<'_> {
        LowerContext::new(remap, vec!["k".into(), "i2".into(), "j2".into()], "D")
    }

    #[test]
    fn lowers_id_query_to_or_reduction() {
        // select [k] -> id() as Q over the DIA-remapped tensor becomes
        // forall i forall j: Q[j-i] |= map(D[i,j], 1)   (Section 5.2 example).
        let remap = parse_remapping("(i,j) -> (j-i,i,j)").unwrap();
        let ctx = dia_ctx(&remap);
        let query = parse_query("select [k] -> id() as Q").unwrap();
        let stmt = lower_query(&query, "Q", &ctx).unwrap();
        assert_eq!(
            stmt.to_string(),
            "forall i forall j: Q[j-i] |= map(D[i,j], 1)"
        );
    }

    #[test]
    fn lowers_count_query_with_temporary() {
        let remap = Remapping::identity(2);
        let ctx = LowerContext::new(&remap, vec!["i".into(), "j".into()], "B");
        let query = parse_query("select [i] -> count(j) as Q").unwrap();
        let stmt = lower_query(&query, "Q", &ctx).unwrap();
        assert_eq!(
            stmt.to_string(),
            "forall i forall j: Q[i] += map(W_Q[i,j], 1) where (forall i forall j: W_Q[i,j] |= map(B[i,j], 1))"
        );
    }

    #[test]
    fn lowers_max_query_with_shift() {
        let remap = Remapping::identity(2);
        let ctx = LowerContext::new(&remap, vec!["i".into(), "j".into()], "B");
        let query = parse_query("select [i] -> max(j) as Q").unwrap();
        let stmt = lower_query(&query, "Q", &ctx).unwrap();
        assert_eq!(
            stmt.to_string(),
            "forall i forall j: Q[i] max= map(B[i,j], j+1)"
        );
    }

    #[test]
    fn lowers_max_over_counter_dimension() {
        // The ELL analysis: select [] -> max(k) over the #i-remapped tensor.
        let remap = parse_remapping("(i,j) -> (k=#i in k,i,j)").unwrap();
        let ctx = LowerContext::new(&remap, vec!["k".into(), "i2".into(), "j2".into()], "B");
        let query = parse_query("select [] -> max(k) as max_crd").unwrap();
        let stmt = lower_query(&query, "max_crd", &ctx).unwrap();
        assert_eq!(
            stmt.to_string(),
            "forall i forall j: max_crd[] max= map(B[i,j], #i+1)"
        );
    }

    #[test]
    fn unknown_names_are_reported() {
        let remap = Remapping::identity(2);
        let ctx = LowerContext::new(&remap, vec!["i".into(), "j".into()], "B");
        let query = parse_query("select [z] -> id() as Q").unwrap();
        assert!(matches!(
            lower_query(&query, "Q", &ctx),
            Err(QueryError::UnknownIndexVariable(_))
        ));
        let query = parse_query("select [i] -> id() as Q").unwrap();
        assert!(matches!(
            lower_query(&query, "missing", &ctx),
            Err(QueryError::UnknownField(_))
        ));
    }

    #[test]
    fn display_of_min_query_negates_coordinate() {
        let remap = Remapping::identity(2);
        let ctx =
            LowerContext::new(&remap, vec!["i".into(), "j".into()], "B").with_lower_bound(1, 0);
        let query = parse_query("select [i] -> min(j) as w").unwrap();
        let stmt = lower_query(&query, "w", &ctx).unwrap();
        assert_eq!(
            stmt.to_string(),
            "forall i forall j: w[i] max= map(B[i,j], 0-j+1)"
        );
    }
}
