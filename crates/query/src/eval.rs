//! Attribute query evaluation.
//!
//! [`QueryResult`] is the dense result representation the assembly abstraction
//! consumes (Section 6 passes `Qk` / `qk` arguments to level functions), and
//! [`evaluate_on_coords`] is the reference evaluator: it aggregates directly
//! over a stream of (remapped) coordinates. The conversion engine in
//! `sparse-conv` computes the same results through optimised paths (e.g. `pos`
//! differencing for CSR sources) and is tested against this evaluator.

use std::collections::HashSet;

use sparse_tensor::DimBounds;

use crate::ast::{Aggregate, AttrQuery};
use crate::error::QueryError;

/// Sentinel initial value for `max` aggregations (no nonzero seen yet).
pub const MAX_EMPTY: i64 = i64::MIN;
/// Sentinel initial value for `min` aggregations (no nonzero seen yet).
pub const MIN_EMPTY: i64 = i64::MAX;

/// The result of an attribute query: for every combination of group-by
/// coordinates, one integer per aggregation field.
///
/// Results are stored densely over the group-by coordinate space (row-major),
/// which is how generated conversion code consumes them (`count` histograms,
/// `id` bit sets, and so on). Group-by dimensions may have negative lower
/// bounds (e.g. DIA diagonal offsets).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    group_bounds: Vec<DimBounds>,
    labels: Vec<String>,
    /// One dense array per field, each of length `group_size()`.
    data: Vec<Vec<i64>>,
}

impl QueryResult {
    /// Creates a result table with every field initialised according to its
    /// aggregation (`0` for `count`/`id`, [`MAX_EMPTY`] for `max`,
    /// [`MIN_EMPTY`] for `min`).
    pub fn new(query: &AttrQuery, group_bounds: Vec<DimBounds>) -> Self {
        let size: usize = group_bounds.iter().map(DimBounds::extent).product();
        let mut labels = Vec::with_capacity(query.fields.len());
        let mut data = Vec::with_capacity(query.fields.len());
        for field in &query.fields {
            labels.push(field.label.clone());
            let init = match field.aggregate {
                Aggregate::Count(_) | Aggregate::Id => 0,
                Aggregate::Max(_) => MAX_EMPTY,
                Aggregate::Min(_) => MIN_EMPTY,
            };
            data.push(vec![init; size]);
        }
        QueryResult {
            group_bounds,
            labels,
            data,
        }
    }

    /// The bounds of the group-by coordinate space.
    pub fn group_bounds(&self) -> &[DimBounds] {
        &self.group_bounds
    }

    /// The field labels, in query order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of group-by combinations (1 for an empty group-by list).
    pub fn group_size(&self) -> usize {
        self.group_bounds.iter().map(DimBounds::extent).product()
    }

    /// Row-major offset of a group coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate arity is wrong or any coordinate is outside
    /// its bounds.
    pub fn offset(&self, group_coord: &[i64]) -> usize {
        assert_eq!(
            group_coord.len(),
            self.group_bounds.len(),
            "group coordinate arity mismatch"
        );
        let mut off = 0usize;
        for (d, (&c, b)) in group_coord.iter().zip(&self.group_bounds).enumerate() {
            assert!(
                b.contains(c),
                "group coordinate {c} out of bounds {b} in dimension {d}"
            );
            off = off * b.extent() + (c - b.lower) as usize;
        }
        off
    }

    fn field_index(&self, label: &str) -> Result<usize, QueryError> {
        self.labels
            .iter()
            .position(|l| l == label)
            .ok_or_else(|| QueryError::UnknownField(label.to_string()))
    }

    /// Reads a field value for a group coordinate.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::UnknownField`] for a label the query did not
    /// define.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-bounds coordinate.
    pub fn get(&self, group_coord: &[i64], label: &str) -> Result<i64, QueryError> {
        Ok(self.data[self.field_index(label)?][self.offset(group_coord)])
    }

    /// Writes a field value for a group coordinate.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::UnknownField`] for a label the query did not
    /// define.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-bounds coordinate.
    pub fn set(&mut self, group_coord: &[i64], label: &str, value: i64) -> Result<(), QueryError> {
        let field = self.field_index(label)?;
        let off = self.offset(group_coord);
        self.data[field][off] = value;
        Ok(())
    }

    /// The dense array backing one field.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::UnknownField`] for a label the query did not
    /// define.
    pub fn field_data(&self, label: &str) -> Result<&[i64], QueryError> {
        Ok(&self.data[self.field_index(label)?])
    }

    /// Mutable access to the dense array backing one field.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::UnknownField`] for a label the query did not
    /// define.
    pub fn field_data_mut(&mut self, label: &str) -> Result<&mut [i64], QueryError> {
        let field = self.field_index(label)?;
        Ok(&mut self.data[field])
    }

    /// Maximum value of a field across all groups, treating empty-group
    /// sentinels as absent. Returns `Ok(None)` when every group is empty.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::UnknownField`] for a label the query did not
    /// define.
    pub fn field_max(&self, label: &str) -> Result<Option<i64>, QueryError> {
        Ok(self
            .field_data(label)?
            .iter()
            .copied()
            .filter(|&v| v != MAX_EMPTY && v != MIN_EMPTY)
            .max())
    }

    /// Sum of a field across all groups (used for totals such as `nnz`).
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::UnknownField`] for a label the query did not
    /// define.
    pub fn field_sum(&self, label: &str) -> Result<i64, QueryError> {
        Ok(self
            .field_data(label)?
            .iter()
            .copied()
            .filter(|&v| v != MAX_EMPTY && v != MIN_EMPTY)
            .sum())
    }
}

/// Evaluates an attribute query over a stream of coordinates in the
/// (remapped) coordinate space the query ranges over.
///
/// `dim_names` names each dimension of that space and `bounds` gives its
/// coordinate bounds; the query's variables must refer to those names.
///
/// # Errors
///
/// Returns an error when the query mentions unknown dimensions, a coordinate
/// has the wrong arity, or a coordinate falls outside the declared bounds.
pub fn evaluate_on_coords<'a>(
    query: &AttrQuery,
    dim_names: &[String],
    bounds: &[DimBounds],
    coords: impl Iterator<Item = &'a [i64]>,
) -> Result<QueryResult, QueryError> {
    assert_eq!(dim_names.len(), bounds.len(), "one bound per dimension");
    let dim_of = |name: &str| -> Result<usize, QueryError> {
        dim_names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| QueryError::UnknownIndexVariable(name.to_string()))
    };
    let group_dims: Vec<usize> = query
        .group_by
        .iter()
        .map(|g| dim_of(g))
        .collect::<Result<_, _>>()?;
    let group_bounds: Vec<DimBounds> = group_dims.iter().map(|&d| bounds[d]).collect();
    let mut result = QueryResult::new(query, group_bounds);

    // Per-field auxiliary state for `count` distinctness.
    let mut field_dims: Vec<Vec<usize>> = Vec::with_capacity(query.fields.len());
    for field in &query.fields {
        let dims = field
            .aggregate
            .vars()
            .iter()
            .map(|v| dim_of(v))
            .collect::<Result<Vec<_>, _>>()?;
        field_dims.push(dims);
    }
    let mut seen: Vec<HashSet<Vec<i64>>> = vec![HashSet::new(); query.fields.len()];

    for coord in coords {
        if coord.len() != dim_names.len() {
            return Err(QueryError::ArityMismatch {
                expected: dim_names.len(),
                found: coord.len(),
            });
        }
        for (d, (&c, b)) in coord.iter().zip(bounds).enumerate() {
            if !b.contains(c) {
                return Err(QueryError::CoordinateOutOfBounds {
                    coordinate: c,
                    dimension: d,
                });
            }
        }
        let group_coord: Vec<i64> = group_dims.iter().map(|&d| coord[d]).collect();
        let group_off = result.offset(&group_coord);
        for (f, field) in query.fields.iter().enumerate() {
            match &field.aggregate {
                Aggregate::Id => {
                    result.data[f][group_off] = 1;
                }
                Aggregate::Count(_) => {
                    // Count distinct subtensors: key on the group coordinate
                    // plus the counted coordinates.
                    let mut key = group_coord.clone();
                    key.extend(field_dims[f].iter().map(|&d| coord[d]));
                    if seen[f].insert(key) {
                        result.data[f][group_off] += 1;
                    }
                }
                Aggregate::Max(_) => {
                    let c = coord[field_dims[f][0]];
                    let slot = &mut result.data[f][group_off];
                    *slot = (*slot).max(c);
                }
                Aggregate::Min(_) => {
                    let c = coord[field_dims[f][0]];
                    let slot = &mut result.data[f][group_off];
                    *slot = (*slot).min(c);
                }
            }
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use sparse_tensor::example::figure1_matrix;

    fn matrix_coords() -> Vec<Vec<i64>> {
        figure1_matrix().iter().map(|t| t.coord.clone()).collect()
    }

    fn names() -> Vec<String> {
        vec!["i".into(), "j".into()]
    }

    fn bounds() -> Vec<DimBounds> {
        vec![DimBounds::from_extent(4), DimBounds::from_extent(6)]
    }

    #[test]
    fn figure10_count_query() {
        let query = parse_query("select [i] -> count(j) as nir").unwrap();
        let coords = matrix_coords();
        let result = evaluate_on_coords(
            &query,
            &names(),
            &bounds(),
            coords.iter().map(|c| c.as_slice()),
        )
        .unwrap();
        // Figure 10 (left): nir = [2, 2, 2, 3].
        assert_eq!(result.field_data("nir").unwrap(), &[2, 2, 2, 3]);
        assert_eq!(result.field_sum("nir").unwrap(), 9);
        assert_eq!(result.field_max("nir").unwrap(), Some(3));
    }

    #[test]
    fn figure10_min_max_query() {
        let query = parse_query("select [i] -> min(j) as minir, max(j) as maxir").unwrap();
        let coords = matrix_coords();
        let result = evaluate_on_coords(
            &query,
            &names(),
            &bounds(),
            coords.iter().map(|c| c.as_slice()),
        )
        .unwrap();
        // Figure 10 (middle).
        assert_eq!(result.field_data("minir").unwrap(), &[0, 1, 0, 1]);
        assert_eq!(result.field_data("maxir").unwrap(), &[1, 2, 2, 4]);
    }

    #[test]
    fn figure10_id_query() {
        let query = parse_query("select [j] -> id() as ne").unwrap();
        let coords = matrix_coords();
        let result = evaluate_on_coords(
            &query,
            &names(),
            &bounds(),
            coords.iter().map(|c| c.as_slice()),
        )
        .unwrap();
        // Figure 10 (right): R[4].ne == 1 and R[5].ne == 0.
        assert_eq!(result.field_data("ne").unwrap(), &[1, 1, 1, 1, 1, 0]);
    }

    #[test]
    fn diagonal_queries_over_remapped_space() {
        // Remap (i,j) -> (j-i, i, j) by hand and query the offset dimension.
        let remapped: Vec<Vec<i64>> = matrix_coords()
            .iter()
            .map(|c| vec![c[1] - c[0], c[0], c[1]])
            .collect();
        let names = vec!["k".to_string(), "i".to_string(), "j".to_string()];
        let bounds = vec![
            DimBounds::new(-3, 6),
            DimBounds::from_extent(4),
            DimBounds::from_extent(6),
        ];
        let nz = parse_query("select [k] -> id() as nz").unwrap();
        let result =
            evaluate_on_coords(&nz, &names, &bounds, remapped.iter().map(|c| c.as_slice()))
                .unwrap();
        assert_eq!(
            result.field_sum("nz").unwrap(),
            3,
            "three nonzero diagonals"
        );
        assert_eq!(result.get(&[-2], "nz").unwrap(), 1);
        assert_eq!(result.get(&[0], "nz").unwrap(), 1);
        assert_eq!(result.get(&[1], "nz").unwrap(), 1);
        assert_eq!(result.get(&[2], "nz").unwrap(), 0);

        // Bandwidth query: select [] -> min(k) as lb, max(k) as ub.
        let bw = parse_query("select [] -> min(k) as lb, max(k) as ub").unwrap();
        let result =
            evaluate_on_coords(&bw, &names, &bounds, remapped.iter().map(|c| c.as_slice()))
                .unwrap();
        assert_eq!(result.get(&[], "lb").unwrap(), -2);
        assert_eq!(result.get(&[], "ub").unwrap(), 1);
    }

    #[test]
    fn count_is_distinct_over_subtensors() {
        // Two nonzeros in the same (i, j) position count once; the count of
        // nonzero rows per matrix uses count(i) at an empty group-by.
        let coords = [vec![0i64, 1], vec![0, 1], vec![2, 3]];
        let query = parse_query("select [] -> count(i) as nrows").unwrap();
        let result = evaluate_on_coords(
            &query,
            &names(),
            &bounds(),
            coords.iter().map(|c| c.as_slice()),
        )
        .unwrap();
        assert_eq!(result.get(&[], "nrows").unwrap(), 2);
    }

    #[test]
    fn empty_input_keeps_initial_values() {
        let query = parse_query("select [i] -> max(j) as m, count(j) as c").unwrap();
        let result = evaluate_on_coords(&query, &names(), &bounds(), std::iter::empty()).unwrap();
        assert_eq!(result.field_data("c").unwrap(), &[0, 0, 0, 0]);
        assert!(result
            .field_data("m")
            .unwrap()
            .iter()
            .all(|&v| v == MAX_EMPTY));
        assert_eq!(result.field_max("m").unwrap(), None);
    }

    #[test]
    fn errors_on_bad_inputs() {
        let query = parse_query("select [z] -> id() as x").unwrap();
        assert!(matches!(
            evaluate_on_coords(&query, &names(), &bounds(), std::iter::empty()),
            Err(QueryError::UnknownIndexVariable(_))
        ));
        let query = parse_query("select [i] -> id() as x").unwrap();
        let bad = [vec![0i64]];
        assert!(matches!(
            evaluate_on_coords(
                &query,
                &names(),
                &bounds(),
                bad.iter().map(|c| c.as_slice())
            ),
            Err(QueryError::ArityMismatch { .. })
        ));
        let oob = [vec![9i64, 0]];
        assert!(matches!(
            evaluate_on_coords(
                &query,
                &names(),
                &bounds(),
                oob.iter().map(|c| c.as_slice())
            ),
            Err(QueryError::CoordinateOutOfBounds { .. })
        ));
    }

    #[test]
    fn result_accessors() {
        let query = parse_query("select [i] -> count(j) as nir").unwrap();
        let mut result = QueryResult::new(&query, vec![DimBounds::from_extent(3)]);
        assert_eq!(result.group_size(), 3);
        assert_eq!(result.labels(), &["nir".to_string()]);
        result.set(&[1], "nir", 7).unwrap();
        assert_eq!(result.get(&[1], "nir").unwrap(), 7);
        result.field_data_mut("nir").unwrap()[2] = 9;
        assert_eq!(result.get(&[2], "nir").unwrap(), 9);
        assert_eq!(result.group_bounds(), &[DimBounds::from_extent(3)]);
    }

    #[test]
    fn unknown_field_is_an_error_not_a_panic() {
        let query = parse_query("select [i] -> count(j) as nir").unwrap();
        let mut result = QueryResult::new(&query, vec![DimBounds::from_extent(3)]);
        let expected = QueryError::UnknownField("bogus".to_string());
        assert_eq!(result.get(&[0], "bogus"), Err(expected.clone()));
        assert_eq!(result.set(&[0], "bogus", 1), Err(expected.clone()));
        assert_eq!(result.field_data("bogus"), Err(expected.clone()));
        assert!(result.field_data_mut("bogus").is_err());
        assert_eq!(result.field_max("bogus"), Err(expected.clone()));
        assert_eq!(result.field_sum("bogus"), Err(expected));
    }
}
