//! Errors for the attribute query language.

use std::error::Error;
use std::fmt;

/// Errors raised while parsing, lowering, or evaluating attribute queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query text could not be parsed.
    Parse(String),
    /// A query referenced an index variable that the tensor does not have.
    UnknownIndexVariable(String),
    /// A query result was requested for an unknown field label.
    UnknownField(String),
    /// A coordinate passed to the evaluator was outside the declared bounds.
    CoordinateOutOfBounds {
        /// The offending coordinate value.
        coordinate: i64,
        /// The dimension it indexed.
        dimension: usize,
    },
    /// The evaluator was given coordinates of the wrong arity.
    ArityMismatch {
        /// Expected number of coordinates.
        expected: usize,
        /// Number supplied.
        found: usize,
    },
    /// A Table 1 transformation was applied to a statement that does not
    /// satisfy its preconditions.
    PreconditionViolated(&'static str),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(msg) => write!(f, "parse error: {msg}"),
            QueryError::UnknownIndexVariable(name) => {
                write!(f, "unknown index variable `{name}`")
            }
            QueryError::UnknownField(name) => write!(f, "unknown query field `{name}`"),
            QueryError::CoordinateOutOfBounds {
                coordinate,
                dimension,
            } => {
                write!(
                    f,
                    "coordinate {coordinate} out of bounds in dimension {dimension}"
                )
            }
            QueryError::ArityMismatch { expected, found } => {
                write!(f, "expected {expected} coordinates, found {found}")
            }
            QueryError::PreconditionViolated(rule) => {
                write!(
                    f,
                    "preconditions of the `{rule}` transformation are not satisfied"
                )
            }
        }
    }
}

impl Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(QueryError::Parse("bad".into()).to_string().contains("bad"));
        assert!(QueryError::UnknownIndexVariable("z".into())
            .to_string()
            .contains("`z`"));
        assert!(QueryError::UnknownField("nir".into())
            .to_string()
            .contains("`nir`"));
        assert!(QueryError::CoordinateOutOfBounds {
            coordinate: 9,
            dimension: 1
        }
        .to_string()
        .contains('9'));
        assert!(QueryError::ArityMismatch {
            expected: 2,
            found: 1
        }
        .to_string()
        .contains('2'));
        assert!(QueryError::PreconditionViolated("inline-temporary")
            .to_string()
            .contains("inline-temporary"));
    }
}
