//! Abstract syntax of the attribute query language.

use std::fmt;
use std::str::FromStr;

use crate::error::QueryError;

/// An aggregation function over the coordinates of a subtensor's nonzeros
/// (Section 5.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Aggregate {
    /// `count(i_{m+1}, ..., i_l)`: the number of distinct nonzero subtensors
    /// identified by the listed coordinates.
    Count(Vec<String>),
    /// `max(i_{m+1})`: the largest coordinate along the listed dimension for
    /// which the subtensor is nonzero.
    Max(String),
    /// `min(i_{m+1})`: the smallest such coordinate.
    Min(String),
    /// `id()`: 1 if the subtensor contains any nonzero, 0 otherwise.
    Id,
}

impl Aggregate {
    /// Index variables the aggregation reads.
    pub fn vars(&self) -> Vec<&str> {
        match self {
            Aggregate::Count(vs) => vs.iter().map(String::as_str).collect(),
            Aggregate::Max(v) | Aggregate::Min(v) => vec![v.as_str()],
            Aggregate::Id => Vec::new(),
        }
    }
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Aggregate::Count(vs) => write!(f, "count({})", vs.join(",")),
            Aggregate::Max(v) => write!(f, "max({v})"),
            Aggregate::Min(v) => write!(f, "min({v})"),
            Aggregate::Id => write!(f, "id()"),
        }
    }
}

/// One aggregation together with its result label (`<aggr> as label`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryField {
    /// The aggregation to compute.
    pub aggregate: Aggregate,
    /// The label the result is stored under.
    pub label: String,
}

impl fmt::Display for QueryField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} as {}", self.aggregate, self.label)
    }
}

/// A complete attribute query:
/// `select [i1,...,im] -> <aggr1> as l1, ..., <aggrn> as ln`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AttrQuery {
    /// The grouping coordinates `i1, ..., im` (possibly empty).
    pub group_by: Vec<String>,
    /// The aggregations to compute per group.
    pub fields: Vec<QueryField>,
}

impl AttrQuery {
    /// Creates a query from parts.
    ///
    /// # Panics
    ///
    /// Panics if `fields` is empty.
    pub fn new(group_by: Vec<String>, fields: Vec<QueryField>) -> Self {
        assert!(
            !fields.is_empty(),
            "a query must compute at least one aggregation"
        );
        AttrQuery { group_by, fields }
    }

    /// Convenience constructor for a single-aggregate query.
    pub fn single(group_by: Vec<String>, aggregate: Aggregate, label: &str) -> Self {
        AttrQuery::new(
            group_by,
            vec![QueryField {
                aggregate,
                label: label.to_string(),
            }],
        )
    }

    /// All index variables the query mentions (group-by plus aggregated).
    pub fn vars(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.group_by.iter().map(String::as_str).collect();
        for field in &self.fields {
            for v in field.aggregate.vars() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Looks up a field by label.
    pub fn field(&self, label: &str) -> Option<&QueryField> {
        self.fields.iter().find(|f| f.label == label)
    }
}

impl fmt::Display for AttrQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fields: Vec<String> = self.fields.iter().map(|x| x.to_string()).collect();
        write!(
            f,
            "select [{}] -> {}",
            self.group_by.join(","),
            fields.join(", ")
        )
    }
}

impl FromStr for AttrQuery {
    type Err = QueryError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        crate::parser::parse_query(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_syntax() {
        let q = AttrQuery::single(vec!["i".into()], Aggregate::Count(vec!["j".into()]), "nir");
        assert_eq!(q.to_string(), "select [i] -> count(j) as nir");
        let q = AttrQuery::new(
            vec!["i".into()],
            vec![
                QueryField {
                    aggregate: Aggregate::Min("j".into()),
                    label: "minir".into(),
                },
                QueryField {
                    aggregate: Aggregate::Max("j".into()),
                    label: "maxir".into(),
                },
            ],
        );
        assert_eq!(
            q.to_string(),
            "select [i] -> min(j) as minir, max(j) as maxir"
        );
        let q = AttrQuery::single(vec!["j".into()], Aggregate::Id, "ne");
        assert_eq!(q.to_string(), "select [j] -> id() as ne");
    }

    #[test]
    fn vars_collects_group_and_aggregate_variables() {
        let q = AttrQuery::single(
            vec!["i".into()],
            Aggregate::Count(vec!["j".into(), "k".into()]),
            "nnz",
        );
        assert_eq!(q.vars(), vec!["i", "j", "k"]);
        assert!(q.field("nnz").is_some());
        assert!(q.field("other").is_none());
    }

    #[test]
    #[should_panic]
    fn empty_fields_panics() {
        AttrQuery::new(vec![], vec![]);
    }
}
