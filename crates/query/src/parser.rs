//! Parser for the attribute query language.

use crate::ast::{Aggregate, AttrQuery, QueryField};
use crate::error::QueryError;

/// Parses a query such as `select [i] -> count(j) as nir, max(j) as maxir`.
///
/// # Errors
///
/// Returns [`QueryError::Parse`] when the text does not conform to the query
/// grammar of Section 5.1.
pub fn parse_query(input: &str) -> Result<AttrQuery, QueryError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    p.expect_keyword("select")?;
    p.skip_ws();
    p.expect_char('[')?;
    let group_by = p.parse_ident_list(']')?;
    p.expect_char(']')?;
    p.skip_ws();
    p.expect_str("->")?;
    let mut fields = Vec::new();
    loop {
        p.skip_ws();
        let aggregate = p.parse_aggregate()?;
        p.skip_ws();
        p.expect_keyword("as")?;
        p.skip_ws();
        let label = p.parse_ident()?;
        fields.push(QueryField { aggregate, label });
        p.skip_ws();
        if !p.try_char(',') {
            break;
        }
    }
    p.skip_ws();
    if !p.at_end() {
        return Err(p.error("unexpected trailing input"));
    }
    if fields.is_empty() {
        return Err(p.error("expected at least one aggregation"));
    }
    Ok(AttrQuery { group_by, fields })
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> QueryError {
        QueryError::Parse(format!("{message} at byte {}", self.pos))
    }

    fn rest(&self) -> &str {
        &self.input[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.rest().chars().next() {
            if c.is_whitespace() {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    fn try_char(&mut self, c: char) -> bool {
        if self.rest().starts_with(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn expect_char(&mut self, c: char) -> Result<(), QueryError> {
        if self.try_char(c) {
            Ok(())
        } else {
            Err(self.error(&format!("expected `{c}`")))
        }
    }

    fn expect_str(&mut self, s: &str) -> Result<(), QueryError> {
        if self.rest().starts_with(s) {
            self.pos += s.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{s}`")))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), QueryError> {
        let ident = self.parse_ident()?;
        if ident == kw {
            Ok(())
        } else {
            Err(self.error(&format!("expected keyword `{kw}`, found `{ident}`")))
        }
    }

    fn parse_ident(&mut self) -> Result<String, QueryError> {
        let start = self.pos;
        let mut end = self.pos;
        for c in self.rest().chars() {
            if c.is_ascii_alphanumeric() || c == '_' {
                end += c.len_utf8();
            } else {
                break;
            }
        }
        if end == start || self.input[start..].starts_with(|c: char| c.is_ascii_digit()) {
            return Err(self.error("expected an identifier"));
        }
        self.pos = end;
        Ok(self.input[start..end].to_string())
    }

    fn parse_ident_list(&mut self, terminator: char) -> Result<Vec<String>, QueryError> {
        let mut out = Vec::new();
        self.skip_ws();
        if self.rest().starts_with(terminator) {
            return Ok(out);
        }
        loop {
            self.skip_ws();
            out.push(self.parse_ident()?);
            self.skip_ws();
            if !self.try_char(',') {
                break;
            }
        }
        Ok(out)
    }

    fn parse_aggregate(&mut self) -> Result<Aggregate, QueryError> {
        let name = self.parse_ident()?;
        self.skip_ws();
        self.expect_char('(')?;
        let args = self.parse_ident_list(')')?;
        self.expect_char(')')?;
        match name.as_str() {
            "count" => {
                if args.is_empty() {
                    Err(self.error("count() requires at least one index variable"))
                } else {
                    Ok(Aggregate::Count(args))
                }
            }
            "max" | "min" => {
                if args.len() != 1 {
                    Err(self.error(&format!("{name}() takes exactly one index variable")))
                } else if name == "max" {
                    Ok(Aggregate::Max(args.into_iter().next().expect("one arg")))
                } else {
                    Ok(Aggregate::Min(args.into_iter().next().expect("one arg")))
                }
            }
            "id" => {
                if args.is_empty() {
                    Ok(Aggregate::Id)
                } else {
                    Err(self.error("id() takes no arguments"))
                }
            }
            other => Err(self.error(&format!("unknown aggregation `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure10_queries() {
        let q = parse_query("select [i] -> count(j) as nir").unwrap();
        assert_eq!(q.group_by, vec!["i"]);
        assert_eq!(q.fields[0].aggregate, Aggregate::Count(vec!["j".into()]));
        assert_eq!(q.fields[0].label, "nir");

        let q = parse_query("select [i] -> min(j) as minir, max(j) as maxir").unwrap();
        assert_eq!(q.fields.len(), 2);
        assert_eq!(q.fields[0].aggregate, Aggregate::Min("j".into()));
        assert_eq!(q.fields[1].aggregate, Aggregate::Max("j".into()));

        let q = parse_query("select [j] -> id() as ne").unwrap();
        assert_eq!(q.fields[0].aggregate, Aggregate::Id);
    }

    #[test]
    fn parses_empty_group_by_and_multi_count() {
        let q = parse_query("select [] -> max(i1) as max_crd").unwrap();
        assert!(q.group_by.is_empty());
        let q = parse_query("select [i] -> count(j,k) as nnz_in_slice").unwrap();
        assert_eq!(
            q.fields[0].aggregate,
            Aggregate::Count(vec!["j".into(), "k".into()])
        );
    }

    #[test]
    fn roundtrips_through_display() {
        for text in [
            "select [i] -> count(j) as nir",
            "select [] -> min(k) as lb, max(k) as ub",
            "select [j] -> id() as ne",
            "select [i,j] -> count(k) as n",
        ] {
            let q = parse_query(text).unwrap();
            assert_eq!(
                parse_query(&q.to_string()).unwrap(),
                q,
                "roundtrip for {text}"
            );
        }
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse_query("choose [i] -> id() as x").is_err());
        assert!(parse_query("select i -> id() as x").is_err());
        assert!(parse_query("select [i] -> id() x").is_err());
        assert!(parse_query("select [i] -> count() as x").is_err());
        assert!(parse_query("select [i] -> max(j,k) as x").is_err());
        assert!(parse_query("select [i] -> id(j) as x").is_err());
        assert!(parse_query("select [i] -> unknown(j) as x").is_err());
        assert!(parse_query("select [i] -> id() as x trailing").is_err());
        assert!(parse_query("select [i] ->").is_err());
        assert!(parse_query("select [1i] -> id() as x").is_err());
    }
}
