//! The query-optimisation rewrite rules of Table 1.
//!
//! Each rule is implemented as a function that checks the rule's
//! preconditions and returns the rewritten statement (or a
//! [`QueryError::PreconditionViolated`] error). [`optimize`] is the driver
//! the conversion planner uses: it eagerly applies the rules in the order the
//! paper's worked example does (Section 5.2), given a flag describing whether
//! the source format stores only nonzeros.

use coord_remap::IndexExpr;

use crate::cin::{Access, CinExpr, CinStmt, Reduction};
use crate::error::QueryError;

/// `reduction-to-assign`: when every loop variable also appears directly as a
/// destination index, every result component is written at most once, so the
/// reduction can become a plain assignment.
pub fn reduction_to_assign(stmt: &CinStmt) -> Result<CinStmt, QueryError> {
    if stmt.reduction == Reduction::Assign {
        return Err(QueryError::PreconditionViolated("reduction-to-assign"));
    }
    let covered = stmt.loop_vars.iter().all(|v| {
        stmt.dest
            .indices
            .iter()
            .any(|e| matches!(e, IndexExpr::Var(name) if name == v))
    });
    if !covered {
        return Err(QueryError::PreconditionViolated("reduction-to-assign"));
    }
    Ok(CinStmt {
        reduction: Reduction::Assign,
        ..stmt.clone()
    })
}

/// `inline-temporary`: when the `where` clause defines its temporary with a
/// plain assignment, the temporary can be inlined into the outer statement,
/// eliminating it.
pub fn inline_temporary(stmt: &CinStmt) -> Result<CinStmt, QueryError> {
    let inner = stmt
        .where_stmt
        .as_deref()
        .ok_or(QueryError::PreconditionViolated("inline-temporary"))?;
    if inner.reduction != Reduction::Assign {
        return Err(QueryError::PreconditionViolated("inline-temporary"));
    }
    // The outer statement must index the temporary with exactly its own loop
    // variables (which is how lowering constructs count queries).
    let temp = &inner.dest.tensor;
    let outer_reads_temp_with_loop_vars = reads_with_vars(&stmt.value, temp, &stmt.loop_vars);
    if !outer_reads_temp_with_loop_vars {
        return Err(QueryError::PreconditionViolated("inline-temporary"));
    }
    // Substitute: the outer statement now iterates the inner statement's loop
    // variables, its destination indices are rewritten through the inner
    // statement's destination expressions, and reads of the temporary become
    // the inner statement's right-hand side.
    let mut dest_indices = Vec::with_capacity(stmt.dest.indices.len());
    for idx in &stmt.dest.indices {
        dest_indices.push(rewrite_index(idx, &stmt.loop_vars, &inner.dest.indices));
    }
    let value = replace_temp_reads(&stmt.value, temp, &inner.value);
    Ok(CinStmt {
        loop_vars: inner.loop_vars.clone(),
        dest: Access {
            tensor: stmt.dest.tensor.clone(),
            indices: dest_indices,
        },
        reduction: stmt.reduction,
        value: simplify(&value),
        where_stmt: None,
    })
}

/// `simplify-width-count`: a count over the innermost stored dimension of a
/// source that stores only nonzeros can be answered from the level structure
/// (e.g. `pos[i+1] - pos[i]`) without touching the nonzeros themselves.
pub fn simplify_width_count(
    stmt: &CinStmt,
    source_stores_only_nonzeros: bool,
) -> Result<CinStmt, QueryError> {
    if !source_stores_only_nonzeros || stmt.reduction != Reduction::Add {
        return Err(QueryError::PreconditionViolated("simplify-width-count"));
    }
    let (source, constant) = match &stmt.value {
        CinExpr::Map { source, value } => match value.as_ref() {
            CinExpr::Const(c) => (source, *c),
            _ => return Err(QueryError::PreconditionViolated("simplify-width-count")),
        },
        _ => return Err(QueryError::PreconditionViolated("simplify-width-count")),
    };
    let innermost = stmt
        .loop_vars
        .last()
        .ok_or(QueryError::PreconditionViolated("simplify-width-count"))?
        .clone();
    // The innermost loop variable must index the innermost dimension of the
    // source and must be a pure reduction variable (not used by the
    // destination).
    let indexes_innermost = matches!(
        source.indices.last(),
        Some(IndexExpr::Var(v)) if *v == innermost
    );
    let used_by_dest = stmt.dest.indices.iter().any(|e| uses_var(e, &innermost));
    if !indexes_innermost || used_by_dest {
        return Err(QueryError::PreconditionViolated("simplify-width-count"));
    }
    let remaining: Vec<String> = stmt.loop_vars[..stmt.loop_vars.len() - 1].to_vec();
    let width = CinExpr::Width {
        tensor: source.tensor.clone(),
        over: innermost,
        indices: source.indices[..source.indices.len() - 1].to_vec(),
    };
    let value = if constant == 1 {
        width
    } else {
        CinExpr::Mul(Box::new(width), Box::new(CinExpr::Const(constant)))
    };
    Ok(CinStmt {
        loop_vars: remaining,
        dest: stmt.dest.clone(),
        reduction: Reduction::Add,
        value,
        where_stmt: stmt.where_stmt.clone(),
    })
}

/// `counter-to-histogram`: a max over a counter expression (`#j... + 1`) is
/// rewritten into a histogram temporary followed by a max over the histogram,
/// eliminating the stateful counter.
pub fn counter_to_histogram(stmt: &CinStmt) -> Result<CinStmt, QueryError> {
    if stmt.reduction != Reduction::Max {
        return Err(QueryError::PreconditionViolated("counter-to-histogram"));
    }
    let (source, counter_vars) = match &stmt.value {
        CinExpr::Map { source, value } => match value.as_ref() {
            CinExpr::Coord(expr) => match counter_plus_one(expr) {
                Some(vars) => (source, vars),
                None => return Err(QueryError::PreconditionViolated("counter-to-histogram")),
            },
            _ => return Err(QueryError::PreconditionViolated("counter-to-histogram")),
        },
        _ => return Err(QueryError::PreconditionViolated("counter-to-histogram")),
    };
    let hist_name = format!("W_{}", stmt.dest.tensor);
    // Histogram indexed by the destination's group indices plus the counter's
    // indexing variables.
    let mut hist_indices = stmt.dest.indices.clone();
    hist_indices.extend(counter_vars.iter().map(|v| IndexExpr::Var(v.clone())));
    let inner = CinStmt {
        loop_vars: stmt.loop_vars.clone(),
        dest: Access {
            tensor: hist_name.clone(),
            indices: hist_indices,
        },
        reduction: Reduction::Add,
        value: CinExpr::Map {
            source: source.clone(),
            value: Box::new(CinExpr::Const(1)),
        },
        where_stmt: None,
    };
    // Outer statement: max over the histogram.
    let mut outer_loop_vars: Vec<String> = Vec::new();
    for idx in &stmt.dest.indices {
        if let IndexExpr::Var(v) = idx {
            outer_loop_vars.push(v.clone());
        }
    }
    outer_loop_vars.extend(counter_vars.iter().cloned());
    let outer_read_vars: Vec<String> = outer_loop_vars.clone();
    Ok(CinStmt {
        loop_vars: outer_loop_vars,
        dest: stmt.dest.clone(),
        reduction: Reduction::Max,
        value: CinExpr::Read(Access::with_vars(&hist_name, &outer_read_vars)),
        where_stmt: Some(Box::new(inner)),
    })
}

/// Applies the Table 1 rules eagerly, mirroring the Section 5.2 worked
/// example: counters are first eliminated, `where` temporaries are turned
/// into assignments and inlined, width counts are simplified when the source
/// stores only nonzeros, and the final reduction is turned into an assignment
/// when possible.
pub fn optimize(stmt: &CinStmt, source_stores_only_nonzeros: bool) -> CinStmt {
    let mut current = stmt.clone();
    if let Ok(rewritten) = counter_to_histogram(&current) {
        current = rewritten;
    }
    // Optimise the where clause: reduction-to-assign then inline.
    if let Some(inner) = &current.where_stmt {
        if let Ok(assigned) = reduction_to_assign(inner) {
            current.where_stmt = Some(Box::new(assigned));
        }
        if let Ok(inlined) = inline_temporary(&current) {
            current = inlined;
        }
    }
    if let Ok(simplified) = simplify_width_count(&current, source_stores_only_nonzeros) {
        current = simplified;
    }
    if let Ok(assigned) = reduction_to_assign(&current) {
        current = assigned;
    }
    CinStmt {
        value: simplify(&current.value),
        ..current
    }
}

/// Collapses `map(map(B, c1), c2)` into `map(B, c2)` (constant folding on
/// nested maps, used after inlining).
pub fn simplify(expr: &CinExpr) -> CinExpr {
    match expr {
        CinExpr::Map { source, value } => {
            let value = simplify(value);
            if let CinExpr::Map {
                source: inner_source,
                value: inner_value,
            } = &value
            {
                // map(X, map(Y, v)) with the same guard collapses; lowering
                // only produces nested maps guarded by the same source.
                if inner_source.tensor == source.tensor {
                    return CinExpr::Map {
                        source: source.clone(),
                        value: inner_value.clone(),
                    };
                }
            }
            CinExpr::Map {
                source: source.clone(),
                value: Box::new(value),
            }
        }
        CinExpr::Mul(l, r) => {
            let (l, r) = (simplify(l), simplify(r));
            if let CinExpr::Const(1) = r {
                return l;
            }
            if let CinExpr::Const(1) = l {
                return r;
            }
            CinExpr::Mul(Box::new(l), Box::new(r))
        }
        other => other.clone(),
    }
}

fn reads_with_vars(expr: &CinExpr, tensor: &str, vars: &[String]) -> bool {
    match expr {
        CinExpr::Read(a) | CinExpr::Map { source: a, .. } if a.tensor == tensor => {
            a.indices.len() == vars.len()
                && a.indices
                    .iter()
                    .zip(vars)
                    .all(|(e, v)| matches!(e, IndexExpr::Var(name) if name == v))
        }
        CinExpr::Map { value, .. } => reads_with_vars(value, tensor, vars),
        CinExpr::Mul(l, r) => reads_with_vars(l, tensor, vars) || reads_with_vars(r, tensor, vars),
        _ => false,
    }
}

fn replace_temp_reads(expr: &CinExpr, tensor: &str, replacement: &CinExpr) -> CinExpr {
    match expr {
        CinExpr::Read(a) if a.tensor == tensor => replacement.clone(),
        CinExpr::Map { source, value } if source.tensor == tensor => CinExpr::Map {
            source: match replacement {
                CinExpr::Map { source: inner, .. } => inner.clone(),
                _ => source.clone(),
            },
            value: Box::new(replace_temp_reads(value, tensor, replacement)),
        },
        CinExpr::Map { source, value } => CinExpr::Map {
            source: source.clone(),
            value: Box::new(replace_temp_reads(value, tensor, replacement)),
        },
        CinExpr::Mul(l, r) => CinExpr::Mul(
            Box::new(replace_temp_reads(l, tensor, replacement)),
            Box::new(replace_temp_reads(r, tensor, replacement)),
        ),
        other => other.clone(),
    }
}

fn rewrite_index(
    idx: &IndexExpr,
    outer_vars: &[String],
    inner_dest_indices: &[IndexExpr],
) -> IndexExpr {
    match idx {
        IndexExpr::Var(v) => match outer_vars.iter().position(|o| o == v) {
            Some(p) if p < inner_dest_indices.len() => inner_dest_indices[p].clone(),
            _ => idx.clone(),
        },
        IndexExpr::Binary(op, l, r) => IndexExpr::Binary(
            *op,
            Box::new(rewrite_index(l, outer_vars, inner_dest_indices)),
            Box::new(rewrite_index(r, outer_vars, inner_dest_indices)),
        ),
        other => other.clone(),
    }
}

fn uses_var(expr: &IndexExpr, var: &str) -> bool {
    expr.free_vars().iter().any(|v| v == var)
}

fn counter_plus_one(expr: &IndexExpr) -> Option<Vec<String>> {
    use coord_remap::BinOp;
    if let IndexExpr::Binary(BinOp::Add, l, r) = expr {
        if let (IndexExpr::Counter(vars), IndexExpr::Const(1)) = (l.as_ref(), r.as_ref()) {
            return Some(vars.clone());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cin::{lower_query, LowerContext};
    use crate::parse_query;
    use coord_remap::{parse_remapping, Remapping};

    fn identity_ctx(remap: &Remapping) -> LowerContext<'_> {
        LowerContext::new(remap, vec!["i".into(), "j".into()], "B")
    }

    #[test]
    fn worked_example_for_coo_sources() {
        // Section 5.2: select [i] -> count(j) over a COO matrix becomes
        // forall i forall j: Q[i] += map(B[i,j], 1).
        let remap = Remapping::identity(2);
        let ctx = identity_ctx(&remap);
        let query = parse_query("select [i] -> count(j) as Q").unwrap();
        let canonical = lower_query(&query, "Q", &ctx).unwrap();
        let optimized = optimize(&canonical, false);
        assert_eq!(
            optimized.to_string(),
            "forall i forall j: Q[i] += map(B[i,j], 1)"
        );
    }

    #[test]
    fn worked_example_for_csr_sources() {
        // With a source that stores only nonzeros, the count query further
        // simplifies to forall i: Q[i] = width(B; j)[i]  (pos differencing).
        let remap = Remapping::identity(2);
        let ctx = identity_ctx(&remap);
        let query = parse_query("select [i] -> count(j) as Q").unwrap();
        let canonical = lower_query(&query, "Q", &ctx).unwrap();
        let optimized = optimize(&canonical, true);
        assert_eq!(optimized.to_string(), "forall i: Q[i] = width(B; j)[i]");
    }

    #[test]
    fn reduction_to_assign_checks_coverage() {
        let remap = Remapping::identity(2);
        let ctx = identity_ctx(&remap);
        let query = parse_query("select [i] -> count(j) as Q").unwrap();
        let canonical = lower_query(&query, "Q", &ctx).unwrap();
        // The inner statement's loop variables all appear as its indices, so
        // the rule applies there...
        let inner = canonical.where_stmt.as_deref().unwrap();
        assert_eq!(
            reduction_to_assign(inner).unwrap().reduction,
            Reduction::Assign
        );
        // ...but not on the outer statement, whose `j` is a reduction variable.
        assert!(reduction_to_assign(&canonical).is_err());
    }

    #[test]
    fn inline_temporary_requires_assignment() {
        let remap = Remapping::identity(2);
        let ctx = identity_ctx(&remap);
        let query = parse_query("select [i] -> count(j) as Q").unwrap();
        let canonical = lower_query(&query, "Q", &ctx).unwrap();
        // Without reduction-to-assign on the inner statement the rule refuses.
        assert!(inline_temporary(&canonical).is_err());
        let mut prepared = canonical.clone();
        prepared.where_stmt = Some(Box::new(
            reduction_to_assign(prepared.where_stmt.as_deref().unwrap()).unwrap(),
        ));
        let inlined = inline_temporary(&prepared).unwrap();
        assert!(inlined.where_stmt.is_none());
        assert_eq!(
            inlined.to_string(),
            "forall i forall j: Q[i] += map(B[i,j], 1)"
        );
    }

    #[test]
    fn counter_to_histogram_rewrites_ell_analysis() {
        // The ELL sizing query max(#i) becomes a histogram + max.
        let remap = parse_remapping("(i,j) -> (k=#i in k,i,j)").unwrap();
        let ctx = LowerContext::new(&remap, vec!["k".into(), "r".into(), "c".into()], "B");
        let query = parse_query("select [] -> max(k) as K").unwrap();
        let canonical = lower_query(&query, "K", &ctx).unwrap();
        let rewritten = counter_to_histogram(&canonical).unwrap();
        assert_eq!(
            rewritten.to_string(),
            "forall i: K[] max= W_K[i] where (forall i forall j: W_K[i] += map(B[i,j], 1))"
        );
        // The driver applies it automatically.
        let optimized = optimize(&canonical, false);
        assert!(optimized
            .to_string()
            .starts_with("forall i: K[] max= W_K[i]"));
    }

    #[test]
    fn simplify_width_count_preconditions() {
        let remap = Remapping::identity(2);
        let ctx = identity_ctx(&remap);
        let query = parse_query("select [i] -> count(j) as Q").unwrap();
        let canonical = lower_query(&query, "Q", &ctx).unwrap();
        let flat = optimize(&canonical, false);
        // Applying width-count on a source that may store explicit zeros is
        // rejected.
        assert!(simplify_width_count(&flat, false).is_err());
        let simplified = simplify_width_count(&flat, true).unwrap();
        assert_eq!(simplified.loop_vars, vec!["i".to_string()]);
        // A query whose destination uses the innermost variable is rejected.
        let query = parse_query("select [j] -> count(i) as Q").unwrap();
        let canonical = lower_query(&query, "Q", &ctx).unwrap();
        let flat = optimize(&canonical, false);
        assert!(simplify_width_count(&flat, true).is_err());
    }

    #[test]
    fn simplify_collapses_nested_maps_and_units() {
        let access = Access::with_vars("B", &["i".to_string()]);
        let nested = CinExpr::Map {
            source: access.clone(),
            value: Box::new(CinExpr::Map {
                source: access.clone(),
                value: Box::new(CinExpr::Const(1)),
            }),
        };
        assert_eq!(
            simplify(&nested),
            CinExpr::Map {
                source: access.clone(),
                value: Box::new(CinExpr::Const(1))
            }
        );
        let unit = CinExpr::Mul(
            Box::new(CinExpr::Read(access.clone())),
            Box::new(CinExpr::Const(1)),
        );
        assert_eq!(simplify(&unit), CinExpr::Read(access));
    }
}
