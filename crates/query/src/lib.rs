//! The attribute query language (Section 5 of the PLDI 2020 paper).
//!
//! Attribute queries compute summaries of a tensor's sparsity structure as
//! aggregations over the coordinates of its nonzeros:
//!
//! ```text
//! select [i1,...,im] -> <aggr1> as label1, ..., <aggrn> as labeln
//! ```
//!
//! where each aggregation is `count(...)`, `max(i)`, `min(i)`, or `id()`.
//! Query results are used by the assembly abstraction (Section 6) to reserve
//! exactly enough memory for the output tensor — e.g. converting to ELL needs
//! `select [] -> max(k) as max_crd` over the `#i`-remapped tensor, and
//! converting to CSR needs `select [i] -> count(j) as nir`.
//!
//! The crate provides:
//!
//! * an AST ([`AttrQuery`]) and parser ([`parse_query`]),
//! * lowering to *concrete index notation* ([`cin`]) following Section 5.2,
//! * the rewrite rules of Table 1 ([`transform`]), and
//! * evaluators ([`eval`]): a reference evaluator over remapped coordinate
//!   streams, plus the dense-result [`eval::QueryResult`] representation that
//!   the conversion engine consumes.
//!
//! # Example
//!
//! ```
//! use attr_query::{parse_query, eval::evaluate_on_coords};
//! use sparse_tensor::DimBounds;
//!
//! // Number of nonzeros per row of a 4-row matrix (Figure 10, left).
//! let query = parse_query("select [i] -> count(j) as nir")?;
//! let coords = vec![vec![0, 0], vec![0, 1], vec![1, 1], vec![3, 2]];
//! let result = evaluate_on_coords(
//!     &query,
//!     &["i".into(), "j".into()],
//!     &[DimBounds::from_extent(4), DimBounds::from_extent(4)],
//!     coords.iter().map(|c| c.as_slice()),
//! )?;
//! assert_eq!(result.get(&[0], "nir")?, 2);
//! assert_eq!(result.get(&[2], "nir")?, 0);
//! assert!(result.get(&[0], "oops").is_err());
//! # Ok::<(), attr_query::QueryError>(())
//! ```

pub mod ast;
pub mod cin;
pub mod error;
pub mod eval;
pub mod parser;
pub mod transform;

pub use ast::{Aggregate, AttrQuery, QueryField};
pub use error::QueryError;
pub use eval::QueryResult;
pub use parser::parse_query;
