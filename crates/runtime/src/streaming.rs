//! The streaming side of the service: pipeline plumbing and streamed packers.
//!
//! [`ConversionService::convert_stream`](crate::ConversionService::convert_stream)
//! orchestrates three pieces that live here:
//!
//! * [`classify`](self) — decides whether a target has a streamed packer
//!   (CSR, CSF, and mode-ordered `CSF@...` registry formats) or must fall
//!   back to materialising the input;
//! * [`pump`](self) — the producer/consumer pipeline: a producer thread pulls
//!   [`CoordBlock`]s from the source and sends them through a *bounded*
//!   channel (the bound is the backpressure: a slow sorter stalls the
//!   producer instead of letting blocks pile up), while the consumer groups
//!   blocks and pre-sorts each group in parallel on the service's
//!   [`WorkerPool`] before feeding the [`ExternalSorter`];
//! * the `assemble_*` packers — they drain the sorter straight into the same
//!   packing loops the in-memory engine uses (`CsfBuilder`, the CSR
//!   count/prefix/fill), which is what makes streamed output byte-identical.

use std::path::PathBuf;
use std::sync::mpsc;

use conv_stream::sorter::MemRun;
use conv_stream::{
    CooSink, CoordBlock, ExternalSorter, MemoryBudget, StreamStats, TensorSink, TensorStream,
};
use obs::Span;
use sparse_conv::convert::{AnyMatrix, FormatId};
use sparse_conv::{ConvertError, Format};
use sparse_formats::{CooMatrix, CsfBuilder, CsfTensor, CsrMatrix};
use sparse_tensor::Shape;

use crate::pool::WorkerPool;

/// Tuning knobs of a streaming conversion.
#[derive(Debug, Clone, Default)]
pub struct StreamOptions {
    /// Working-set budget for the external sort (sort buffers, in-flight
    /// blocks, merge read buffers). Inputs that fit stay entirely in memory.
    pub budget: MemoryBudget,
    /// Capacity of the bounded block channel between the producer and the
    /// sorter — the backpressure depth. `0` means "one block per worker".
    pub channel_blocks: usize,
    /// Directory for spill runs (the system temp directory when `None`).
    pub spill_dir: Option<PathBuf>,
}

impl StreamOptions {
    /// Options converting under `budget` with default pipeline depth.
    pub fn with_budget(budget: MemoryBudget) -> Self {
        StreamOptions {
            budget,
            ..StreamOptions::default()
        }
    }
}

/// A streamed conversion's result: the packed tensor plus the streaming
/// statistics (spill counts, working-set high-water mark).
#[derive(Debug)]
pub struct StreamConversion {
    /// The conversion result, byte-identical to the in-memory path.
    pub tensor: AnyMatrix,
    /// What the pipeline did to produce it.
    pub stats: StreamStats,
}

/// How a target is reached from a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum StreamTarget {
    /// Streamed CSR: sort by row, count/prefix/fill.
    Csr,
    /// Streamed CSF along a mode order (the identity for stock CSF);
    /// `custom` marks registry `CSF@...` targets that wrap into a
    /// [`CustomTensor`](sparse_conv::generic::CustomTensor).
    Csf {
        mode_order: Vec<usize>,
        custom: bool,
    },
    /// No streamed packer: materialise to COO, then convert in memory.
    Materialize,
}

/// Classifies a target for an order-`order` stream.
pub(crate) fn classify(target: &Format, order: usize) -> StreamTarget {
    match target.id() {
        Some(FormatId::Csr) if order == 2 => StreamTarget::Csr,
        Some(FormatId::Csf) => StreamTarget::Csf {
            mode_order: (0..order).collect(),
            custom: false,
        },
        None => match target.mode_order() {
            Some(mode_order) if mode_order.len() == order => StreamTarget::Csf {
                mode_order,
                custom: true,
            },
            _ => StreamTarget::Materialize,
        },
        _ => StreamTarget::Materialize,
    }
}

/// Runs the producer/consumer pipeline: a producer thread feeds blocks into
/// a bounded channel; the calling thread drains it in groups of up to
/// `threads` blocks, pre-sorts each group on the pool, and pushes the runs
/// into the sorter in arrival order (which later merges use to break ties).
pub(crate) fn pump<S: TensorStream + Send>(
    stream: &mut S,
    sorter: &mut ExternalSorter,
    pool: &WorkerPool,
    threads: usize,
    channel_blocks: usize,
) -> Result<(), ConvertError> {
    let tracker = sorter.tracker().clone();
    let key = sorter.key().to_vec();
    let group_size = threads.max(1);
    let depth = if channel_blocks == 0 {
        group_size
    } else {
        channel_blocks
    };
    // One span for the whole pipeline; the consumer loop below runs on this
    // thread, so the per-group pre-sort spans nest under it.
    let pump_span = Span::enter("stream.pump");
    std::thread::scope(|s| {
        let (tx, rx) = mpsc::sync_channel::<CoordBlock>(depth);
        let producer_tracker = tracker.clone();
        let producer = s.spawn(move || -> Result<(), ConvertError> {
            while let Some(block) = stream.next_block()? {
                producer_tracker.add(block.approx_bytes());
                if tx.send(block).is_err() {
                    // The consumer hung up after an error; it reports it.
                    return Ok(());
                }
            }
            Ok(())
        });
        let consumed = (move || -> Result<(), ConvertError> {
            // `rx` is moved in, so an early error return drops it and
            // unblocks the producer.
            loop {
                let mut group: Vec<CoordBlock> = match rx.recv() {
                    Ok(b) => vec![b],
                    Err(_) => return Ok(()),
                };
                while group.len() < group_size {
                    match rx.try_recv() {
                        Ok(b) => group.push(b),
                        Err(_) => break,
                    }
                }
                let presort = Span::enter("stream.presort");
                presort.add_items(group.iter().map(|b| b.nnz() as u64).sum());
                let runs: Vec<MemRun> = if threads > 1 && group.len() > 1 {
                    pool.run(group.len(), |i| MemRun::from_block(&group[i], &key))
                } else {
                    group.iter().map(|b| MemRun::from_block(b, &key)).collect()
                };
                drop(presort);
                for (block, run) in group.iter().zip(runs) {
                    tracker.sub(block.approx_bytes());
                    sorter.push_run(run)?;
                }
            }
        })();
        let produced = producer.join().expect("stream producer panicked");
        produced?;
        consumed
    })?;
    drop(pump_span);
    Ok(())
}

/// Drains the sorter into a CSR matrix: rows arrive in nondecreasing order
/// (and within a row in arrival order, because the sort key is the row
/// alone), so one counting pass plus a prefix sum reproduces
/// `engine::to_csr`'s output exactly.
pub(crate) fn assemble_csr(
    shape: &Shape,
    sorter: ExternalSorter,
) -> Result<(CsrMatrix, StreamStats), ConvertError> {
    let (rows, cols) = (shape.dim(0), shape.dim(1));
    let entries = sorter.stats().entries as usize;
    let span = Span::enter("stream.assemble");
    span.add_items(entries as u64);
    let mut counts = vec![0usize; rows];
    let mut crd = Vec::with_capacity(entries);
    let mut vals = Vec::with_capacity(entries);
    let stats = sorter.drain(|coord, v| {
        counts[coord[0]] += 1;
        crd.push(coord[1]);
        vals.push(v);
        Ok(())
    })?;
    let mut pos = vec![0usize; rows + 1];
    for i in 0..rows {
        pos[i + 1] = pos[i] + counts[i];
    }
    let csr = CsrMatrix::from_parts(rows, cols, pos, crd, vals)
        .expect("assembled CSR structure is valid");
    Ok((csr, stats))
}

/// Drains the sorter into CSF along `mode_order` (storage level `d` holds
/// canonical mode `mode_order[d]`). The sorter's key is `mode_order` itself,
/// so entries arrive exactly as the engine's stable lexicographic sort of
/// the permuted tuples would emit them, and the shared [`CsfBuilder`] packs
/// them identically.
pub(crate) fn assemble_csf(
    shape: &Shape,
    mode_order: &[usize],
    sorter: ExternalSorter,
) -> Result<(CsfTensor, StreamStats), ConvertError> {
    let span = Span::enter("stream.assemble");
    span.add_items(sorter.stats().entries);
    let packed = Shape::new(mode_order.iter().map(|&m| shape.dim(m)).collect());
    let mut builder = CsfBuilder::new(packed);
    let mut buf = vec![0usize; mode_order.len()];
    let stats = sorter.drain(|coord, v| {
        for (d, &m) in mode_order.iter().enumerate() {
            buf[d] = coord[m];
        }
        builder.push(&buf, v);
        Ok(())
    })?;
    Ok((builder.finish(), stats))
}

/// Consumes the whole stream into an in-memory COO source (the fallback for
/// targets without a streamed packer), counting blocks and entries.
pub(crate) fn materialize<S: TensorStream>(
    stream: &mut S,
    stats: &mut StreamStats,
) -> Result<AnyMatrix, ConvertError> {
    let span = Span::enter("stream.materialize");
    let mut sink = CooSink::new(stream.shape().clone());
    while let Some(block) = stream.next_block()? {
        stats.blocks += 1;
        stats.entries += block.nnz() as u64;
        sink.push_block(block)?;
    }
    span.add_items(stats.entries);
    let tensor = sink.into_tensor();
    Ok(if tensor.order() == 2 {
        let mut m = CooMatrix::new(tensor.shape().dim(0), tensor.shape().dim(1));
        for p in 0..tensor.nnz() {
            m.push(tensor.crd(0)[p], tensor.crd(1)[p], tensor.values()[p]);
        }
        AnyMatrix::Coo(m)
    } else {
        AnyMatrix::Coo3(tensor)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_streamed_targets() {
        assert_eq!(classify(&Format::from(FormatId::Csr), 2), StreamTarget::Csr);
        // CSR needs an order-2 stream; an order-3 stream materialises.
        assert_eq!(
            classify(&Format::from(FormatId::Csr), 3),
            StreamTarget::Materialize
        );
        assert_eq!(
            classify(&Format::from(FormatId::Csf), 3),
            StreamTarget::Csf {
                mode_order: vec![0, 1, 2],
                custom: false
            }
        );
        let permuted: Format = "CSF@2,0,1".parse().unwrap();
        assert_eq!(
            classify(&permuted, 3),
            StreamTarget::Csf {
                mode_order: vec![2, 0, 1],
                custom: true
            }
        );
        assert_eq!(classify(&permuted, 2), StreamTarget::Materialize);
        assert_eq!(
            classify(&Format::from(FormatId::Ell), 2),
            StreamTarget::Materialize
        );
    }
}
