//! A concurrent conversion *service* on top of `sparse-conv`.
//!
//! The paper's performance argument rests on amortising specialisation: the
//! generator emits one routine per format pair, and every subsequent
//! conversion reuses it. `conv-runtime` brings the same economics to this
//! reproduction at execution time:
//!
//! * [`cache::PlanCache`] memoises [`ConversionPlan`](sparse_conv::ConversionPlan)s
//!   per pair of [`Format`](sparse_conv::Format) handles (i.e. per pair of
//!   spec fingerprints) so planning happens once per pair, not once per
//!   call — for registry (user-defined) formats exactly like the stock
//!   presets;
//! * [`kernels`] are outer-range–partitioned parallel versions of the hot
//!   conversion paths (COO→CSR via per-chunk histograms merged by prefix
//!   sum, CSR→CSC transpose, CSR→BCSR, and the root-fiber-partitioned
//!   order-3 COO3→CSF sort-and-pack), built on scoped `std::thread`s and
//!   **bit-identical** to the sequential engine;
//! * [`service::ConversionService`] is the batch front end: it routes each
//!   request over `conv-planner`'s format graph (direct, via-COO, or a
//!   cost-model-chosen multi-hop chain such as shuffled
//!   `COO → CSR → BCSR`, with measured hop durations calibrating the edge
//!   costs online), picks parallel or sequential execution, and schedules
//!   independent conversions across a [`pool::WorkerPool`]; the original
//!   two-way router survives as [`service::RoutingPolicy::Legacy`];
//! * [`streaming`] is the out-of-core path:
//!   [`ConversionService::convert_stream`](service::ConversionService::convert_stream)
//!   pipelines `conv-stream` coordinate blocks through the pool into an
//!   external merge sort, so a tensor larger than memory converts to
//!   CSR/CSF under a fixed [`MemoryBudget`](conv_stream::MemoryBudget),
//!   byte-identical to the in-memory engine.
//!
//! # Quickstart
//!
//! ```
//! use conv_runtime::{ConversionService, ServiceConfig};
//! use sparse_conv::convert::{AnyMatrix, FormatId};
//! use sparse_formats::CooMatrix;
//! use sparse_tensor::example::figure1_matrix;
//!
//! let service = ConversionService::new(ServiceConfig::with_threads(4));
//! let coo = AnyMatrix::Coo(CooMatrix::from_triples(&figure1_matrix()));
//!
//! // Single conversions reuse cached plans...
//! let csr = service.convert(&coo, FormatId::Csr)?;
//! assert_eq!(csr.format(), FormatId::Csr);
//!
//! // ...and batches spread independent jobs across the worker pool.
//! let jobs = vec![(coo.clone(), FormatId::Csc), (csr, FormatId::Ell)];
//! let results = service.convert_batch(&jobs);
//! assert!(results.iter().all(|r| r.is_ok()));
//!
//! // After the warm-up above, re-converting the same pair plans nothing.
//! let before = service.stats().plan_misses;
//! service.convert(&coo, FormatId::Csr)?;
//! assert_eq!(service.stats().plan_misses, before);
//! # Ok::<(), sparse_conv::ConvertError>(())
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod kernels;
pub mod partition;
pub mod pool;
pub mod service;
pub mod streaming;

pub use cache::{PlanCache, PlanKey};
pub use pool::WorkerPool;
pub use service::{ConversionService, Route, RoutingPolicy, ServiceConfig, ServiceStats};
pub use streaming::{StreamConversion, StreamOptions};
