//! A scoped worker pool for batch scheduling.
//!
//! The pool runs a fixed-size set of `std::thread::scope` workers that pull
//! job indices from a shared atomic counter — self-balancing without
//! channels or work stealing, and safe to use with borrowed job data because
//! the scope outlives no borrow.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-width pool of scoped worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// A pool of `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// A pool sized to the machine (`std::thread::available_parallelism`,
    /// falling back to one worker when it cannot be determined).
    pub fn machine_sized() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        WorkerPool::new(threads)
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job(0..count)` across the pool and returns the results in job
    /// order. Jobs are claimed dynamically, so cheap jobs do not stall
    /// behind expensive ones assigned to the same worker.
    ///
    /// With one worker (or one job) everything runs on the calling thread.
    pub fn run<T, F>(&self, count: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if count == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(count);
        if workers == 1 {
            return (0..count).map(&job).collect();
        }
        let next = AtomicUsize::new(0);
        let mut per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let job = &job;
                    s.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= count {
                                break;
                            }
                            out.push((idx, job(idx)));
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
        for chunk in &mut per_worker {
            for (idx, value) in chunk.drain(..) {
                slots[idx] = Some(value);
            }
        }
        slots
            .into_iter()
            .map(|v| v.expect("every job index was claimed exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        let pool = WorkerPool::new(4);
        let out = pool.run(32, |i| i * i);
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_and_empty_batches() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.run(3, |i| i + 1), vec![1, 2, 3]);
        assert!(pool.run(0, |i| i).is_empty());
        assert_eq!(WorkerPool::new(0).threads(), 1);
        assert!(WorkerPool::machine_sized().threads() >= 1);
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let pool = WorkerPool::new(16);
        assert_eq!(pool.run(2, |i| i), vec![0, 1]);
    }
}
