//! The conversion service: cached planning, routed execution, batching.
//!
//! [`ConversionService`] is the front door of the runtime. Every conversion
//! goes through three stages:
//!
//! 1. **plan** — the [`PlanCache`] returns the pair's [`ConversionPlan`],
//!    building it at most once per `(source, target, spec fingerprint)`;
//! 2. **route** — `conv-planner`'s [`FormatGraph`] plans a shortest path
//!    over the format graph: directly, *via COO* (profitable when a padded
//!    source such as DIA or ELL would be re-scanned by a multi-pass plan),
//!    or along a longer cost-model-chosen chain such as shuffled
//!    `COO → CSR → BCSR`, where the row-major intermediate feeds BCSR's
//!    block analysis cheaper than the direct kernel. Measured hop durations
//!    flow back into the graph's edge costs (online calibration); the
//!    original two-way router remains as [`RoutingPolicy::Legacy`] and as
//!    the fallback when the graph has no path;
//! 3. **execute** — hot pairs (COO→CSR, CSR→CSC, CSR→BCSR, and the tensor
//!    pair COO3→CSF) run on the outer-range–partitioned parallel kernels
//!    when the input is large enough to pay for thread startup; everything
//!    else falls back to the sequential `sparse_conv` engine. Both paths
//!    produce bit-identical output.
//!
//! [`ConversionService::convert_batch`] schedules many independent
//! conversions across a [`WorkerPool`]; batched jobs execute sequentially
//! inside each worker (the batch itself is the parallel axis), so a batch
//! never oversubscribes the machine.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use conv_planner::{FormatGraph, PlannerConfig, TensorAttrs};
use conv_stream::{ExternalSorter, MemTracker, SorterConfig, StreamStats, TensorStream};
use obs::{Collector, ConversionReport, Registry, Span};
use sparse_conv::convert::{AnyMatrix, FormatId};
use sparse_conv::{engine, ConversionPlan, ConvertError, Format};

use crate::cache::PlanCache;
use crate::kernels;
use crate::pool::WorkerPool;
use crate::streaming::{self, StreamConversion, StreamOptions, StreamTarget};

/// Tuning knobs of a [`ConversionService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads for parallel kernels and batch scheduling.
    pub threads: usize,
    /// Minimum number of stored nonzeros before a conversion is worth
    /// running on the parallel kernels (small inputs lose to thread
    /// startup).
    pub parallel_nnz_threshold: usize,
    /// How conversions are routed (see [`RoutingPolicy`]).
    pub routing: RoutingPolicy,
    /// Whether measured hop durations refine the planner's edge costs
    /// (bounded, thread-safe EWMA). Disable for reproducible routing in
    /// benchmarks.
    pub online_calibration: bool,
}

impl ServiceConfig {
    /// A config using `threads` workers and the default parallelism
    /// threshold.
    pub fn with_threads(threads: usize) -> Self {
        ServiceConfig {
            threads: threads.max(1),
            ..ServiceConfig::default()
        }
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            threads: WorkerPool::machine_sized().threads(),
            parallel_nnz_threshold: 1 << 14,
            routing: RoutingPolicy::CostModel,
            online_calibration: true,
        }
    }
}

/// Which router decides how a conversion request executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// Plan the cheapest admissible route over the format graph
    /// (`conv-planner`): direct, via COO, or a longer multi-hop chain.
    /// Falls back to [`RoutingPolicy::Legacy`] when the graph has no path.
    #[default]
    CostModel,
    /// The original two-way router: direct, or via COO for padded
    /// multi-pass sources (kept as an escape hatch and for A/B runs).
    Legacy,
    /// Always convert directly (ablation baseline).
    Direct,
    /// Force the via-COO detour whenever the source is padded (ablation).
    ViaCoo,
    /// Force the cheapest *multi-hop* route whenever one is admissible;
    /// direct only when no chain exists (ablation).
    MultiHop,
}

impl std::str::FromStr for RoutingPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" | "cost-model" => Ok(RoutingPolicy::CostModel),
            "legacy" => Ok(RoutingPolicy::Legacy),
            "direct" => Ok(RoutingPolicy::Direct),
            "via-coo" => Ok(RoutingPolicy::ViaCoo),
            "multi-hop" => Ok(RoutingPolicy::MultiHop),
            other => Err(format!(
                "unknown routing policy '{other}' (expected auto|legacy|direct|via-coo|multi-hop)"
            )),
        }
    }
}

/// How the service decided to execute a conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// Run the (source → target) routine directly.
    Direct,
    /// Convert to COO first, then (COO → target): cheaper when the source
    /// stores many padding zeros that a multi-pass plan would re-scan.
    ViaCoo,
    /// Convert along the full format path (source first, target last,
    /// `len() >= 3`), chosen by the planner's cost model.
    MultiHop(Vec<Format>),
}

/// Monotonic counters describing what a service has executed.
#[derive(Debug, Default)]
struct ServiceCounters {
    conversions: AtomicU64,
    parallel_kernels: AtomicU64,
    sequential: AtomicU64,
    via_coo: AtomicU64,
    multi_hop: AtomicU64,
    batch_jobs: AtomicU64,
    streams: AtomicU64,
    stream_spilled_runs: AtomicU64,
    stream_spilled_bytes: AtomicU64,
    stream_peak_bytes: AtomicUsize,
    materialized: AtomicU64,
}

impl ServiceCounters {
    fn reset(&self) {
        self.conversions.store(0, Ordering::Relaxed);
        self.parallel_kernels.store(0, Ordering::Relaxed);
        self.sequential.store(0, Ordering::Relaxed);
        self.via_coo.store(0, Ordering::Relaxed);
        self.multi_hop.store(0, Ordering::Relaxed);
        self.batch_jobs.store(0, Ordering::Relaxed);
        self.streams.store(0, Ordering::Relaxed);
        self.stream_spilled_runs.store(0, Ordering::Relaxed);
        self.stream_spilled_bytes.store(0, Ordering::Relaxed);
        self.stream_peak_bytes.store(0, Ordering::Relaxed);
        self.materialized.store(0, Ordering::Relaxed);
    }
}

/// Per-call execution facts captured while a conversion runs, for its
/// [`ConversionReport`] (the aggregate [`ServiceCounters`] can't attribute
/// them to one call under concurrency).
#[derive(Default)]
struct ExecTrace {
    route: &'static str,
    plan_cache_hit: bool,
    parallel_kernel: bool,
    /// Format path the conversion followed (empty for plain direct routes,
    /// filled in for via-COO and multi-hop).
    path: Vec<String>,
}

/// A point-in-time copy of a service's counters (plus its plan-cache
/// statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Conversions requested (batch jobs included).
    pub conversions: u64,
    /// Conversions executed on a parallel kernel.
    pub parallel_kernels: u64,
    /// Conversions executed on the sequential engine.
    pub sequential: u64,
    /// Conversions routed through an intermediate COO.
    pub via_coo: u64,
    /// Conversions executed along a planner-chosen multi-hop chain.
    pub multi_hop: u64,
    /// Jobs submitted through [`ConversionService::convert_batch`].
    pub batch_jobs: u64,
    /// Streaming conversions requested through
    /// [`ConversionService::convert_stream`].
    pub streams: u64,
    /// Sorted runs the streaming conversions spilled to disk.
    pub stream_spilled_runs: u64,
    /// Bytes the streaming conversions wrote to spill files.
    pub stream_spilled_bytes: u64,
    /// High-water mark (bytes) of any streaming conversion's tracked
    /// working set.
    pub stream_peak_bytes: usize,
    /// Streaming requests that had no streamed packer for their target and
    /// fell back to materialising the input in memory.
    pub materialized: u64,
    /// Plan-cache hits.
    pub plan_hits: u64,
    /// Plan-cache misses (plans built).
    pub plan_misses: u64,
    /// Distinct plans currently cached.
    pub cached_plans: usize,
}

/// A concurrent conversion service over the `sparse_conv` engine.
#[derive(Debug)]
pub struct ConversionService {
    config: ServiceConfig,
    pool: WorkerPool,
    cache: PlanCache,
    graph: FormatGraph,
    counters: ServiceCounters,
    last_report: Mutex<Option<ConversionReport>>,
}

impl Default for ConversionService {
    fn default() -> Self {
        Self::new(ServiceConfig::default())
    }
}

impl ConversionService {
    /// A service with the given configuration and an empty plan cache.
    pub fn new(config: ServiceConfig) -> Self {
        ConversionService {
            config,
            pool: WorkerPool::new(config.threads),
            cache: PlanCache::new(),
            graph: FormatGraph::new(),
            counters: ServiceCounters::default(),
            last_report: Mutex::new(None),
        }
    }

    /// The service's configuration.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// The plan cache (for inspection and warm-up).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.cache
    }

    /// The route planner's format graph — seed it from a committed bench
    /// snapshot ([`FormatGraph::seed_from_bench_json`]) or inspect its
    /// calibration state.
    pub fn format_graph(&self) -> &FormatGraph {
        &self.graph
    }

    /// The planner configuration derived from this service's settings.
    fn planner_config(&self, exclude_direct: bool) -> PlannerConfig {
        PlannerConfig {
            threads: self.config.threads,
            parallel_nnz_threshold: self.config.parallel_nnz_threshold,
            exclude_direct,
            ..PlannerConfig::default()
        }
    }

    /// Builds (and caches) the plans for every pair in `pairs`, so a later
    /// traffic burst pays no planning cost. Pairs are anything resolving to
    /// [`Format`] handles — stock identifiers or registry (custom) formats.
    ///
    /// # Errors
    ///
    /// Returns the first planning error (e.g. a DOK target).
    pub fn warm_up<F>(&self, pairs: &[(F, F)]) -> Result<(), ConvertError>
    where
        F: Clone + Into<Format>,
    {
        for (source, target) in pairs {
            self.cache.plan(source.clone(), target.clone())?;
        }
        Ok(())
    }

    /// Converts one tensor, with cached planning, cost-model routing, and
    /// parallel kernels for the hot pairs. The target is anything resolving
    /// to a [`Format`] — registry (custom) formats get plan caching and
    /// routing exactly like the stock presets.
    ///
    /// # Errors
    ///
    /// Returns an error when the target cannot represent the input or has no
    /// coordinate-hierarchy specification (DOK).
    pub fn convert<F: Into<Format>>(
        &self,
        src: &AnyMatrix,
        target: F,
    ) -> Result<AnyMatrix, ConvertError> {
        self.convert_reported(src, &target.into(), true)
            .map(|(tensor, _)| tensor)
    }

    /// Like [`ConversionService::convert`], additionally returning the
    /// [`ConversionReport`] for this call: the route taken, whether the plan
    /// came from the cache, the threads used, and the per-phase span
    /// breakdown recorded while the conversion ran.
    ///
    /// With the `conv-obs` feature disabled the report still carries the
    /// route/cache/thread fields (they are plain data captured inline), but
    /// its phase tree and durations are empty — no timing is collected.
    ///
    /// # Errors
    ///
    /// Exactly as [`ConversionService::convert`].
    pub fn convert_traced<F: Into<Format>>(
        &self,
        src: &AnyMatrix,
        target: F,
    ) -> Result<(AnyMatrix, ConversionReport), ConvertError> {
        self.convert_reported(src, &target.into(), true)
    }

    /// The report of the most recently *completed* conversion on this
    /// service, if any. Under concurrency (batches, racing callers) "most
    /// recent" means last-to-finish; use [`ConversionService::convert_traced`]
    /// to pair a report with its own call.
    pub fn last_report(&self) -> Option<ConversionReport> {
        self.last_report.lock().unwrap().clone()
    }

    /// The route [`ConversionService::convert`] would take for this source
    /// instance and target (exposed for inspection and tests).
    ///
    /// # Errors
    ///
    /// Propagates planning errors.
    pub fn route_for<F: Into<Format>>(
        &self,
        src: &AnyMatrix,
        target: F,
    ) -> Result<Route, ConvertError> {
        let target = target.into();
        let plan = self.cache.plan(src.format(), &target)?;
        self.decide_route(src, &target, &plan)
    }

    /// Converts a batch of independent jobs across the worker pool,
    /// returning one result per job in submission order. Planning is shared
    /// through the cache; each job executes sequentially inside its worker
    /// (the batch is the parallel axis).
    pub fn convert_batch<F>(&self, jobs: &[(AnyMatrix, F)]) -> Vec<Result<AnyMatrix, ConvertError>>
    where
        F: Clone + Into<Format> + Sync,
    {
        self.counters
            .batch_jobs
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);
        // Warm the cache up front so workers race on conversions, not plans.
        for (src, target) in jobs {
            let _ = self.cache.plan(src.format(), target.clone());
        }
        self.pool.run(jobs.len(), |i| {
            let (src, target) = &jobs[i];
            self.convert_reported(src, &target.clone().into(), false)
                .map(|(tensor, _)| tensor)
        })
    }

    /// Converts a [`TensorStream`] without ever materialising the input,
    /// bounded by the working-set budget in `opts`. Blocks are pre-sorted in
    /// parallel on the worker pool, buffered by an external merge sort that
    /// spills sorted runs to disk when the budget fills, and k-way-merged
    /// straight into the target's packing loop. Inputs that fit the budget
    /// never touch disk (the in-memory fast case, `stats.in_memory`).
    ///
    /// CSR (order-2), CSF, and mode-ordered `CSF@...` registry targets are
    /// streamed end to end and produce output **byte-identical** to
    /// [`ConversionService::convert`] on the materialised input. Any other
    /// target falls back to materialising the stream into COO and converting
    /// in memory (counted in [`ServiceStats::materialized`]).
    ///
    /// # Errors
    ///
    /// Propagates source I/O and parse errors, spill-file I/O errors, and
    /// conversion errors from the fallback path.
    pub fn convert_stream<S, F>(
        &self,
        mut stream: S,
        target: F,
        opts: &StreamOptions,
    ) -> Result<StreamConversion, ConvertError>
    where
        S: TensorStream + Send,
        F: Into<Format>,
    {
        let target = target.into();
        self.counters.streams.fetch_add(1, Ordering::Relaxed);
        let root = Span::enter_traced("convert_stream");
        let trace_id = root.handle().trace_id();
        let mut info = ExecTrace::default();
        let result = self.stream_exec(&mut stream, &target, opts, &mut info);
        drop(root);
        let records = Collector::global().take_trace(trace_id);
        let conv = result?;
        let mut report = ConversionReport::from_trace(&records);
        report.source = "stream".to_string();
        report.target = target.to_string();
        report.route = if info.route.is_empty() {
            // The streamed path never enters the in-memory router.
            "stream"
        } else {
            info.route
        }
        .to_string();
        report.path = if info.path.is_empty() {
            vec![report.source.clone(), report.target.clone()]
        } else {
            std::mem::take(&mut info.path)
        };
        report.plan_cache_hit = info.plan_cache_hit;
        report.parallel_kernel = info.parallel_kernel;
        report.threads = self.config.threads;
        report.streamed = true;
        report.in_memory = conv.stats.in_memory;
        report.spilled_runs = conv.stats.spilled_runs;
        report.spilled_bytes = conv.stats.spilled_bytes;
        *self.last_report.lock().unwrap() = Some(report);
        Ok(conv)
    }

    /// The body of [`ConversionService::convert_stream`], running inside the
    /// caller's traced root span.
    fn stream_exec<S: TensorStream + Send>(
        &self,
        stream: &mut S,
        target: &Format,
        opts: &StreamOptions,
        info: &mut ExecTrace,
    ) -> Result<StreamConversion, ConvertError> {
        let shape = stream.shape().clone();
        let plan = streaming::classify(target, shape.order());
        if plan == StreamTarget::Materialize {
            self.counters.materialized.fetch_add(1, Ordering::Relaxed);
            let mut stats = StreamStats {
                in_memory: true,
                ..StreamStats::default()
            };
            let src = streaming::materialize(stream, &mut stats)?;
            // `convert_inner` counts the conversion and applies
            // routing/kernels; its spans nest under this stream's trace.
            let tensor = self.convert_inner(&src, target, true, info)?;
            return Ok(StreamConversion { tensor, stats });
        }
        self.counters.conversions.fetch_add(1, Ordering::Relaxed);
        let key = match &plan {
            StreamTarget::Csr => vec![0],
            StreamTarget::Csf { mode_order, .. } => mode_order.clone(),
            StreamTarget::Materialize => unreachable!("handled above"),
        };
        let cfg = SorterConfig {
            budget: opts.budget,
            spill_dir: opts.spill_dir.clone(),
        };
        let mut sorter = ExternalSorter::new(shape.clone(), key, cfg, MemTracker::new())?;
        streaming::pump(
            stream,
            &mut sorter,
            &self.pool,
            self.config.threads,
            opts.channel_blocks,
        )?;
        let (tensor, stats) = match plan {
            StreamTarget::Csr => {
                let (csr, stats) = streaming::assemble_csr(&shape, sorter)?;
                (AnyMatrix::Csr(csr), stats)
            }
            StreamTarget::Csf { mode_order, custom } => {
                let (csf, stats) = streaming::assemble_csf(&shape, &mode_order, sorter)?;
                if custom {
                    let spec = target.spec().expect("mode order implies a spec");
                    let wrapped = sparse_conv::mode::custom_from_csf(spec, &mode_order, &csf)?;
                    (AnyMatrix::Custom(Box::new(wrapped)), stats)
                } else {
                    (AnyMatrix::Csf(csf), stats)
                }
            }
            StreamTarget::Materialize => unreachable!("handled above"),
        };
        self.counters
            .stream_spilled_runs
            .fetch_add(stats.spilled_runs, Ordering::Relaxed);
        self.counters
            .stream_spilled_bytes
            .fetch_add(stats.spilled_bytes, Ordering::Relaxed);
        self.counters
            .stream_peak_bytes
            .fetch_max(stats.peak_tracked_bytes, Ordering::Relaxed);
        Ok(StreamConversion { tensor, stats })
    }

    /// A snapshot of the service's execution and plan-cache statistics.
    ///
    /// # Snapshot coherence
    ///
    /// Each counter is read individually with `Ordering::Relaxed`; the
    /// snapshot is **not** an atomic cut across all of them. While other
    /// threads are converting, derived sums may be momentarily inconsistent
    /// (e.g. `parallel_kernels + sequential` can briefly trail `conversions`
    /// because a conversion is counted before its execution path is). Every
    /// individual counter is still exact — no increment is ever lost — and a
    /// snapshot taken while the service is quiescent is fully consistent.
    /// For before/after deltas in benchmarks, quiesce the service (or use
    /// [`ConversionService::reset_stats`]) instead of differencing live
    /// snapshots.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            conversions: self.counters.conversions.load(Ordering::Relaxed),
            parallel_kernels: self.counters.parallel_kernels.load(Ordering::Relaxed),
            sequential: self.counters.sequential.load(Ordering::Relaxed),
            via_coo: self.counters.via_coo.load(Ordering::Relaxed),
            multi_hop: self.counters.multi_hop.load(Ordering::Relaxed),
            batch_jobs: self.counters.batch_jobs.load(Ordering::Relaxed),
            streams: self.counters.streams.load(Ordering::Relaxed),
            stream_spilled_runs: self.counters.stream_spilled_runs.load(Ordering::Relaxed),
            stream_spilled_bytes: self.counters.stream_spilled_bytes.load(Ordering::Relaxed),
            stream_peak_bytes: self.counters.stream_peak_bytes.load(Ordering::Relaxed),
            materialized: self.counters.materialized.load(Ordering::Relaxed),
            plan_hits: self.cache.hits(),
            plan_misses: self.cache.misses(),
            cached_plans: self.cache.len(),
        }
    }

    /// Zeroes every service counter and the plan cache's hit/miss counters
    /// (cached plans are preserved) — for isolating a benchmark's measured
    /// phase from its warm-up, where warm-up conversions would otherwise
    /// pollute the deltas.
    pub fn reset_stats(&self) {
        self.counters.reset();
        self.cache.reset_counters();
    }

    /// Runs one conversion under a traced root span and assembles its
    /// [`ConversionReport`], which is also stored for
    /// [`ConversionService::last_report`].
    fn convert_reported(
        &self,
        src: &AnyMatrix,
        target: &Format,
        allow_parallel: bool,
    ) -> Result<(AnyMatrix, ConversionReport), ConvertError> {
        let root = Span::enter_traced("convert");
        let trace_id = root.handle().trace_id();
        let mut info = ExecTrace::default();
        let result = self.convert_inner(src, target, allow_parallel, &mut info);
        drop(root);
        // Take the trace even on error so failed conversions don't leave
        // records behind in the collector.
        let records = Collector::global().take_trace(trace_id);
        let tensor = result?;
        let mut report = ConversionReport::from_trace(&records);
        report.source = src.format().to_string();
        report.target = target.to_string();
        report.route = info.route.to_string();
        report.path = if info.path.is_empty() {
            vec![report.source.clone(), report.target.clone()]
        } else {
            std::mem::take(&mut info.path)
        };
        report.plan_cache_hit = info.plan_cache_hit;
        report.parallel_kernel = info.parallel_kernel;
        report.threads = if info.parallel_kernel {
            self.config.threads
        } else {
            1
        };
        report.in_memory = true;
        let registry = Registry::global();
        registry.counter("service.conversions").inc();
        if info.plan_cache_hit {
            registry.counter("service.plan_hits").inc();
        }
        registry
            .histogram("service.convert_ns")
            .observe(report.total_ns);
        *self.last_report.lock().unwrap() = Some(report.clone());
        Ok((tensor, report))
    }

    fn convert_inner(
        &self,
        src: &AnyMatrix,
        target: &Format,
        allow_parallel: bool,
        info: &mut ExecTrace,
    ) -> Result<AnyMatrix, ConvertError> {
        let span = Span::enter("service.plan");
        let (plan, cache_hit) = self.cache.plan_entry(src.format(), target)?;
        drop(span);
        info.plan_cache_hit = cache_hit;
        self.counters.conversions.fetch_add(1, Ordering::Relaxed);
        let span = Span::enter("service.route");
        let route = self.decide_route(src, target, &plan)?;
        drop(span);
        match route {
            Route::Direct => {
                info.route = "direct";
                self.execute(src, target, allow_parallel, info)
            }
            Route::ViaCoo => {
                info.route = "via-coo";
                info.path = vec![
                    src.format().to_string(),
                    "COO".to_string(),
                    target.to_string(),
                ];
                self.counters.via_coo.fetch_add(1, Ordering::Relaxed);
                let span = Span::enter("service.via_coo");
                let coo = AnyMatrix::Coo(match src {
                    AnyMatrix::Dia(m) => engine::to_coo(m),
                    AnyMatrix::Ell(m) => engine::to_coo(m),
                    AnyMatrix::Bcsr(m) => engine::to_coo(m),
                    AnyMatrix::Skyline(m) => engine::to_coo(m),
                    // Unpadded sources never choose ViaCoo; keep the match
                    // total anyway.
                    _ => {
                        drop(span);
                        info.route = "direct";
                        info.path.clear();
                        return self.execute(src, target, allow_parallel, info);
                    }
                });
                span.add_items(coo.nnz() as u64);
                drop(span);
                self.execute(&coo, target, allow_parallel, info)
            }
            Route::MultiHop(path) => {
                info.route = "multi-hop";
                info.path = path.iter().map(|f| f.to_string()).collect();
                self.counters.multi_hop.fetch_add(1, Ordering::Relaxed);
                let mut current = self.run_hop(src, &path[1], allow_parallel, info)?;
                for hop_target in &path[2..] {
                    current = self.run_hop(&current, hop_target, allow_parallel, info)?;
                }
                Ok(current)
            }
        }
    }

    /// One hop of a multi-hop route: cached planning, a timed execution
    /// span, and (when enabled) an online-calibration observation for the
    /// hop's edge.
    fn run_hop(
        &self,
        hop_src: &AnyMatrix,
        hop_target: &Format,
        allow_parallel: bool,
        info: &mut ExecTrace,
    ) -> Result<AnyMatrix, ConvertError> {
        let (_plan, _hit) = self.cache.plan_entry(hop_src.format(), hop_target)?;
        let span = Span::enter("service.hop");
        span.add_items(hop_src.nnz() as u64);
        let started = Instant::now();
        let out = self.execute(hop_src, hop_target, allow_parallel, info)?;
        let elapsed_ns = started.elapsed().as_nanos() as u64;
        drop(span);
        if self.config.online_calibration {
            let attrs = TensorAttrs::from_matrix(hop_src);
            self.graph.observe(
                &hop_src.format(),
                hop_target,
                attrs.stored_entries,
                attrs.rows_in_order,
                &attrs,
                &self.planner_config(false),
                elapsed_ns,
            );
        }
        Ok(out)
    }

    /// Whether the source stores padding zeros a multi-pass plan re-scans.
    fn is_padded(src: &AnyMatrix) -> bool {
        matches!(
            src,
            AnyMatrix::Dia(_) | AnyMatrix::Ell(_) | AnyMatrix::Bcsr(_) | AnyMatrix::Skyline(_)
        )
    }

    /// Routes a request according to the configured [`RoutingPolicy`].
    fn decide_route(
        &self,
        src: &AnyMatrix,
        target: &Format,
        plan: &ConversionPlan,
    ) -> Result<Route, ConvertError> {
        match self.config.routing {
            RoutingPolicy::CostModel => self.planned_route(src, target, plan, false),
            RoutingPolicy::MultiHop => self.planned_route(src, target, plan, true),
            RoutingPolicy::Legacy => self.choose_route(src, target, plan),
            RoutingPolicy::Direct => Ok(Route::Direct),
            RoutingPolicy::ViaCoo => Ok(
                if Self::is_padded(src) && target.id() != Some(FormatId::Coo) && src.nnz() > 0 {
                    Route::ViaCoo
                } else {
                    Route::Direct
                },
            ),
        }
    }

    /// Cost-model routing over the format graph; falls back to the legacy
    /// router when the graph has no path for the pair.
    fn planned_route(
        &self,
        src: &AnyMatrix,
        target: &Format,
        plan: &ConversionPlan,
        force_hops: bool,
    ) -> Result<Route, ConvertError> {
        let attrs = TensorAttrs::from_matrix(src);
        let cfg = self.planner_config(force_hops);
        match self.graph.plan_route(&src.format(), target, &attrs, &cfg) {
            None => self.choose_route(src, target, plan),
            Some(route) if route.is_direct() => Ok(Route::Direct),
            Some(route) => {
                // A padded source hopping once through COO is exactly the
                // legacy via-COO shortcut; keep reporting (and executing)
                // it as such.
                if route.path.len() == 3
                    && route.path[1].id() == Some(FormatId::Coo)
                    && Self::is_padded(src)
                {
                    Ok(Route::ViaCoo)
                } else {
                    Ok(Route::MultiHop(route.path))
                }
            }
        }
    }

    /// The original two-way router: direct, or via COO for padded
    /// multi-pass sources.
    fn choose_route(
        &self,
        src: &AnyMatrix,
        target: &Format,
        plan: &ConversionPlan,
    ) -> Result<Route, ConvertError> {
        let stored = src.stored_entries();
        let nnz = src.nnz();
        if stored <= nnz || target.id() == Some(FormatId::Coo) || nnz == 0 {
            return Ok(Route::Direct);
        }
        // Every pass of the direct plan re-scans the padded storage; the
        // via-COO route scans it once, materialises nnz triples, then runs
        // the (COO → target) plan over unpadded data.
        let direct_cost = plan.input_passes * stored;
        let coo_plan = self.cache.plan(FormatId::Coo, target)?;
        let via_cost = stored + nnz + coo_plan.input_passes * nnz;
        Ok(if via_cost < direct_cost {
            Route::ViaCoo
        } else {
            Route::Direct
        })
    }

    fn parallel_worthwhile(&self, nnz: usize, allow_parallel: bool) -> bool {
        allow_parallel && self.config.threads > 1 && nnz >= self.config.parallel_nnz_threshold
    }

    fn execute(
        &self,
        src: &AnyMatrix,
        target: &Format,
        allow_parallel: bool,
        info: &mut ExecTrace,
    ) -> Result<AnyMatrix, ConvertError> {
        let threads = self.config.threads;
        let span = Span::enter("service.execute");
        span.add_items(src.nnz() as u64);
        if self.parallel_worthwhile(src.nnz(), allow_parallel) {
            match (src, target.id()) {
                (AnyMatrix::Coo(m), Some(FormatId::Csr)) => {
                    info.parallel_kernel = true;
                    self.counters
                        .parallel_kernels
                        .fetch_add(1, Ordering::Relaxed);
                    return Ok(AnyMatrix::Csr(kernels::coo_to_csr(m, threads)));
                }
                (AnyMatrix::Csr(m), Some(FormatId::Csc)) => {
                    info.parallel_kernel = true;
                    self.counters
                        .parallel_kernels
                        .fetch_add(1, Ordering::Relaxed);
                    return Ok(AnyMatrix::Csc(kernels::csr_to_csc(m, threads)));
                }
                (
                    AnyMatrix::Csr(m),
                    Some(FormatId::Bcsr {
                        block_rows,
                        block_cols,
                    }),
                ) => {
                    info.parallel_kernel = true;
                    self.counters
                        .parallel_kernels
                        .fetch_add(1, Ordering::Relaxed);
                    return Ok(AnyMatrix::Bcsr(kernels::csr_to_bcsr(
                        m, block_rows, block_cols, threads,
                    )));
                }
                (AnyMatrix::Coo3(t), Some(FormatId::Csf)) => {
                    info.parallel_kernel = true;
                    self.counters
                        .parallel_kernels
                        .fetch_add(1, Ordering::Relaxed);
                    return Ok(AnyMatrix::Csf(kernels::coo_to_csf(t, threads)));
                }
                // Mode-ordered CSF targets (registry formats named `CSF@...`)
                // run the same root-partitioned kernel, sorted along the
                // target's mode order.
                (AnyMatrix::Coo3(t), None) => {
                    if let Some(order) = target.mode_order() {
                        if order.len() == 3 {
                            let spec = target.spec().expect("mode order implies a spec");
                            let csf = kernels::coo_to_csf_ordered(t, &order, threads);
                            let custom = sparse_conv::mode::custom_from_csf(spec, &order, &csf)?;
                            info.parallel_kernel = true;
                            self.counters
                                .parallel_kernels
                                .fetch_add(1, Ordering::Relaxed);
                            return Ok(AnyMatrix::Custom(Box::new(custom)));
                        }
                    }
                }
                _ => {}
            }
        }
        self.counters.sequential.fetch_add(1, Ordering::Relaxed);
        sparse_conv::convert(src, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_formats::{CooMatrix, CsrMatrix, DiaMatrix};
    use sparse_tensor::example::figure1_matrix;
    use sparse_tensor::SparseTriples;

    fn service(threads: usize) -> ConversionService {
        ConversionService::new(ServiceConfig {
            threads,
            parallel_nnz_threshold: 0,
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn service_output_matches_the_sequential_engine() {
        let t = figure1_matrix();
        let coo = AnyMatrix::Coo(CooMatrix::from_triples(&t));
        let svc = service(4);
        for target in [
            FormatId::Csr,
            FormatId::Csc,
            FormatId::Dia,
            FormatId::Ell,
            FormatId::Jad,
        ] {
            let got = svc.convert(&coo, target).unwrap();
            let want = sparse_conv::convert(&coo, target).unwrap();
            assert_eq!(got, want, "{target}");
        }
        let stats = svc.stats();
        assert_eq!(stats.conversions, 5);
        assert!(stats.parallel_kernels >= 1, "COO→CSR ran parallel");
    }

    #[test]
    fn planning_happens_once_per_pair() {
        let t = figure1_matrix();
        let coo = AnyMatrix::Coo(CooMatrix::from_triples(&t));
        let svc = service(2);
        for _ in 0..5 {
            svc.convert(&coo, FormatId::Csr).unwrap();
        }
        let stats = svc.stats();
        assert_eq!(stats.plan_misses, 1);
        assert_eq!(stats.plan_hits, 4);
        assert_eq!(stats.cached_plans, 1);
    }

    #[test]
    fn batch_results_keep_submission_order_and_surface_errors() {
        let t = figure1_matrix();
        let coo = AnyMatrix::Coo(CooMatrix::from_triples(&t));
        let csr = AnyMatrix::Csr(CsrMatrix::from_triples(&t));
        let jobs = vec![
            (coo.clone(), FormatId::Csr),
            (csr.clone(), FormatId::Csc),
            (coo.clone(), FormatId::Skyline), // rectangular: must fail
            (csr.clone(), FormatId::Dok),     // unsupported target
            (coo.clone(), FormatId::Ell),
        ];
        let svc = service(3);
        let results = svc.convert_batch(&jobs);
        assert_eq!(results.len(), 5);
        assert_eq!(results[0].as_ref().unwrap().format(), FormatId::Csr);
        assert_eq!(results[1].as_ref().unwrap().format(), FormatId::Csc);
        assert!(matches!(results[2], Err(ConvertError::Unsupported(_))));
        assert!(matches!(
            results[3],
            Err(ConvertError::UnsupportedTarget(FormatId::Dok))
        ));
        assert_eq!(results[4].as_ref().unwrap().format(), FormatId::Ell);
        assert_eq!(svc.stats().batch_jobs, 5);
    }

    #[test]
    fn padded_multi_pass_sources_route_via_coo() {
        // A 64x64 matrix with a dense main diagonal plus a scatter of first-row
        // entries, one per extra diagonal: DIA stores 32*64 padded entries for
        // 95 nonzeros, and DIA→ELL is a two-pass plan, so scanning the padding
        // twice costs far more than materialising COO once.
        let mut entries: Vec<(usize, usize, f64)> = (0..64).map(|i| (i, i, 1.0)).collect();
        entries.extend((1..32).map(|j| (0usize, j, 2.0)));
        let t = SparseTriples::from_matrix_entries(64, 64, entries).unwrap();
        let dia = AnyMatrix::Dia(DiaMatrix::from_triples(&t));
        let svc = service(1);
        assert_eq!(svc.route_for(&dia, FormatId::Ell).unwrap(), Route::ViaCoo);
        // COO targets and unpadded sources stay direct.
        assert_eq!(svc.route_for(&dia, FormatId::Coo).unwrap(), Route::Direct);
        let csr = AnyMatrix::Csr(CsrMatrix::from_triples(&t));
        assert_eq!(svc.route_for(&csr, FormatId::Ell).unwrap(), Route::Direct);
        // The routed conversion still produces the engine's exact output.
        let got = svc.convert(&dia, FormatId::Ell).unwrap();
        let want = sparse_conv::convert(&dia, FormatId::Ell).unwrap();
        assert_eq!(got, want);
        assert_eq!(svc.stats().via_coo, 1);
    }

    #[test]
    fn tensor_conversions_run_on_the_parallel_kernel() {
        let t = sparse_tensor::example::example3_tensor();
        let coo3 = AnyMatrix::Coo3(sparse_formats::CooTensor::from_triples(&t));
        let svc = service(4);
        let got = svc.convert(&coo3, FormatId::Csf).unwrap();
        let want = sparse_conv::convert(&coo3, FormatId::Csf).unwrap();
        assert_eq!(got, want);
        assert_eq!(svc.stats().parallel_kernels, 1);
        // CSF → COO3 goes through the sequential engine.
        let back = svc.convert(&got, FormatId::Coo3).unwrap();
        assert!(back.to_triples().same_values(&t));
        assert_eq!(svc.stats().sequential, 1);
        // Rank mismatches surface as errors, not panics.
        assert!(svc.convert(&coo3, FormatId::Csr).is_err());
    }

    #[test]
    fn mode_ordered_targets_run_on_the_parallel_kernel() {
        let t = sparse_tensor::example::example3_tensor();
        let coo3 = AnyMatrix::Coo3(sparse_formats::CooTensor::from_triples(&t));
        let svc = service(4);
        for order in sparse_conv::select::ORDER3_MODE_ORDERS {
            let target: Format = sparse_conv::mode::csf_ordered_name(&order).parse().unwrap();
            let got = svc.convert(&coo3, target.clone()).unwrap();
            let want = sparse_conv::convert(&coo3, &target).unwrap();
            assert_eq!(got, want, "CSF@{order:?}");
        }
        // Five permuted targets hit the kernel; the canonical order resolves
        // to the stock CSF handle and hits the stock kernel.
        assert_eq!(svc.stats().parallel_kernels, 6);
    }

    #[test]
    fn warm_up_builds_every_plan_in_advance() {
        let svc = service(2);
        svc.warm_up(&[
            (FormatId::Coo, FormatId::Csr),
            (FormatId::Csr, FormatId::Csc),
        ])
        .unwrap();
        assert_eq!(svc.stats().cached_plans, 2);
        assert!(svc.warm_up(&[(FormatId::Csr, FormatId::Dok)]).is_err());
    }

    #[test]
    fn small_inputs_do_not_spawn_threads() {
        let t = figure1_matrix();
        let coo = AnyMatrix::Coo(CooMatrix::from_triples(&t));
        let svc = ConversionService::new(ServiceConfig {
            threads: 4,
            parallel_nnz_threshold: 1_000_000,
            ..ServiceConfig::default()
        });
        svc.convert(&coo, FormatId::Csr).unwrap();
        let stats = svc.stats();
        assert_eq!(stats.parallel_kernels, 0);
        assert_eq!(stats.sequential, 1);
    }
}
