//! Memoisation of conversion plans.
//!
//! The paper's generator pays its specialisation cost once per format pair
//! and amortises it over every subsequent conversion; [`PlanCache`] gives the
//! runtime the same property. Plans are keyed by the *format handles* of the
//! pair — i.e. by spec fingerprint (see
//! [`FormatSpec::fingerprint`](sparse_conv::FormatSpec::fingerprint)), the
//! identity of the spec-first API. Registry (user-defined) formats therefore
//! share the cache with the stock presets: the second conversion to a
//! builder-made format is a plan hit, exactly like CSR. Keying on the
//! fingerprint also means persisted or cross-version keys stop matching the
//! moment a specification's text changes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sparse_conv::convert::plan_for_formats;
use sparse_conv::{ConversionPlan, ConvertError, Format};

/// The planning function a [`PlanCache`] memoises. Injectable so tests (and
/// alternative planners) can count or replace planning work.
pub type Planner = dyn Fn(&Format, &Format) -> Result<ConversionPlan, ConvertError> + Send + Sync;

/// Cache key: one plan per (source format, target format) pair of handles.
/// [`Format`] equality and hashing are fingerprint-based, so the key space
/// is the space of spec pairs — stock and registry formats alike.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Source format handle.
    pub source: Format,
    /// Target format handle.
    pub target: Format,
}

/// A thread-safe, memoising front end to the conversion planner.
pub struct PlanCache {
    planner: Box<Planner>,
    plans: Mutex<HashMap<PlanKey, Arc<ConversionPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanCache {
    /// A cache over the stock planner
    /// ([`plan_for_formats`]).
    pub fn new() -> Self {
        Self::with_planner(Box::new(|s: &Format, t: &Format| plan_for_formats(s, t)))
    }

    /// A cache over a custom planning function; `planner` runs at most once
    /// per distinct [`PlanKey`].
    pub fn with_planner(planner: Box<Planner>) -> Self {
        PlanCache {
            planner,
            plans: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The cache key for a pair of formats (any combination of stock
    /// identifiers and registry handles).
    pub fn key_for<S, T>(&self, source: S, target: T) -> PlanKey
    where
        S: Into<Format>,
        T: Into<Format>,
    {
        PlanKey {
            source: source.into(),
            target: target.into(),
        }
    }

    /// The plan for a pair, building it through the planner only on the
    /// first request.
    ///
    /// # Errors
    ///
    /// Propagates planner errors (e.g. DOK targets); errors are not cached.
    pub fn plan<S, T>(&self, source: S, target: T) -> Result<Arc<ConversionPlan>, ConvertError>
    where
        S: Into<Format>,
        T: Into<Format>,
    {
        self.plan_entry(source, target).map(|(plan, _)| plan)
    }

    /// Like [`PlanCache::plan`], additionally reporting whether the plan was
    /// answered from the cache (`true` on a hit) — the per-call signal a
    /// `ConversionReport` needs, which the aggregate counters can't provide
    /// under concurrency.
    ///
    /// # Errors
    ///
    /// Propagates planner errors (e.g. DOK targets); errors are not cached.
    pub fn plan_entry<S, T>(
        &self,
        source: S,
        target: T,
    ) -> Result<(Arc<ConversionPlan>, bool), ConvertError>
    where
        S: Into<Format>,
        T: Into<Format>,
    {
        let key = self.key_for(source, target);
        if let Some(plan) = self.plans.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(plan), true));
        }
        // Plan outside the lock: planning is pure and an occasional duplicate
        // build on a race is cheaper than holding the map across it.
        let plan = Arc::new((self.planner)(&key.source, &key.target)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.plans
            .lock()
            .unwrap()
            .entry(key)
            .or_insert_with(|| Arc::clone(&plan));
        Ok((plan, false))
    }

    /// Number of requests answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of requests that had to build a plan (== plans built, absent
    /// races).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct plans currently cached.
    pub fn len(&self) -> usize {
        self.plans.lock().unwrap().len()
    }

    /// True when no plan has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan (counters are preserved).
    pub fn clear(&self) {
        self.plans.lock().unwrap().clear();
    }

    /// Zeroes the hit/miss counters (cached plans are preserved) — for
    /// isolating benchmark measurement phases from their warm-up.
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("plans", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_conv::convert::FormatId;
    use sparse_conv::prelude::LevelKind;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn second_request_for_a_pair_plans_nothing() {
        let built = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&built);
        let cache = PlanCache::with_planner(Box::new(move |s: &Format, t: &Format| {
            counter.fetch_add(1, Ordering::SeqCst);
            plan_for_formats(s, t)
        }));
        let first = cache.plan(FormatId::Coo, FormatId::Csr).unwrap();
        assert_eq!(built.load(Ordering::SeqCst), 1);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        let second = cache.plan(FormatId::Coo, FormatId::Csr).unwrap();
        assert_eq!(built.load(Ordering::SeqCst), 1, "no re-planning");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(*first, *second);
        // Handle-keyed requests share entries with id-keyed ones: the key is
        // the fingerprint, not the spelling.
        let third = cache.plan(Format::coo(), Format::csr()).unwrap();
        assert_eq!(built.load(Ordering::SeqCst), 1);
        assert_eq!(*third, *second);
    }

    #[test]
    fn plan_entry_reports_per_call_hits_and_counters_reset() {
        let cache = PlanCache::new();
        let (_, hit) = cache.plan_entry(FormatId::Coo, FormatId::Csr).unwrap();
        assert!(!hit, "first request builds the plan");
        let (_, hit) = cache.plan_entry(FormatId::Coo, FormatId::Csr).unwrap();
        assert!(hit, "second request is a cache hit");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        cache.reset_counters();
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        assert_eq!(cache.len(), 1, "reset keeps the cached plans");
    }

    #[test]
    fn distinct_pairs_get_distinct_entries() {
        let cache = PlanCache::new();
        cache.plan(FormatId::Coo, FormatId::Csr).unwrap();
        cache.plan(FormatId::Csr, FormatId::Csc).unwrap();
        cache
            .plan(
                FormatId::Csr,
                FormatId::Bcsr {
                    block_rows: 2,
                    block_cols: 2,
                },
            )
            .unwrap();
        cache
            .plan(
                FormatId::Csr,
                FormatId::Bcsr {
                    block_rows: 4,
                    block_cols: 4,
                },
            )
            .unwrap();
        assert_eq!(cache.len(), 4);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 4, "counters survive clear");
    }

    #[test]
    fn registry_formats_share_the_cache_with_stock_presets() {
        let cache = PlanCache::new();
        let custom = Format::builder("CACHE-TEST-DCSR")
            .remap_str("(i,j) -> (i,j)")
            .unwrap()
            .dims(["i", "j"])
            .levels([LevelKind::Compressed, LevelKind::Compressed])
            .build()
            .unwrap();
        let plan = cache.plan(FormatId::Coo, &custom).unwrap();
        assert_eq!(plan.target, "CACHE-TEST-DCSR");
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        // Second request for the same custom target: a hit.
        cache.plan(FormatId::Coo, &custom).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // Custom sources plan too.
        let back = cache.plan(&custom, FormatId::Csr).unwrap();
        assert_eq!(back.source, "CACHE-TEST-DCSR");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn dok_sources_are_planned_as_coo_and_dok_targets_fail() {
        let cache = PlanCache::new();
        let dok = cache.plan(FormatId::Dok, FormatId::Csr).unwrap();
        assert_eq!(dok.source, "COO");
        assert!(matches!(
            cache.plan(FormatId::Csr, FormatId::Dok),
            Err(ConvertError::UnsupportedTarget(FormatId::Dok))
        ));
        // Failed plans are not cached and do not count as hits.
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let cache = Arc::new(PlanCache::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for _ in 0..8 {
                        cache.plan(FormatId::Coo, FormatId::Csr).unwrap();
                    }
                });
            }
        });
        assert_eq!(cache.hits() + cache.misses(), 32);
        assert_eq!(cache.len(), 1);
    }
}
