//! Memoisation of conversion plans.
//!
//! The paper's generator pays its specialisation cost once per format pair
//! and amortises it over every subsequent conversion; [`PlanCache`] gives the
//! runtime the same property. Plans are keyed by `(source, target, spec
//! fingerprint)` — the fingerprint (see
//! [`FormatSpec::fingerprint`](sparse_conv::FormatSpec::fingerprint)) records
//! the rendered specification text the plan was built from. Today every
//! `FormatId` maps to one stock spec, so the fingerprint is determined by the
//! pair; it is part of the key so that persisted or cross-version keys stop
//! matching the moment a stock specification's text changes, and so
//! user-supplied specs can join the same keyspace later without conflating
//! entries.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sparse_conv::convert::{plan_for_pair, FormatId};
use sparse_conv::{ConversionPlan, ConvertError, FormatSpec};

/// The planning function a [`PlanCache`] memoises. Injectable so tests (and
/// alternative planners) can count or replace planning work.
pub type Planner = dyn Fn(FormatId, FormatId) -> Result<ConversionPlan, ConvertError> + Send + Sync;

/// Cache key: one plan per (source format, target format, spec fingerprint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Source format.
    pub source: FormatId,
    /// Target format.
    pub target: FormatId,
    /// Combined fingerprint of the source and target [`FormatSpec`]s.
    pub spec_fingerprint: u64,
}

/// A thread-safe, memoising front end to the conversion planner.
pub struct PlanCache {
    planner: Box<Planner>,
    plans: Mutex<HashMap<PlanKey, Arc<ConversionPlan>>>,
    fingerprints: Mutex<HashMap<FormatId, u64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanCache {
    /// A cache over the stock planner
    /// ([`plan_for_pair`]).
    pub fn new() -> Self {
        Self::with_planner(Box::new(plan_for_pair))
    }

    /// A cache over a custom planning function; `planner` runs at most once
    /// per distinct [`PlanKey`].
    pub fn with_planner(planner: Box<Planner>) -> Self {
        PlanCache {
            planner,
            plans: Mutex::new(HashMap::new()),
            fingerprints: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The cache key for a pair: DOK sources are planned through the COO
    /// spec (they have no coordinate hierarchy of their own), matching
    /// [`plan_for_pair`].
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::UnsupportedTarget`] for DOK targets.
    pub fn key_for(&self, source: FormatId, target: FormatId) -> Result<PlanKey, ConvertError> {
        let spec_source = match source {
            FormatId::Dok => FormatId::Coo,
            other => other,
        };
        // One lock acquisition covers both lookups on the hot path.
        let mut memo = self.fingerprints.lock().unwrap();
        let fp_source = Self::fingerprint_of(&mut memo, spec_source)?;
        let fp_target = Self::fingerprint_of(&mut memo, target)?;
        Ok(PlanKey {
            source,
            target,
            spec_fingerprint: fp_source.rotate_left(17) ^ fp_target,
        })
    }

    fn fingerprint_of(
        memo: &mut HashMap<FormatId, u64>,
        id: FormatId,
    ) -> Result<u64, ConvertError> {
        if let Some(&fp) = memo.get(&id) {
            return Ok(fp);
        }
        let fp = FormatSpec::stock(id)?.fingerprint();
        memo.insert(id, fp);
        Ok(fp)
    }

    /// The plan for a pair, building it through the planner only on the
    /// first request.
    ///
    /// # Errors
    ///
    /// Propagates planner errors (e.g. DOK targets); errors are not cached.
    pub fn plan(
        &self,
        source: FormatId,
        target: FormatId,
    ) -> Result<Arc<ConversionPlan>, ConvertError> {
        let key = self.key_for(source, target)?;
        if let Some(plan) = self.plans.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(plan));
        }
        // Plan outside the lock: planning is pure and an occasional duplicate
        // build on a race is cheaper than holding the map across it.
        let plan = Arc::new((self.planner)(source, target)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.plans
            .lock()
            .unwrap()
            .entry(key)
            .or_insert_with(|| Arc::clone(&plan));
        Ok(plan)
    }

    /// Number of requests answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of requests that had to build a plan (== plans built, absent
    /// races).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct plans currently cached.
    pub fn len(&self) -> usize {
        self.plans.lock().unwrap().len()
    }

    /// True when no plan has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan (counters are preserved).
    pub fn clear(&self) {
        self.plans.lock().unwrap().clear();
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("plans", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn second_request_for_a_pair_plans_nothing() {
        let built = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&built);
        let cache = PlanCache::with_planner(Box::new(move |s, t| {
            counter.fetch_add(1, Ordering::SeqCst);
            plan_for_pair(s, t)
        }));
        let first = cache.plan(FormatId::Coo, FormatId::Csr).unwrap();
        assert_eq!(built.load(Ordering::SeqCst), 1);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        let second = cache.plan(FormatId::Coo, FormatId::Csr).unwrap();
        assert_eq!(built.load(Ordering::SeqCst), 1, "no re-planning");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(*first, *second);
    }

    #[test]
    fn distinct_pairs_get_distinct_entries() {
        let cache = PlanCache::new();
        cache.plan(FormatId::Coo, FormatId::Csr).unwrap();
        cache.plan(FormatId::Csr, FormatId::Csc).unwrap();
        cache
            .plan(
                FormatId::Csr,
                FormatId::Bcsr {
                    block_rows: 2,
                    block_cols: 2,
                },
            )
            .unwrap();
        cache
            .plan(
                FormatId::Csr,
                FormatId::Bcsr {
                    block_rows: 4,
                    block_cols: 4,
                },
            )
            .unwrap();
        assert_eq!(cache.len(), 4);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 4, "counters survive clear");
    }

    #[test]
    fn dok_sources_are_planned_as_coo_and_dok_targets_fail() {
        let cache = PlanCache::new();
        let dok = cache.plan(FormatId::Dok, FormatId::Csr).unwrap();
        assert_eq!(dok.source, "COO");
        assert!(matches!(
            cache.plan(FormatId::Csr, FormatId::Dok),
            Err(ConvertError::UnsupportedTarget(FormatId::Dok))
        ));
        // Failed plans are not cached and do not count as hits.
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let cache = Arc::new(PlanCache::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for _ in 0..8 {
                        cache.plan(FormatId::Coo, FormatId::Csr).unwrap();
                    }
                });
            }
        });
        assert_eq!(cache.hits() + cache.misses(), 32);
        assert_eq!(cache.len(), 1);
    }
}
