//! Outer-range partitioning for the parallel kernels.
//!
//! The coordinate-hierarchy abstraction (Chou et al. 2018) stores a tensor
//! level by level, so any contiguous range of outer-level positions (rows,
//! tensor root coordinates, block rows, or raw nonzero indices) can be
//! analysed and assembled independently of every other range. The helpers
//! here carve the outer dimension into such ranges, shared by the matrix
//! kernels (rows) and the tensor kernels (root fibers): [`outer_extent`]
//! reads the partitioned space off the canonical [`Shape`] instead of
//! per-kernel `rows`/`cols` plumbing, [`even_chunks`] splits a raw index
//! space into equally sized pieces, and [`balanced_chunks_by_pos`] splits a
//! compressed level's parents so every piece owns roughly the same number
//! of *children* (nonzeros), which is what actually balances work for
//! skewed inputs. [`merge_histograms`] is the prefix-sum merge every
//! histogram-scatter kernel uses to turn per-chunk counts into a global
//! `pos` array plus per-chunk scatter cursors.

use std::ops::Range;

use sparse_tensor::Shape;

/// Splits `0..n` into at most `parts` contiguous, non-empty ranges of nearly
/// equal length (the first `n % parts` ranges are one element longer).
/// Returns an empty vector when `n == 0`.
///
/// # Panics
///
/// Panics if `parts == 0`.
pub fn even_chunks(n: usize, parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0, "at least one chunk");
    let parts = parts.min(n);
    let mut out = Vec::with_capacity(parts);
    if n == 0 {
        return out;
    }
    let base = n / parts;
    let extra = n % parts;
    let mut start = 0;
    for c in 0..parts {
        let len = base + usize::from(c < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// The extent of the outer storage level of a tensor with the given
/// canonical shape: its first dimension. Kernels read the partitioned space
/// off the [`Shape`] instead of plumbing separate `rows` / `cols` (or
/// per-dimension) scalars; its histogram sizes and root-range partitions
/// ([`balanced_chunks_by_pos`] over the merged root `pos`) follow from it.
pub fn outer_extent(shape: &Shape) -> usize {
    shape.dim(0)
}

/// Merges per-chunk histograms over the outer level into the global
/// prefix-sum `pos` array plus one scatter-cursor array per chunk: chunk
/// `c`'s cursor for parent `i` starts after all of `i`'s entries owned by
/// chunks before `c`, which is exactly the position a sequential pass would
/// have used — the property that makes histogram-scatter kernels
/// bit-identical to their sequential counterparts.
///
/// `parents` is the outer extent (see [`outer_extent`]); every histogram
/// must have that length.
pub fn merge_histograms(hists: &[Vec<usize>], parents: usize) -> (Vec<usize>, Vec<Vec<usize>>) {
    let mut pos = vec![0usize; parents + 1];
    for i in 0..parents {
        let total: usize = hists.iter().map(|h| h[i]).sum();
        pos[i + 1] = pos[i] + total;
    }
    let mut cursors = Vec::with_capacity(hists.len());
    let mut running: Vec<usize> = pos[..parents].to_vec();
    for hist in hists {
        cursors.push(running.clone());
        for i in 0..parents {
            running[i] += hist[i];
        }
    }
    (pos, cursors)
}

/// Chunk-count × parent-count product below which the serial
/// [`merge_histograms`] wins: thread spawns cost more than the additions
/// they parallelise.
const TREE_MERGE_MIN_WORK: usize = 1 << 15;

/// Shared cursor columns for the parallel cursor construction: workers write
/// disjoint *parent* ranges of every chunk's cursor array.
struct SharedCursorColumns(Vec<*mut usize>);

// SAFETY: each worker writes only parent indices inside its own disjoint
// range (from `even_chunks` over the parents); reads happen after the scope
// joins.
unsafe impl Sync for SharedCursorColumns {}

/// [`merge_histograms`] with the reduction parallelised: per-chunk totals
/// are combined by a pairwise *tree* reduction (log-depth instead of one
/// serial sweep per chunk) and the scatter cursors are filled in parallel
/// over disjoint parent ranges. Falls back to the serial merge when the
/// work would not cover the thread spawns.
///
/// Bit-identical to [`merge_histograms`]: integer addition is associative,
/// so the tree-reduced totals, the prefix-summed `pos`, and the cursors all
/// come out exactly equal to the serial merge's (the runtime's kernel tests
/// rely on it).
pub fn merge_histograms_tree(
    hists: &[Vec<usize>],
    parents: usize,
    threads: usize,
) -> (Vec<usize>, Vec<Vec<usize>>) {
    if threads <= 1 || hists.len() < 2 || hists.len().saturating_mul(parents) < TREE_MERGE_MIN_WORK
    {
        return merge_histograms(hists, parents);
    }
    // Phase 1: pairwise tree reduction to the global totals. Every level
    // halves the histogram count; pairs reduce concurrently.
    let reduce_level = |level: &[Vec<usize>]| -> Vec<Vec<usize>> {
        std::thread::scope(|s| {
            let handles: Vec<_> = level
                .chunks(2)
                .map(|pair| {
                    s.spawn(move || match pair {
                        [only] => only.clone(),
                        [a, b] => a.iter().zip(b.iter()).map(|(x, y)| x + y).collect(),
                        _ => unreachable!("chunks(2) yields one- or two-element slices"),
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    };
    let mut level = reduce_level(hists);
    while level.len() > 1 {
        level = reduce_level(&level);
    }
    let totals = level.pop().expect("reduction leaves one histogram");
    let mut pos = vec![0usize; parents + 1];
    for i in 0..parents {
        pos[i + 1] = pos[i] + totals[i];
    }
    // Phase 2: cursors, parallel over disjoint parent ranges. Worker `w`
    // owns a range of parents and fills that range of *every* chunk's
    // cursor array — the same running sums the serial merge computes,
    // restarted from `pos` at each parent.
    let mut cursors: Vec<Vec<usize>> = (0..hists.len()).map(|_| vec![0usize; parents]).collect();
    let columns = SharedCursorColumns(cursors.iter_mut().map(|c| c.as_mut_ptr()).collect());
    let ranges = even_chunks(parents, threads);
    std::thread::scope(|s| {
        for r in ranges {
            let columns = &columns;
            let pos = &pos;
            s.spawn(move || {
                for i in r {
                    let mut running = pos[i];
                    for (c, hist) in hists.iter().enumerate() {
                        // SAFETY: parent `i` lies in this worker's disjoint
                        // range; each (chunk, parent) cell is written once.
                        unsafe { *columns.0[c].add(i) = running };
                        running += hist[i];
                    }
                }
            });
        }
    });
    (pos, cursors)
}

/// Splits the parents of a compressed level (`pos.len() - 1` of them) into at
/// most `parts` contiguous ranges holding roughly `pos[last] / parts`
/// children each. Every parent lands in exactly one range; empty trailing
/// ranges are dropped.
///
/// # Panics
///
/// Panics if `parts == 0` or `pos` is empty (a `pos` array always has at
/// least the leading 0).
pub fn balanced_chunks_by_pos(pos: &[usize], parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0, "at least one chunk");
    assert!(!pos.is_empty(), "pos arrays start with 0");
    let parents = pos.len() - 1;
    let total = pos[parents];
    if parents == 0 {
        return Vec::new();
    }
    if total == 0 {
        return even_chunks(parents, parts);
    }
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for c in 0..parts {
        if start == parents {
            break;
        }
        // The last chunk takes everything left; earlier chunks cut at the
        // parent boundary whose cumulative child count is *nearest* the next
        // target. (Always rounding down — the old `binary_search` behaviour —
        // starves early chunks whenever a heavy parent straddles the target,
        // and is not even deterministic when empty parents duplicate `pos`
        // values; `partition_point` plus a two-candidate comparison is both.)
        let mut end = if c + 1 == parts {
            parents
        } else {
            let target = (total * (c + 1)) / parts;
            let hi = pos.partition_point(|&x| x < target);
            if hi == 0 || pos[hi] - target <= target - pos[hi - 1] {
                hi
            } else {
                hi - 1
            }
        };
        end = end.clamp(start + 1, parents);
        out.push(start..end);
        start = end;
    }
    if start < parents {
        // Rounding left parents unassigned: give them to the last chunk.
        let last = out.pop().unwrap_or(start..start);
        out.push(last.start..parents);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers(chunks: &[Range<usize>], n: usize) {
        let mut next = 0;
        for r in chunks {
            assert_eq!(r.start, next, "contiguous");
            assert!(r.end > r.start, "non-empty");
            next = r.end;
        }
        assert_eq!(next, n, "covers 0..{n}");
    }

    #[test]
    fn even_chunks_cover_the_space() {
        covers(&even_chunks(10, 3), 10);
        covers(&even_chunks(3, 8), 3);
        covers(&even_chunks(1, 1), 1);
        assert!(even_chunks(0, 4).is_empty());
        assert_eq!(even_chunks(10, 3), vec![0..4, 4..7, 7..10]);
    }

    #[test]
    fn balanced_chunks_follow_the_child_distribution() {
        // One heavy parent followed by light ones.
        let pos = [0usize, 90, 92, 94, 96, 98, 100];
        let chunks = balanced_chunks_by_pos(&pos, 2);
        covers(&chunks, 6);
        // The heavy parent sits alone; the rest go to the second chunk.
        assert_eq!(chunks[0], 0..1);

        let uniform = [0usize, 10, 20, 30, 40];
        let chunks = balanced_chunks_by_pos(&uniform, 2);
        covers(&chunks, 4);
        assert_eq!(chunks, vec![0..2, 2..4]);
    }

    #[test]
    fn balanced_chunks_round_to_the_nearest_boundary() {
        // Parents with 6, 6, 1, 7 children: the halfway target (10) is
        // nearer the 12-boundary than the 6-boundary, so the first chunk
        // takes two parents (12 vs 8) instead of rounding down to one
        // (6 vs 14).
        let pos = [0usize, 6, 12, 13, 20];
        assert_eq!(balanced_chunks_by_pos(&pos, 2), vec![0..2, 2..4]);
        // Duplicate pos values (empty parents) stay deterministic and cover
        // the space.
        let pos = [0usize, 0, 0, 5, 5, 5, 10];
        let chunks = balanced_chunks_by_pos(&pos, 3);
        covers(&chunks, 6);
        assert_eq!(chunks, vec![0..3, 3..5, 5..6]);
    }

    #[test]
    fn outer_extent_reads_the_first_dimension() {
        assert_eq!(outer_extent(&Shape::matrix(10, 99)), 10);
        assert_eq!(outer_extent(&Shape::tensor3(7, 2, 2)), 7);
    }

    #[test]
    fn merged_cursors_encode_sequential_positions() {
        // Two chunks over three parents: chunk 0 saw [2, 0, 1], chunk 1 saw
        // [1, 2, 0]; the merged pos is the total histogram's prefix sum and
        // chunk 1's cursors start where chunk 0's entries end.
        let hists = vec![vec![2, 0, 1], vec![1, 2, 0]];
        let (pos, cursors) = merge_histograms(&hists, 3);
        assert_eq!(pos, vec![0, 3, 5, 6]);
        assert_eq!(cursors[0], vec![0, 3, 5]);
        assert_eq!(cursors[1], vec![2, 3, 6]);
    }

    #[test]
    fn tree_merge_matches_the_serial_merge() {
        // Deterministic pseudo-random histograms big enough to clear the
        // tree cutoff (5 chunks x 8192 parents > TREE_MERGE_MIN_WORK).
        let parents = 8192;
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 7) as usize
        };
        let hists: Vec<Vec<usize>> = (0..5)
            .map(|_| (0..parents).map(|_| next()).collect())
            .collect();
        let serial = merge_histograms(&hists, parents);
        for threads in [2, 3, 4] {
            assert_eq!(merge_histograms_tree(&hists, parents, threads), serial);
        }
        // Below the cutoff (and at one thread) it degrades to the serial
        // merge outright.
        let small = vec![vec![2, 0, 1], vec![1, 2, 0]];
        assert_eq!(
            merge_histograms_tree(&small, 3, 4),
            merge_histograms(&small, 3)
        );
        assert_eq!(
            merge_histograms_tree(&hists, parents, 1),
            merge_histograms(&hists, parents)
        );
    }

    #[test]
    fn balanced_chunks_handle_degenerate_inputs() {
        assert!(balanced_chunks_by_pos(&[0], 4).is_empty());
        covers(&balanced_chunks_by_pos(&[0, 0, 0, 0], 2), 3);
        covers(&balanced_chunks_by_pos(&[0, 5], 4), 1);
        // More parts than parents.
        covers(&balanced_chunks_by_pos(&[0, 1, 2], 8), 2);
    }
}
