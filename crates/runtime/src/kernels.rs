//! Row-range–partitioned parallel conversion kernels.
//!
//! Each kernel is the parallel counterpart of one hot-path routine in
//! `sparse_conv::engine`, restructured around the observation that both the
//! analysis and the assembly phase of a conversion decompose over contiguous
//! ranges of the outer storage level (Chou et al. 2018's coordinate
//! hierarchies make this safe to state generically: a parent's children
//! never straddle a range boundary):
//!
//! 1. *partitioned analysis* — every worker computes the attribute-query
//!    histogram for its range only,
//! 2. *prefix-sum merge* — the per-range histograms are merged into the
//!    global `pos` array **and** into per-range scatter cursors (a worker's
//!    cursor for parent `i` starts after all of `i`'s entries owned by
//!    earlier ranges),
//! 3. *partitioned assembly* — every worker scatters its range through its
//!    own cursors.
//!
//! Because the per-range cursors encode exactly the positions the sequential
//! kernel would have used, the output is **bit-identical** to the sequential
//! engine for any thread count — the property the runtime's tests enforce.
//!
//! Workers are plain `std::thread::scope` threads; no work stealing, no
//! channels. The scatter phase writes disjoint index sets of the shared
//! output buffers through the private `SharedSlice` wrapper.

use std::marker::PhantomData;

use obs::Span;
use sparse_conv::engine;
use sparse_formats::csf::pack_sorted;
use sparse_formats::radix::{self, SortStrategy};
use sparse_formats::{BcsrMatrix, CooMatrix, CooTensor, CscMatrix, CsfTensor, CsrMatrix};
use sparse_tensor::Value;

use crate::partition::{balanced_chunks_by_pos, even_chunks, merge_histograms_tree, outer_extent};

/// Tile width (in columns) for the blocked transpose scatter: with ~4 KiB
/// tiles the per-tile cursor slice and the output window it points into stay
/// cache-resident while a chunk drains. Matches the engine's sequential
/// blocked transpose.
const TRANSPOSE_TILE: usize = 1 << 12;

/// Per-chunk nonzero count below which the direct scatter beats the blocked
/// one (the bucket pass has to pay for itself).
const CHUNK_TILE_MIN_NNZ: usize = 1 << 14;

/// A shared mutable slice for scatter phases whose write-index sets are
/// disjoint across workers.
///
/// Rust cannot prove disjointness of histogram-derived scatter indices, so
/// the kernels assert it by construction: every output position is derived
/// from a prefix sum over per-worker counts, which partitions the index
/// space. This wrapper only exposes raw writes; reads happen after the scope
/// joins.
struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: workers only write, through `write`, at indices the caller
// guarantees are distinct across threads; the borrow checker serialises all
// reads after the scope ends.
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    fn new(data: &'a mut [T]) -> Self {
        SharedSlice {
            ptr: data.as_mut_ptr(),
            len: data.len(),
            _marker: PhantomData,
        }
    }

    /// Writes `value` at `idx`.
    ///
    /// # Safety
    ///
    /// `idx` must be in bounds and no other thread may read or write it for
    /// the lifetime of the enclosing thread scope.
    unsafe fn write(&self, idx: usize, value: T) {
        debug_assert!(idx < self.len);
        *self.ptr.add(idx) = value;
    }
}

/// Parallel COO→CSR: per-chunk row histograms, prefix-sum merge, partitioned
/// scatter. Bit-identical to [`engine::to_csr`] on the same input.
pub fn coo_to_csr(coo: &CooMatrix, threads: usize) -> CsrMatrix {
    let rows = coo.rows();
    let nnz = coo.nnz();
    if threads <= 1 || nnz == 0 {
        return engine::to_csr(coo);
    }
    let row_idx = coo.row_indices();
    let col_idx = coo.col_indices();
    let values = coo.values();
    let chunks = even_chunks(nnz, threads);

    // Analysis: select [i] -> count(j) as nir, one histogram per chunk.
    let analysis = Span::enter("kernel.analysis");
    let parent = analysis.handle();
    let hists: Vec<Vec<usize>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|r| {
                let r = r.clone();
                s.spawn(move || {
                    let span = Span::enter_under("chunk_histogram", parent);
                    span.add_items(r.len() as u64);
                    let mut hist = vec![0usize; rows];
                    for &i in &row_idx[r] {
                        hist[i] += 1;
                    }
                    hist
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    drop(analysis);
    let merge = Span::enter("kernel.merge");
    let (pos, cursors) = merge_histograms_tree(&hists, rows, threads);
    drop(merge);

    // Assembly: each worker scatters its chunk through its own cursors; the
    // cursor construction partitions the output index space.
    let scatter = Span::enter("kernel.scatter");
    scatter.add_items(nnz as u64);
    scatter.add_bytes((nnz * (size_of::<usize>() + size_of::<Value>())) as u64);
    let parent = scatter.handle();
    let mut crd = vec![0usize; nnz];
    let mut vals = vec![0.0 as Value; nnz];
    {
        let crd_out = SharedSlice::new(&mut crd);
        let vals_out = SharedSlice::new(&mut vals);
        std::thread::scope(|s| {
            for (r, mut cursor) in chunks.iter().cloned().zip(cursors) {
                let crd_out = &crd_out;
                let vals_out = &vals_out;
                s.spawn(move || {
                    let span = Span::enter_under("chunk_scatter", parent);
                    span.add_items(r.len() as u64);
                    for p in r {
                        let i = row_idx[p];
                        let dst = cursor[i];
                        cursor[i] += 1;
                        // SAFETY: `dst` comes from this chunk's cursor range,
                        // disjoint from every other chunk's by construction.
                        unsafe {
                            crd_out.write(dst, col_idx[p]);
                            vals_out.write(dst, values[p]);
                        }
                    }
                });
            }
        });
    }
    drop(scatter);
    CsrMatrix::from_parts(rows, coo.cols(), pos, crd, vals)
        .expect("assembled CSR structure is valid")
}

/// Parallel CSR→CSC transpose: chunks of whole rows (nnz-balanced via the
/// source `pos` array), per-chunk column histograms, prefix-sum merge,
/// partitioned scatter. Wide chunks scatter through the blocked
/// write-combining form (bucket the chunk's entries tile-by-tile, then drain
/// tile-major so the cursor slice and output window stay cache-resident),
/// which consumes each column's cursor in exactly the order the direct loop
/// would — so the kernel stays bit-identical to [`engine::to_csc`].
pub fn csr_to_csc(csr: &CsrMatrix, threads: usize) -> CscMatrix {
    let cols = csr.cols();
    let nnz = csr.nnz();
    if threads <= 1 || nnz == 0 {
        return engine::csr_to_csc_blocked(csr);
    }
    let src_pos = csr.pos();
    let src_crd = csr.crd();
    let src_vals = csr.values();
    let chunks = balanced_chunks_by_pos(src_pos, threads);

    let analysis = Span::enter("kernel.analysis");
    let parent = analysis.handle();
    let hists: Vec<Vec<usize>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|r| {
                let r = r.clone();
                s.spawn(move || {
                    let span = Span::enter_under("chunk_histogram", parent);
                    span.add_items((src_pos[r.end] - src_pos[r.start]) as u64);
                    let mut hist = vec![0usize; cols];
                    for &j in &src_crd[src_pos[r.start]..src_pos[r.end]] {
                        hist[j] += 1;
                    }
                    hist
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    drop(analysis);
    let merge = Span::enter("kernel.merge");
    let (pos, cursors) = merge_histograms_tree(&hists, cols, threads);
    drop(merge);

    let scatter = Span::enter("kernel.scatter");
    scatter.add_items(nnz as u64);
    scatter.add_bytes((nnz * (size_of::<usize>() + size_of::<Value>())) as u64);
    let parent = scatter.handle();
    let mut crd = vec![0usize; nnz];
    let mut vals = vec![0.0 as Value; nnz];
    {
        let crd_out = SharedSlice::new(&mut crd);
        let vals_out = SharedSlice::new(&mut vals);
        std::thread::scope(|s| {
            for (r, mut cursor) in chunks.iter().cloned().zip(cursors) {
                let crd_out = &crd_out;
                let vals_out = &vals_out;
                s.spawn(move || {
                    let span = Span::enter_under("chunk_scatter", parent);
                    let chunk_lo = src_pos[r.start];
                    let chunk_hi = src_pos[r.end];
                    let chunk_nnz = chunk_hi - chunk_lo;
                    span.add_items(chunk_nnz as u64);
                    if cols > TRANSPOSE_TILE && chunk_nnz >= CHUNK_TILE_MIN_NNZ {
                        // Blocked write-combining scatter: bucket the chunk's
                        // entries by column tile (stable), then drain
                        // tile-major. Within a tile the entries keep row
                        // order and a column never straddles tiles, so each
                        // cursor advances in the same order as the direct
                        // loop below.
                        let tiles = cols.div_ceil(TRANSPOSE_TILE);
                        let mut tile_pos = vec![0usize; tiles + 1];
                        for &j in &src_crd[chunk_lo..chunk_hi] {
                            tile_pos[j / TRANSPOSE_TILE + 1] += 1;
                        }
                        for t in 0..tiles {
                            tile_pos[t + 1] += tile_pos[t];
                        }
                        let mut tile_cursor = tile_pos;
                        let mut brow = vec![0usize; chunk_nnz];
                        let mut bcol = vec![0usize; chunk_nnz];
                        let mut bval = vec![0.0 as Value; chunk_nnz];
                        for i in r {
                            for p in src_pos[i]..src_pos[i + 1] {
                                let j = src_crd[p];
                                let t = j / TRANSPOSE_TILE;
                                let slot = tile_cursor[t];
                                tile_cursor[t] += 1;
                                brow[slot] = i;
                                bcol[slot] = j;
                                bval[slot] = src_vals[p];
                            }
                        }
                        for b in 0..chunk_nnz {
                            let j = bcol[b];
                            let dst = cursor[j];
                            cursor[j] += 1;
                            // SAFETY: cursor ranges partition the output.
                            unsafe {
                                crd_out.write(dst, brow[b]);
                                vals_out.write(dst, bval[b]);
                            }
                        }
                    } else {
                        for i in r {
                            for p in src_pos[i]..src_pos[i + 1] {
                                let j = src_crd[p];
                                let dst = cursor[j];
                                cursor[j] += 1;
                                // SAFETY: cursor ranges partition the output.
                                unsafe {
                                    crd_out.write(dst, i);
                                    vals_out.write(dst, src_vals[p]);
                                }
                            }
                        }
                    }
                });
            }
        });
    }
    drop(scatter);
    CscMatrix::from_parts(csr.rows(), cols, pos, crd, vals)
        .expect("assembled CSC structure is valid")
}

/// Parallel CSR→BCSR: chunks of whole *block rows* (so a block never
/// straddles workers), per-chunk block discovery, prefix-sum merge,
/// partitioned scatter into the dense blocks. Bit-identical to
/// [`engine::to_bcsr`].
///
/// # Panics
///
/// Panics if a block dimension is zero (same contract as the engine).
pub fn csr_to_bcsr(
    csr: &CsrMatrix,
    block_rows: usize,
    block_cols: usize,
    threads: usize,
) -> BcsrMatrix {
    assert!(
        block_rows > 0 && block_cols > 0,
        "block sizes must be positive"
    );
    let rows = csr.rows();
    let nnz = csr.nnz();
    if threads <= 1 || nnz == 0 {
        return engine::to_bcsr(csr, block_rows, block_cols);
    }
    let src_pos = csr.pos();
    let src_crd = csr.crd();
    let src_vals = csr.values();
    let brows = rows.div_ceil(block_rows);

    // Balance chunks of block rows by their nonzero count, read off src_pos.
    let block_row_pos: Vec<usize> = (0..=brows)
        .map(|bi| src_pos[(bi * block_rows).min(rows)])
        .collect();
    let chunks = balanced_chunks_by_pos(&block_row_pos, threads);

    // Analysis: the sorted, deduplicated block-column set of every owned
    // block row (select [bi] -> count(bj), plus the coordinates themselves).
    let analysis = Span::enter("kernel.analysis");
    let parent = analysis.handle();
    let mut blocks: Vec<Vec<usize>> = vec![Vec::new(); brows];
    {
        let blocks_out = SharedSlice::new(&mut blocks);
        std::thread::scope(|s| {
            for r in &chunks {
                let r = r.clone();
                let blocks_out = &blocks_out;
                s.spawn(move || {
                    let span = Span::enter_under("chunk_blocks", parent);
                    span.add_items(r.len() as u64);
                    // One scratch buffer per worker, reused across its block
                    // rows; the result clones are exact-sized.
                    let mut set: Vec<usize> = Vec::new();
                    for bi in r {
                        set.clear();
                        let row_lo = bi * block_rows;
                        let row_hi = (row_lo + block_rows).min(rows);
                        for &j in &src_crd[src_pos[row_lo]..src_pos[row_hi]] {
                            set.push(j / block_cols);
                        }
                        set.sort_unstable();
                        set.dedup();
                        // SAFETY: block row `bi` belongs to exactly one chunk.
                        unsafe { blocks_out.write(bi, set.clone()) };
                    }
                });
            }
        });
    }

    drop(analysis);
    // Sequenced edge insertion over block rows (cheap, sequential).
    let merge = Span::enter("kernel.merge");
    let mut pos = vec![0usize; brows + 1];
    for bi in 0..brows {
        pos[bi + 1] = pos[bi] + blocks[bi].len();
    }
    drop(merge);
    let nblocks = pos[brows];
    let bsize = block_rows * block_cols;

    // Assembly: a chunk's block rows own the contiguous output span
    // [pos[r.start], pos[r.end]); scatter blocks and values in parallel.
    let scatter = Span::enter("kernel.scatter");
    scatter.add_items(nnz as u64);
    scatter.add_bytes((nblocks * (size_of::<usize>() + bsize * size_of::<Value>())) as u64);
    let parent = scatter.handle();
    let mut crd = vec![0usize; nblocks];
    let mut vals = vec![0.0 as Value; nblocks * bsize];
    {
        let crd_out = SharedSlice::new(&mut crd);
        let vals_out = SharedSlice::new(&mut vals);
        let blocks = &blocks;
        std::thread::scope(|s| {
            for r in &chunks {
                let r = r.clone();
                let crd_out = &crd_out;
                let vals_out = &vals_out;
                let pos = &pos;
                s.spawn(move || {
                    let span = Span::enter_under("chunk_scatter", parent);
                    span.add_items(r.len() as u64);
                    for bi in r {
                        let base = pos[bi];
                        for (n, &bj) in blocks[bi].iter().enumerate() {
                            // SAFETY: output spans are disjoint per block row.
                            unsafe { crd_out.write(base + n, bj) };
                        }
                        let row_lo = bi * block_rows;
                        let row_hi = (row_lo + block_rows).min(rows);
                        for i in row_lo..row_hi {
                            for p in src_pos[i]..src_pos[i + 1] {
                                let j = src_crd[p];
                                let bj = j / block_cols;
                                let b = base
                                    + blocks[bi]
                                        .binary_search(&bj)
                                        .expect("block registered in analysis");
                                let dst =
                                    b * bsize + (i % block_rows) * block_cols + (j % block_cols);
                                // SAFETY: dst lies in this block row's span.
                                unsafe { vals_out.write(dst, src_vals[p]) };
                            }
                        }
                    }
                });
            }
        });
    }
    drop(scatter);
    BcsrMatrix::from_parts(rows, csr.cols(), block_rows, block_cols, pos, crd, vals)
        .expect("assembled BCSR structure is valid")
}

/// Parallel COO→CSF, partitioned by *root fibers* (distinct outer
/// coordinates): the tensor counterpart of [`coo_to_csr`], and the paper's
/// sort-then-pack conversion restaged for threads.
///
/// 1. *partitioned analysis* — per-chunk histograms over the root
///    coordinate (the outer dimension of the canonical shape),
/// 2. *prefix-sum merge + partitioned scatter* — a stable bucket sort that
///    groups nonzeros by root while preserving source order inside each
///    root (the cursors encode exactly the sequential positions),
/// 3. *root-fiber-partitioned sort + pack* — the roots are carved into
///    nnz-balanced chunks; every worker stably sorts its contiguous span by
///    full coordinate and packs its own fibers; the per-chunk CSF arrays
///    concatenate exactly because chunk boundaries coincide with root-fiber
///    boundaries.
///
/// A stable bucket sort by the outer coordinate followed by a stable sort of
/// each bucket span is the same permutation as one global stable
/// lexicographic sort, so the output is **bit-identical** to
/// [`engine::to_csf`] at any thread count. The span sorts go through the
/// packed-key LSD radix kernel ([`radix::sort_index_span`]); use
/// [`coo_to_csf_with`] to pin a different [`SortStrategy`] (ablation and
/// equivalence tests).
pub fn coo_to_csf(coo: &CooTensor, threads: usize) -> CsfTensor {
    coo_to_csf_with(coo, threads, SortStrategy::Radix)
}

/// [`coo_to_csf`] with the span-sort strategy pinned. All strategies are
/// stable, so the output is identical for every choice; only the sort phase
/// timing differs (the `sort_strategies` bench group measures exactly this).
pub fn coo_to_csf_with(coo: &CooTensor, threads: usize, strategy: SortStrategy) -> CsfTensor {
    let nnz = coo.nnz();
    let order = coo.order();
    if nnz == 0 || order < 2 {
        return engine::to_csf(coo);
    }
    if threads <= 1 {
        return match strategy {
            SortStrategy::Radix => engine::to_csf(coo),
            _ => sequential_csf(coo, None, strategy),
        };
    }
    let shape = coo.shape();
    let roots = outer_extent(shape);
    let root_crd = coo.crd(0);

    // Analysis: per-chunk root histograms over even nonzero chunks.
    let chunks = even_chunks(nnz, threads);
    let analysis = Span::enter("kernel.analysis");
    let parent = analysis.handle();
    let hists: Vec<Vec<usize>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|r| {
                let r = r.clone();
                s.spawn(move || {
                    let span = Span::enter_under("chunk_histogram", parent);
                    span.add_items(r.len() as u64);
                    let mut hist = vec![0usize; roots];
                    for &i in &root_crd[r] {
                        hist[i] += 1;
                    }
                    hist
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    drop(analysis);
    let merge = Span::enter("kernel.merge");
    let (root_pos, cursors) = merge_histograms_tree(&hists, roots, threads);
    drop(merge);

    // Stable bucket sort by root: scatter the source permutation.
    let bucket = Span::enter("kernel.bucket_scatter");
    bucket.add_items(nnz as u64);
    let parent = bucket.handle();
    let mut perm = vec![0usize; nnz];
    {
        let perm_out = SharedSlice::new(&mut perm);
        std::thread::scope(|s| {
            for (r, mut cursor) in chunks.iter().cloned().zip(cursors) {
                let perm_out = &perm_out;
                s.spawn(move || {
                    let span = Span::enter_under("chunk_scatter", parent);
                    span.add_items(r.len() as u64);
                    for p in r {
                        let dst = cursor[root_crd[p]];
                        cursor[root_crd[p]] += 1;
                        // SAFETY: cursor ranges partition the output.
                        unsafe { perm_out.write(dst, p) };
                    }
                });
            }
        });
    }
    drop(bucket);

    // Root-fiber chunks, nnz-balanced off the merged root pos array; each
    // chunk owns the contiguous permutation span of whole root fibers.
    let root_chunks = balanced_chunks_by_pos(&root_pos, threads);
    let mut spans: Vec<&mut [usize]> = Vec::with_capacity(root_chunks.len());
    {
        let mut rest: &mut [usize] = &mut perm;
        let mut consumed = 0usize;
        for rc in &root_chunks {
            let hi = root_pos[rc.end];
            let (span, tail) = rest.split_at_mut(hi - consumed);
            spans.push(span);
            rest = tail;
            consumed = hi;
        }
    }

    // Sort each span stably by full coordinate, then pack it into partial
    // CSF arrays. The span is already grouped by ascending root with source
    // order inside each root, so the stable span sort completes the global
    // stable lexicographic order.
    let columns: Vec<&[usize]> = (0..order).map(|d| coo.crd(d)).collect();
    let sort_pack = Span::enter("kernel.sort_pack");
    sort_pack.add_items(nnz as u64);
    let parent = sort_pack.handle();
    let partials: Vec<CsfTensor> = std::thread::scope(|s| {
        let handles: Vec<_> = spans
            .into_iter()
            .map(|span| {
                let columns = &columns;
                let vals = coo.values();
                let shape = shape.clone();
                s.spawn(move || {
                    let worker = Span::enter_under("chunk_sort_pack", parent);
                    worker.add_items(span.len() as u64);
                    {
                        let sort = Span::enter("kernel.radix_sort");
                        sort.add_items(span.len() as u64);
                        radix::sort_index_span_with(columns, span, strategy);
                    }
                    pack_sorted(
                        shape,
                        |d, p| columns[d][span[p]],
                        |p| vals[span[p]],
                        span.len(),
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    drop(sort_pack);

    // Stitch: chunk boundaries are root-fiber boundaries, so the per-chunk
    // level arrays concatenate with offset fix-ups on the pos arrays.
    let stitch = Span::enter("kernel.stitch");
    stitch.add_items(partials.len() as u64);
    let mut crd: Vec<Vec<usize>> = vec![Vec::new(); order];
    let mut pos: Vec<Vec<usize>> = vec![vec![0usize]; order - 1];
    let mut vals: Vec<Value> = Vec::with_capacity(nnz);
    for part in &partials {
        for (l, level_crd) in crd.iter_mut().enumerate() {
            level_crd.extend_from_slice(part.crd(l));
        }
        for (l, level_pos) in pos.iter_mut().enumerate() {
            let offset = *level_pos.last().expect("pos arrays start with 0");
            level_pos.extend(part.pos(l)[1..].iter().map(|&p| p + offset));
        }
        vals.extend_from_slice(part.values());
    }
    drop(stitch);
    CsfTensor::from_parts(shape.clone(), crd, pos, vals).expect("assembled CSF structure is valid")
}

/// Parallel COO→CSF along an arbitrary mode order: [`coo_to_csf`] with the
/// root-fiber partitioner keyed on canonical mode `mode_order[0]` (the
/// storage-outermost dimension) and the span sort comparing the *permuted*
/// coordinate tuples. Bit-identical to
/// [`engine::to_csf_ordered`] at any thread count, for the same reason the
/// canonical kernel matches [`engine::to_csf`]: a stable bucket sort by the
/// storage root followed by stable span sorts is one global stable
/// lexicographic sort of the permuted tuples.
///
/// # Panics
///
/// Panics if `mode_order` is not a permutation of `0..coo.order()`.
pub fn coo_to_csf_ordered(coo: &CooTensor, mode_order: &[usize], threads: usize) -> CsfTensor {
    coo_to_csf_ordered_with(coo, mode_order, threads, SortStrategy::Radix)
}

/// [`coo_to_csf_ordered`] with the span-sort strategy pinned; see
/// [`coo_to_csf_with`].
///
/// # Panics
///
/// Panics if `mode_order` is not a permutation of `0..coo.order()`.
pub fn coo_to_csf_ordered_with(
    coo: &CooTensor,
    mode_order: &[usize],
    threads: usize,
    strategy: SortStrategy,
) -> CsfTensor {
    let nnz = coo.nnz();
    let order = coo.order();
    assert_eq!(mode_order.len(), order, "one mode per dimension");
    let mut seen = vec![false; order];
    for &m in mode_order {
        assert!(
            m < order && !seen[m],
            "mode order {mode_order:?} is not a permutation of 0..{order}"
        );
        seen[m] = true;
    }
    if nnz == 0 || order < 2 {
        return engine::to_csf_ordered(coo, mode_order);
    }
    if threads <= 1 {
        return match strategy {
            SortStrategy::Radix => engine::to_csf_ordered(coo, mode_order),
            _ => sequential_csf(coo, Some(mode_order), strategy),
        };
    }
    let shape = coo.shape();
    // Storage dimension d holds canonical mode mode_order[d]; the root
    // partitioner keys on the storage-outermost mode.
    let packed_shape =
        sparse_tensor::Shape::new(mode_order.iter().map(|&m| shape.dim(m)).collect());
    let roots = packed_shape.dim(0);
    let root_crd = coo.crd(mode_order[0]);

    // Analysis: per-chunk root histograms over even nonzero chunks.
    let chunks = even_chunks(nnz, threads);
    let analysis = Span::enter("kernel.analysis");
    let parent = analysis.handle();
    let hists: Vec<Vec<usize>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|r| {
                let r = r.clone();
                s.spawn(move || {
                    let span = Span::enter_under("chunk_histogram", parent);
                    span.add_items(r.len() as u64);
                    let mut hist = vec![0usize; roots];
                    for &i in &root_crd[r] {
                        hist[i] += 1;
                    }
                    hist
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    drop(analysis);
    let merge = Span::enter("kernel.merge");
    let (root_pos, cursors) = merge_histograms_tree(&hists, roots, threads);
    drop(merge);

    // Stable bucket sort by storage root: scatter the source permutation.
    let bucket = Span::enter("kernel.bucket_scatter");
    bucket.add_items(nnz as u64);
    let parent = bucket.handle();
    let mut perm = vec![0usize; nnz];
    {
        let perm_out = SharedSlice::new(&mut perm);
        std::thread::scope(|s| {
            for (r, mut cursor) in chunks.iter().cloned().zip(cursors) {
                let perm_out = &perm_out;
                s.spawn(move || {
                    let span = Span::enter_under("chunk_scatter", parent);
                    span.add_items(r.len() as u64);
                    for p in r {
                        let dst = cursor[root_crd[p]];
                        cursor[root_crd[p]] += 1;
                        // SAFETY: cursor ranges partition the output.
                        unsafe { perm_out.write(dst, p) };
                    }
                });
            }
        });
    }
    drop(bucket);

    // Root-fiber chunks over the merged root pos array, spans split at
    // whole-root boundaries (as in the canonical kernel).
    let root_chunks = balanced_chunks_by_pos(&root_pos, threads);
    let mut spans: Vec<&mut [usize]> = Vec::with_capacity(root_chunks.len());
    {
        let mut rest: &mut [usize] = &mut perm;
        let mut consumed = 0usize;
        for rc in &root_chunks {
            let hi = root_pos[rc.end];
            let (span, tail) = rest.split_at_mut(hi - consumed);
            spans.push(span);
            rest = tail;
            consumed = hi;
        }
    }

    // Sort each span stably by the *permuted* coordinate tuple, then pack.
    let columns: Vec<&[usize]> = mode_order.iter().map(|&m| coo.crd(m)).collect();
    let sort_pack = Span::enter("kernel.sort_pack");
    sort_pack.add_items(nnz as u64);
    let parent = sort_pack.handle();
    let partials: Vec<CsfTensor> = std::thread::scope(|s| {
        let handles: Vec<_> = spans
            .into_iter()
            .map(|span| {
                let columns = &columns;
                let vals = coo.values();
                let packed_shape = packed_shape.clone();
                s.spawn(move || {
                    let worker = Span::enter_under("chunk_sort_pack", parent);
                    worker.add_items(span.len() as u64);
                    {
                        let sort = Span::enter("kernel.radix_sort");
                        sort.add_items(span.len() as u64);
                        radix::sort_index_span_with(columns, span, strategy);
                    }
                    pack_sorted(
                        packed_shape,
                        |d, p| columns[d][span[p]],
                        |p| vals[span[p]],
                        span.len(),
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    drop(sort_pack);

    // Stitch the per-chunk level arrays, as in the canonical kernel.
    let stitch = Span::enter("kernel.stitch");
    stitch.add_items(partials.len() as u64);
    let mut crd: Vec<Vec<usize>> = vec![Vec::new(); order];
    let mut pos: Vec<Vec<usize>> = vec![vec![0usize]; order - 1];
    let mut vals: Vec<Value> = Vec::with_capacity(nnz);
    for part in &partials {
        for (l, level_crd) in crd.iter_mut().enumerate() {
            level_crd.extend_from_slice(part.crd(l));
        }
        for (l, level_pos) in pos.iter_mut().enumerate() {
            let offset = *level_pos.last().expect("pos arrays start with 0");
            level_pos.extend(part.pos(l)[1..].iter().map(|&p| p + offset));
        }
        vals.extend_from_slice(part.values());
    }
    drop(stitch);
    CsfTensor::from_parts(packed_shape, crd, pos, vals).expect("assembled CSF structure is valid")
}

/// Sequential sort-then-pack with the sort strategy pinned: a single stable
/// index sort over the (optionally permuted) coordinate columns followed by
/// one pack. Backs the `threads <= 1` paths of [`coo_to_csf_with`] /
/// [`coo_to_csf_ordered_with`] for non-default strategies, so strategy
/// ablations compare sort algorithms rather than surrounding plumbing.
fn sequential_csf(
    coo: &CooTensor,
    mode_order: Option<&[usize]>,
    strategy: SortStrategy,
) -> CsfTensor {
    let nnz = coo.nnz();
    let order = coo.order();
    let (columns, shape): (Vec<&[usize]>, sparse_tensor::Shape) = match mode_order {
        Some(mo) => (
            mo.iter().map(|&m| coo.crd(m)).collect(),
            sparse_tensor::Shape::new(mo.iter().map(|&m| coo.shape().dim(m)).collect()),
        ),
        None => (
            (0..order).map(|d| coo.crd(d)).collect(),
            coo.shape().clone(),
        ),
    };
    let sort = Span::enter("engine.sort");
    sort.add_items(nnz as u64);
    let mut perm: Vec<usize> = (0..nnz).collect();
    radix::sort_index_span_with(&columns, &mut perm, strategy);
    drop(sort);
    let vals = coo.values();
    pack_sorted(shape, |d, p| columns[d][perm[p]], |p| vals[perm[p]], nnz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_tensor::example::figure1_matrix;

    fn shuffled_coo() -> CooMatrix {
        let mut coo = CooMatrix::from_triples(&figure1_matrix());
        let mut state = 7usize;
        coo.shuffle_with(|bound| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state % bound
        });
        coo
    }

    #[test]
    fn parallel_coo_to_csr_is_bit_identical() {
        let coo = shuffled_coo();
        let reference = engine::to_csr(&coo);
        for threads in [1, 2, 3, 4, 9] {
            let parallel = coo_to_csr(&coo, threads);
            assert_eq!(parallel.pos(), reference.pos(), "{threads} threads");
            assert_eq!(parallel.crd(), reference.crd(), "{threads} threads");
            assert_eq!(parallel.values(), reference.values(), "{threads} threads");
        }
    }

    #[test]
    fn parallel_csr_to_csc_is_bit_identical() {
        let csr = CsrMatrix::from_triples(&figure1_matrix());
        let reference = engine::to_csc(&csr);
        for threads in [1, 2, 4, 16] {
            let parallel = csr_to_csc(&csr, threads);
            assert_eq!(parallel.pos(), reference.pos());
            assert_eq!(parallel.crd(), reference.crd());
            assert_eq!(parallel.values(), reference.values());
        }
    }

    #[test]
    fn parallel_csr_to_bcsr_is_bit_identical() {
        let csr = CsrMatrix::from_triples(&figure1_matrix());
        for (br, bc) in [(2, 2), (2, 3), (3, 1)] {
            let reference = engine::to_bcsr(&csr, br, bc);
            for threads in [1, 2, 4] {
                let parallel = csr_to_bcsr(&csr, br, bc, threads);
                assert_eq!(parallel.pos(), reference.pos(), "{br}x{bc}/{threads}");
                assert_eq!(parallel.crd(), reference.crd(), "{br}x{bc}/{threads}");
                assert_eq!(parallel.values(), reference.values(), "{br}x{bc}/{threads}");
            }
        }
    }

    #[test]
    fn parallel_coo_to_csf_is_bit_identical() {
        let t = sparse_tensor::example::example3_tensor();
        let mut coo = CooTensor::from_triples(&t);
        let mut state = 3usize;
        coo.shuffle_with(|bound| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state % bound
        });
        let reference = engine::to_csf(&coo);
        for threads in [1, 2, 3, 4, 9] {
            assert_eq!(coo_to_csf(&coo, threads), reference, "{threads} threads");
        }
        assert!(reference.to_triples().same_values(&t));
    }

    #[test]
    fn parallel_ordered_csf_kernel_is_bit_identical() {
        let t = sparse_tensor::example::example3_tensor();
        let mut coo = CooTensor::from_triples(&t);
        let mut state = 17usize;
        coo.shuffle_with(|bound| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state % bound
        });
        for order in [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ] {
            let reference = engine::to_csf_ordered(&coo, &order);
            for threads in [1, 2, 3, 4, 9] {
                assert_eq!(
                    coo_to_csf_ordered(&coo, &order, threads),
                    reference,
                    "{order:?} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn strategy_pinned_csf_kernels_match_the_default() {
        let t = sparse_tensor::example::example3_tensor();
        let mut coo = CooTensor::from_triples(&t);
        let mut state = 11usize;
        coo.shuffle_with(|bound| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state % bound
        });
        let strategies = [
            SortStrategy::Radix,
            SortStrategy::Comparison,
            SortStrategy::Counting,
        ];
        let reference = engine::to_csf(&coo);
        for strategy in strategies {
            for threads in [1, 2, 4] {
                assert_eq!(
                    coo_to_csf_with(&coo, threads, strategy),
                    reference,
                    "{strategy:?} at {threads} threads"
                );
            }
        }
        let order = [2, 0, 1];
        let reference = engine::to_csf_ordered(&coo, &order);
        for strategy in strategies {
            for threads in [1, 4] {
                assert_eq!(
                    coo_to_csf_ordered_with(&coo, &order, threads, strategy),
                    reference,
                    "{strategy:?} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn parallel_csf_kernel_handles_order_2_tensors() {
        let coo = CooTensor::from_triples(&figure1_matrix());
        let reference = engine::to_csf(&coo);
        for threads in [2, 4] {
            assert_eq!(coo_to_csf(&coo, threads), reference);
        }
    }

    #[test]
    fn empty_matrices_take_the_sequential_path() {
        let coo = CooMatrix::new(3, 5);
        assert_eq!(coo_to_csr(&coo, 4).nnz(), 0);
        let csr = engine::to_csr(&coo);
        assert_eq!(csr_to_csc(&csr, 4).nnz(), 0);
        assert_eq!(csr_to_bcsr(&csr, 2, 2, 4).num_blocks(), 0);
        let empty = CooTensor::new(sparse_tensor::Shape::tensor3(3, 3, 3));
        assert_eq!(coo_to_csf(&empty, 4).nnz(), 0);
    }
}
