//! Property tests: every parallel kernel produces output byte-equal to the
//! sequential engine, across random matrices and 1/2/4-thread pools, and the
//! plan cache never re-plans a warm pair.

use proptest::prelude::*;

use conv_runtime::{kernels, ConversionService, PlanCache, ServiceConfig};
use sparse_conv::convert::{AnyMatrix, FormatId};
use sparse_conv::engine;
use sparse_formats::{CooMatrix, CooTensor, CsrMatrix};
use sparse_tensor::{Shape, SparseTriples};

const THREAD_POOLS: [usize; 3] = [1, 2, 4];

/// Random sparse matrices as duplicate-free triples, with a shuffle seed so
/// COO inputs arrive in arbitrary storage order (as imported data would).
fn arb_matrix() -> impl Strategy<Value = (SparseTriples, u64)> {
    (1usize..32, 1usize..32).prop_flat_map(|(rows, cols)| {
        let max_nnz = (rows * cols).min(96);
        (
            proptest::collection::vec(((0..rows), (0..cols), -100i32..100), 0..max_nnz),
            1u64..u64::MAX,
        )
            .prop_map(move |(entries, seed)| {
                let mut t = SparseTriples::new(Shape::matrix(rows, cols));
                for (i, j, v) in entries {
                    if v != 0 && t.get(&[i as i64, j as i64]) == 0.0 {
                        t.push(vec![i as i64, j as i64], v as f64)
                            .expect("in bounds");
                    }
                }
                (t, seed)
            })
    })
}

/// Random order-3 tensors as duplicate-free triples plus a shuffle seed.
fn arb_tensor3() -> impl Strategy<Value = (SparseTriples, u64)> {
    (1usize..12, 1usize..12, 1usize..12).prop_flat_map(|(d0, d1, d2)| {
        let max_nnz = (d0 * d1 * d2).min(96);
        (
            proptest::collection::vec(((0..d0), (0..d1), (0..d2), -100i32..100), 0..max_nnz),
            1u64..u64::MAX,
        )
            .prop_map(move |(entries, seed)| {
                let mut t = SparseTriples::new(Shape::tensor3(d0, d1, d2));
                for (i, j, k, v) in entries {
                    let coord = vec![i as i64, j as i64, k as i64];
                    if v != 0 && t.get(&coord) == 0.0 {
                        t.push(coord, v as f64).expect("in bounds");
                    }
                }
                (t, seed)
            })
    })
}

fn shuffled_coo3(t: &SparseTriples, seed: u64) -> CooTensor {
    let mut coo = CooTensor::from_triples(t);
    let mut state = seed;
    coo.shuffle_with(|bound| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state as usize) % bound
    });
    coo
}

fn shuffled_coo(t: &SparseTriples, seed: u64) -> CooMatrix {
    let mut coo = CooMatrix::from_triples(t);
    let mut state = seed;
    coo.shuffle_with(|bound| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state as usize) % bound
    });
    coo
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// COO→CSR: the partitioned histogram + prefix-sum-merge kernel matches
    /// the sequential engine bit for bit at every pool width.
    #[test]
    fn parallel_coo_to_csr_is_byte_equal((t, seed) in arb_matrix()) {
        let coo = shuffled_coo(&t, seed);
        let reference = engine::to_csr(&coo);
        for threads in THREAD_POOLS {
            let parallel = kernels::coo_to_csr(&coo, threads);
            prop_assert_eq!(parallel.pos(), reference.pos(), "pos, {} threads", threads);
            prop_assert_eq!(parallel.crd(), reference.crd(), "crd, {} threads", threads);
            prop_assert_eq!(parallel.values(), reference.values(), "vals, {} threads", threads);
        }
    }

    /// CSR→CSC: the partitioned transpose matches the sequential engine.
    #[test]
    fn parallel_csr_to_csc_is_byte_equal((t, _) in arb_matrix()) {
        let csr = CsrMatrix::from_triples(&t);
        let reference = engine::to_csc(&csr);
        for threads in THREAD_POOLS {
            let parallel = kernels::csr_to_csc(&csr, threads);
            prop_assert_eq!(parallel.pos(), reference.pos(), "pos, {} threads", threads);
            prop_assert_eq!(parallel.crd(), reference.crd(), "crd, {} threads", threads);
            prop_assert_eq!(parallel.values(), reference.values(), "vals, {} threads", threads);
        }
    }

    /// CSR→BCSR: block discovery and dense-block scatter match the engine
    /// for a spread of block shapes.
    #[test]
    fn parallel_csr_to_bcsr_is_byte_equal(
        ((t, _), block_rows, block_cols) in (arb_matrix(), 1usize..5, 1usize..5)
    ) {
        let csr = CsrMatrix::from_triples(&t);
        let reference = engine::to_bcsr(&csr, block_rows, block_cols);
        for threads in THREAD_POOLS {
            let parallel = kernels::csr_to_bcsr(&csr, block_rows, block_cols, threads);
            prop_assert_eq!(parallel.pos(), reference.pos(), "pos, {} threads", threads);
            prop_assert_eq!(parallel.crd(), reference.crd(), "crd, {} threads", threads);
            prop_assert_eq!(parallel.values(), reference.values(), "vals, {} threads", threads);
        }
    }

    /// COO3→CSF: the root-fiber-partitioned sort-and-pack kernel matches the
    /// sequential engine bit for bit at every pool width.
    #[test]
    fn parallel_coo3_to_csf_is_byte_equal((t, seed) in arb_tensor3()) {
        let coo = shuffled_coo3(&t, seed);
        let reference = engine::to_csf(&coo);
        for threads in THREAD_POOLS {
            let parallel = kernels::coo_to_csf(&coo, threads);
            prop_assert_eq!(&parallel, &reference, "{} threads", threads);
        }
        prop_assert!(reference.to_triples().same_values(&t));
    }

    /// The service's tensor route (parallel kernel included) matches the
    /// sequential `sparse_conv::convert`, and CSF→COO3 round-trips to the
    /// sorted triples.
    #[test]
    fn service_tensor_conversions_match_sequential_convert((t, seed) in arb_tensor3()) {
        let coo3 = AnyMatrix::Coo3(shuffled_coo3(&t, seed));
        for threads in THREAD_POOLS {
            let service = ConversionService::new(ServiceConfig {
                threads,
                parallel_nnz_threshold: 0,
                ..ServiceConfig::default()
            });
            let got = service.convert(&coo3, FormatId::Csf).expect("conversion");
            let want = sparse_conv::convert(&coo3, FormatId::Csf).expect("conversion");
            prop_assert_eq!(&got, &want, "COO3→CSF at {} threads", threads);
            let back = service.convert(&got, FormatId::Coo3).expect("conversion");
            prop_assert!(back.to_triples().same_values(&t));
            prop_assert!(back.to_triples().is_sorted(), "CSF iterates in sorted order");
        }
    }

    /// The full service (routing included) returns exactly what the
    /// sequential `sparse_conv::convert` returns, at every pool width.
    #[test]
    fn service_conversions_match_sequential_convert((t, seed) in arb_matrix()) {
        let coo = AnyMatrix::Coo(shuffled_coo(&t, seed));
        for threads in THREAD_POOLS {
            let service = ConversionService::new(ServiceConfig {
                threads,
                parallel_nnz_threshold: 0,
                ..ServiceConfig::default()
            });
            for target in [
                FormatId::Csr,
                FormatId::Csc,
                FormatId::Dia,
                FormatId::Ell,
                FormatId::Jad,
                FormatId::Bcsr { block_rows: 2, block_cols: 2 },
            ] {
                let got = service.convert(&coo, target).expect("conversion");
                let want = sparse_conv::convert(&coo, target).expect("conversion");
                prop_assert_eq!(got, want, "{} at {} threads", target, threads);
            }
        }
    }
}

#[test]
fn plan_cache_never_replans_a_warm_pair() {
    let planned = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let counter = std::sync::Arc::clone(&planned);
    let cache = PlanCache::with_planner(Box::new(move |s, t| {
        counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        sparse_conv::convert::plan_for_formats(s, t)
    }));
    let pairs = [
        (FormatId::Coo, FormatId::Csr),
        (FormatId::Csr, FormatId::Csc),
        (FormatId::Csc, FormatId::Dia),
    ];
    for (s, t) in pairs {
        cache.plan(s, t).unwrap();
    }
    let built_after_warmup = planned.load(std::sync::atomic::Ordering::SeqCst);
    assert_eq!(built_after_warmup, pairs.len());
    for _ in 0..10 {
        for (s, t) in pairs {
            cache.plan(s, t).unwrap();
        }
    }
    assert_eq!(
        planned.load(std::sync::atomic::Ordering::SeqCst),
        built_after_warmup,
        "zero re-planning after warm-up"
    );
    assert_eq!(cache.hits(), 30);
}
