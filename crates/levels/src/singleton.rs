//! The singleton level format (Figure 7, right).
//!
//! A singleton level stores exactly one coordinate per parent position — the
//! column dimension of COO and ELL. Its position function simply forwards the
//! parent's position.

use attr_query::{AttrQuery, QueryResult};

use crate::assembler::{LevelAssembler, PositionKind};
use crate::properties::{LevelKind, LevelProperties};

/// A singleton level under assembly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SingletonLevel {
    crd: Vec<i64>,
}

impl SingletonLevel {
    /// Creates an empty singleton level.
    pub fn new() -> Self {
        SingletonLevel::default()
    }

    /// The assembled coordinate array.
    pub fn crd(&self) -> &[i64] {
        &self.crd
    }

    /// Consumes the level, returning its coordinate array.
    pub fn into_crd(self) -> Vec<i64> {
        self.crd
    }
}

impl LevelAssembler for SingletonLevel {
    fn kind(&self) -> LevelKind {
        LevelKind::Singleton
    }

    fn properties(&self) -> LevelProperties {
        LevelProperties {
            full: false,
            ordered: false,
            unique: false,
            stores_explicit_zeros: false,
            position_iterable_in_order: true,
        }
    }

    fn required_query(&self, _dims: &[String], _level: usize) -> Option<AttrQuery> {
        None
    }

    fn position_kind(&self) -> PositionKind {
        PositionKind::Yield
    }

    fn size(&self, parent_size: usize) -> usize {
        parent_size
    }

    fn init_coords(&mut self, parent_size: usize, _q: Option<&QueryResult>) {
        // init_coords in Figure 7: crd = calloc(sz, int).
        self.crd = vec![0; parent_size];
    }

    fn position(&mut self, parent_pos: usize, _coords: &[i64]) -> usize {
        // get_pos(p2, ..., i3) = p2.
        parent_pos
    }

    fn insert_coord(&mut self, _parent_pos: usize, pos: usize, coords: &[i64]) {
        // A hashed ancestor interns its positions on demand, so the parent
        // size seen by `init_coords` can undercount; grow to match (the
        // driver grows its value array the same way).
        if pos >= self.crd.len() {
            self.crd.resize(pos + 1, 0);
        }
        self.crd[pos] = *coords.last().expect("singleton level needs a coordinate");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwards_parent_positions_and_stores_coordinates() {
        let mut level = SingletonLevel::new();
        level.init_coords(5, None);
        assert_eq!(level.size(5), 5);
        for (p, j) in [(0usize, 4i64), (1, 2), (4, 0)] {
            let pos = level.position(p, &[0, j]);
            assert_eq!(pos, p);
            level.insert_coord(p, pos, &[0, j]);
        }
        assert_eq!(level.crd(), &[4, 2, 0, 0, 0]);
        assert_eq!(level.clone().into_crd().len(), 5);
    }

    #[test]
    fn no_query_and_yield_positions() {
        let level = SingletonLevel::new();
        assert!(level.required_query(&["i".into(), "j".into()], 1).is_none());
        assert_eq!(level.position_kind(), PositionKind::Yield);
        assert_eq!(level.kind(), LevelKind::Singleton);
        assert!(!level.properties().unique);
    }
}
