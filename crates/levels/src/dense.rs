//! The dense level format (Figure 4, left; Figure 7, middle).

use attr_query::{AttrQuery, QueryResult};

use crate::assembler::LevelAssembler;
use crate::properties::{LevelKind, LevelProperties};

/// A dense level: all `extent` coordinates of the dimension are implicitly
/// encoded, so no coordinate data is stored and positions are computed as
/// `parent_pos * extent + coordinate`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseLevel {
    extent: usize,
    /// Smallest coordinate value (normally 0; remapped dense dimensions keep
    /// the default).
    lower: i64,
}

impl DenseLevel {
    /// Creates a dense level over coordinates `[0, extent)`.
    pub fn new(extent: usize) -> Self {
        DenseLevel { extent, lower: 0 }
    }

    /// Creates a dense level over coordinates `[lower, lower + extent)`.
    pub fn with_lower_bound(extent: usize, lower: i64) -> Self {
        DenseLevel { extent, lower }
    }

    /// The dimension extent `N`.
    pub fn extent(&self) -> usize {
        self.extent
    }
}

impl LevelAssembler for DenseLevel {
    fn kind(&self) -> LevelKind {
        LevelKind::Dense
    }

    fn properties(&self) -> LevelProperties {
        LevelProperties::dense_like()
    }

    fn required_query(&self, _dims: &[String], _level: usize) -> Option<AttrQuery> {
        None
    }

    fn size(&self, parent_size: usize) -> usize {
        parent_size * self.extent
    }

    fn init_coords(&mut self, _parent_size: usize, _q: Option<&QueryResult>) {}

    fn position(&mut self, parent_pos: usize, coords: &[i64]) -> usize {
        let coord = *coords.last().expect("dense level needs a coordinate");
        debug_assert!(coord >= self.lower && coord < self.lower + self.extent as i64);
        parent_pos * self.extent + (coord - self.lower) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_are_row_major() {
        // CSR's dense row level: locate(p0, i1) = p0 * N + i1 (Figure 4).
        let mut level = DenseLevel::new(6);
        assert_eq!(level.size(1), 6);
        assert_eq!(level.size(4), 24);
        assert_eq!(level.position(0, &[3]), 3);
        assert_eq!(level.position(2, &[1, 5]), 17);
        assert_eq!(level.extent(), 6);
    }

    #[test]
    fn lower_bound_shifts_coordinates() {
        let mut level = DenseLevel::with_lower_bound(4, -1);
        assert_eq!(level.position(0, &[-1]), 0);
        assert_eq!(level.position(1, &[2]), 7);
    }

    #[test]
    fn no_query_needed() {
        let level = DenseLevel::new(4);
        assert!(level.required_query(&["i".into(), "j".into()], 0).is_none());
        assert_eq!(level.kind(), LevelKind::Dense);
        assert!(level.properties().full);
    }
}
