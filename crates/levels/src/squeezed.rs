//! The squeezed level format (Figure 11, top): DIA's offset dimension.
//!
//! A squeezed level stores the *set* of coordinate values that contain
//! nonzeros (the nonzero diagonals) in a `perm` array, and builds a reverse
//! map `rperm` so that positions can be computed by random access during
//! assembly. Its required query is the `id()` bit set over its dimension.

use attr_query::{Aggregate, AttrQuery, QueryResult};

use crate::assembler::LevelAssembler;
use crate::properties::{LevelKind, LevelProperties};

/// Label of the attribute query a squeezed level needs: whether each
/// coordinate value of its dimension contains any nonzero.
pub const NZ: &str = "nz";

/// A squeezed level under assembly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SqueezedLevel {
    /// Lower bound of the dimension's coordinate range (`Mk` in Figure 11).
    lower: i64,
    /// Upper bound (exclusive; `Nk` in Figure 11).
    upper: i64,
    perm: Vec<i64>,
    rperm: Vec<usize>,
}

impl SqueezedLevel {
    /// Creates a squeezed level over coordinates `[lower, upper)`.
    pub fn new(lower: i64, upper: i64) -> Self {
        SqueezedLevel {
            lower,
            upper,
            perm: Vec::new(),
            rperm: Vec::new(),
        }
    }

    /// The stored coordinate values (DIA's `perm` array of diagonal offsets),
    /// valid after `init_coords`.
    pub fn perm(&self) -> &[i64] {
        &self.perm
    }

    /// Number of stored coordinate values (`K`).
    pub fn count(&self) -> usize {
        self.perm.len()
    }

    /// Consumes the level, returning its `perm` array.
    pub fn into_perm(self) -> Vec<i64> {
        self.perm
    }
}

impl LevelAssembler for SqueezedLevel {
    fn kind(&self) -> LevelKind {
        LevelKind::Squeezed
    }

    fn properties(&self) -> LevelProperties {
        LevelProperties {
            full: false,
            ordered: true,
            unique: true,
            stores_explicit_zeros: false,
            position_iterable_in_order: true,
        }
    }

    fn required_query(&self, dims: &[String], level: usize) -> Option<AttrQuery> {
        // Figure 11: Qk := [select [ik] -> id() as nz].
        Some(AttrQuery::single(
            vec![dims[level].clone()],
            Aggregate::Id,
            NZ,
        ))
    }

    fn size(&self, parent_size: usize) -> usize {
        parent_size * self.perm.len()
    }

    fn init_coords(&mut self, _parent_size: usize, q: Option<&QueryResult>) {
        // init_coords: scan the nz bit set and collect present coordinates.
        let q = q.expect("squeezed level needs its `nz` query");
        self.perm.clear();
        for c in self.lower..self.upper {
            let nz = q
                .get(&[c], NZ)
                .expect("squeezed level authored its `nz` query");
            if nz != 0 {
                self.perm.push(c);
            }
        }
    }

    fn init_pos(&mut self, _parent_size: usize) {
        // init_get_pos: build the reverse permutation.
        self.rperm = vec![usize::MAX; (self.upper - self.lower).max(0) as usize];
        for (n, &c) in self.perm.iter().enumerate() {
            self.rperm[(c - self.lower) as usize] = n;
        }
    }

    fn position(&mut self, parent_pos: usize, coords: &[i64]) -> usize {
        // get_pos(pk-1, ..., ik) = pk-1 * K + rperm[ik - Mk].
        let coord = *coords.last().expect("squeezed level needs a coordinate");
        let slot = self.rperm[(coord - self.lower) as usize];
        debug_assert_ne!(
            slot,
            usize::MAX,
            "coordinate {coord} was not marked nonzero"
        );
        parent_pos * self.perm.len() + slot
    }

    fn finalize_pos(&mut self, _parent_size: usize) {
        // finalize_get_pos: free(rperm).
        self.rperm = Vec::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_tensor::DimBounds;

    #[test]
    fn collects_nonzero_diagonals_from_the_id_query() {
        // The example matrix's diagonals: offsets -2, 0, 1 in [-3, 6).
        let dims = vec!["k".to_string(), "i".to_string(), "j".to_string()];
        let mut level = SqueezedLevel::new(-3, 6);
        let query = level.required_query(&dims, 0).unwrap();
        assert_eq!(query.to_string(), "select [k] -> id() as nz");

        let mut q = QueryResult::new(&query, vec![DimBounds::new(-3, 6)]);
        for k in [-2i64, 0, 1] {
            q.set(&[k], NZ, 1).unwrap();
        }
        level.init_coords(1, Some(&q));
        assert_eq!(level.perm(), &[-2, 0, 1]);
        assert_eq!(level.count(), 3);
        assert_eq!(level.size(1), 3);

        level.init_pos(1);
        assert_eq!(level.position(0, &[-2]), 0);
        assert_eq!(level.position(0, &[0]), 1);
        assert_eq!(level.position(0, &[1]), 2);
        level.finalize_pos(1);
        assert_eq!(level.clone().into_perm(), vec![-2, 0, 1]);
    }

    #[test]
    fn empty_dimension_has_no_stored_values() {
        let dims = vec!["k".to_string()];
        let mut level = SqueezedLevel::new(0, 4);
        let query = level.required_query(&dims, 0).unwrap();
        let q = QueryResult::new(&query, vec![DimBounds::from_extent(4)]);
        level.init_coords(1, Some(&q));
        assert_eq!(level.count(), 0);
        assert_eq!(level.size(3), 0);
    }

    #[test]
    fn kind_and_properties() {
        let level = SqueezedLevel::new(0, 1);
        assert_eq!(level.kind(), LevelKind::Squeezed);
        assert!(level.properties().ordered);
        assert!(!level.properties().full);
    }
}
