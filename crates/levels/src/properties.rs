//! Level kinds and the properties the code generator reasons about.

use std::fmt;

/// The level formats implemented in this reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LevelKind {
    /// Implicitly encodes every coordinate in `[0, extent)` (CSR's row level).
    Dense,
    /// `pos`/`crd` arrays grouping children under each parent, one entry per
    /// distinct child coordinate (CSR's column level, BCSR's block level).
    Compressed,
    /// A compressed level that stores duplicate coordinates — one entry per
    /// nonzero below it rather than per distinct child (COO's row level).
    CompressedNonUnique,
    /// One coordinate per parent position (COO's column level, ELL's column
    /// level).
    Singleton,
    /// A dense level whose extent `K` is only known after analysis (ELL's
    /// slice level).
    Sliced,
    /// A compressed set of coordinate values stored in a `perm` array with a
    /// reverse map for random access (DIA's offset level).
    Squeezed,
    /// A dense run from the first stored coordinate to the diagonal (the
    /// skyline format's column level).
    Banded,
    /// A hash table from coordinates to positions (DOK-style targets;
    /// extension beyond the paper's examples).
    Hashed,
}

impl fmt::Display for LevelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            LevelKind::Dense => "dense",
            LevelKind::Compressed => "compressed",
            LevelKind::CompressedNonUnique => "compressed-nonunique",
            LevelKind::Singleton => "singleton",
            LevelKind::Sliced => "sliced",
            LevelKind::Squeezed => "squeezed",
            LevelKind::Banded => "banded",
            LevelKind::Hashed => "hashed",
        };
        f.write_str(name)
    }
}

/// Error returned when a level name does not parse as a [`LevelKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLevelKindError(pub String);

impl fmt::Display for ParseLevelKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown level kind `{}` (expected dense, compressed, \
             compressed-nonunique, singleton, sliced, squeezed, banded, or \
             hashed)",
            self.0
        )
    }
}

impl std::error::Error for ParseLevelKindError {}

impl std::str::FromStr for LevelKind {
    type Err = ParseLevelKindError;

    /// Parses the names the `Display` impl emits (case-insensitive), so every
    /// kind round-trips through its `Display` form. Used by the format
    /// registry's spec-string notation (`dense,compressed,...`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "dense" => Ok(LevelKind::Dense),
            "compressed" => Ok(LevelKind::Compressed),
            "compressed-nonunique" | "compressed_nonunique" => Ok(LevelKind::CompressedNonUnique),
            "singleton" => Ok(LevelKind::Singleton),
            "sliced" => Ok(LevelKind::Sliced),
            "squeezed" => Ok(LevelKind::Squeezed),
            "banded" => Ok(LevelKind::Banded),
            "hashed" => Ok(LevelKind::Hashed),
            _ => Err(ParseLevelKindError(s.to_string())),
        }
    }
}

/// Properties of a level format, following Chou et al. (2018) plus the
/// explicit-zeros property this paper adds for the `simplify-width-count`
/// transformation (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LevelProperties {
    /// Every coordinate in the dimension is represented (dense-like levels).
    pub full: bool,
    /// Coordinates appear in ascending order within each parent.
    pub ordered: bool,
    /// No coordinate appears more than once within each parent.
    pub unique: bool,
    /// Stored positions may include padding / explicit zeros (true for dense,
    /// sliced, squeezed, and banded levels, which is why `count` queries over
    /// them cannot use width shortcuts).
    pub stores_explicit_zeros: bool,
    /// Positions within the level can be visited in order by a simple loop
    /// over the parent (enables sequenced edge insertion).
    pub position_iterable_in_order: bool,
}

impl LevelProperties {
    /// Properties of a dense-like level (full, ordered, unique, padded).
    pub fn dense_like() -> Self {
        LevelProperties {
            full: true,
            ordered: true,
            unique: true,
            stores_explicit_zeros: true,
            position_iterable_in_order: true,
        }
    }

    /// Properties of a compressed level built by this crate's assemblers
    /// (grouped, not necessarily ordered within a parent).
    pub fn compressed_like() -> Self {
        LevelProperties {
            full: false,
            ordered: false,
            unique: true,
            stores_explicit_zeros: false,
            position_iterable_in_order: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(LevelKind::Dense.to_string(), "dense");
        assert_eq!(LevelKind::Squeezed.to_string(), "squeezed");
        assert_eq!(LevelKind::Hashed.to_string(), "hashed");
    }

    #[test]
    fn level_kinds_round_trip_through_display_and_from_str() {
        for kind in [
            LevelKind::Dense,
            LevelKind::Compressed,
            LevelKind::CompressedNonUnique,
            LevelKind::Singleton,
            LevelKind::Sliced,
            LevelKind::Squeezed,
            LevelKind::Banded,
            LevelKind::Hashed,
        ] {
            let rendered = kind.to_string();
            assert_eq!(rendered.parse::<LevelKind>().unwrap(), kind, "{rendered}");
            assert_eq!(rendered.to_uppercase().parse::<LevelKind>().unwrap(), kind);
        }
        let err = "diagonal".parse::<LevelKind>().unwrap_err();
        assert!(err.to_string().contains("diagonal"));
    }

    #[test]
    fn property_presets() {
        let d = LevelProperties::dense_like();
        assert!(d.full && d.ordered && d.unique && d.stores_explicit_zeros);
        let c = LevelProperties::compressed_like();
        assert!(!c.full && c.unique && !c.stores_explicit_zeros);
    }
}
