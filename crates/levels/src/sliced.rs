//! The sliced level format (Figure 7, left): ELL's outer dimension.
//!
//! A sliced level is dense over a slice count `K` that is only known after
//! analysis: `K` is one more than the largest coordinate along the remapped
//! slice dimension (which, for ELL, is the `#i` counter dimension, so `K` is
//! the maximum number of nonzeros in any row).

use attr_query::{Aggregate, AttrQuery, QueryResult};

use crate::assembler::LevelAssembler;
use crate::properties::{LevelKind, LevelProperties};

/// Label of the attribute query a sliced level needs: the maximum coordinate
/// of its dimension.
pub const MAX_CRD: &str = "max_crd";

/// A sliced level under assembly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlicedLevel {
    k: usize,
}

impl SlicedLevel {
    /// Creates a sliced level whose slice count is not yet known.
    pub fn new() -> Self {
        SlicedLevel { k: 0 }
    }

    /// The slice count `K` (valid after `init_coords`).
    pub fn slice_count(&self) -> usize {
        self.k
    }
}

impl LevelAssembler for SlicedLevel {
    fn kind(&self) -> LevelKind {
        LevelKind::Sliced
    }

    fn properties(&self) -> LevelProperties {
        LevelProperties::dense_like()
    }

    fn required_query(&self, dims: &[String], level: usize) -> Option<AttrQuery> {
        // Figure 7: Q1 := [select [] -> max(i1) as max_crd].
        Some(AttrQuery::single(
            Vec::new(),
            Aggregate::Max(dims[level].clone()),
            MAX_CRD,
        ))
    }

    fn size(&self, parent_size: usize) -> usize {
        parent_size * self.k
    }

    fn init_coords(&mut self, _parent_size: usize, q: Option<&QueryResult>) {
        // init_coords(sz0, Q1): K = Q1[0][].max_crd + 1.
        let q = q.expect("sliced level needs its `max_crd` query");
        let max_crd = q
            .field_max(MAX_CRD)
            .expect("sliced level authored its `max_crd` query");
        self.k = match max_crd {
            Some(max_crd) => (max_crd + 1).max(0) as usize,
            None => 0,
        };
    }

    fn position(&mut self, parent_pos: usize, coords: &[i64]) -> usize {
        // get_pos(p0, i1) = p0 * K + i1.
        let coord = *coords.last().expect("sliced level needs a coordinate");
        parent_pos * self.k + coord as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_tensor::DimBounds;

    #[test]
    fn slice_count_comes_from_the_max_query() {
        let dims = vec!["k".to_string(), "i".to_string(), "j".to_string()];
        let mut level = SlicedLevel::new();
        let query = level.required_query(&dims, 0).unwrap();
        assert_eq!(query.to_string(), "select [] -> max(k) as max_crd");

        let mut q = QueryResult::new(&query, vec![]);
        q.set(&[], MAX_CRD, 2).unwrap();
        level.init_coords(1, Some(&q));
        assert_eq!(level.slice_count(), 3);
        assert_eq!(level.size(1), 3);
        // ELL position: slice-major.
        assert_eq!(level.position(0, &[0]), 0);
        assert_eq!(level.position(0, &[2]), 2);
    }

    #[test]
    fn empty_input_yields_zero_slices() {
        let dims = vec!["k".to_string()];
        let mut level = SlicedLevel::new();
        let query = level.required_query(&dims, 0).unwrap();
        let q = QueryResult::new(&query, vec![]);
        level.init_coords(1, Some(&q));
        assert_eq!(level.slice_count(), 0);
        assert_eq!(level.size(1), 0);
    }

    #[test]
    fn kind_and_properties() {
        let level = SlicedLevel::new();
        assert_eq!(level.kind(), LevelKind::Sliced);
        assert!(level.properties().full);
        assert!(level.properties().stores_explicit_zeros);
        assert_eq!(DimBounds::from_extent(3).extent(), 3);
    }
}
