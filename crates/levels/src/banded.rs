//! The banded level format (Figure 11, bottom): the skyline format's column
//! dimension.
//!
//! A banded level stores, for every parent (row), the dense run of
//! coordinates from the row's smallest stored coordinate (`w`, obtained from
//! a `min` query) up to the diagonal. Edge insertion sizes each row's run as
//! `max(i - w + 1, 0)`; positions inside a run are computed arithmetically.

use attr_query::{Aggregate, AttrQuery, QueryResult};

use crate::assembler::{EdgeInsertion, LevelAssembler};
use crate::properties::{LevelKind, LevelProperties};

/// Label of the attribute query a banded level needs: the smallest stored
/// coordinate per parent.
pub const W: &str = "w";

/// A banded (skyline) level under assembly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BandedLevel {
    pos: Vec<usize>,
    first: Vec<usize>,
}

impl BandedLevel {
    /// Creates an empty banded level.
    pub fn new() -> Self {
        BandedLevel::default()
    }

    /// The assembled run offsets (one entry per parent, plus one).
    pub fn pos(&self) -> &[usize] {
        &self.pos
    }

    /// The first stored coordinate of every parent's run.
    pub fn first(&self) -> &[usize] {
        &self.first
    }

    /// Consumes the level, returning `(pos, first)`.
    pub fn into_arrays(self) -> (Vec<usize>, Vec<usize>) {
        (self.pos, self.first)
    }
}

impl LevelAssembler for BandedLevel {
    fn kind(&self) -> LevelKind {
        LevelKind::Banded
    }

    fn properties(&self) -> LevelProperties {
        LevelProperties {
            full: false,
            ordered: true,
            unique: true,
            stores_explicit_zeros: true,
            position_iterable_in_order: true,
        }
    }

    fn required_query(&self, dims: &[String], level: usize) -> Option<AttrQuery> {
        // Figure 11: Qk := [select [i1, ..., ik-1] -> min(ik) as w].
        Some(AttrQuery::single(
            dims[..level].to_vec(),
            Aggregate::Min(dims[level].clone()),
            W,
        ))
    }

    fn edge_insertion(&self) -> EdgeInsertion {
        EdgeInsertion::SequencedOrUnsequenced
    }

    fn size(&self, parent_size: usize) -> usize {
        self.pos.get(parent_size).copied().unwrap_or(0)
    }

    fn init_edges(&mut self, parent_size: usize, _sequenced: bool, _q: Option<&QueryResult>) {
        self.pos = vec![0; parent_size + 1];
        self.first = vec![0; parent_size];
    }

    fn insert_edges(
        &mut self,
        parent_pos: usize,
        parent_coords: &[i64],
        sequenced: bool,
        q: Option<&QueryResult>,
    ) {
        let q = q.expect("banded level edge insertion needs its `w` query");
        let row = *parent_coords
            .last()
            .expect("banded level needs the parent coordinate");
        let w = q
            .get(parent_coords, W)
            .expect("banded level authored its `w` query");
        // Rows with no stored nonzeros keep an empty run at the diagonal.
        let (first, run) = if w == attr_query::eval::MIN_EMPTY || w > row {
            (row.max(0) as usize, 0usize)
        } else {
            (w.max(0) as usize, (row - w + 1).max(0) as usize)
        };
        self.first[parent_pos] = first;
        if sequenced {
            self.pos[parent_pos + 1] = self.pos[parent_pos] + run;
        } else {
            self.pos[parent_pos + 1] = run;
        }
    }

    fn finalize_edges(&mut self, parent_size: usize, sequenced: bool) {
        if !sequenced {
            for p in 0..parent_size {
                self.pos[p + 1] += self.pos[p];
            }
        }
    }

    fn init_coords(&mut self, _parent_size: usize, _q: Option<&QueryResult>) {}

    fn position(&mut self, parent_pos: usize, coords: &[i64]) -> usize {
        // get_pos(pk-1, ..., ik) = pos[pk-1 + 1] + ik - ik-1 - 1
        //                        = pos[pk-1] + (ik - w)   for in-band entries.
        let n = coords.len();
        let row = coords[n - 2];
        let col = coords[n - 1];
        (self.pos[parent_pos + 1] as i64 + col - row - 1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_tensor::DimBounds;

    /// Rows with first-nonzero columns [0, 1, 0, 2] for a 4x4 lower triangle.
    fn w_query_result(level: &BandedLevel) -> QueryResult {
        let dims = vec!["i".to_string(), "j".to_string()];
        let query = level.required_query(&dims, 1).unwrap();
        assert_eq!(query.to_string(), "select [i] -> min(j) as w");
        let mut q = QueryResult::new(&query, vec![DimBounds::from_extent(4)]);
        for (i, w) in [0i64, 1, 0, 2].iter().enumerate() {
            q.set(&[i as i64], W, *w).unwrap();
        }
        q
    }

    #[test]
    fn edge_insertion_builds_skyline_profile() {
        let mut level = BandedLevel::new();
        let q = w_query_result(&level);
        level.init_edges(4, true, Some(&q));
        for i in 0..4i64 {
            level.insert_edges(i as usize, &[i], true, Some(&q));
        }
        level.finalize_edges(4, true);
        // Run lengths: 1, 1, 3, 2 -> pos = [0, 1, 2, 5, 7].
        assert_eq!(level.pos(), &[0, 1, 2, 5, 7]);
        assert_eq!(level.first(), &[0, 1, 0, 2]);
        assert_eq!(level.size(4), 7);
        // Positions inside row 2's run (columns 0..=2).
        assert_eq!(level.position(2, &[2, 0]), 2);
        assert_eq!(level.position(2, &[2, 1]), 3);
        assert_eq!(level.position(2, &[2, 2]), 4);
        assert_eq!(level.position(3, &[3, 3]), 6);
    }

    #[test]
    fn unsequenced_matches_sequenced() {
        let mut seq = BandedLevel::new();
        let q = w_query_result(&seq);
        seq.init_edges(4, true, Some(&q));
        for i in 0..4i64 {
            seq.insert_edges(i as usize, &[i], true, Some(&q));
        }
        seq.finalize_edges(4, true);

        let mut unseq = BandedLevel::new();
        unseq.init_edges(4, false, Some(&q));
        for i in 0..4i64 {
            unseq.insert_edges(i as usize, &[i], false, Some(&q));
        }
        unseq.finalize_edges(4, false);
        assert_eq!(seq.pos(), unseq.pos());
        assert_eq!(seq.first(), unseq.first());
    }

    #[test]
    fn empty_rows_get_empty_runs() {
        let mut level = BandedLevel::new();
        let dims = vec!["i".to_string(), "j".to_string()];
        let query = level.required_query(&dims, 1).unwrap();
        let q = QueryResult::new(&query, vec![DimBounds::from_extent(2)]);
        level.init_edges(2, true, Some(&q));
        for i in 0..2i64 {
            level.insert_edges(i as usize, &[i], true, Some(&q));
        }
        level.finalize_edges(2, true);
        assert_eq!(level.pos(), &[0, 0, 0]);
        let (pos, first) = level.into_arrays();
        assert_eq!(pos, vec![0, 0, 0]);
        assert_eq!(first, vec![0, 1]);
    }
}
