//! Coordinate hierarchy level formats and the assembly abstract interface
//! (Sections 2 and 6 of the PLDI 2020 paper).
//!
//! A sparse tensor format is modelled as a *coordinate hierarchy*: one level
//! per (remapped) dimension, each stored by a *level format* that exposes a
//! fixed static interface. Chou et al. (OOPSLA 2018) defined the iteration
//! side of that interface; this paper adds the *assembly* side — level
//! functions that describe how a level's data structures are constructed
//! given precomputed attribute-query results:
//!
//! * `get_size`,
//! * sequenced / unsequenced edge insertion
//!   (`seq_/unseq_{init,insert,finalize}_edges`),
//! * coordinate insertion (`init_coords`, `init_{get|yield}_pos`,
//!   `{get|yield}_pos`, `insert_coord`, `finalize_{get|yield}_pos`).
//!
//! The crate provides the [`LevelAssembler`] trait capturing that interface
//! plus implementations for the level formats used by the paper's format
//! zoo: [`DenseLevel`], [`CompressedLevel`], [`SingletonLevel`],
//! [`SlicedLevel`] (ELL), [`SqueezedLevel`] (DIA), [`BandedLevel`]
//! (skyline), and [`HashedLevel`] (an extension for DOK-style targets).
//!
//! The conversion engine in `sparse-conv` drives these assemblers exactly as
//! Figure 12 describes: optional edge insertion over the parent level, then
//! one coordinate-insertion pass over the (remapped) nonzeros.

pub mod assembler;
pub mod banded;
pub mod compressed;
pub mod dense;
pub mod hashed;
pub mod properties;
pub mod singleton;
pub mod sliced;
pub mod squeezed;

pub use assembler::{EdgeInsertion, LevelAssembler, PositionKind};
pub use banded::BandedLevel;
pub use compressed::CompressedLevel;
pub use dense::DenseLevel;
pub use hashed::HashedLevel;
pub use properties::{LevelKind, LevelProperties, ParseLevelKindError};
pub use singleton::SingletonLevel;
pub use sliced::SlicedLevel;
pub use squeezed::SqueezedLevel;
