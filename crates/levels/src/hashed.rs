//! A hashed level format: coordinates stored in a hash map (DOK-style
//! targets).
//!
//! The paper's level-format zoo does not include a hashed level, but the
//! abstraction accommodates one naturally: it needs no attribute query (the
//! map grows dynamically) and implements `get_pos` by interning coordinates.
//! It is included as an extensibility demonstration and is exercised by the
//! custom-format example.

use std::collections::HashMap;

use attr_query::{AttrQuery, QueryResult};

use crate::assembler::LevelAssembler;
use crate::properties::{LevelKind, LevelProperties};

/// A hashed level under assembly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HashedLevel {
    positions: HashMap<(usize, i64), usize>,
    coords: Vec<(usize, i64)>,
}

impl HashedLevel {
    /// Creates an empty hashed level.
    pub fn new() -> Self {
        HashedLevel::default()
    }

    /// The interned `(parent position, coordinate)` pairs in insertion order.
    pub fn coords(&self) -> &[(usize, i64)] {
        &self.coords
    }
}

impl LevelAssembler for HashedLevel {
    fn kind(&self) -> LevelKind {
        LevelKind::Hashed
    }

    fn properties(&self) -> LevelProperties {
        LevelProperties {
            full: false,
            ordered: false,
            unique: true,
            stores_explicit_zeros: false,
            position_iterable_in_order: false,
        }
    }

    fn required_query(&self, _dims: &[String], _level: usize) -> Option<AttrQuery> {
        None
    }

    fn size(&self, _parent_size: usize) -> usize {
        self.coords.len()
    }

    fn init_coords(&mut self, _parent_size: usize, _q: Option<&QueryResult>) {
        self.positions.clear();
        self.coords.clear();
    }

    fn position(&mut self, parent_pos: usize, coords: &[i64]) -> usize {
        let coord = *coords.last().expect("hashed level needs a coordinate");
        let next = self.coords.len();
        let entry = self.positions.entry((parent_pos, coord)).or_insert(next);
        if *entry == next {
            self.coords.push((parent_pos, coord));
        }
        *entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interns_coordinates_and_reuses_positions() {
        let mut level = HashedLevel::new();
        level.init_coords(0, None);
        let a = level.position(0, &[0, 3]);
        let b = level.position(0, &[0, 5]);
        let again = level.position(0, &[0, 3]);
        assert_eq!(a, again);
        assert_ne!(a, b);
        assert_eq!(level.size(0), 2);
        assert_eq!(level.coords(), &[(0, 3), (0, 5)]);
        assert!(level.required_query(&["i".into()], 0).is_none());
        assert_eq!(level.kind(), LevelKind::Hashed);
        assert!(!level.properties().position_iterable_in_order);
    }
}
