//! The compressed level format (Figure 11, middle).
//!
//! Compressed levels store a `pos` array mapping each parent position to a
//! segment of the `crd` array. They are used for the column dimension of CSR
//! and CSC, the row dimension of COO, and the block dimension of BCSR.

use attr_query::{Aggregate, AttrQuery, QueryResult};

use crate::assembler::{EdgeInsertion, LevelAssembler, PositionKind};
use crate::properties::{LevelKind, LevelProperties};

/// Label of the attribute query a compressed level needs: the number of
/// children (stored coordinates) per parent subtensor.
pub const NIR: &str = "nir";

/// A compressed level under assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedLevel {
    pos: Vec<usize>,
    crd: Vec<i64>,
    /// True when duplicate child coordinates are not stored (CSR's column
    /// level); false for COO's row level, which stores one entry per nonzero.
    unique: bool,
    /// True when edges were inserted unsequenced and `pos` still holds
    /// per-parent counts that need a prefix sum.
    needs_prefix_sum: bool,
}

impl Default for CompressedLevel {
    fn default() -> Self {
        CompressedLevel::new()
    }
}

impl CompressedLevel {
    /// Creates an empty compressed level that stores each child coordinate
    /// once.
    pub fn new() -> Self {
        CompressedLevel {
            pos: Vec::new(),
            crd: Vec::new(),
            unique: true,
            needs_prefix_sum: false,
        }
    }

    /// Creates an empty compressed level that stores duplicates (one entry
    /// per nonzero below it), as COO's row dimension does.
    pub fn non_unique() -> Self {
        CompressedLevel {
            unique: false,
            ..CompressedLevel::new()
        }
    }

    /// The assembled `pos` array (valid after `finalize_pos`).
    pub fn pos(&self) -> &[usize] {
        &self.pos
    }

    /// The assembled `crd` array.
    pub fn crd(&self) -> &[i64] {
        &self.crd
    }

    /// Consumes the level, returning `(pos, crd)`.
    pub fn into_arrays(self) -> (Vec<usize>, Vec<i64>) {
        (self.pos, self.crd)
    }
}

impl LevelAssembler for CompressedLevel {
    fn kind(&self) -> LevelKind {
        if self.unique {
            LevelKind::Compressed
        } else {
            LevelKind::CompressedNonUnique
        }
    }

    fn properties(&self) -> LevelProperties {
        LevelProperties {
            unique: self.unique,
            ..LevelProperties::compressed_like()
        }
    }

    fn required_query(&self, dims: &[String], level: usize) -> Option<AttrQuery> {
        // A unique compressed level allocates one slot per distinct child
        // (Figure 11: count(ik)); a non-unique one allocates one slot per
        // nonzero below it (count over all remaining dimensions).
        let counted = if self.unique {
            vec![dims[level].clone()]
        } else {
            dims[level..].to_vec()
        };
        Some(AttrQuery::single(
            dims[..level].to_vec(),
            Aggregate::Count(counted),
            NIR,
        ))
    }

    fn edge_insertion(&self) -> EdgeInsertion {
        EdgeInsertion::SequencedOrUnsequenced
    }

    fn position_kind(&self) -> PositionKind {
        PositionKind::Yield
    }

    fn size(&self, parent_size: usize) -> usize {
        self.pos.get(parent_size).copied().unwrap_or(0)
    }

    fn init_edges(&mut self, parent_size: usize, sequenced: bool, _q: Option<&QueryResult>) {
        self.pos = vec![0; parent_size + 1];
        self.needs_prefix_sum = !sequenced;
    }

    fn insert_edges(
        &mut self,
        parent_pos: usize,
        parent_coords: &[i64],
        sequenced: bool,
        q: Option<&QueryResult>,
    ) {
        let q = q.expect("compressed level edge insertion needs its `nir` query");
        let children = q
            .get(parent_coords, NIR)
            .expect("compressed level authored its `nir` query")
            .max(0) as usize;
        if sequenced {
            // seq_insert_edges: pos[p+1] = pos[p] + nir.
            self.pos[parent_pos + 1] = self.pos[parent_pos] + children;
        } else {
            // unseq_insert_edges: record the count; finalize performs the
            // prefix sum.
            self.pos[parent_pos + 1] = children;
        }
    }

    fn finalize_edges(&mut self, parent_size: usize, sequenced: bool) {
        if !sequenced {
            for p in 0..parent_size {
                self.pos[p + 1] += self.pos[p];
            }
            self.needs_prefix_sum = false;
        }
    }

    fn init_coords(&mut self, parent_size: usize, _q: Option<&QueryResult>) {
        let total = self.pos.get(parent_size).copied().unwrap_or(0);
        self.crd = vec![0; total];
    }

    fn position(&mut self, parent_pos: usize, _coords: &[i64]) -> usize {
        // yield_pos: pos[p] is used as a write cursor and bumped; finalize
        // shifts the array back (Figure 11, middle).
        let p = self.pos[parent_pos];
        self.pos[parent_pos] += 1;
        p
    }

    fn insert_coord(&mut self, _parent_pos: usize, pos: usize, coords: &[i64]) {
        self.crd[pos] = *coords.last().expect("compressed level needs a coordinate");
    }

    fn finalize_pos(&mut self, parent_size: usize) {
        // finalize_yield_pos: shift pos back down by one parent (Figure 11
        // middle / lines 22-25 of Figure 6c).
        for i in 0..parent_size {
            self.pos[parent_size - i] = self.pos[parent_size - i - 1];
        }
        self.pos[0] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_tensor::DimBounds;

    fn nir_query() -> AttrQuery {
        AttrQuery::single(vec!["i".into()], Aggregate::Count(vec!["j".into()]), NIR)
    }

    /// Drives the assembler through the COO→CSR column-level assembly of
    /// Figure 6c for the example matrix.
    fn assemble(sequenced: bool) -> CompressedLevel {
        let query = nir_query();
        let mut q = QueryResult::new(&query, vec![DimBounds::from_extent(4)]);
        for (i, n) in [2i64, 2, 2, 3].iter().enumerate() {
            q.set(&[i as i64], NIR, *n).unwrap();
        }
        let mut level = CompressedLevel::new();
        level.init_edges(4, sequenced, Some(&q));
        for i in 0..4i64 {
            level.insert_edges(i as usize, &[i], sequenced, Some(&q));
        }
        level.finalize_edges(4, sequenced);
        assert_eq!(level.pos(), &[0, 2, 4, 6, 9]);
        level.init_coords(4, Some(&q));
        // Insert the example matrix's nonzeros (row-grouped order).
        let coords: [(i64, i64); 9] = [
            (0, 0),
            (0, 1),
            (1, 1),
            (1, 2),
            (2, 0),
            (2, 2),
            (3, 1),
            (3, 3),
            (3, 4),
        ];
        level.init_pos(4);
        for (i, j) in coords {
            let p = level.position(i as usize, &[i, j]);
            level.insert_coord(i as usize, p, &[i, j]);
        }
        level.finalize_pos(4);
        level
    }

    #[test]
    fn sequenced_assembly_builds_figure2b_arrays() {
        let level = assemble(true);
        assert_eq!(level.pos(), &[0, 2, 4, 6, 9]);
        assert_eq!(level.crd(), &[0, 1, 1, 2, 0, 2, 1, 3, 4]);
    }

    #[test]
    fn unsequenced_assembly_matches_sequenced() {
        assert_eq!(assemble(false), assemble(true));
    }

    #[test]
    fn required_query_counts_children_per_parent() {
        let level = CompressedLevel::new();
        let dims = vec!["i".to_string(), "j".to_string()];
        let q = level.required_query(&dims, 1).unwrap();
        assert_eq!(q.to_string(), "select [i] -> count(j) as nir");
        let q0 = level.required_query(&dims, 0).unwrap();
        assert_eq!(q0.to_string(), "select [] -> count(i) as nir");
    }

    #[test]
    fn size_reports_total_children() {
        let level = assemble(true);
        assert_eq!(level.size(4), 9);
        let (pos, crd) = level.into_arrays();
        assert_eq!(pos.len(), 5);
        assert_eq!(crd.len(), 9);
    }
}
