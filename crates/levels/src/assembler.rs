//! The assembly abstract interface (Section 6.1).

use attr_query::{AttrQuery, QueryResult};

use crate::properties::{LevelKind, LevelProperties};

/// Which edge-insertion variants a level format supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeInsertion {
    /// The level needs no edge-insertion phase (dense, sliced, squeezed,
    /// singleton levels).
    None,
    /// The level supports both sequenced and unsequenced edge insertion
    /// (compressed and banded levels); the planner picks sequenced when the
    /// parent level can be iterated in order.
    SequencedOrUnsequenced,
}

/// Whether a level's position function guarantees distinct positions for
/// duplicate coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PositionKind {
    /// `get_pos`: nonzeros with the same coordinates map to the same
    /// position (dense, sliced, squeezed, banded, hashed levels).
    Get,
    /// `yield_pos`: every insertion gets a fresh position, so duplicates can
    /// be stored (compressed and singleton levels).
    Yield,
}

/// The assembly abstract interface every level format implements
/// (Section 6.1, Figures 7 and 11).
///
/// A conversion drives an assembler in two phases, exactly as in Figure 12:
///
/// 1. **Edge insertion** (optional): `init_edges`, then `insert_edges` once
///    per parent position, then `finalize_edges`.
/// 2. **Coordinate insertion**: `init_coords` and `init_pos`, then for every
///    (remapped) nonzero `position` followed by `insert_coord`, and finally
///    `finalize_pos`.
///
/// Coordinates are passed as the prefix of the nonzero's remapped coordinates
/// ending at this level, i.e. `coords[coords.len() - 1]` is this level's
/// coordinate and `coords[coords.len() - 2]` is the parent's.
pub trait LevelAssembler {
    /// The level format's kind.
    fn kind(&self) -> LevelKind;

    /// The level format's static properties.
    fn properties(&self) -> LevelProperties;

    /// The attribute query this level needs precomputed, if any, expressed
    /// over the remapped dimension names (`dims[level]` is this level's
    /// dimension).
    fn required_query(&self, dims: &[String], level: usize) -> Option<AttrQuery>;

    /// Which edge-insertion variants the level supports.
    fn edge_insertion(&self) -> EdgeInsertion {
        EdgeInsertion::None
    }

    /// Whether positions of duplicate coordinates coincide.
    fn position_kind(&self) -> PositionKind {
        PositionKind::Get
    }

    /// `get_size`: the size of this level given the size of its parent level.
    fn size(&self, parent_size: usize) -> usize;

    /// `seq_init_edges` / `unseq_init_edges`.
    fn init_edges(&mut self, _parent_size: usize, _sequenced: bool, _q: Option<&QueryResult>) {}

    /// `seq_insert_edges` / `unseq_insert_edges` for one parent position.
    /// `parent_coords` identifies the parent subtensor (remapped coordinates
    /// of the enclosing levels).
    fn insert_edges(
        &mut self,
        _parent_pos: usize,
        _parent_coords: &[i64],
        _sequenced: bool,
        _q: Option<&QueryResult>,
    ) {
    }

    /// `unseq_finalize_edges` (a no-op after sequenced insertion).
    fn finalize_edges(&mut self, _parent_size: usize, _sequenced: bool) {}

    /// `init_coords`.
    fn init_coords(&mut self, parent_size: usize, q: Option<&QueryResult>);

    /// `init_get_pos` / `init_yield_pos`.
    fn init_pos(&mut self, _parent_size: usize) {}

    /// `get_pos` / `yield_pos`: the position at which to store the nonzero
    /// whose remapped coordinate prefix is `coords`, under parent position
    /// `parent_pos`.
    fn position(&mut self, parent_pos: usize, coords: &[i64]) -> usize;

    /// `insert_coord`: store the coordinate at the given position.
    fn insert_coord(&mut self, _parent_pos: usize, _pos: usize, _coords: &[i64]) {}

    /// `finalize_get_pos` / `finalize_yield_pos`.
    fn finalize_pos(&mut self, _parent_size: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompressedLevel, DenseLevel, SingletonLevel, SlicedLevel, SqueezedLevel};

    #[test]
    fn trait_is_object_safe_and_defaults_apply() {
        let mut levels: Vec<Box<dyn LevelAssembler>> = vec![
            Box::new(DenseLevel::new(4)),
            Box::new(CompressedLevel::new()),
            Box::new(SingletonLevel::new()),
            Box::new(SlicedLevel::new()),
            Box::new(SqueezedLevel::new(-3, 4)),
        ];
        let dims = vec!["i".to_string(), "j".to_string()];
        for level in &mut levels {
            // Exercise the defaulted methods through the trait object.
            level.finalize_edges(0, true);
            let _ = level.required_query(&dims, 1);
            let _ = level.kind();
            let _ = level.properties();
        }
    }

    #[test]
    fn edge_insertion_defaults() {
        assert_eq!(DenseLevel::new(4).edge_insertion(), EdgeInsertion::None);
        assert_eq!(
            CompressedLevel::new().edge_insertion(),
            EdgeInsertion::SequencedOrUnsequenced
        );
        assert_eq!(CompressedLevel::new().position_kind(), PositionKind::Yield);
        assert_eq!(DenseLevel::new(4).position_kind(), PositionKind::Get);
    }
}
