//! Concurrency properties of the metrics registry and span collector:
//! N threads hammering one `Counter`/`Histogram` lose no increments, and
//! per-thread spans nested under a parent stay inside the parent's
//! wall-clock window (so per-phase breakdowns never exceed the total).

#![cfg(feature = "collector")]

use conv_obs::{Collector, Histogram, Registry, Span};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Relaxed atomic increments from many threads are never lost: the
    /// counter ends at exactly `threads * per_thread`, and the histogram's
    /// count, sum, and per-bucket totals all match the inputs.
    #[test]
    fn concurrent_counter_and_histogram_lose_nothing(
        (threads, per_thread, values) in (1usize..8, 1usize..64)
            .prop_flat_map(|(threads, per_thread)| {
                (
                    Just(threads),
                    Just(per_thread),
                    proptest::collection::vec(
                        0u64..1_000_000,
                        threads * per_thread..threads * per_thread + 1,
                    ),
                )
            })
    ) {
        let counter = Registry::global().counter("test.concurrency.counter");
        let histogram = Registry::global().histogram("test.concurrency.hist");
        counter.reset();
        histogram.reset();
        std::thread::scope(|s| {
            for chunk in values.chunks(per_thread) {
                s.spawn(move || {
                    for &v in chunk {
                        counter.inc();
                        histogram.observe(v);
                    }
                });
            }
        });
        let n = (threads * per_thread) as u64;
        prop_assert_eq!(counter.get(), n);
        prop_assert_eq!(histogram.count(), n);
        prop_assert_eq!(histogram.sum(), values.iter().sum::<u64>());
        let mut expected = [0u64; conv_obs::HISTOGRAM_BUCKETS];
        for &v in &values {
            expected[Histogram::bucket_index(v)] += 1;
        }
        prop_assert_eq!(histogram.buckets(), expected);
    }

    /// Per-thread worker spans parented under a kernel span stay within the
    /// parent's wall-clock window (the dispatching scope joins every worker
    /// before the parent drops), so each worker duration — and the combined
    /// busy window — is bounded by the parent duration.
    #[test]
    fn worker_spans_stay_inside_the_parent_window(
        (workers, spins) in (1usize..6, 1u64..2000)
    ) {
        let parent = Span::enter_traced("kernel");
        let trace = parent.handle().trace_id();
        let handle = parent.handle();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(move || {
                    let span = Span::enter_under("chunk", handle);
                    let mut acc = 0u64;
                    for i in 0..spins {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                    }
                    span.add_items(acc | 1);
                });
            }
        });
        drop(parent);
        let records = Collector::global().take_trace(trace);
        let parent_rec = records
            .iter()
            .find(|r| r.name == "kernel")
            .expect("parent span recorded");
        let chunks: Vec<_> = records.iter().filter(|r| r.name == "chunk").collect();
        prop_assert_eq!(chunks.len(), workers);
        for c in &chunks {
            prop_assert!(c.start_ns >= parent_rec.start_ns);
            prop_assert!(c.end_ns() <= parent_rec.end_ns());
            prop_assert!(c.duration_ns <= parent_rec.duration_ns);
        }
        // The workers' combined busy window is bounded by the parent span.
        let first = chunks.iter().map(|c| c.start_ns).min().unwrap();
        let last = chunks.iter().map(|c| c.end_ns()).max().unwrap();
        prop_assert!(last - first <= parent_rec.duration_ns);
    }

    /// Sequential child spans partition the parent: their durations sum to
    /// at most the parent's duration — the invariant that makes top-level
    /// phase breakdowns sum to ≤ the conversion total.
    #[test]
    fn sequential_phase_durations_sum_to_at_most_the_parent(
        phases in 1usize..8
    ) {
        let parent = Span::enter_traced("convert");
        let trace = parent.handle().trace_id();
        for _ in 0..phases {
            let span = Span::enter("phase");
            span.add_items(1);
        }
        drop(parent);
        let records = Collector::global().take_trace(trace);
        let parent_rec = records.iter().find(|r| r.name == "convert").unwrap();
        let child_sum: u64 = records
            .iter()
            .filter(|r| r.name == "phase")
            .map(|r| r.duration_ns)
            .sum();
        prop_assert!(child_sum <= parent_rec.duration_ns);
    }
}
