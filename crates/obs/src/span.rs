//! RAII phase timers with thread-safe parent/child nesting.
//!
//! A [`Span`] measures one phase of a conversion: construct it when the phase
//! starts, drop it when the phase ends. Spans nest through a thread-local
//! stack — a span entered while another is open becomes its child — and
//! cross thread boundaries explicitly: a worker thread parents its spans
//! under a [`SpanHandle`] captured from the dispatching span.
//!
//! Finished spans flow into the global [`Collector`] **only when the trace is
//! recording**: a root opened with [`Span::enter_traced`] records itself and
//! every descendant (on any thread, via handles); a root opened with the
//! plain [`Span::enter`] records nothing, so instrumented library code costs
//! two `Instant::now` calls and a thread-local push when nobody is tracing.
//! [`Collector::take_trace`] extracts exactly one trace's records by root id,
//! so concurrent conversions never see each other's spans.
//!
//! With the `collector` feature disabled, every type in this module is an
//! inline zero-sized no-op: the instrumented code compiles away entirely.

#[cfg(feature = "collector")]
mod enabled {
    use std::cell::{Cell, RefCell};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    /// Hard cap on buffered records: a producer that never drains (e.g. a
    /// forgotten trace) is bounded instead of leaking; overflow is counted in
    /// [`Collector::dropped`].
    const CAPACITY: usize = 1 << 16;

    fn epoch() -> Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        *EPOCH.get_or_init(Instant::now)
    }

    fn next_id() -> u64 {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        NEXT.fetch_add(1, Ordering::Relaxed)
    }

    fn thread_index() -> u64 {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        thread_local! {
            static INDEX: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
        }
        INDEX.with(|i| *i)
    }

    #[derive(Clone, Copy)]
    struct StackEntry {
        id: u64,
        root: u64,
        recording: bool,
    }

    thread_local! {
        static STACK: RefCell<Vec<StackEntry>> = const { RefCell::new(Vec::new()) };
    }

    /// One finished span: who it was, where it sat in the trace tree, and
    /// what it measured.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SpanRecord {
        /// Unique id of the span (process-wide).
        pub id: u64,
        /// Id of the enclosing span, `None` for a trace root.
        pub parent: Option<u64>,
        /// Id of the trace root this span belongs to.
        pub root: u64,
        /// Phase name given at enter.
        pub name: &'static str,
        /// Start time in nanoseconds since the collector epoch.
        pub start_ns: u64,
        /// Wall-clock duration in nanoseconds.
        pub duration_ns: u64,
        /// Bytes attributed via [`Span::add_bytes`].
        pub bytes: u64,
        /// Items attributed via [`Span::add_items`].
        pub items: u64,
        /// Dense index of the thread the span ran on.
        pub thread: u64,
    }

    impl SpanRecord {
        /// End time in nanoseconds since the collector epoch.
        pub fn end_ns(&self) -> u64 {
            self.start_ns + self.duration_ns
        }
    }

    /// A copyable reference to an open span, used to parent spans across
    /// thread boundaries (worker threads have their own, empty span stacks).
    #[derive(Debug, Clone, Copy)]
    pub struct SpanHandle {
        id: u64,
        root: u64,
        recording: bool,
    }

    impl SpanHandle {
        /// The id of the trace this handle's span belongs to — the key for
        /// [`Collector::take_trace`].
        pub fn trace_id(&self) -> u64 {
            self.root
        }
    }

    /// An RAII phase timer: measures from construction to drop, then records
    /// itself (when its trace is recording) into the global [`Collector`].
    #[derive(Debug)]
    pub struct Span {
        id: u64,
        parent: Option<u64>,
        root: u64,
        recording: bool,
        name: &'static str,
        start: Instant,
        bytes: Cell<u64>,
        items: Cell<u64>,
    }

    impl Span {
        fn open(name: &'static str, parent: Option<(u64, u64, bool)>, traced: bool) -> Span {
            let id = next_id();
            let (parent_id, root, recording) = match parent {
                Some((pid, proot, prec)) => (Some(pid), proot, prec),
                None => (None, id, traced),
            };
            STACK.with(|s| {
                s.borrow_mut().push(StackEntry {
                    id,
                    root,
                    recording,
                })
            });
            Span {
                id,
                parent: parent_id,
                root,
                recording,
                name,
                start: Instant::now(),
                bytes: Cell::new(0),
                items: Cell::new(0),
            }
        }

        /// Enters a phase as a child of the innermost open span on this
        /// thread. With no enclosing span the new span is a *non-recording*
        /// root: it still nests children correctly but none of them reach the
        /// collector (tracing is opt-in via [`Span::enter_traced`]).
        pub fn enter(name: &'static str) -> Span {
            let parent = STACK.with(|s| s.borrow().last().map(|e| (e.id, e.root, e.recording)));
            Span::open(name, parent, false)
        }

        /// Enters a *recording* root span: this span and every descendant —
        /// including spans parented under its [`SpanHandle`] on other
        /// threads — are recorded, and can be extracted afterwards with
        /// [`Collector::take_trace`] keyed on [`SpanHandle::trace_id`].
        pub fn enter_traced(name: &'static str) -> Span {
            let parent = STACK.with(|s| s.borrow().last().map(|e| (e.id, e.root, e.recording)));
            Span::open(name, parent, true)
        }

        /// Enters a phase as a child of `parent`, regardless of this thread's
        /// span stack — the cross-thread nesting primitive for worker
        /// threads.
        pub fn enter_under(name: &'static str, parent: SpanHandle) -> Span {
            Span::open(
                name,
                Some((parent.id, parent.root, parent.recording)),
                false,
            )
        }

        /// A copyable handle for parenting spans on other threads.
        pub fn handle(&self) -> SpanHandle {
            SpanHandle {
                id: self.id,
                root: self.root,
                recording: self.recording,
            }
        }

        /// Attributes `n` bytes moved to this phase.
        pub fn add_bytes(&self, n: u64) {
            self.bytes.set(self.bytes.get() + n);
        }

        /// Attributes `n` processed items (nonzeros, blocks, …) to this
        /// phase.
        pub fn add_items(&self, n: u64) {
            self.items.set(self.items.get() + n);
        }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            STACK.with(|s| {
                let mut stack = s.borrow_mut();
                // Spans are expected to drop LIFO; a stray out-of-order drop
                // removes its own entry without corrupting the rest.
                if let Some(pos) = stack.iter().rposition(|e| e.id == self.id) {
                    stack.remove(pos);
                }
            });
            if !self.recording {
                return;
            }
            let duration_ns = self.start.elapsed().as_nanos() as u64;
            let start_ns = self.start.duration_since(epoch()).as_nanos() as u64;
            Collector::global().push(SpanRecord {
                id: self.id,
                parent: self.parent,
                root: self.root,
                name: self.name,
                start_ns,
                duration_ns,
                bytes: self.bytes.get(),
                items: self.items.get(),
                thread: thread_index(),
            });
        }
    }

    /// The global sink finished spans record into. One short mutex
    /// acquisition per *finished recorded span* — phase-granular, so the
    /// cost is a handful of locks per conversion, not per nonzero.
    #[derive(Debug, Default)]
    pub struct Collector {
        records: Mutex<Vec<SpanRecord>>,
        dropped: AtomicU64,
    }

    impl Collector {
        /// The process-wide collector.
        pub fn global() -> &'static Collector {
            static GLOBAL: OnceLock<Collector> = OnceLock::new();
            GLOBAL.get_or_init(|| {
                // Pin the epoch before the first span so start offsets are
                // non-negative.
                let _ = epoch();
                Collector::default()
            })
        }

        /// Whether the collector is compiled in (the `collector` feature).
        pub fn is_enabled() -> bool {
            true
        }

        fn push(&self, record: SpanRecord) {
            let mut records = self.records.lock().unwrap();
            if records.len() >= CAPACITY {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            records.push(record);
        }

        /// Removes and returns every record belonging to the trace rooted at
        /// `root` (see [`SpanHandle::trace_id`]), in completion order.
        /// Records of other traces are left untouched, so concurrent
        /// conversions can extract their traces independently.
        pub fn take_trace(&self, root: u64) -> Vec<SpanRecord> {
            let mut records = self.records.lock().unwrap();
            let mut taken = Vec::new();
            records.retain(|r| {
                if r.root == root {
                    taken.push(r.clone());
                    false
                } else {
                    true
                }
            });
            taken
        }

        /// Removes and returns every buffered record.
        pub fn drain(&self) -> Vec<SpanRecord> {
            std::mem::take(&mut *self.records.lock().unwrap())
        }

        /// Buffered (not yet taken) records.
        pub fn len(&self) -> usize {
            self.records.lock().unwrap().len()
        }

        /// True when no record is buffered.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Records discarded because the buffer was at capacity.
        pub fn dropped(&self) -> u64 {
            self.dropped.load(Ordering::Relaxed)
        }

        /// Discards every buffered record and clears the overflow counter.
        pub fn reset(&self) {
            self.records.lock().unwrap().clear();
            self.dropped.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(not(feature = "collector"))]
mod disabled {
    /// No-op span record (the `collector` feature is disabled). Kept as a
    /// real (empty) type so report-building code compiles unchanged.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SpanRecord {
        /// Unique id of the span (always 0 without the collector).
        pub id: u64,
        /// Id of the enclosing span.
        pub parent: Option<u64>,
        /// Id of the trace root.
        pub root: u64,
        /// Phase name.
        pub name: &'static str,
        /// Start offset (always 0 without the collector).
        pub start_ns: u64,
        /// Duration (always 0 without the collector).
        pub duration_ns: u64,
        /// Attributed bytes.
        pub bytes: u64,
        /// Attributed items.
        pub items: u64,
        /// Thread index.
        pub thread: u64,
    }

    impl SpanRecord {
        /// End time in nanoseconds since the collector epoch.
        #[inline(always)]
        pub fn end_ns(&self) -> u64 {
            0
        }
    }

    /// No-op span handle (zero-sized; the `collector` feature is disabled).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct SpanHandle;

    impl SpanHandle {
        /// Always 0 without the collector.
        #[inline(always)]
        pub fn trace_id(&self) -> u64 {
            0
        }
    }

    /// No-op span (zero-sized; the `collector` feature is disabled). Every
    /// method inlines to nothing, so instrumented hot loops compile exactly
    /// as if the instrumentation were absent.
    #[derive(Debug)]
    pub struct Span;

    // An explicit (empty) destructor keeps `drop(span)` a meaningful way to
    // end a span early in both feature modes.
    impl Drop for Span {
        fn drop(&mut self) {}
    }

    impl Span {
        /// No-op.
        #[inline(always)]
        pub fn enter(_name: &'static str) -> Span {
            Span
        }

        /// No-op.
        #[inline(always)]
        pub fn enter_traced(_name: &'static str) -> Span {
            Span
        }

        /// No-op.
        #[inline(always)]
        pub fn enter_under(_name: &'static str, _parent: SpanHandle) -> Span {
            Span
        }

        /// No-op handle.
        #[inline(always)]
        pub fn handle(&self) -> SpanHandle {
            SpanHandle
        }

        /// No-op.
        #[inline(always)]
        pub fn add_bytes(&self, _n: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn add_items(&self, _n: u64) {}
    }

    /// No-op collector (the `collector` feature is disabled).
    #[derive(Debug, Default)]
    pub struct Collector;

    impl Collector {
        /// The process-wide (no-op) collector.
        #[inline(always)]
        pub fn global() -> &'static Collector {
            static GLOBAL: Collector = Collector;
            &GLOBAL
        }

        /// Always false: the `collector` feature is disabled.
        #[inline(always)]
        pub fn is_enabled() -> bool {
            false
        }

        /// Always empty.
        #[inline(always)]
        pub fn take_trace(&self, _root: u64) -> Vec<SpanRecord> {
            Vec::new()
        }

        /// Always empty.
        #[inline(always)]
        pub fn drain(&self) -> Vec<SpanRecord> {
            Vec::new()
        }

        /// Always 0.
        #[inline(always)]
        pub fn len(&self) -> usize {
            0
        }

        /// Always true.
        #[inline(always)]
        pub fn is_empty(&self) -> bool {
            true
        }

        /// Always 0.
        #[inline(always)]
        pub fn dropped(&self) -> u64 {
            0
        }

        /// No-op.
        #[inline(always)]
        pub fn reset(&self) {}
    }
}

#[cfg(feature = "collector")]
pub use enabled::{Collector, Span, SpanHandle, SpanRecord};

#[cfg(not(feature = "collector"))]
pub use disabled::{Collector, Span, SpanHandle, SpanRecord};

#[cfg(all(test, feature = "collector"))]
mod tests {
    use super::*;

    #[test]
    fn untraced_spans_record_nothing() {
        let before = Collector::global().len();
        {
            let _root = Span::enter("quiet_root");
            let _child = Span::enter("quiet_child");
        }
        assert_eq!(Collector::global().len(), before);
    }

    #[test]
    fn traced_spans_nest_and_extract_by_root() {
        let root = Span::enter_traced("root");
        let trace = root.handle().trace_id();
        {
            let a = Span::enter("a");
            a.add_bytes(10);
            a.add_items(3);
            let _inner = Span::enter("a_inner");
        }
        {
            let _b = Span::enter("b");
        }
        drop(root);
        let records = Collector::global().take_trace(trace);
        assert_eq!(records.len(), 4);
        let by_name = |n: &str| records.iter().find(|r| r.name == n).unwrap();
        let root_rec = by_name("root");
        assert_eq!(root_rec.parent, None);
        assert_eq!(root_rec.root, trace);
        let a = by_name("a");
        assert_eq!(a.parent, Some(root_rec.id));
        assert_eq!((a.bytes, a.items), (10, 3));
        assert_eq!(by_name("a_inner").parent, Some(a.id));
        assert_eq!(by_name("b").parent, Some(root_rec.id));
        // Children lie within the parent's wall-clock window.
        for r in &records {
            assert!(r.start_ns >= root_rec.start_ns, "{} starts in root", r.name);
            assert!(r.end_ns() <= root_rec.end_ns(), "{} ends in root", r.name);
        }
        // The trace was removed from the buffer.
        assert!(Collector::global().take_trace(trace).is_empty());
    }

    #[test]
    fn cross_thread_spans_parent_under_the_handle() {
        let root = Span::enter_traced("dispatch");
        let trace = root.handle().trace_id();
        let handle = root.handle();
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(move || {
                    let span = Span::enter_under("worker", handle);
                    span.add_items(1);
                });
            }
        });
        drop(root);
        let records = Collector::global().take_trace(trace);
        let root_rec = records.iter().find(|r| r.name == "dispatch").unwrap();
        let workers: Vec<_> = records.iter().filter(|r| r.name == "worker").collect();
        assert_eq!(workers.len(), 3);
        for w in &workers {
            assert_eq!(w.parent, Some(root_rec.id));
            assert_eq!(w.root, trace);
            assert!(w.end_ns() <= root_rec.end_ns());
        }
    }

    #[test]
    fn concurrent_traces_do_not_mix() {
        let traces: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    s.spawn(move || {
                        let root = Span::enter_traced("concurrent_root");
                        let trace = root.handle().trace_id();
                        for _ in 0..i + 1 {
                            let _child = Span::enter("concurrent_child");
                        }
                        trace
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (i, trace) in traces.iter().enumerate() {
            let records = Collector::global().take_trace(*trace);
            assert_eq!(records.len(), i + 2, "root + {} children", i + 1);
            assert!(records.iter().all(|r| r.root == *trace));
        }
    }
}

#[cfg(all(test, not(feature = "collector")))]
mod noop_tests {
    use super::*;

    #[test]
    fn disabled_spans_are_zero_sized_and_record_nothing() {
        // The no-op span carries no state at all: the instrumented hot loop
        // has no collector dependency to pay for.
        assert_eq!(std::mem::size_of::<Span>(), 0);
        assert_eq!(std::mem::size_of::<SpanHandle>(), 0);
        assert!(!Collector::is_enabled());
        let root = Span::enter_traced("root");
        root.add_bytes(1);
        let handle = root.handle();
        let _child = Span::enter_under("child", handle);
        drop(root);
        assert!(Collector::global().is_empty());
        assert!(Collector::global().take_trace(handle.trace_id()).is_empty());
    }
}
