//! Zero-dependency observability for sparse format conversions.
//!
//! Three layers, smallest first:
//!
//! ```text
//!   Span::enter("phase") ──drop──▶ Collector (global, per-trace extraction)
//!   Counter / Gauge / Histogram ──▶ Registry (global, named, snapshot+reset)
//!   Collector::take_trace ────────▶ ConversionReport ──▶ JSON / Prometheus
//! ```
//!
//! * **Spans** ([`Span`], [`Collector`]) are RAII phase timers with
//!   parent/child nesting across threads. Recording is opt-in per trace:
//!   only spans under an [`Span::enter_traced`] root reach the collector,
//!   so instrumented library code is near-free when nobody is tracing.
//! * **Metrics** ([`Counter`], [`Gauge`], [`Histogram`], [`Registry`]) are
//!   process-lifetime atomics interned by name, with snapshot/reset and
//!   Prometheus / JSON-lines export.
//! * **Reports** ([`ConversionReport`], [`PhaseReport`]) aggregate one
//!   trace into a per-phase breakdown with routing metadata, exported as a
//!   documented JSON object or Prometheus text.
//!
//! # Feature flags
//!
//! The `collector` feature (default-on, surfaced as `conv-obs` by the
//! workspace crates) gates the span and metrics *implementations*. With it
//! disabled every span/metric type is an inline zero-sized no-op — the
//! instrumented crates compile unchanged and the hot loops carry no
//! collector dependency (asserted by `size_of` tests in both modules).
//! [`ConversionReport`] is plain data and always compiled, so APIs
//! returning reports keep one signature in both builds.

#![warn(missing_docs)]

mod metrics;
mod report;
mod span;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry, HISTOGRAM_BUCKETS,
};
pub use report::{validate_json, ConversionReport, PhaseReport};
pub use span::{Collector, Span, SpanHandle, SpanRecord};
