//! Per-conversion profiling reports built from span traces.
//!
//! A [`ConversionReport`] is plain data — it is **always compiled**, with or
//! without the `collector` feature, so service APIs that return reports keep
//! one signature in both builds (without the collector the phase tree and
//! durations are simply empty/zero).
//!
//! The report aggregates one trace (the records extracted by
//! `Collector::take_trace`) into a tree of [`PhaseReport`]s rooted at the
//! conversion's top-level phases. Top-level phases run sequentially inside
//! the root span, so their durations sum to at most the reported total —
//! the invariant [`ConversionReport::validate`] checks and CI enforces on
//! emitted JSON. Deeper levels may overlap (per-thread worker spans), so
//! the invariant is only asserted at the top level.
//!
//! Exports: [`ConversionReport::to_json`] (one object, schema documented in
//! `docs/ARCHITECTURE.md`), and [`ConversionReport::to_prometheus`] (text
//! exposition of the scalar fields and per-phase durations).

use crate::span::SpanRecord;
use std::collections::BTreeMap;

/// One phase of a conversion: its own duration plus nested sub-phases.
///
/// `duration_ns` is the phase span's wall-clock time, which *includes* its
/// children; `bytes` and `count` are the values attributed to the span
/// itself via `Span::add_bytes` / `Span::add_items`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseReport {
    /// Phase name (the span name).
    pub name: String,
    /// Wall-clock duration in nanoseconds (inclusive of children).
    pub duration_ns: u64,
    /// Bytes attributed to this phase.
    pub bytes: u64,
    /// Items (nonzeros, blocks, runs, …) attributed to this phase.
    pub count: u64,
    /// Number of spans merged into this phase (workers with the same name
    /// under the same parent are merged; their durations add up).
    pub spans: u64,
    /// Nested sub-phases, in first-start order.
    pub children: Vec<PhaseReport>,
}

impl PhaseReport {
    /// Total bytes attributed to this phase and every descendant.
    pub fn total_bytes(&self) -> u64 {
        self.bytes
            + self
                .children
                .iter()
                .map(PhaseReport::total_bytes)
                .sum::<u64>()
    }

    /// Finds a direct child by name.
    pub fn child(&self, name: &str) -> Option<&PhaseReport> {
        self.children.iter().find(|c| c.name == name)
    }
}

/// What one conversion did and where its time went.
///
/// Produced by `ConversionService::convert_traced` (and retained for
/// `last_report`). Identification and routing fields are filled by the
/// service; the phase tree comes from the span trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConversionReport {
    /// Source format name (e.g. `"COO"`).
    pub source: String,
    /// Target format name (e.g. `"CSF@2,0,1"`).
    pub target: String,
    /// Route the service chose: `"direct"`, `"via-coo"`, or `"multi-hop"`
    /// (streaming conversions report `"stream"`).
    pub route: String,
    /// Format path the conversion followed, source first and target last —
    /// `["COO", "CSR", "BCSR4x4"]` for a two-hop route, `[source, target]`
    /// for a direct one.
    pub path: Vec<String>,
    /// Whether the conversion plan came from the plan cache.
    pub plan_cache_hit: bool,
    /// Threads used by the kernel (1 when the sequential engine ran).
    pub threads: usize,
    /// Whether a parallel kernel handled the conversion.
    pub parallel_kernel: bool,
    /// Whether this was a streaming (out-of-core) conversion.
    pub streamed: bool,
    /// For streaming conversions: whether everything stayed in memory.
    pub in_memory: bool,
    /// Total wall-clock duration of the conversion in nanoseconds.
    pub total_ns: u64,
    /// Total bytes attributed across all phases.
    pub bytes_moved: u64,
    /// Number of sorted runs spilled to disk (streaming only).
    pub spilled_runs: u64,
    /// Bytes written to spill files (streaming only).
    pub spilled_bytes: u64,
    /// Top-level phases, in first-start order.
    pub phases: Vec<PhaseReport>,
}

/// Builds the phase tree from one trace's records: the root span becomes
/// `total_ns`, its direct children the top-level phases. Spans with the
/// same name under the same parent (per-thread workers) merge into one
/// `PhaseReport` with `spans` counting the merge width.
fn build_phases(records: &[SpanRecord]) -> (u64, Vec<PhaseReport>) {
    let root = match records.iter().find(|r| r.parent.is_none()) {
        Some(r) => r,
        None => return (0, Vec::new()),
    };
    let mut by_parent: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    for r in records {
        if let Some(p) = r.parent {
            by_parent.entry(p).or_default().push(r);
        }
    }
    fn children_of(parent: u64, by_parent: &BTreeMap<u64, Vec<&SpanRecord>>) -> Vec<PhaseReport> {
        let mut out: Vec<PhaseReport> = Vec::new();
        let Some(spans) = by_parent.get(&parent) else {
            return out;
        };
        let mut ordered = spans.clone();
        ordered.sort_by_key(|r| (r.start_ns, r.id));
        for r in ordered {
            let nested = children_of(r.id, by_parent);
            if let Some(existing) = out.iter_mut().find(|p| p.name == r.name) {
                existing.duration_ns += r.duration_ns;
                existing.bytes += r.bytes;
                existing.count += r.items;
                existing.spans += 1;
                merge_children(&mut existing.children, nested);
            } else {
                out.push(PhaseReport {
                    name: r.name.to_string(),
                    duration_ns: r.duration_ns,
                    bytes: r.bytes,
                    count: r.items,
                    spans: 1,
                    children: nested,
                });
            }
        }
        out
    }
    fn merge_children(into: &mut Vec<PhaseReport>, from: Vec<PhaseReport>) {
        for child in from {
            if let Some(existing) = into.iter_mut().find(|p| p.name == child.name) {
                existing.duration_ns += child.duration_ns;
                existing.bytes += child.bytes;
                existing.count += child.count;
                existing.spans += child.spans;
                merge_children(&mut existing.children, child.children);
            } else {
                into.push(child);
            }
        }
    }
    (root.duration_ns, children_of(root.id, &by_parent))
}

impl ConversionReport {
    /// Builds a report from one trace's span records (as returned by
    /// `Collector::take_trace`). Identification fields (`source`, `target`,
    /// `route`, …) start empty/default; the caller fills them in.
    pub fn from_trace(records: &[SpanRecord]) -> ConversionReport {
        let (total_ns, phases) = build_phases(records);
        let bytes_moved = phases.iter().map(PhaseReport::total_bytes).sum();
        ConversionReport {
            total_ns,
            bytes_moved,
            phases,
            ..ConversionReport::default()
        }
    }

    /// Sum of top-level phase durations. Top-level phases run sequentially
    /// inside the root span, so this is ≤ [`ConversionReport::total_ns`]
    /// whenever the collector measured anything.
    pub fn phase_sum_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.duration_ns).sum()
    }

    /// Finds a top-level phase by name.
    pub fn phase(&self, name: &str) -> Option<&PhaseReport> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Checks the report's structural invariants: the top-level phase
    /// durations must sum to at most `total_ns`, and `threads` must be at
    /// least 1. Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.threads == 0 {
            return Err("threads must be >= 1".to_string());
        }
        let sum = self.phase_sum_ns();
        if sum > self.total_ns {
            return Err(format!(
                "phase durations sum to {sum} ns > total {} ns",
                self.total_ns
            ));
        }
        Ok(())
    }

    /// Renders the report as a single JSON object (no trailing newline).
    /// The schema is documented in `docs/ARCHITECTURE.md`; every key is
    /// always present.
    pub fn to_json(&self) -> String {
        fn escape(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn phase_json(p: &PhaseReport) -> String {
            format!(
                "{{\"name\":\"{}\",\"duration_ns\":{},\"bytes\":{},\"count\":{},\"spans\":{},\"children\":[{}]}}",
                escape(&p.name),
                p.duration_ns,
                p.bytes,
                p.count,
                p.spans,
                p.children.iter().map(phase_json).collect::<Vec<_>>().join(","),
            )
        }
        format!(
            concat!(
                "{{\"source\":\"{}\",\"target\":\"{}\",\"route\":\"{}\",",
                "\"path\":[{}],",
                "\"plan_cache_hit\":{},\"threads\":{},\"parallel_kernel\":{},",
                "\"streamed\":{},\"in_memory\":{},\"total_ns\":{},\"bytes_moved\":{},",
                "\"spilled_runs\":{},\"spilled_bytes\":{},\"phases\":[{}]}}"
            ),
            escape(&self.source),
            escape(&self.target),
            escape(&self.route),
            self.path
                .iter()
                .map(|f| format!("\"{}\"", escape(f)))
                .collect::<Vec<_>>()
                .join(","),
            self.plan_cache_hit,
            self.threads,
            self.parallel_kernel,
            self.streamed,
            self.in_memory,
            self.total_ns,
            self.bytes_moved,
            self.spilled_runs,
            self.spilled_bytes,
            self.phases
                .iter()
                .map(phase_json)
                .collect::<Vec<_>>()
                .join(","),
        )
    }

    /// Renders the report's scalar fields and per-phase durations in
    /// Prometheus text exposition format, labelled with the conversion pair.
    pub fn to_prometheus(&self) -> String {
        let pair = format!(
            "source=\"{}\",target=\"{}\"",
            self.source.replace('"', ""),
            self.target.replace('"', "")
        );
        let mut out = String::new();
        out.push_str("# TYPE conversion_total_ns gauge\n");
        out.push_str(&format!(
            "conversion_total_ns{{{pair}}} {}\n",
            self.total_ns
        ));
        out.push_str("# TYPE conversion_bytes_moved gauge\n");
        out.push_str(&format!(
            "conversion_bytes_moved{{{pair}}} {}\n",
            self.bytes_moved
        ));
        out.push_str("# TYPE conversion_threads gauge\n");
        out.push_str(&format!("conversion_threads{{{pair}}} {}\n", self.threads));
        out.push_str("# TYPE conversion_hops gauge\n");
        out.push_str(&format!(
            "conversion_hops{{{pair}}} {}\n",
            self.path.len().saturating_sub(1).max(1)
        ));
        out.push_str("# TYPE conversion_plan_cache_hit gauge\n");
        out.push_str(&format!(
            "conversion_plan_cache_hit{{{pair}}} {}\n",
            u64::from(self.plan_cache_hit)
        ));
        out.push_str("# TYPE conversion_spilled_runs gauge\n");
        out.push_str(&format!(
            "conversion_spilled_runs{{{pair}}} {}\n",
            self.spilled_runs
        ));
        out.push_str("# TYPE conversion_spilled_bytes gauge\n");
        out.push_str(&format!(
            "conversion_spilled_bytes{{{pair}}} {}\n",
            self.spilled_bytes
        ));
        out.push_str("# TYPE conversion_phase_ns gauge\n");
        fn phase_lines(out: &mut String, pair: &str, prefix: &str, phases: &[PhaseReport]) {
            for p in phases {
                let path = if prefix.is_empty() {
                    p.name.clone()
                } else {
                    format!("{prefix}/{}", p.name)
                };
                out.push_str(&format!(
                    "conversion_phase_ns{{{pair},phase=\"{path}\"}} {}\n",
                    p.duration_ns
                ));
                phase_lines(out, pair, &path, &p.children);
            }
        }
        phase_lines(&mut out, &pair, "", &self.phases);
        out
    }
}

/// Validates a JSON report string against the documented schema without a
/// JSON parser: every required key present, durations non-negative (JSON
/// `u64` rendering guarantees no `-`), and top-level phase durations sum
/// ≤ total. Used by `convprof --validate` and CI. Returns the first
/// violation found.
pub fn validate_json(json: &str) -> Result<(), String> {
    const REQUIRED: [&str; 14] = [
        "\"source\":",
        "\"target\":",
        "\"route\":",
        "\"path\":",
        "\"plan_cache_hit\":",
        "\"threads\":",
        "\"parallel_kernel\":",
        "\"streamed\":",
        "\"in_memory\":",
        "\"total_ns\":",
        "\"bytes_moved\":",
        "\"spilled_runs\":",
        "\"spilled_bytes\":",
        "\"phases\":",
    ];
    for key in REQUIRED {
        if !json.contains(key) {
            return Err(format!("missing required key {key}"));
        }
    }
    fn field_u64(json: &str, key: &str) -> Result<u64, String> {
        let start = json.find(key).ok_or_else(|| format!("missing key {key}"))? + key.len();
        let rest = &json[start..];
        if rest.starts_with('-') {
            return Err(format!("negative value for {key}"));
        }
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        digits
            .parse::<u64>()
            .map_err(|_| format!("non-numeric value for {key}"))
    }
    // total_ns appears once at the top level; phase durations are the
    // repeated "duration_ns": occurrences. Top-level phases are the objects
    // at nesting depth 1 inside the "phases" array.
    let total = field_u64(json, "\"total_ns\":")?;
    let phases_start = json
        .find("\"phases\":[")
        .ok_or_else(|| "missing \"phases\":[ array".to_string())?
        + "\"phases\":[".len();
    let mut depth = 0usize;
    let mut sum = 0u64;
    let bytes = &json.as_bytes()[phases_start..];
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => {
                depth += 1;
                if depth == 1 {
                    let obj = &json[phases_start + i..];
                    sum += field_u64(obj, "\"duration_ns\":")?;
                }
            }
            b'}' => {
                if depth == 0 {
                    break; // end of the top-level phases array
                }
                depth -= 1;
            }
            b']' if depth == 0 => break,
            _ => {}
        }
        i += 1;
    }
    if sum > total {
        return Err(format!(
            "phase durations sum to {sum} ns > total {total} ns"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ConversionReport {
        ConversionReport {
            source: "COO".to_string(),
            target: "CSR".to_string(),
            route: "direct".to_string(),
            path: vec!["COO".to_string(), "CSR".to_string()],
            plan_cache_hit: true,
            threads: 4,
            parallel_kernel: true,
            streamed: false,
            in_memory: true,
            total_ns: 1000,
            bytes_moved: 4096,
            spilled_runs: 0,
            spilled_bytes: 0,
            phases: vec![
                PhaseReport {
                    name: "analysis".to_string(),
                    duration_ns: 300,
                    bytes: 0,
                    count: 100,
                    spans: 1,
                    children: vec![PhaseReport {
                        name: "histogram".to_string(),
                        duration_ns: 280,
                        bytes: 0,
                        count: 100,
                        spans: 4,
                        children: Vec::new(),
                    }],
                },
                PhaseReport {
                    name: "scatter".to_string(),
                    duration_ns: 600,
                    bytes: 4096,
                    count: 100,
                    spans: 1,
                    children: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn json_roundtrips_through_validation() {
        let report = sample_report();
        report.validate().unwrap();
        let json = report.to_json();
        validate_json(&json).unwrap();
        assert!(json.contains("\"route\":\"direct\""));
        assert!(json.contains("\"path\":[\"COO\",\"CSR\"]"));
        assert!(json.contains("\"plan_cache_hit\":true"));
        assert!(json.contains("\"phases\":[{\"name\":\"analysis\""));
        // Nested phases do not count toward the top-level sum: 300 + 600
        // ≤ 1000 even though histogram adds 280 at depth 2.
        assert_eq!(report.phase_sum_ns(), 900);
    }

    #[test]
    fn validate_json_rejects_bad_reports() {
        let mut report = sample_report();
        report.phases[1].duration_ns = 800; // 300 + 800 > 1000
        assert!(report.validate().is_err());
        let json = report.to_json();
        assert!(validate_json(&json).is_err());
        let missing = json.replace("\"route\":\"direct\",", "");
        assert!(validate_json(&missing).unwrap_err().contains("\"route\""));
    }

    #[test]
    fn prometheus_export_nests_phase_paths() {
        let prom = sample_report().to_prometheus();
        assert!(prom.contains(
            "conversion_phase_ns{source=\"COO\",target=\"CSR\",phase=\"analysis/histogram\"} 280"
        ));
        assert!(prom.contains("conversion_total_ns{source=\"COO\",target=\"CSR\"} 1000"));
        assert!(prom.contains("conversion_plan_cache_hit{source=\"COO\",target=\"CSR\"} 1"));
    }

    #[cfg(feature = "collector")]
    #[test]
    fn from_trace_builds_phase_tree_with_worker_merge() {
        use crate::span::{Collector, Span};
        let root = Span::enter_traced("convert");
        let trace = root.handle().trace_id();
        {
            let analysis = Span::enter("analysis");
            let handle = analysis.handle();
            std::thread::scope(|s| {
                for _ in 0..3 {
                    s.spawn(move || {
                        let w = Span::enter_under("chunk", handle);
                        w.add_items(10);
                    });
                }
            });
        }
        {
            let pack = Span::enter("pack");
            pack.add_bytes(1024);
        }
        drop(root);
        let records = Collector::global().take_trace(trace);
        let report = ConversionReport::from_trace(&records);
        assert_eq!(report.phases.len(), 2);
        assert_eq!(report.phases[0].name, "analysis");
        assert_eq!(report.phases[1].name, "pack");
        let chunk = report.phases[0].child("chunk").unwrap();
        assert_eq!(chunk.spans, 3);
        assert_eq!(chunk.count, 30);
        assert_eq!(report.bytes_moved, 1024);
        assert!(report.phase_sum_ns() <= report.total_ns);
        let mut finished = report;
        finished.source = "COO".to_string();
        finished.target = "CSR".to_string();
        finished.route = "direct".to_string();
        finished.threads = 3;
        finished.validate().unwrap();
        validate_json(&finished.to_json()).unwrap();
    }
}
