//! Named counters, gauges, and log2 histograms behind a global registry.
//!
//! Metrics complement spans: a span measures one phase of one conversion,
//! while a metric accumulates across the whole process lifetime (total
//! conversions, total spilled bytes, a distribution of sort durations).
//! All metrics are atomics — incrementing from many threads concurrently is
//! lock-free and loses nothing (verified by a proptest in `tests/`).
//!
//! Handles are interned: `Registry::global().counter("conv.total")` returns
//! the same `&'static Counter` every time, so hot paths can look a metric up
//! once and hold the reference. [`Registry::snapshot`] reads everything out
//! for export; [`Registry::reset`] zeroes values (names stay interned).
//!
//! With the `collector` feature disabled every type here is an inline
//! zero-sized no-op.

#[cfg(feature = "collector")]
mod enabled {
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};

    /// Number of log2 histogram buckets: bucket `i` holds values whose
    /// bit-length is `i` (value 0 goes to bucket 0), so 65 buckets cover the
    /// whole `u64` range.
    pub const HISTOGRAM_BUCKETS: usize = 65;

    /// A monotonically increasing counter (wrapping `u64` atomic).
    #[derive(Debug, Default)]
    pub struct Counter(AtomicU64);

    impl Counter {
        /// Creates a counter at zero.
        pub const fn new() -> Counter {
            Counter(AtomicU64::new(0))
        }

        /// Adds 1.
        pub fn inc(&self) {
            self.add(1);
        }

        /// Adds `n`.
        pub fn add(&self, n: u64) {
            self.0.fetch_add(n, Ordering::Relaxed);
        }

        /// Current value.
        pub fn get(&self) -> u64 {
            self.0.load(Ordering::Relaxed)
        }

        /// Resets to zero.
        pub fn reset(&self) {
            self.0.store(0, Ordering::Relaxed);
        }
    }

    /// A value that can go up and down (an `i64` atomic).
    #[derive(Debug, Default)]
    pub struct Gauge(AtomicI64);

    impl Gauge {
        /// Creates a gauge at zero.
        pub const fn new() -> Gauge {
            Gauge(AtomicI64::new(0))
        }

        /// Adds `n` (may be negative).
        pub fn add(&self, n: i64) {
            self.0.fetch_add(n, Ordering::Relaxed);
        }

        /// Stores `n`.
        pub fn set(&self, n: i64) {
            self.0.store(n, Ordering::Relaxed);
        }

        /// Current value.
        pub fn get(&self) -> i64 {
            self.0.load(Ordering::Relaxed)
        }

        /// Resets to zero.
        pub fn reset(&self) {
            self.0.store(0, Ordering::Relaxed);
        }
    }

    /// A fixed-bucket log2 histogram for durations (ns) and byte sizes.
    ///
    /// `observe(v)` increments the bucket for `v`'s bit-length, plus a total
    /// count and sum — every field an independent relaxed atomic, so
    /// concurrent observers never lose an observation (a snapshot taken
    /// mid-observation may transiently see the bucket without the sum; see
    /// the crate docs on relaxed snapshot semantics).
    #[derive(Debug)]
    pub struct Histogram {
        buckets: [AtomicU64; HISTOGRAM_BUCKETS],
        count: AtomicU64,
        sum: AtomicU64,
    }

    impl Default for Histogram {
        fn default() -> Histogram {
            Histogram::new()
        }
    }

    impl Histogram {
        /// Creates an empty histogram.
        pub const fn new() -> Histogram {
            Histogram {
                buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }
        }

        /// Bucket index for a value: its bit-length (0 → 0, 1 → 1, 2..3 → 2,
        /// 4..7 → 3, …).
        pub fn bucket_index(value: u64) -> usize {
            (u64::BITS - value.leading_zeros()) as usize
        }

        /// Lower bound of bucket `i` (inclusive).
        pub fn bucket_lower(i: usize) -> u64 {
            match i {
                0 => 0,
                _ => 1u64 << (i - 1),
            }
        }

        /// Records one value.
        pub fn observe(&self, value: u64) {
            self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(value, Ordering::Relaxed);
        }

        /// Total number of observations.
        pub fn count(&self) -> u64 {
            self.count.load(Ordering::Relaxed)
        }

        /// Sum of all observed values (wrapping).
        pub fn sum(&self) -> u64 {
            self.sum.load(Ordering::Relaxed)
        }

        /// Per-bucket counts.
        pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
            let mut out = [0u64; HISTOGRAM_BUCKETS];
            for (o, b) in out.iter_mut().zip(&self.buckets) {
                *o = b.load(Ordering::Relaxed);
            }
            out
        }

        /// Resets every bucket, the count, and the sum to zero.
        pub fn reset(&self) {
            for b in &self.buckets {
                b.store(0, Ordering::Relaxed);
            }
            self.count.store(0, Ordering::Relaxed);
            self.sum.store(0, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of one histogram, taken by [`Registry::snapshot`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct HistogramSnapshot {
        /// Per-bucket counts (log2 buckets; see [`Histogram::bucket_lower`]).
        pub buckets: [u64; HISTOGRAM_BUCKETS],
        /// Total observations.
        pub count: u64,
        /// Sum of observed values.
        pub sum: u64,
    }

    /// A point-in-time copy of every registered metric.
    #[derive(Debug, Clone, Default, PartialEq, Eq)]
    pub struct MetricsSnapshot {
        /// Counter values by name.
        pub counters: BTreeMap<&'static str, u64>,
        /// Gauge values by name.
        pub gauges: BTreeMap<&'static str, i64>,
        /// Histogram contents by name.
        pub histograms: BTreeMap<&'static str, HistogramSnapshot>,
    }

    #[derive(Debug, Default)]
    struct Tables {
        counters: BTreeMap<&'static str, &'static Counter>,
        gauges: BTreeMap<&'static str, &'static Gauge>,
        histograms: BTreeMap<&'static str, &'static Histogram>,
    }

    /// Interns metric handles by name and snapshots them for export.
    ///
    /// Registration takes a short mutex; the returned `&'static` handles are
    /// lock-free to update, so hot paths register once (or at setup) and
    /// only touch atomics afterwards. Metric storage is leaked on first
    /// registration — the set of metric *names* in this codebase is small
    /// and fixed, so the leak is bounded and intentional.
    #[derive(Debug, Default)]
    pub struct Registry {
        tables: Mutex<Tables>,
    }

    impl Registry {
        /// The process-wide registry.
        pub fn global() -> &'static Registry {
            static GLOBAL: OnceLock<Registry> = OnceLock::new();
            GLOBAL.get_or_init(Registry::default)
        }

        /// Returns the counter named `name`, creating it on first use.
        pub fn counter(&self, name: &'static str) -> &'static Counter {
            let mut tables = self.tables.lock().unwrap();
            tables
                .counters
                .entry(name)
                .or_insert_with(|| Box::leak(Box::new(Counter::new())))
        }

        /// Returns the gauge named `name`, creating it on first use.
        pub fn gauge(&self, name: &'static str) -> &'static Gauge {
            let mut tables = self.tables.lock().unwrap();
            tables
                .gauges
                .entry(name)
                .or_insert_with(|| Box::leak(Box::new(Gauge::new())))
        }

        /// Returns the histogram named `name`, creating it on first use.
        pub fn histogram(&self, name: &'static str) -> &'static Histogram {
            let mut tables = self.tables.lock().unwrap();
            tables
                .histograms
                .entry(name)
                .or_insert_with(|| Box::leak(Box::new(Histogram::new())))
        }

        /// Copies every metric's current value. Each atomic is read
        /// independently (relaxed), so a snapshot racing concurrent updates
        /// is a consistent *per-metric* view, not a cross-metric one.
        pub fn snapshot(&self) -> MetricsSnapshot {
            let tables = self.tables.lock().unwrap();
            MetricsSnapshot {
                counters: tables.counters.iter().map(|(n, c)| (*n, c.get())).collect(),
                gauges: tables.gauges.iter().map(|(n, g)| (*n, g.get())).collect(),
                histograms: tables
                    .histograms
                    .iter()
                    .map(|(n, h)| {
                        (
                            *n,
                            HistogramSnapshot {
                                buckets: h.buckets(),
                                count: h.count(),
                                sum: h.sum(),
                            },
                        )
                    })
                    .collect(),
            }
        }

        /// Resets every registered metric to zero. Names stay interned, so
        /// held `&'static` handles remain valid.
        pub fn reset(&self) {
            let tables = self.tables.lock().unwrap();
            for c in tables.counters.values() {
                c.reset();
            }
            for g in tables.gauges.values() {
                g.reset();
            }
            for h in tables.histograms.values() {
                h.reset();
            }
        }
    }

    impl MetricsSnapshot {
        /// Renders the snapshot in Prometheus text exposition format
        /// (counters as `counter`, gauges as `gauge`, histograms as
        /// cumulative `histogram` with `le` buckets). Metric names have `.`
        /// replaced by `_` to satisfy the exposition grammar.
        pub fn to_prometheus(&self) -> String {
            fn sanitize(name: &str) -> String {
                name.replace(['.', '-'], "_")
            }
            let mut out = String::new();
            for (name, value) in &self.counters {
                let name = sanitize(name);
                out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
            }
            for (name, value) in &self.gauges {
                let name = sanitize(name);
                out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
            }
            for (name, h) in &self.histograms {
                let name = sanitize(name);
                out.push_str(&format!("# TYPE {name} histogram\n"));
                let mut cumulative = 0u64;
                for (i, bucket) in h.buckets.iter().enumerate() {
                    if *bucket == 0 {
                        continue;
                    }
                    cumulative += bucket;
                    let le = match Histogram::bucket_lower(i + 1).checked_sub(1) {
                        Some(upper) => upper.to_string(),
                        None => "+Inf".to_string(),
                    };
                    out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                }
                out.push_str(&format!(
                    "{name}_bucket{{le=\"+Inf\"}} {count}\n{name}_sum {sum}\n{name}_count {count}\n",
                    count = h.count,
                    sum = h.sum,
                ));
            }
            out
        }

        /// Renders the snapshot as JSON lines: one object per metric, with
        /// `kind`, `name`, and kind-specific value fields.
        pub fn to_json_lines(&self) -> String {
            let mut out = String::new();
            for (name, value) in &self.counters {
                out.push_str(&format!(
                    "{{\"kind\":\"counter\",\"name\":\"{name}\",\"value\":{value}}}\n"
                ));
            }
            for (name, value) in &self.gauges {
                out.push_str(&format!(
                    "{{\"kind\":\"gauge\",\"name\":\"{name}\",\"value\":{value}}}\n"
                ));
            }
            for (name, h) in &self.histograms {
                let buckets: Vec<String> = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| **c > 0)
                    .map(|(i, c)| format!("[{},{}]", Histogram::bucket_lower(i), c))
                    .collect();
                out.push_str(&format!(
                    "{{\"kind\":\"histogram\",\"name\":\"{name}\",\"count\":{},\"sum\":{},\"buckets\":[{}]}}\n",
                    h.count,
                    h.sum,
                    buckets.join(","),
                ));
            }
            out
        }
    }
}

#[cfg(not(feature = "collector"))]
mod disabled {
    /// Number of log2 histogram buckets (unused without the collector).
    pub const HISTOGRAM_BUCKETS: usize = 65;

    /// No-op counter (zero-sized; the `collector` feature is disabled).
    #[derive(Debug, Default)]
    pub struct Counter;

    impl Counter {
        /// No-op.
        #[inline(always)]
        pub const fn new() -> Counter {
            Counter
        }

        /// No-op.
        #[inline(always)]
        pub fn inc(&self) {}

        /// No-op.
        #[inline(always)]
        pub fn add(&self, _n: u64) {}

        /// Always 0.
        #[inline(always)]
        pub fn get(&self) -> u64 {
            0
        }

        /// No-op.
        #[inline(always)]
        pub fn reset(&self) {}
    }

    /// No-op gauge (zero-sized; the `collector` feature is disabled).
    #[derive(Debug, Default)]
    pub struct Gauge;

    impl Gauge {
        /// No-op.
        #[inline(always)]
        pub const fn new() -> Gauge {
            Gauge
        }

        /// No-op.
        #[inline(always)]
        pub fn add(&self, _n: i64) {}

        /// No-op.
        #[inline(always)]
        pub fn set(&self, _n: i64) {}

        /// Always 0.
        #[inline(always)]
        pub fn get(&self) -> i64 {
            0
        }

        /// No-op.
        #[inline(always)]
        pub fn reset(&self) {}
    }

    /// No-op histogram (zero-sized; the `collector` feature is disabled).
    #[derive(Debug, Default)]
    pub struct Histogram;

    impl Histogram {
        /// No-op.
        #[inline(always)]
        pub const fn new() -> Histogram {
            Histogram
        }

        /// Bucket index for a value (still computed; pure function).
        #[inline(always)]
        pub fn bucket_index(value: u64) -> usize {
            (u64::BITS - value.leading_zeros()) as usize
        }

        /// Lower bound of bucket `i` (inclusive).
        #[inline(always)]
        pub fn bucket_lower(i: usize) -> u64 {
            match i {
                0 => 0,
                _ => 1u64 << (i - 1),
            }
        }

        /// No-op.
        #[inline(always)]
        pub fn observe(&self, _value: u64) {}

        /// Always 0.
        #[inline(always)]
        pub fn count(&self) -> u64 {
            0
        }

        /// Always 0.
        #[inline(always)]
        pub fn sum(&self) -> u64 {
            0
        }

        /// Always all-zero.
        #[inline(always)]
        pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
            [0; HISTOGRAM_BUCKETS]
        }

        /// No-op.
        #[inline(always)]
        pub fn reset(&self) {}
    }

    /// No-op histogram snapshot (the `collector` feature is disabled).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct HistogramSnapshot {
        /// Always all-zero.
        pub buckets: [u64; HISTOGRAM_BUCKETS],
        /// Always 0.
        pub count: u64,
        /// Always 0.
        pub sum: u64,
    }

    impl Default for HistogramSnapshot {
        fn default() -> HistogramSnapshot {
            HistogramSnapshot {
                buckets: [0; HISTOGRAM_BUCKETS],
                count: 0,
                sum: 0,
            }
        }
    }

    /// No-op metrics snapshot (the `collector` feature is disabled).
    #[derive(Debug, Clone, Default, PartialEq, Eq)]
    pub struct MetricsSnapshot;

    impl MetricsSnapshot {
        /// Always empty.
        #[inline(always)]
        pub fn to_prometheus(&self) -> String {
            String::new()
        }

        /// Always empty.
        #[inline(always)]
        pub fn to_json_lines(&self) -> String {
            String::new()
        }
    }

    /// No-op registry (zero-sized; the `collector` feature is disabled).
    #[derive(Debug, Default)]
    pub struct Registry;

    impl Registry {
        /// The process-wide (no-op) registry.
        #[inline(always)]
        pub fn global() -> &'static Registry {
            static GLOBAL: Registry = Registry;
            &GLOBAL
        }

        /// Returns a shared no-op counter.
        #[inline(always)]
        pub fn counter(&self, _name: &'static str) -> &'static Counter {
            static C: Counter = Counter::new();
            &C
        }

        /// Returns a shared no-op gauge.
        #[inline(always)]
        pub fn gauge(&self, _name: &'static str) -> &'static Gauge {
            static G: Gauge = Gauge::new();
            &G
        }

        /// Returns a shared no-op histogram.
        #[inline(always)]
        pub fn histogram(&self, _name: &'static str) -> &'static Histogram {
            static H: Histogram = Histogram::new();
            &H
        }

        /// Always empty.
        #[inline(always)]
        pub fn snapshot(&self) -> MetricsSnapshot {
            MetricsSnapshot
        }

        /// No-op.
        #[inline(always)]
        pub fn reset(&self) {}
    }
}

#[cfg(feature = "collector")]
pub use enabled::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry, HISTOGRAM_BUCKETS,
};

#[cfg(not(feature = "collector"))]
pub use disabled::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry, HISTOGRAM_BUCKETS,
};

#[cfg(all(test, feature = "collector"))]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let c = Registry::global().counter("test.metrics.counter");
        c.reset();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        // Interning: same name, same handle.
        assert!(std::ptr::eq(
            c,
            Registry::global().counter("test.metrics.counter")
        ));
        let g = Registry::global().gauge("test.metrics.gauge");
        g.reset();
        g.add(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            h.observe(v);
        }
        let buckets = h.buckets();
        assert_eq!(buckets[0], 1); // 0
        assert_eq!(buckets[1], 1); // 1
        assert_eq!(buckets[2], 2); // 2,3
        assert_eq!(buckets[3], 2); // 4..7 → 4 and 7; 8 goes to bucket 4
        assert_eq!(buckets[4], 1); // 8
        assert_eq!(buckets[10], 1); // 512..1023
        assert_eq!(buckets[11], 1); // 1024..2047
        assert_eq!(buckets[64], 1); // top bucket
        assert_eq!(h.count(), 10);
        assert_eq!(Histogram::bucket_lower(0), 0);
        assert_eq!(Histogram::bucket_lower(1), 1);
        assert_eq!(Histogram::bucket_lower(11), 1024);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.buckets(), [0; HISTOGRAM_BUCKETS]);
    }

    #[test]
    fn snapshot_and_exports_cover_all_kinds() {
        let c = Registry::global().counter("test.export.counter");
        let g = Registry::global().gauge("test.export.gauge");
        let h = Registry::global().histogram("test.export.hist");
        c.reset();
        g.reset();
        h.reset();
        c.add(3);
        g.set(-1);
        h.observe(100);
        h.observe(5);
        let snap = Registry::global().snapshot();
        assert_eq!(snap.counters["test.export.counter"], 3);
        assert_eq!(snap.gauges["test.export.gauge"], -1);
        let hs = &snap.histograms["test.export.hist"];
        assert_eq!(hs.count, 2);
        assert_eq!(hs.sum, 105);
        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE test_export_counter counter"));
        assert!(prom.contains("test_export_counter 3"));
        assert!(prom.contains("test_export_gauge -1"));
        assert!(prom.contains("test_export_hist_count 2"));
        assert!(prom.contains("test_export_hist_sum 105"));
        assert!(prom.contains("le=\"+Inf\"} 2"));
        let json = snap.to_json_lines();
        assert!(
            json.contains("{\"kind\":\"counter\",\"name\":\"test.export.counter\",\"value\":3}")
        );
        assert!(json.contains("\"kind\":\"histogram\",\"name\":\"test.export.hist\""));
    }
}

#[cfg(all(test, not(feature = "collector")))]
mod noop_tests {
    use super::*;

    #[test]
    fn disabled_metrics_are_zero_sized_noops() {
        assert_eq!(std::mem::size_of::<Counter>(), 0);
        assert_eq!(std::mem::size_of::<Gauge>(), 0);
        assert_eq!(std::mem::size_of::<Histogram>(), 0);
        let c = Registry::global().counter("anything");
        c.add(100);
        assert_eq!(c.get(), 0);
        let h = Registry::global().histogram("anything");
        h.observe(5);
        assert_eq!(h.count(), 0);
        assert!(Registry::global().snapshot().to_prometheus().is_empty());
    }
}
