//! The rank-`N` COO format: one coordinate array per dimension plus values.
//!
//! This is the tensor generalisation of [`crate::CooMatrix`]: an order-`N`
//! tensor stored as `N` parallel coordinate arrays and a value array, in
//! arbitrary (not necessarily sorted) order. It is the import format of the
//! paper's tensor evaluation (Section 7's COO→CSF conversions) and the
//! canonical *source* the CSF kernels read.

use sparse_tensor::{Shape, SparseTriples, TensorError, Value};

/// A sparse order-`N` tensor in COO format.
#[derive(Debug, Clone, PartialEq)]
pub struct CooTensor {
    shape: Shape,
    /// One coordinate array per dimension, each `nnz` long.
    crd: Vec<Vec<usize>>,
    vals: Vec<Value>,
}

impl CooTensor {
    /// Creates an empty COO tensor with the given shape.
    pub fn new(shape: Shape) -> Self {
        let order = shape.order();
        CooTensor {
            shape,
            crd: vec![Vec::new(); order],
            vals: Vec::new(),
        }
    }

    /// Creates a COO tensor from its parallel coordinate and value arrays
    /// (`crd[d][p]` is nonzero `p`'s coordinate in dimension `d`).
    ///
    /// # Errors
    ///
    /// Returns an error if the number of coordinate arrays does not match the
    /// shape's order, the arrays have mismatched lengths, or any coordinate
    /// is out of bounds.
    pub fn from_parts(
        shape: Shape,
        crd: Vec<Vec<usize>>,
        vals: Vec<Value>,
    ) -> Result<Self, TensorError> {
        if crd.len() != shape.order() {
            return Err(TensorError::InvalidStructure(format!(
                "COO tensor has {} coordinate arrays for an order-{} shape",
                crd.len(),
                shape.order()
            )));
        }
        for (d, dim_crd) in crd.iter().enumerate() {
            if dim_crd.len() != vals.len() {
                return Err(TensorError::InvalidStructure(format!(
                    "COO coordinate array {d} has length {}, expected {}",
                    dim_crd.len(),
                    vals.len()
                )));
            }
            if let Some(&c) = dim_crd.iter().find(|&&c| c >= shape.dim(d)) {
                return Err(TensorError::InvalidStructure(format!(
                    "COO coordinate {c} out of bounds for dimension {d} of {shape}"
                )));
            }
        }
        Ok(CooTensor { shape, crd, vals })
    }

    /// Builds a COO tensor from canonical triples, preserving their order.
    pub fn from_triples(t: &SparseTriples) -> Self {
        let mut out = CooTensor::new(t.shape().clone());
        for d in 0..t.order() {
            out.crd[d].reserve(t.nnz());
        }
        out.vals.reserve(t.nnz());
        for triple in t.iter() {
            for (d, &c) in triple.coord.iter().enumerate() {
                out.crd[d].push(c as usize);
            }
            out.vals.push(triple.value);
        }
        out
    }

    /// Converts back to canonical triples, preserving stored order.
    pub fn to_triples(&self) -> SparseTriples {
        let mut t = SparseTriples::with_capacity(self.shape.clone(), self.nnz());
        let mut coord = vec![0i64; self.order()];
        for p in 0..self.nnz() {
            for (d, c) in coord.iter_mut().enumerate() {
                *c = self.crd[d][p] as i64;
            }
            t.push(coord.clone(), self.vals[p])
                .expect("stored coordinates are in bounds");
        }
        t
    }

    /// Appends a nonzero.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate's arity or any component is out of bounds.
    pub fn push(&mut self, coord: &[usize], v: Value) {
        assert_eq!(coord.len(), self.order(), "coordinate arity mismatch");
        for (d, &c) in coord.iter().enumerate() {
            assert!(
                c < self.shape.dim(d),
                "coordinate {c} out of bounds in dimension {d}"
            );
            self.crd[d].push(c);
        }
        self.vals.push(v);
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The tensor's order (number of dimensions).
    pub fn order(&self) -> usize {
        self.shape.order()
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The coordinate array of dimension `d`.
    pub fn crd(&self, d: usize) -> &[usize] {
        &self.crd[d]
    }

    /// Value array.
    pub fn values(&self) -> &[Value] {
        &self.vals
    }

    /// Visits every nonzero in stored order with its full coordinate tuple.
    pub fn for_each<F: FnMut(&[i64], Value)>(&self, mut f: F) {
        let mut coord = vec![0i64; self.order()];
        for p in 0..self.nnz() {
            for (d, c) in coord.iter_mut().enumerate() {
                *c = self.crd[d][p] as i64;
            }
            f(&coord, self.vals[p]);
        }
    }

    /// True when nonzeros are sorted lexicographically by coordinate.
    pub fn is_sorted(&self) -> bool {
        (1..self.nnz()).all(|p| {
            self.crd
                .iter()
                .map(|dim| (dim[p - 1], dim[p]))
                .find(|(a, b)| a != b)
                .is_none_or(|(a, b)| a < b)
        })
    }

    /// Randomly permutes the stored nonzeros with an injected random source
    /// (Fisher–Yates; see [`crate::CooMatrix::shuffle_with`]).
    pub fn shuffle_with(&mut self, mut next: impl FnMut(usize) -> usize) {
        for p in (1..self.nnz()).rev() {
            let q = next(p + 1);
            debug_assert!(q <= p);
            for dim in &mut self.crd {
                dim.swap(p, q);
            }
            self.vals.swap(p, q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_tensor::example::example3_tensor;

    #[test]
    fn from_triples_roundtrips() {
        let t = example3_tensor();
        let coo = CooTensor::from_triples(&t);
        assert_eq!(coo.order(), 3);
        assert_eq!(coo.nnz(), 8);
        assert_eq!(coo.shape().dims(), &[3, 4, 5]);
        assert!(!coo.is_sorted());
        assert_eq!(coo.to_triples(), t);
    }

    #[test]
    fn from_parts_validates() {
        let shape = Shape::tensor3(2, 2, 2);
        assert!(CooTensor::from_parts(shape.clone(), vec![vec![0]; 2], vec![1.0]).is_err());
        assert!(CooTensor::from_parts(
            shape.clone(),
            vec![vec![0], vec![0], vec![0, 1]],
            vec![1.0]
        )
        .is_err());
        assert!(
            CooTensor::from_parts(shape.clone(), vec![vec![0], vec![2], vec![0]], vec![1.0])
                .is_err()
        );
        let t = CooTensor::from_parts(shape, vec![vec![0], vec![1], vec![1]], vec![3.0]).unwrap();
        assert_eq!(t.crd(1), &[1]);
        assert_eq!(t.values(), &[3.0]);
    }

    #[test]
    fn push_and_for_each_agree() {
        let mut t = CooTensor::new(Shape::tensor3(2, 3, 4));
        t.push(&[1, 2, 3], 5.0);
        t.push(&[0, 0, 0], 1.0);
        let mut seen = Vec::new();
        t.for_each(|c, v| seen.push((c.to_vec(), v)));
        assert_eq!(seen, vec![(vec![1i64, 2, 3], 5.0), (vec![0i64, 0, 0], 1.0)]);
    }

    #[test]
    fn shuffle_preserves_contents() {
        let t = example3_tensor();
        let mut coo = CooTensor::from_triples(&t);
        let mut state = 99usize;
        coo.shuffle_with(|bound| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state % bound
        });
        assert!(coo.to_triples().same_values(&t));
    }

    #[test]
    #[should_panic]
    fn push_out_of_bounds_panics() {
        CooTensor::new(Shape::tensor3(2, 2, 2)).push(&[0, 2, 0], 1.0);
    }

    #[test]
    fn matrices_are_order_2_coo_tensors() {
        let m = sparse_tensor::example::figure1_matrix();
        let coo = CooTensor::from_triples(&m);
        assert_eq!(coo.order(), 2);
        assert!(coo.is_sorted());
        assert!(coo.to_triples().same_values(&m));
    }
}
