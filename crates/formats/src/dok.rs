//! The DOK (dictionary of keys) format: a hash map from coordinates to
//! values, supporting efficient random insertion (Section 1).

use std::collections::HashMap;

use sparse_tensor::{SparseTriples, Value};

/// A sparse matrix as a dictionary of keys.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DokMatrix {
    rows: usize,
    cols: usize,
    entries: HashMap<(usize, usize), Value>,
}

impl DokMatrix {
    /// Creates an empty DOK matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        DokMatrix {
            rows,
            cols,
            entries: HashMap::new(),
        }
    }

    /// Builds a DOK matrix from canonical triples, summing duplicates.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not order 2.
    pub fn from_triples(t: &SparseTriples) -> Self {
        assert_eq!(t.order(), 2, "DOK matrices are order-2 tensors");
        let mut m = DokMatrix::new(t.shape().rows(), t.shape().cols());
        for tr in t.iter() {
            m.insert(tr.coord[0] as usize, tr.coord[1] as usize, tr.value);
        }
        m
    }

    /// Converts to canonical triples in unspecified order.
    pub fn to_triples(&self) -> SparseTriples {
        SparseTriples::from_matrix_entries(
            self.rows,
            self.cols,
            self.entries.iter().map(|(&(i, j), &v)| (i, j, v)),
        )
        .expect("stored coordinates are in bounds")
    }

    /// Adds `v` to the entry at `(i, j)` (inserting it if absent).
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn insert(&mut self, i: usize, j: usize, v: Value) {
        assert!(
            i < self.rows && j < self.cols,
            "coordinate ({i},{j}) out of bounds"
        );
        *self.entries.entry((i, j)).or_insert(0.0) += v;
    }

    /// The value at `(i, j)`, or zero.
    pub fn get(&self, i: usize, j: usize) -> Value {
        self.entries.get(&(i, j)).copied().unwrap_or(0.0)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_tensor::example::figure1_matrix;

    #[test]
    fn roundtrip_preserves_values() {
        let t = figure1_matrix();
        let dok = DokMatrix::from_triples(&t);
        assert_eq!(dok.nnz(), 9);
        assert!(dok.to_triples().same_values(&t));
        assert_eq!(dok.get(0, 0), 5.0);
        assert_eq!(dok.get(0, 5), 0.0);
    }

    #[test]
    fn insert_accumulates_duplicates() {
        let mut dok = DokMatrix::new(2, 2);
        dok.insert(0, 1, 1.0);
        dok.insert(0, 1, 2.0);
        assert_eq!(dok.nnz(), 1);
        assert_eq!(dok.get(0, 1), 3.0);
        assert_eq!(dok.rows(), 2);
        assert_eq!(dok.cols(), 2);
    }

    #[test]
    #[should_panic]
    fn insert_out_of_bounds_panics() {
        DokMatrix::new(1, 1).insert(1, 0, 1.0);
    }
}
