//! The CSF (compressed sparse fiber) format for order-`N` tensors.
//!
//! CSF generalises CSR/DCSR to arbitrary order: the tensor is a tree of
//! *fibers*, one level per dimension. Level 0 stores the distinct root
//! coordinates in `crd[0]`; every deeper level `l` stores a `pos[l-1]` array
//! mapping each fiber of level `l-1` to a segment of `crd[l]`, and the value
//! array is aligned with the innermost coordinate array. Fibers are sorted
//! lexicographically, which is what the paper's COO→CSF conversion (sort +
//! pack) establishes.
//!
//! For order 2 this is exactly DCSR (doubly compressed sparse rows); the
//! container supports any order ≥ 1.

use sparse_tensor::{Shape, SparseTriples, TensorError, Value};

/// A sparse order-`N` tensor in CSF format.
#[derive(Debug, Clone, PartialEq)]
pub struct CsfTensor {
    shape: Shape,
    /// Fiber coordinates per level; `crd[order - 1].len() == nnz`.
    crd: Vec<Vec<usize>>,
    /// Segment offsets per level: `pos[l]` maps entries of `crd[l]` to
    /// segments of `crd[l + 1]` (so there are `order - 1` pos arrays).
    pos: Vec<Vec<usize>>,
    vals: Vec<Value>,
}

/// Compares nonzeros `a` and `b` lexicographically across parallel
/// coordinate columns. This is *the* comparator every CSF construction path
/// (reference constructor, engine kernel, parallel runtime kernel) must
/// share: bit-identical outputs rest on all of them sorting with the same
/// tie-breaking.
pub fn lex_cmp_at<C: AsRef<[usize]>>(columns: &[C], a: usize, b: usize) -> std::cmp::Ordering {
    columns
        .iter()
        .map(|c| (c.as_ref()[a], c.as_ref()[b]))
        .find(|(x, y)| x != y)
        .map_or(std::cmp::Ordering::Equal, |(x, y)| x.cmp(&y))
}

/// Stable lexicographic sort permutation over parallel coordinate columns:
/// `perm[p]` is the index of the `p`-th nonzero in sorted order (built on
/// [`lex_cmp_at`]).
pub fn lex_sort_perm(columns: &[Vec<usize>]) -> Vec<usize> {
    let nnz = columns.first().map_or(0, Vec::len);
    let mut perm: Vec<usize> = (0..nnz).collect();
    perm.sort_by(|&a, &b| lex_cmp_at(columns, a, b));
    perm
}

impl CsfTensor {
    /// Creates a CSF tensor from its level arrays.
    ///
    /// # Errors
    ///
    /// Returns an error unless the arrays form a valid fiber tree: one `crd`
    /// array per dimension, `order - 1` `pos` arrays with
    /// `pos[l].len() == crd[l].len() + 1`, monotone `pos` starting at 0 and
    /// ending at the child `crd` length, coordinates in bounds and strictly
    /// increasing within each fiber (the innermost level may repeat a
    /// coordinate, which represents duplicate components), and one value per
    /// innermost coordinate.
    pub fn from_parts(
        shape: Shape,
        crd: Vec<Vec<usize>>,
        pos: Vec<Vec<usize>>,
        vals: Vec<Value>,
    ) -> Result<Self, TensorError> {
        let order = shape.order();
        let err = |msg: String| Err(TensorError::InvalidStructure(msg));
        if crd.len() != order {
            return err(format!(
                "CSF has {} coordinate levels for an order-{order} shape",
                crd.len()
            ));
        }
        if pos.len() + 1 != order {
            return err(format!(
                "CSF has {} pos arrays, expected {}",
                pos.len(),
                order - 1
            ));
        }
        if vals.len() != crd[order - 1].len() {
            return err(format!(
                "CSF has {} values for {} innermost coordinates",
                vals.len(),
                crd[order - 1].len()
            ));
        }
        for (l, level_crd) in crd.iter().enumerate() {
            if let Some(&c) = level_crd.iter().find(|&&c| c >= shape.dim(l)) {
                return err(format!(
                    "CSF coordinate {c} out of bounds for dimension {l} of {shape}"
                ));
            }
        }
        for (l, level_pos) in pos.iter().enumerate() {
            if level_pos.len() != crd[l].len() + 1 {
                return err(format!(
                    "CSF pos[{l}] has length {}, expected {}",
                    level_pos.len(),
                    crd[l].len() + 1
                ));
            }
            if level_pos.first() != Some(&0) {
                return err(format!("CSF pos[{l}] must start at 0"));
            }
            if level_pos.windows(2).any(|w| w[0] > w[1]) {
                return err(format!("CSF pos[{l}] must be non-decreasing"));
            }
            if level_pos.last() != Some(&crd[l + 1].len()) {
                return err(format!(
                    "CSF pos[{l}] ends at {:?}, expected {}",
                    level_pos.last(),
                    crd[l + 1].len()
                ));
            }
            // Fibers of the child level must be sorted; only the innermost
            // level may contain duplicate coordinates.
            let child_unique = l + 2 < order;
            for seg in level_pos.windows(2) {
                let fiber = &crd[l + 1][seg[0]..seg[1]];
                let ordered = fiber.windows(2).all(|w| {
                    if child_unique {
                        w[0] < w[1]
                    } else {
                        w[0] <= w[1]
                    }
                });
                if !ordered {
                    return err(format!("CSF fiber {fiber:?} at level {} unsorted", l + 1));
                }
            }
        }
        // At order 1 the root level *is* the innermost level, so duplicate
        // coordinates are representable there too.
        let root_unique = order > 1;
        if crd[0].windows(2).any(|w| {
            if root_unique {
                w[0] >= w[1]
            } else {
                w[0] > w[1]
            }
        }) {
            return err("CSF root coordinates must be strictly increasing".to_string());
        }
        Ok(CsfTensor {
            shape,
            crd,
            pos,
            vals,
        })
    }

    /// Builds a CSF tensor from canonical triples by the paper's reference
    /// recipe: stable lexicographic sort, then a single packing pass.
    pub fn from_triples(t: &SparseTriples) -> Self {
        let order = t.order();
        let mut columns: Vec<Vec<usize>> = vec![Vec::with_capacity(t.nnz()); order];
        let mut vals: Vec<Value> = Vec::with_capacity(t.nnz());
        for triple in t.iter() {
            for (d, &c) in triple.coord.iter().enumerate() {
                columns[d].push(c as usize);
            }
            vals.push(triple.value);
        }
        let perm = lex_sort_perm(&columns);
        pack_sorted(
            t.shape().clone(),
            |d, p| columns[d][perm[p]],
            |p| vals[perm[p]],
            t.nnz(),
        )
    }

    /// Converts back to canonical triples, in fiber-tree (lexicographic)
    /// order.
    pub fn to_triples(&self) -> SparseTriples {
        let mut t = SparseTriples::with_capacity(self.shape.clone(), self.nnz());
        self.for_each(|coord, v| {
            t.push(coord.to_vec(), v)
                .expect("stored coordinates are in bounds");
        });
        t
    }

    /// Visits every nonzero in fiber-tree order with its full coordinate
    /// tuple.
    pub fn for_each<F: FnMut(&[i64], Value)>(&self, mut f: F) {
        let order = self.order();
        let mut coord = vec![0i64; order];
        // Iterative walk: `seg[l]` is the current position range at level l.
        if self.vals.is_empty() {
            return;
        }
        self.walk(0, 0..self.crd[0].len(), &mut coord, &mut f);
    }

    fn walk<F: FnMut(&[i64], Value)>(
        &self,
        level: usize,
        range: std::ops::Range<usize>,
        coord: &mut [i64],
        f: &mut F,
    ) {
        for p in range {
            coord[level] = self.crd[level][p] as i64;
            if level + 1 == self.order() {
                f(coord, self.vals[p]);
            } else {
                self.walk(
                    level + 1,
                    self.pos[level][p]..self.pos[level][p + 1],
                    coord,
                    f,
                );
            }
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The tensor's order (number of dimensions).
    pub fn order(&self) -> usize {
        self.shape.order()
    }

    /// Number of stored components.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Number of fibers at `level` (distinct coordinate prefixes of length
    /// `level + 1`).
    pub fn num_fibers(&self, level: usize) -> usize {
        self.crd[level].len()
    }

    /// The coordinate array of `level`.
    pub fn crd(&self, level: usize) -> &[usize] {
        &self.crd[level]
    }

    /// The segment-offset array between `level` and `level + 1`.
    pub fn pos(&self, level: usize) -> &[usize] {
        &self.pos[level]
    }

    /// Value array (aligned with the innermost coordinate array).
    pub fn values(&self) -> &[Value] {
        &self.vals
    }
}

/// An incremental CSF packer: push nonzeros in lexicographic (fiber-tree)
/// order, one at a time, and [`CsfBuilder::finish`] assembles the level
/// arrays. This is the packing loop of the paper's sort-then-pack recipe
/// factored out of [`pack_sorted`] so that *streaming* consumers (an
/// external merge sort draining runs from disk) and the in-memory paths
/// share the exact same code — bit-identical outputs by construction.
///
/// The caller is responsible for feeding coordinates in non-decreasing
/// lexicographic order with in-bounds components (the contract [`pack_sorted`]
/// has always had); duplicates of the full coordinate tuple are stored as
/// adjacent innermost entries.
#[derive(Debug)]
pub struct CsfBuilder {
    shape: Shape,
    crd: Vec<Vec<usize>>,
    pos: Vec<Vec<usize>>,
    vals: Vec<Value>,
    prev: Vec<usize>,
}

impl CsfBuilder {
    /// An empty builder for tensors of the given shape.
    ///
    /// # Panics
    ///
    /// Panics on order-0 shapes (a tensor needs at least one level).
    pub fn new(shape: Shape) -> Self {
        let order = shape.order();
        assert!(order >= 1, "CSF needs at least one level");
        CsfBuilder {
            shape,
            crd: vec![Vec::new(); order],
            pos: vec![vec![0]; order - 1],
            vals: Vec::new(),
            prev: Vec::new(),
        }
    }

    /// Appends the next nonzero in sorted order.
    pub fn push(&mut self, coord: &[usize], value: Value) {
        let order = self.shape.order();
        debug_assert_eq!(coord.len(), order, "coordinate arity mismatch");
        // The first level whose coordinate differs from the previous nonzero
        // opens a fresh fiber there and at every deeper level.
        let split = (0..order)
            .find(|&d| self.prev.get(d) != Some(&coord[d]))
            .unwrap_or(order - 1);
        for (d, &c) in coord.iter().enumerate().skip(split) {
            self.crd[d].push(c);
            if d + 1 < order {
                // Placeholder for the new fiber's end offset.
                self.pos[d].push(0);
            }
        }
        // Every open fiber's end offset is the running child length.
        for d in 0..order - 1 {
            self.pos[d][self.crd[d].len()] = self.crd[d + 1].len();
        }
        self.prev.clear();
        self.prev.extend_from_slice(coord);
        self.vals.push(value);
    }

    /// Number of nonzeros pushed so far.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Assembles the packed tensor.
    pub fn finish(self) -> CsfTensor {
        let order = self.shape.order();
        for d in 0..order.saturating_sub(1) {
            debug_assert_eq!(self.pos[d].len(), self.crd[d].len() + 1);
            debug_assert_eq!(self.pos[d].last().copied(), Some(self.crd[d + 1].len()));
        }
        CsfTensor {
            shape: self.shape,
            crd: self.crd,
            pos: self.pos,
            vals: self.vals,
        }
    }
}

/// Packs already-sorted nonzeros into CSF level arrays. `coord_at(d, p)` and
/// `value_at(p)` read the `p`-th nonzero in sorted order. Exposed so the
/// conversion engine and the parallel runtime kernels can share the exact
/// packing loop (bit-identical outputs by construction); implemented on
/// [`CsfBuilder`], which streaming consumers drive directly.
pub fn pack_sorted(
    shape: Shape,
    coord_at: impl Fn(usize, usize) -> usize,
    value_at: impl Fn(usize) -> Value,
    nnz: usize,
) -> CsfTensor {
    let order = shape.order();
    let mut builder = CsfBuilder::new(shape);
    let mut coord = vec![0usize; order];
    for p in 0..nnz {
        for (d, c) in coord.iter_mut().enumerate() {
            *c = coord_at(d, p);
        }
        builder.push(&coord, value_at(p));
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_tensor::example::{example3_tensor, figure1_matrix};

    #[test]
    fn from_triples_builds_the_expected_fiber_tree() {
        let csf = CsfTensor::from_triples(&example3_tensor());
        // Sorted entries: (0,0,0) (0,0,3) (0,2,4) (1,1,2) (2,0,1) (2,0,4)
        // (2,3,0) (2,3,3).
        assert_eq!(csf.crd(0), &[0, 1, 2]);
        assert_eq!(csf.pos(0), &[0, 2, 3, 5]);
        assert_eq!(csf.crd(1), &[0, 2, 1, 0, 3]);
        assert_eq!(csf.pos(1), &[0, 2, 3, 4, 6, 8]);
        assert_eq!(csf.crd(2), &[0, 3, 4, 2, 1, 4, 0, 3]);
        assert_eq!(csf.values(), &[1.0, 2.0, 3.0, 4.0, 6.0, 5.0, 7.0, 8.0]);
        assert_eq!(csf.nnz(), 8);
        assert_eq!(csf.num_fibers(0), 3);
        assert_eq!(csf.num_fibers(1), 5);
    }

    #[test]
    fn roundtrip_preserves_values_and_sorts() {
        let t = example3_tensor();
        let back = CsfTensor::from_triples(&t).to_triples();
        assert!(back.is_sorted());
        assert!(back.same_values(&t));
    }

    #[test]
    fn order_2_csf_is_dcsr() {
        let m = figure1_matrix();
        let csf = CsfTensor::from_triples(&m);
        assert_eq!(csf.order(), 2);
        // All four rows of the example are nonempty, so the root level holds
        // every row and pos matches the CSR pos array.
        assert_eq!(csf.crd(0), &[0, 1, 2, 3]);
        assert_eq!(csf.pos(0), &[0, 2, 4, 6, 9]);
        assert!(csf.to_triples().same_values(&m));
    }

    #[test]
    fn from_parts_validates_structure() {
        let shape = Shape::tensor3(2, 2, 2);
        let ok = CsfTensor::from_parts(
            shape.clone(),
            vec![vec![0, 1], vec![0, 1], vec![1, 0]],
            vec![vec![0, 1, 2], vec![0, 1, 2]],
            vec![1.0, 2.0],
        );
        assert!(ok.is_ok());
        // Wrong level count.
        assert!(CsfTensor::from_parts(
            shape.clone(),
            vec![vec![0], vec![0]],
            vec![vec![0, 1]],
            vec![1.0]
        )
        .is_err());
        // pos not ending at the child length.
        assert!(CsfTensor::from_parts(
            shape.clone(),
            vec![vec![0], vec![0], vec![0]],
            vec![vec![0, 2], vec![0, 1]],
            vec![1.0]
        )
        .is_err());
        // Unsorted fiber at an intermediate level.
        assert!(CsfTensor::from_parts(
            shape.clone(),
            vec![vec![0], vec![1, 0], vec![0, 1]],
            vec![vec![0, 2], vec![0, 1, 2]],
            vec![1.0, 2.0]
        )
        .is_err());
        // Duplicate root coordinate.
        assert!(CsfTensor::from_parts(
            shape,
            vec![vec![0, 0], vec![0, 1], vec![0, 1]],
            vec![vec![0, 1, 2], vec![0, 1, 2]],
            vec![1.0, 2.0]
        )
        .is_err());
    }

    #[test]
    fn duplicate_innermost_coordinates_are_representable() {
        // Two components at the same (i, j, k) stay adjacent after the sort;
        // the innermost fiber keeps both entries.
        let shape = Shape::tensor3(2, 2, 2);
        let csf = CsfTensor::from_parts(
            shape,
            vec![vec![1], vec![1], vec![0, 0]],
            vec![vec![0, 1], vec![0, 2]],
            vec![2.0, 3.0],
        )
        .unwrap();
        assert_eq!(csf.nnz(), 2);
        assert_eq!(csf.to_triples().get(&[1, 1, 0]), 5.0);
    }

    #[test]
    fn order_1_tensors_roundtrip_through_from_parts() {
        // At order 1 the root level is the innermost level, so duplicate
        // coordinates are representable; from_parts must accept what
        // pack_sorted produces.
        let mut t = SparseTriples::new(Shape::vector(4));
        t.push(vec![2], 1.0).unwrap();
        t.push(vec![2], 2.0).unwrap();
        t.push(vec![0], 3.0).unwrap();
        let csf = CsfTensor::from_triples(&t);
        assert_eq!(csf.crd(0), &[0, 2, 2]);
        let rebuilt = CsfTensor::from_parts(
            csf.shape().clone(),
            vec![csf.crd(0).to_vec()],
            vec![],
            csf.values().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt, csf);
        assert_eq!(rebuilt.to_triples().get(&[2]), 3.0);
        // Order > 1 keeps the strictly-increasing root requirement.
        assert!(CsfTensor::from_parts(
            Shape::matrix(3, 3),
            vec![vec![1, 1], vec![0, 1]],
            vec![vec![0, 1, 2]],
            vec![1.0, 2.0],
        )
        .is_err());
    }

    #[test]
    fn empty_tensor_packs_cleanly() {
        let t = SparseTriples::new(Shape::tensor3(3, 3, 3));
        let csf = CsfTensor::from_triples(&t);
        assert_eq!(csf.nnz(), 0);
        assert_eq!(csf.num_fibers(0), 0);
        assert_eq!(csf.pos(0), &[0]);
        assert!(csf.to_triples().same_values(&t));
    }

    #[test]
    fn lex_sort_perm_is_stable() {
        let columns = vec![vec![1, 0, 1, 0], vec![0, 2, 0, 2]];
        assert_eq!(lex_sort_perm(&columns), vec![1, 3, 0, 2]);
        assert!(lex_sort_perm(&[]).is_empty());
    }
}
