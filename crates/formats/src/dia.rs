//! The DIA (diagonal) format: nonzeros are grouped by diagonal (Figure 2c).

use sparse_tensor::{SparseTriples, TensorError, Value};

/// A sparse matrix in DIA format.
///
/// For each of the `K` stored diagonals, identified by its offset
/// `k = j - i` in the `offsets` array (the paper's `perm` array), DIA stores
/// a dense strip of `rows` values. The value of component `(i, i + offset)`
/// of diagonal `d` lives at `vals[d * rows + i]`; positions whose column
/// falls outside the matrix are padding zeros.
#[derive(Debug, Clone, PartialEq)]
pub struct DiaMatrix {
    rows: usize,
    cols: usize,
    offsets: Vec<i64>,
    vals: Vec<Value>,
}

impl DiaMatrix {
    /// Creates a DIA matrix from its offsets and value strips.
    ///
    /// # Errors
    ///
    /// Returns an error if `vals.len() != offsets.len() * rows`, if any offset
    /// is outside `[-(rows-1), cols-1]`, or if offsets repeat.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        offsets: Vec<i64>,
        vals: Vec<Value>,
    ) -> Result<Self, TensorError> {
        if vals.len() != offsets.len() * rows {
            return Err(TensorError::InvalidStructure(format!(
                "DIA vals has length {}, expected {}",
                vals.len(),
                offsets.len() * rows
            )));
        }
        for (n, &k) in offsets.iter().enumerate() {
            if k < -(rows as i64 - 1) || k > cols as i64 - 1 {
                return Err(TensorError::InvalidStructure(format!(
                    "DIA offset {k} outside valid range for {rows}x{cols}"
                )));
            }
            if offsets[..n].contains(&k) {
                return Err(TensorError::InvalidStructure(format!(
                    "duplicate DIA offset {k}"
                )));
            }
        }
        Ok(DiaMatrix {
            rows,
            cols,
            offsets,
            vals,
        })
    }

    /// Builds a DIA matrix from canonical triples (reference construction:
    /// collect the set of nonzero diagonals, then scatter values).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not order 2.
    pub fn from_triples(t: &SparseTriples) -> Self {
        assert_eq!(t.order(), 2, "DIA matrices are order-2 tensors");
        let rows = t.shape().rows();
        let cols = t.shape().cols();
        let mut offsets: Vec<i64> = t.iter().map(|tr| tr.coord[1] - tr.coord[0]).collect();
        offsets.sort_unstable();
        offsets.dedup();
        let mut vals = vec![0.0; offsets.len() * rows];
        for tr in t.iter() {
            let k = tr.coord[1] - tr.coord[0];
            let d = offsets.binary_search(&k).expect("offset present");
            vals[d * rows + tr.coord[0] as usize] = tr.value;
        }
        DiaMatrix {
            rows,
            cols,
            offsets,
            vals,
        }
    }

    /// Converts back to canonical triples, skipping padding zeros.
    pub fn to_triples(&self) -> SparseTriples {
        let mut entries = Vec::new();
        for (d, &k) in self.offsets.iter().enumerate() {
            for i in 0..self.rows {
                let j = i as i64 + k;
                if j < 0 || j >= self.cols as i64 {
                    continue;
                }
                let v = self.vals[d * self.rows + i];
                if v != 0.0 {
                    entries.push((i, j as usize, v));
                }
            }
        }
        SparseTriples::from_matrix_entries(self.rows, self.cols, entries)
            .expect("computed coordinates are in bounds")
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored diagonals (`K`).
    pub fn num_diagonals(&self) -> usize {
        self.offsets.len()
    }

    /// The diagonal offsets (the paper's `perm` array).
    pub fn offsets(&self) -> &[i64] {
        &self.offsets
    }

    /// The value strips, one dense strip of `rows` values per diagonal.
    pub fn values(&self) -> &[Value] {
        &self.vals
    }

    /// Number of structurally nonzero entries (non-padding, nonzero values).
    pub fn nnz(&self) -> usize {
        self.to_triples().nnz()
    }

    /// The value at `(i, j)`, or zero when the diagonal is not stored.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> Value {
        assert!(
            i < self.rows && j < self.cols,
            "coordinate ({i},{j}) out of bounds"
        );
        let k = j as i64 - i as i64;
        match self.offsets.iter().position(|&o| o == k) {
            Some(d) => self.vals[d * self.rows + i],
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_tensor::example::figure1_matrix;

    #[test]
    fn from_triples_finds_three_diagonals() {
        let dia = DiaMatrix::from_triples(&figure1_matrix());
        assert_eq!(dia.offsets(), &[-2, 0, 1]);
        assert_eq!(dia.num_diagonals(), 3);
        assert_eq!(dia.values().len(), 12);
        // Main diagonal strip: rows 0..4 hold 5, 7, 2, 9.
        assert_eq!(&dia.values()[4..8], &[5.0, 7.0, 2.0, 9.0]);
        // Offset -2 strip: only rows 2 and 3 are populated.
        assert_eq!(&dia.values()[0..4], &[0.0, 0.0, 8.0, 4.0]);
        // Offset +1 strip: rows 0, 1, 3 populated; row 2 padding.
        assert_eq!(&dia.values()[8..12], &[1.0, 3.0, 0.0, 6.0]);
    }

    #[test]
    fn roundtrip_preserves_values() {
        let t = figure1_matrix();
        let dia = DiaMatrix::from_triples(&t);
        assert!(dia.to_triples().same_values(&t));
        assert_eq!(dia.nnz(), 9);
    }

    #[test]
    fn get_returns_zero_off_stored_diagonals() {
        let dia = DiaMatrix::from_triples(&figure1_matrix());
        assert_eq!(dia.get(0, 0), 5.0);
        assert_eq!(dia.get(3, 4), 6.0);
        assert_eq!(dia.get(0, 3), 0.0);
        assert_eq!(dia.get(2, 1), 0.0);
    }

    #[test]
    fn from_parts_validates() {
        assert!(DiaMatrix::from_parts(2, 2, vec![0], vec![1.0]).is_err());
        assert!(DiaMatrix::from_parts(2, 2, vec![5], vec![1.0, 2.0]).is_err());
        assert!(DiaMatrix::from_parts(2, 2, vec![0, 0], vec![1.0; 4]).is_err());
        let ok = DiaMatrix::from_parts(2, 2, vec![0, 1], vec![1.0, 2.0, 3.0, 0.0]).unwrap();
        assert_eq!(ok.num_diagonals(), 2);
        assert_eq!(ok.get(0, 1), 3.0);
    }

    #[test]
    fn rectangular_offsets_can_exceed_rows() {
        let t = SparseTriples::from_matrix_entries(2, 6, vec![(0, 5, 1.0), (1, 0, 2.0)]).unwrap();
        let dia = DiaMatrix::from_triples(&t);
        assert_eq!(dia.offsets(), &[-1, 5]);
        assert!(dia.to_triples().same_values(&t));
    }
}
