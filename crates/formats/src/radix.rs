//! Packed-key LSD radix sorting for coordinate tuples.
//!
//! The paper's sort-then-pack conversions spend almost all of their time in
//! the *sort*: a stable lexicographic ordering of parallel coordinate
//! columns ([`crate::csf::lex_cmp_at`]). A comparison sort pays an indirect
//! memory access per column per comparison; this module instead packs each
//! nonzero's coordinate tuple into a single machine word and runs a
//! least-significant-digit radix sort over the packed keys:
//!
//! * **Key packing** — dimension `d` occupies a bit field wide enough for
//!   the *actual* maximum coordinate in the sorted span (not the shape's
//!   extent), with the outermost dimension in the highest bits. Because
//!   every field is wide enough for its values, integer comparison of the
//!   packed keys equals lexicographic comparison of the tuples.
//! * **Width check + fallback** — keys up to 64 bits take the `u64` path,
//!   up to 128 bits the `u128` path; wider tuples (only reachable at order
//!   ≥ 3 with near-`usize::MAX` coordinates) fall back to the stable
//!   comparison sort, so every input remains sortable.
//! * **LSD passes** — 8-bit digits, with all per-pass histograms gathered
//!   in one read over the keys and passes whose histogram is a single
//!   bucket skipped entirely (common: high digits of small tensors).
//!   `(key, index)` pairs ping-pong between two buffers, so each pass is
//!   two sequential sweeps with no per-element indirection.
//!
//! Every pass of an LSD radix sort is stable, so the resulting permutation
//! is *identical* to the stable comparison sort's — the property that keeps
//! the engine, the parallel kernels, and the streaming pre-sort bit-for-bit
//! interchangeable (enforced by `tests/radix_equivalence.rs`).

use crate::csf::lex_cmp_at;

/// How a sort-then-pack path orders its nonzeros. All strategies are stable
/// and produce the exact permutation of [`crate::csf::lex_sort_perm`];
/// they differ only in cost. Exposed so benchmarks and equivalence tests can
/// pin a path; production code uses [`SortStrategy::Radix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortStrategy {
    /// Packed-key LSD radix sort (comparison fallback for unpackable keys).
    #[default]
    Radix,
    /// Stable comparison sort on [`lex_cmp_at`] — the reference.
    Comparison,
    /// Per-dimension stable counting sorts, innermost dimension first (the
    /// recipe the paper's generated code uses). Falls back to the
    /// comparison sort when a dimension's coordinate range is too large for
    /// a dense histogram.
    Counting,
}

/// Which code path a sort took — the width-check outcome the fallback tests
/// assert on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortPath {
    /// Keys packed into `u64` words.
    Radix64,
    /// Keys packed into `u128` words.
    Radix128,
    /// Stable comparison sort (requested, or the wide-key fallback).
    Comparison,
    /// Per-dimension counting sorts.
    Counting,
}

const DIGIT_BITS: u32 = 8;
const BUCKETS: usize = 1 << DIGIT_BITS;

/// Largest dense histogram the counting strategy will allocate per
/// dimension before falling back to the comparison sort.
const COUNTING_MAX_BUCKETS: usize = 1 << 22;

/// A word type coordinate tuples pack into. Private: only `u64` and `u128`
/// implement it, selected by the width check.
trait PackedKey: Copy + Default {
    fn pack(v: usize, shift: u32) -> Self;
    fn merge(self, other: Self) -> Self;
    fn digit(self, pass: u32) -> usize;
}

impl PackedKey for u64 {
    #[inline]
    fn pack(v: usize, shift: u32) -> Self {
        (v as u64) << shift
    }
    #[inline]
    fn merge(self, other: Self) -> Self {
        self | other
    }
    #[inline]
    fn digit(self, pass: u32) -> usize {
        ((self >> (pass * DIGIT_BITS)) & 0xff) as usize
    }
}

impl PackedKey for u128 {
    #[inline]
    fn pack(v: usize, shift: u32) -> Self {
        (v as u128) << shift
    }
    #[inline]
    fn merge(self, other: Self) -> Self {
        self | other
    }
    #[inline]
    fn digit(self, pass: u32) -> usize {
        ((self >> (pass * DIGIT_BITS)) & 0xff) as usize
    }
}

/// Per-dimension bit fields of the packed key: `(dim, shift)` for every
/// dimension that needs bits at all (constant dimensions pack to nothing),
/// plus the total key width.
fn key_layout<C: AsRef<[usize]>>(columns: &[C], span: &[usize]) -> (Vec<(usize, u32)>, u32) {
    // Field widths come from the actual maxima over the span, which is both
    // tighter than the shape's extents (fewer radix passes) and independent
    // of any shape plumbing (the streaming sorter has key *dimensions*, not
    // key extents).
    let bits: Vec<u32> = columns
        .iter()
        .map(|c| {
            let col = c.as_ref();
            let max = span.iter().map(|&p| col[p]).max().unwrap_or(0);
            usize::BITS - max.leading_zeros()
        })
        .collect();
    let total: u32 = bits.iter().sum();
    // Outermost dimension in the highest bits; zero-width fields dropped.
    let mut fields = Vec::with_capacity(columns.len());
    let mut shift = total;
    for (d, &b) in bits.iter().enumerate() {
        shift -= b;
        if b > 0 {
            fields.push((d, shift));
        }
    }
    (fields, total)
}

/// One LSD radix sort over packed keys: gathers all per-pass histograms in
/// a single read, skips single-bucket passes, ping-pongs `(key, index)`
/// pairs, and writes the sorted indices back into `span`.
fn radix_sort_packed<K: PackedKey, C: AsRef<[usize]>>(
    columns: &[C],
    fields: &[(usize, u32)],
    total_bits: u32,
    span: &mut [usize],
) {
    let n = span.len();
    let mut keys: Vec<(K, usize)> = span
        .iter()
        .map(|&p| {
            let mut key = K::default();
            for &(d, shift) in fields {
                key = key.merge(K::pack(columns[d].as_ref()[p], shift));
            }
            (key, p)
        })
        .collect();
    let passes = total_bits.div_ceil(DIGIT_BITS);
    // All histograms in one sweep: one read pass instead of one per digit.
    let mut hists = vec![[0usize; BUCKETS]; passes as usize];
    for &(key, _) in &keys {
        for (pass, hist) in hists.iter_mut().enumerate() {
            hist[key.digit(pass as u32)] += 1;
        }
    }
    let mut buf: Vec<(K, usize)> = vec![(K::default(), 0); n];
    for (pass, hist) in hists.iter().enumerate() {
        // A pass whose keys share one digit value would be the identity
        // permutation; skip the two sweeps.
        if hist.contains(&n) {
            continue;
        }
        let mut cursors = [0usize; BUCKETS];
        let mut running = 0usize;
        for (cursor, &count) in cursors.iter_mut().zip(hist.iter()) {
            *cursor = running;
            running += count;
        }
        for &(key, p) in &keys {
            let digit = key.digit(pass as u32);
            buf[cursors[digit]] = (key, p);
            cursors[digit] += 1;
        }
        std::mem::swap(&mut keys, &mut buf);
    }
    for (dst, &(_, p)) in span.iter_mut().zip(keys.iter()) {
        *dst = p;
    }
}

/// Per-dimension stable counting sorts, innermost dimension first — the
/// paper's generated LSD recipe over raw coordinates. Returns `false`
/// (leaving `span` untouched) when a dimension's maximum exceeds
/// [`COUNTING_MAX_BUCKETS`].
fn counting_sort_span<C: AsRef<[usize]>>(columns: &[C], span: &mut [usize]) -> bool {
    let maxima: Vec<usize> = columns
        .iter()
        .map(|c| {
            let col = c.as_ref();
            span.iter().map(|&p| col[p]).max().unwrap_or(0)
        })
        .collect();
    if maxima.iter().any(|&m| m >= COUNTING_MAX_BUCKETS) {
        return false;
    }
    let mut buf = vec![0usize; span.len()];
    for (d, &max) in maxima.iter().enumerate().rev() {
        if max == 0 {
            continue; // a constant column is a stable no-op
        }
        let col = columns[d].as_ref();
        let mut cursors = vec![0usize; max + 2];
        for &p in span.iter() {
            cursors[col[p] + 1] += 1;
        }
        for i in 0..=max {
            cursors[i + 1] += cursors[i];
        }
        for &p in span.iter() {
            buf[cursors[col[p]]] = p;
            cursors[col[p]] += 1;
        }
        span.copy_from_slice(&buf);
    }
    true
}

/// Stably sorts `span` — indices into the parallel coordinate `columns` —
/// into lexicographic tuple order with the given strategy, returning the
/// path taken. Every strategy yields the permutation of the stable
/// comparison sort on [`lex_cmp_at`].
pub fn sort_index_span_with<C: AsRef<[usize]>>(
    columns: &[C],
    span: &mut [usize],
    strategy: SortStrategy,
) -> SortPath {
    if span.len() < 2 {
        return SortPath::Comparison;
    }
    match strategy {
        SortStrategy::Comparison => {
            span.sort_by(|&a, &b| lex_cmp_at(columns, a, b));
            SortPath::Comparison
        }
        SortStrategy::Counting => {
            if counting_sort_span(columns, span) {
                SortPath::Counting
            } else {
                span.sort_by(|&a, &b| lex_cmp_at(columns, a, b));
                SortPath::Comparison
            }
        }
        SortStrategy::Radix => {
            let (fields, total_bits) = key_layout(columns, span);
            if total_bits <= u64::BITS {
                radix_sort_packed::<u64, C>(columns, &fields, total_bits, span);
                SortPath::Radix64
            } else if total_bits <= u128::BITS {
                radix_sort_packed::<u128, C>(columns, &fields, total_bits, span);
                SortPath::Radix128
            } else {
                span.sort_by(|&a, &b| lex_cmp_at(columns, a, b));
                SortPath::Comparison
            }
        }
    }
}

/// [`sort_index_span_with`] at the default [`SortStrategy::Radix`].
pub fn sort_index_span<C: AsRef<[usize]>>(columns: &[C], span: &mut [usize]) -> SortPath {
    sort_index_span_with(columns, span, SortStrategy::Radix)
}

/// Radix-accelerated drop-in for [`crate::csf::lex_sort_perm`]: the stable
/// lexicographic sort permutation over parallel coordinate columns, computed
/// by the packed-key radix sort (with the comparison fallback for unpackable
/// keys).
pub fn sort_perm<C: AsRef<[usize]>>(columns: &[C]) -> Vec<usize> {
    let nnz = columns.first().map_or(0, |c| c.as_ref().len());
    let mut perm: Vec<usize> = (0..nnz).collect();
    sort_index_span(columns, &mut perm);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csf::lex_sort_perm;

    fn reference(columns: &[Vec<usize>], span: &[usize]) -> Vec<usize> {
        let mut sorted = span.to_vec();
        sorted.sort_by(|&a, &b| lex_cmp_at(columns, a, b));
        sorted
    }

    fn pseudo_columns(dims: &[usize], n: usize, seed: u64) -> Vec<Vec<usize>> {
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as usize
        };
        dims.iter()
            .map(|&d| (0..n).map(|_| next() % d).collect())
            .collect()
    }

    #[test]
    fn all_strategies_match_the_comparison_sort() {
        let columns = pseudo_columns(&[7, 5, 11], 200, 0x5eed);
        let expected = reference(&columns, &(0..200).collect::<Vec<_>>());
        for strategy in [
            SortStrategy::Radix,
            SortStrategy::Comparison,
            SortStrategy::Counting,
        ] {
            let mut span: Vec<usize> = (0..200).collect();
            sort_index_span_with(&columns, &mut span, strategy);
            assert_eq!(span, expected, "{strategy:?}");
        }
    }

    #[test]
    fn radix_is_stable_on_duplicate_tuples() {
        // Duplicate (1, 0) tuples must keep index order; matches
        // lex_sort_perm's documented stability test.
        let columns = vec![vec![1, 0, 1, 0], vec![0, 2, 0, 2]];
        assert_eq!(sort_perm(&columns), vec![1, 3, 0, 2]);
        assert_eq!(sort_perm(&columns), lex_sort_perm(&columns));
    }

    #[test]
    fn sorts_arbitrary_sub_spans() {
        let columns = pseudo_columns(&[4, 9], 64, 0xabc);
        let mut span: Vec<usize> = vec![3, 60, 1, 17, 17, 5, 40];
        let expected = reference(&columns, &span);
        let path = sort_index_span(&columns, &mut span);
        assert_eq!(path, SortPath::Radix64);
        assert_eq!(span, expected);
    }

    #[test]
    fn wide_keys_take_the_u128_path_and_wider_fall_back() {
        // Three 33-bit fields: 99 bits, u128 path.
        let big = 1usize << 32;
        let columns = vec![
            vec![big, 3, big, 0],
            vec![1, big, 0, big],
            vec![big, big, 2, 1],
        ];
        let mut span: Vec<usize> = vec![0, 1, 2, 3];
        let expected = reference(&columns, &span);
        assert_eq!(sort_index_span(&columns, &mut span), SortPath::Radix128);
        assert_eq!(span, expected);

        // Three 63-bit fields: 189 bits, comparison fallback.
        let huge = 1usize << 62;
        let columns = vec![
            vec![huge, 3, huge, 0],
            vec![1, huge, 0, huge],
            vec![huge, huge, 2, 1],
        ];
        let mut span: Vec<usize> = vec![0, 1, 2, 3];
        let expected = reference(&columns, &span);
        assert_eq!(sort_index_span(&columns, &mut span), SortPath::Comparison);
        assert_eq!(span, expected);
    }

    #[test]
    fn exact_64_bit_keys_stay_on_the_u64_path() {
        // 32 + 32 bits exactly: still u64.
        let v = (1usize << 31) + 5;
        let columns = vec![vec![v, 0, v - 1], vec![0, v, v]];
        let mut span: Vec<usize> = vec![0, 1, 2];
        assert_eq!(sort_index_span(&columns, &mut span), SortPath::Radix64);
        assert_eq!(span, reference(&columns, &span.clone()));
        // One more bit tips it over to u128.
        let columns = vec![vec![v, 0, v - 1], vec![0, 2 * v, v]];
        let mut span: Vec<usize> = vec![0, 1, 2];
        assert_eq!(sort_index_span(&columns, &mut span), SortPath::Radix128);
        assert_eq!(span, reference(&columns, &span.clone()));
    }

    #[test]
    fn constant_and_empty_columns_are_handled() {
        // A constant column contributes no bits; an all-zero tensor sorts to
        // the identity (stability).
        let columns = vec![vec![0; 5], vec![0; 5]];
        let mut span: Vec<usize> = (0..5).collect();
        sort_index_span(&columns, &mut span);
        assert_eq!(span, vec![0, 1, 2, 3, 4]);
        assert!(sort_perm::<Vec<usize>>(&[]).is_empty());
        let mut empty: Vec<usize> = Vec::new();
        assert_eq!(
            sort_index_span(&columns, &mut empty),
            SortPath::Comparison,
            "trivial spans skip the machinery"
        );
    }

    #[test]
    fn counting_falls_back_on_huge_extents() {
        let columns = vec![vec![usize::MAX, 0, 7]];
        let mut span: Vec<usize> = vec![0, 1, 2];
        let path = sort_index_span_with(&columns, &mut span, SortStrategy::Counting);
        assert_eq!(path, SortPath::Comparison);
        assert_eq!(span, vec![1, 2, 0]);
    }

    #[test]
    fn sort_perm_matches_lex_sort_perm_on_random_columns() {
        for seed in [1u64, 42, 0xdead] {
            let columns = pseudo_columns(&[3, 1, 300, 17], 257, seed);
            assert_eq!(sort_perm(&columns), lex_sort_perm(&columns), "seed {seed}");
        }
    }
}
