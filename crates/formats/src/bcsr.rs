//! The BCSR (blocked CSR) format: fixed-size dense blocks indexed by a CSR
//! structure over block coordinates (Section 4.1).

use sparse_tensor::{SparseTriples, TensorError, Value};

/// A sparse matrix in BCSR format with `block_rows x block_cols` blocks.
///
/// Block row `bi` owns the blocks at positions `pos[bi] .. pos[bi+1]`; block
/// `p` has block-column coordinate `crd[p]` and stores its
/// `block_rows * block_cols` values densely (row-major) at
/// `vals[p * block_rows * block_cols ..]`.
#[derive(Debug, Clone, PartialEq)]
pub struct BcsrMatrix {
    rows: usize,
    cols: usize,
    block_rows: usize,
    block_cols: usize,
    pos: Vec<usize>,
    crd: Vec<usize>,
    vals: Vec<Value>,
}

impl BcsrMatrix {
    /// Builds a BCSR matrix from canonical triples (reference construction).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not order 2 or either block size is zero.
    pub fn from_triples(t: &SparseTriples, block_rows: usize, block_cols: usize) -> Self {
        assert_eq!(t.order(), 2, "BCSR matrices are order-2 tensors");
        assert!(
            block_rows > 0 && block_cols > 0,
            "block sizes must be positive"
        );
        let rows = t.shape().rows();
        let cols = t.shape().cols();
        let brows = rows.div_ceil(block_rows);
        let bcols = cols.div_ceil(block_cols);

        // Which blocks are nonzero, per block row.
        let mut block_sets: Vec<Vec<usize>> = vec![Vec::new(); brows];
        for tr in t.iter() {
            let bi = tr.coord[0] as usize / block_rows;
            let bj = tr.coord[1] as usize / block_cols;
            if !block_sets[bi].contains(&bj) {
                block_sets[bi].push(bj);
            }
        }
        for set in &mut block_sets {
            set.sort_unstable();
        }
        let _ = bcols;

        let mut pos = vec![0usize; brows + 1];
        for bi in 0..brows {
            pos[bi + 1] = pos[bi] + block_sets[bi].len();
        }
        let nblocks = pos[brows];
        let mut crd = vec![0usize; nblocks];
        for bi in 0..brows {
            crd[pos[bi]..pos[bi + 1]].copy_from_slice(&block_sets[bi]);
        }
        let bsize = block_rows * block_cols;
        let mut vals = vec![0.0; nblocks * bsize];
        for tr in t.iter() {
            let (i, j) = (tr.coord[0] as usize, tr.coord[1] as usize);
            let (bi, bj) = (i / block_rows, j / block_cols);
            let p = pos[bi]
                + block_sets[bi]
                    .binary_search(&bj)
                    .expect("block was registered above");
            let (li, lj) = (i % block_rows, j % block_cols);
            vals[p * bsize + li * block_cols + lj] = tr.value;
        }
        BcsrMatrix {
            rows,
            cols,
            block_rows,
            block_cols,
            pos,
            crd,
            vals,
        }
    }

    /// Creates a BCSR matrix from raw arrays.
    ///
    /// # Errors
    ///
    /// Returns an error on inconsistent array lengths or out-of-range block
    /// coordinates.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        rows: usize,
        cols: usize,
        block_rows: usize,
        block_cols: usize,
        pos: Vec<usize>,
        crd: Vec<usize>,
        vals: Vec<Value>,
    ) -> Result<Self, TensorError> {
        let brows = rows.div_ceil(block_rows.max(1));
        let bcols = cols.div_ceil(block_cols.max(1));
        if block_rows == 0 || block_cols == 0 {
            return Err(TensorError::InvalidStructure(
                "block sizes must be positive".into(),
            ));
        }
        if pos.len() != brows + 1 || pos[0] != 0 || *pos.last().expect("nonempty") != crd.len() {
            return Err(TensorError::InvalidStructure(
                "invalid BCSR pos array".into(),
            ));
        }
        if crd.iter().any(|&bj| bj >= bcols) {
            return Err(TensorError::InvalidStructure(
                "BCSR block column out of bounds".into(),
            ));
        }
        if vals.len() != crd.len() * block_rows * block_cols {
            return Err(TensorError::InvalidStructure(
                "BCSR vals length mismatch".into(),
            ));
        }
        Ok(BcsrMatrix {
            rows,
            cols,
            block_rows,
            block_cols,
            pos,
            crd,
            vals,
        })
    }

    /// Converts back to canonical triples, skipping zero fill.
    pub fn to_triples(&self) -> SparseTriples {
        let mut entries = Vec::new();
        let bsize = self.block_rows * self.block_cols;
        for bi in 0..self.pos.len() - 1 {
            for p in self.pos[bi]..self.pos[bi + 1] {
                let bj = self.crd[p];
                for li in 0..self.block_rows {
                    for lj in 0..self.block_cols {
                        let v = self.vals[p * bsize + li * self.block_cols + lj];
                        let (i, j) = (bi * self.block_rows + li, bj * self.block_cols + lj);
                        if v != 0.0 && i < self.rows && j < self.cols {
                            entries.push((i, j, v));
                        }
                    }
                }
            }
        }
        SparseTriples::from_matrix_entries(self.rows, self.cols, entries)
            .expect("computed coordinates are in bounds")
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Block dimensions `(block_rows, block_cols)`.
    pub fn block_shape(&self) -> (usize, usize) {
        (self.block_rows, self.block_cols)
    }

    /// Number of stored blocks.
    pub fn num_blocks(&self) -> usize {
        self.crd.len()
    }

    /// The block-row `pos` array.
    pub fn pos(&self) -> &[usize] {
        &self.pos
    }

    /// The block-column coordinate array.
    pub fn crd(&self) -> &[usize] {
        &self.crd
    }

    /// The dense block values.
    pub fn values(&self) -> &[Value] {
        &self.vals
    }

    /// Number of stored values that are structurally nonzero.
    pub fn nnz(&self) -> usize {
        self.vals.iter().filter(|&&v| v != 0.0).count()
    }

    /// Fraction of stored block entries that are nonzero.
    pub fn fill(&self) -> f64 {
        if self.vals.is_empty() {
            0.0
        } else {
            self.nnz() as f64 / self.vals.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_tensor::example::figure1_matrix;

    #[test]
    fn from_triples_roundtrips() {
        let t = figure1_matrix();
        let b = BcsrMatrix::from_triples(&t, 2, 2);
        assert_eq!(b.block_shape(), (2, 2));
        assert!(b.to_triples().same_values(&t));
        assert_eq!(b.nnz(), 9);
        assert!(b.fill() > 0.0 && b.fill() <= 1.0);
    }

    #[test]
    fn blocks_cover_only_nonempty_tiles() {
        let t = SparseTriples::from_matrix_entries(4, 4, vec![(0, 0, 1.0), (3, 3, 2.0)]).unwrap();
        let b = BcsrMatrix::from_triples(&t, 2, 2);
        assert_eq!(b.num_blocks(), 2);
        assert_eq!(b.pos(), &[0, 1, 2]);
        assert_eq!(b.crd(), &[0, 1]);
        assert_eq!(b.values().len(), 8);
    }

    #[test]
    fn ragged_edges_are_handled() {
        // 3x5 matrix with 2x2 blocks: edge blocks are partially out of range.
        let t = SparseTriples::from_matrix_entries(3, 5, vec![(2, 4, 7.0), (0, 0, 1.0)]).unwrap();
        let b = BcsrMatrix::from_triples(&t, 2, 2);
        assert!(b.to_triples().same_values(&t));
    }

    #[test]
    fn from_parts_validates() {
        assert!(BcsrMatrix::from_parts(4, 4, 0, 2, vec![0, 0, 0], vec![], vec![]).is_err());
        assert!(BcsrMatrix::from_parts(4, 4, 2, 2, vec![0, 1], vec![0], vec![0.0; 4]).is_err());
        assert!(BcsrMatrix::from_parts(4, 4, 2, 2, vec![0, 1, 1], vec![9], vec![0.0; 4]).is_err());
        assert!(BcsrMatrix::from_parts(4, 4, 2, 2, vec![0, 1, 1], vec![0], vec![0.0; 3]).is_err());
        let ok =
            BcsrMatrix::from_parts(4, 4, 2, 2, vec![0, 1, 1], vec![0], vec![1.0, 0.0, 0.0, 2.0])
                .unwrap();
        assert_eq!(ok.num_blocks(), 1);
        assert_eq!(ok.nnz(), 2);
    }
}
