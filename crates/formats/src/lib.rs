//! Concrete sparse matrix formats, reference conversions, library-style
//! baselines, and SpMV kernels.
//!
//! This crate provides the data structures that conversions read and write:
//!
//! * [`CooMatrix`], [`CsrMatrix`], [`CscMatrix`], [`DiaMatrix`], [`EllMatrix`]
//!   — the formats evaluated in Section 7 of the paper,
//! * [`BcsrMatrix`], [`SkylineMatrix`], [`DokMatrix`], [`JadMatrix`] — further
//!   formats discussed in Sections 2, 4 and 6,
//! * [`CooTensor`], [`CsfTensor`] — rank-`N` tensor containers (Section 7's
//!   third-order COO→CSF conversions; CSF of order 2 is DCSR),
//! * hand-written *reference* conversions to and from canonical
//!   [`sparse_tensor::SparseTriples`] (ground truth for tests),
//! * [`baselines`] — Rust ports of the SPARSKIT and Intel MKL conversion
//!   algorithms and of the "taco without extensions" sort-based conversion,
//!   which the generated routines are benchmarked against, and
//! * [`spmv`] — per-format SpMV kernels (the motivating workload of Section 1).
//!
//! All containers validate their structural invariants and convert losslessly
//! to and from `SparseTriples` (modulo explicit zeros for padded formats such
//! as DIA and ELL).

#![warn(missing_docs)]

pub mod baselines;
pub mod bcsr;
pub mod coo;
pub mod coo_tensor;
pub mod csc;
pub mod csf;
pub mod csr;
pub mod dia;
pub mod dok;
pub mod ell;
pub mod jad;
pub mod radix;
pub mod skyline;
pub mod spmv;

pub use bcsr::BcsrMatrix;
pub use coo::CooMatrix;
pub use coo_tensor::CooTensor;
pub use csc::CscMatrix;
pub use csf::{CsfBuilder, CsfTensor};
pub use csr::CsrMatrix;
pub use dia::DiaMatrix;
pub use dok::DokMatrix;
pub use ell::EllMatrix;
pub use jad::JadMatrix;
pub use radix::{SortPath, SortStrategy};
pub use skyline::SkylineMatrix;

pub use sparse_tensor::{SparseTriples, TensorError, Value};
