//! The ELL (ELLPACK) format: up to one nonzero per row per slice (Figure 2d).

use sparse_tensor::{SparseTriples, TensorError, Value};

/// A sparse matrix in ELL format.
///
/// ELL stores `K` slices, where `K` is the maximum number of nonzeros in any
/// row. Slice `k` holds the `(k+1)`-th nonzero of every row, stored densely:
/// the column coordinate and value of row `i`'s entry in slice `k` live at
/// `crd[k * rows + i]` / `vals[k * rows + i]`. Rows with fewer than `K`
/// nonzeros are padded with column 0 / value 0, exactly like the layout in
/// Figure 2d.
#[derive(Debug, Clone, PartialEq)]
pub struct EllMatrix {
    rows: usize,
    cols: usize,
    slices: usize,
    crd: Vec<usize>,
    vals: Vec<Value>,
}

impl EllMatrix {
    /// Creates an ELL matrix from raw arrays.
    ///
    /// # Errors
    ///
    /// Returns an error if array lengths are not `slices * rows` or any
    /// column index is out of bounds.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        slices: usize,
        crd: Vec<usize>,
        vals: Vec<Value>,
    ) -> Result<Self, TensorError> {
        if crd.len() != slices * rows || vals.len() != slices * rows {
            return Err(TensorError::InvalidStructure(format!(
                "ELL arrays must have length {} (= K * rows), got {}/{}",
                slices * rows,
                crd.len(),
                vals.len()
            )));
        }
        if rows > 0 && crd.iter().any(|&j| j >= cols.max(1)) {
            return Err(TensorError::InvalidStructure(
                "ELL column index out of bounds".to_string(),
            ));
        }
        Ok(EllMatrix {
            rows,
            cols,
            slices,
            crd,
            vals,
        })
    }

    /// Builds an ELL matrix from canonical triples (reference construction).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not order 2.
    pub fn from_triples(t: &SparseTriples) -> Self {
        assert_eq!(t.order(), 2, "ELL matrices are order-2 tensors");
        let rows = t.shape().rows();
        let cols = t.shape().cols();
        let mut per_row = vec![0usize; rows];
        for tr in t.iter() {
            per_row[tr.coord[0] as usize] += 1;
        }
        let slices = per_row.iter().copied().max().unwrap_or(0);
        let mut crd = vec![0usize; slices * rows];
        let mut vals = vec![0.0; slices * rows];
        let mut fill = vec![0usize; rows];
        for tr in t.iter() {
            let i = tr.coord[0] as usize;
            let k = fill[i];
            fill[i] += 1;
            crd[k * rows + i] = tr.coord[1] as usize;
            vals[k * rows + i] = tr.value;
        }
        EllMatrix {
            rows,
            cols,
            slices,
            crd,
            vals,
        }
    }

    /// Converts back to canonical triples, skipping padding entries
    /// (zero-valued entries are treated as padding, as the format does not
    /// distinguish them).
    pub fn to_triples(&self) -> SparseTriples {
        let mut entries = Vec::new();
        for k in 0..self.slices {
            for i in 0..self.rows {
                let v = self.vals[k * self.rows + i];
                if v != 0.0 {
                    entries.push((i, self.crd[k * self.rows + i], v));
                }
            }
        }
        SparseTriples::from_matrix_entries(self.rows, self.cols, entries)
            .expect("stored coordinates are in bounds")
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of slices `K` (the maximum row nonzero count).
    pub fn slices(&self) -> usize {
        self.slices
    }

    /// The column coordinate array (`K * rows` entries, slice-major).
    pub fn crd(&self) -> &[usize] {
        &self.crd
    }

    /// The value array (`K * rows` entries, slice-major).
    pub fn values(&self) -> &[Value] {
        &self.vals
    }

    /// Number of non-padding entries.
    pub fn nnz(&self) -> usize {
        self.vals.iter().filter(|&&v| v != 0.0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_tensor::example::figure1_matrix;

    #[test]
    fn from_triples_matches_figure2d() {
        let ell = EllMatrix::from_triples(&figure1_matrix());
        assert_eq!(ell.slices(), 3);
        // Figure 2d: vals = 5 7 8 4 | 1 3 2 9 | 0 0 0 6
        assert_eq!(
            ell.values(),
            &[5.0, 7.0, 8.0, 4.0, 1.0, 3.0, 2.0, 9.0, 0.0, 0.0, 0.0, 6.0]
        );
        // Slice-major column coordinates; padded entries have column 0.
        assert_eq!(ell.crd(), &[0, 1, 0, 1, 1, 2, 2, 3, 0, 0, 0, 4]);
    }

    #[test]
    fn roundtrip_preserves_values() {
        let t = figure1_matrix();
        let ell = EllMatrix::from_triples(&t);
        assert!(ell.to_triples().same_values(&t));
        assert_eq!(ell.nnz(), 9);
    }

    #[test]
    fn from_parts_validates() {
        assert!(EllMatrix::from_parts(2, 2, 1, vec![0], vec![1.0, 2.0]).is_err());
        assert!(EllMatrix::from_parts(2, 2, 1, vec![0, 5], vec![1.0, 2.0]).is_err());
        let ok = EllMatrix::from_parts(2, 2, 1, vec![0, 1], vec![1.0, 2.0]).unwrap();
        assert_eq!(ok.slices(), 1);
        assert_eq!(ok.nnz(), 2);
    }

    #[test]
    fn empty_matrix_has_zero_slices() {
        let t = SparseTriples::new(sparse_tensor::Shape::matrix(3, 3));
        let ell = EllMatrix::from_triples(&t);
        assert_eq!(ell.slices(), 0);
        assert_eq!(ell.nnz(), 0);
        assert_eq!(ell.to_triples().nnz(), 0);
    }
}
