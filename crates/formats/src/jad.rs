//! The JAD (jagged diagonal) format (Saad 1989), referenced in Section 4.1:
//! rows are permuted by decreasing nonzero count, and the `k`-th nonzeros of
//! all rows form the `k`-th jagged diagonal.

use sparse_tensor::{SparseTriples, TensorError, Value};

/// A sparse matrix in jagged diagonal format.
///
/// `perm[r]` is the original row stored at permuted position `r` (rows are
/// ordered by decreasing nonzero count). Jagged diagonal `k` stores the
/// `(k+1)`-th nonzero of the first `len_k` permuted rows contiguously;
/// `jd_pos[k] .. jd_pos[k+1]` delimits it within `crd` / `vals`.
#[derive(Debug, Clone, PartialEq)]
pub struct JadMatrix {
    rows: usize,
    cols: usize,
    perm: Vec<usize>,
    jd_pos: Vec<usize>,
    crd: Vec<usize>,
    vals: Vec<Value>,
}

impl JadMatrix {
    /// Builds a JAD matrix from canonical triples (reference construction).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not order 2.
    pub fn from_triples(t: &SparseTriples) -> Self {
        assert_eq!(t.order(), 2, "JAD matrices are order-2 tensors");
        let rows = t.shape().rows();
        let cols = t.shape().cols();
        // Gather each row's (column, value) list in stored order.
        let mut row_entries: Vec<Vec<(usize, Value)>> = vec![Vec::new(); rows];
        for tr in t.iter() {
            row_entries[tr.coord[0] as usize].push((tr.coord[1] as usize, tr.value));
        }
        // Permute rows by decreasing nonzero count (stable, so ties keep
        // their original order).
        let mut perm: Vec<usize> = (0..rows).collect();
        perm.sort_by_key(|&i| std::cmp::Reverse(row_entries[i].len()));
        let max_len = row_entries.iter().map(Vec::len).max().unwrap_or(0);

        let mut jd_pos = vec![0usize; max_len + 1];
        let mut crd = Vec::new();
        let mut vals = Vec::new();
        for k in 0..max_len {
            for &orig in &perm {
                if let Some(&(j, v)) = row_entries[orig].get(k) {
                    crd.push(j);
                    vals.push(v);
                }
            }
            jd_pos[k + 1] = crd.len();
        }
        JadMatrix {
            rows,
            cols,
            perm,
            jd_pos,
            crd,
            vals,
        }
    }

    /// Creates a JAD matrix from raw arrays.
    ///
    /// # Errors
    ///
    /// Returns an error on inconsistent array lengths.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        perm: Vec<usize>,
        jd_pos: Vec<usize>,
        crd: Vec<usize>,
        vals: Vec<Value>,
    ) -> Result<Self, TensorError> {
        if perm.len() != rows {
            return Err(TensorError::InvalidStructure(
                "JAD perm length mismatch".into(),
            ));
        }
        if jd_pos.first() != Some(&0) || jd_pos.last() != Some(&crd.len()) {
            return Err(TensorError::InvalidStructure(
                "invalid JAD jd_pos array".into(),
            ));
        }
        if crd.len() != vals.len() {
            return Err(TensorError::InvalidStructure(
                "JAD crd/vals length mismatch".into(),
            ));
        }
        if crd.iter().any(|&j| j >= cols) {
            return Err(TensorError::InvalidStructure(
                "JAD column out of bounds".into(),
            ));
        }
        Ok(JadMatrix {
            rows,
            cols,
            perm,
            jd_pos,
            crd,
            vals,
        })
    }

    /// Converts back to canonical triples.
    pub fn to_triples(&self) -> SparseTriples {
        let mut entries = Vec::with_capacity(self.nnz());
        for k in 0..self.num_jagged_diagonals() {
            let len = self.jd_pos[k + 1] - self.jd_pos[k];
            for r in 0..len {
                let p = self.jd_pos[k] + r;
                entries.push((self.perm[r], self.crd[p], self.vals[p]));
            }
        }
        SparseTriples::from_matrix_entries(self.rows, self.cols, entries)
            .expect("stored coordinates are in bounds")
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of jagged diagonals (the maximum row nonzero count).
    pub fn num_jagged_diagonals(&self) -> usize {
        self.jd_pos.len() - 1
    }

    /// The row permutation (original row index per permuted position).
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// Offsets of each jagged diagonal within `crd` / `vals`.
    pub fn jd_pos(&self) -> &[usize] {
        &self.jd_pos
    }

    /// Column coordinates.
    pub fn crd(&self) -> &[usize] {
        &self.crd
    }

    /// Values.
    pub fn values(&self) -> &[Value] {
        &self.vals
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_tensor::example::figure1_matrix;

    #[test]
    fn builds_jagged_diagonals_by_decreasing_row_length() {
        let jad = JadMatrix::from_triples(&figure1_matrix());
        // Row 3 has 3 nonzeros and comes first; rows 0..2 have 2 each.
        assert_eq!(jad.perm(), &[3, 0, 1, 2]);
        assert_eq!(jad.num_jagged_diagonals(), 3);
        // Jagged diagonal lengths: 4, 4, 1.
        assert_eq!(jad.jd_pos(), &[0, 4, 8, 9]);
        assert_eq!(jad.nnz(), 9);
        // First jagged diagonal holds each row's first nonzero, permuted:
        // row3 -> (1,4), row0 -> (0,5), row1 -> (1,7), row2 -> (0,8).
        assert_eq!(&jad.crd()[0..4], &[1, 0, 1, 0]);
        assert_eq!(&jad.values()[0..4], &[4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn roundtrip_preserves_values() {
        let t = figure1_matrix();
        let jad = JadMatrix::from_triples(&t);
        assert!(jad.to_triples().same_values(&t));
    }

    #[test]
    fn from_parts_validates() {
        assert!(JadMatrix::from_parts(2, 2, vec![0], vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(JadMatrix::from_parts(2, 2, vec![0, 1], vec![1, 1], vec![0], vec![1.0]).is_err());
        assert!(JadMatrix::from_parts(2, 2, vec![0, 1], vec![0, 1], vec![7], vec![1.0]).is_err());
        let ok = JadMatrix::from_parts(2, 2, vec![0, 1], vec![0, 1], vec![0], vec![1.0]).unwrap();
        assert_eq!(ok.num_jagged_diagonals(), 1);
    }

    #[test]
    fn empty_matrix() {
        let t = SparseTriples::new(sparse_tensor::Shape::matrix(2, 2));
        let jad = JadMatrix::from_triples(&t);
        assert_eq!(jad.num_jagged_diagonals(), 0);
        assert_eq!(jad.to_triples().nnz(), 0);
    }
}
