//! MKL-style conversion baselines.
//!
//! Intel MKL's inspector-executor conversions produce matrices whose column
//! (or row) indices are sorted within each compressed segment, and its
//! conversion entry points go through an internal handle that copies the
//! input arrays. The ports below preserve those two properties — an extra
//! copy of the input plus per-segment sorting — which is what makes the MKL
//! columns of Table 3 slightly slower than SPARSKIT's on CSR-producing
//! conversions.

use crate::baselines::sparskit;
use crate::{CooMatrix, CscMatrix, CsrMatrix, DiaMatrix, EllMatrix};

/// Sorts the column indices (and values) within every row of a CSR matrix.
fn sort_rows(pos: &[usize], crd: &mut [usize], vals: &mut [f64]) {
    for w in pos.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let mut order: Vec<usize> = (lo..hi).collect();
        order.sort_by_key(|&p| crd[p]);
        let sorted_crd: Vec<usize> = order.iter().map(|&p| crd[p]).collect();
        let sorted_vals: Vec<f64> = order.iter().map(|&p| vals[p]).collect();
        crd[lo..hi].copy_from_slice(&sorted_crd);
        vals[lo..hi].copy_from_slice(&sorted_vals);
    }
}

/// MKL-style COO to CSR (`mkl_sparse_convert_csr` on a COO handle): copy the
/// input, histogram + scatter, then sort every row's column indices.
pub fn coo_to_csr(a: &CooMatrix) -> CsrMatrix {
    // The handle creation copies the user's arrays.
    let copy = a.clone();
    let csr = sparskit::coo_to_csr(&copy);
    let rows = csr.rows();
    let cols = csr.cols();
    let pos = csr.pos().to_vec();
    let mut crd = csr.crd().to_vec();
    let mut vals = csr.values().to_vec();
    sort_rows(&pos, &mut crd, &mut vals);
    CsrMatrix::from_parts(rows, cols, pos, crd, vals).expect("valid CSR structure")
}

/// MKL-style CSR to CSC: HALFPERM followed by per-column sorting of row
/// indices.
pub fn csr_to_csc(a: &CsrMatrix) -> CscMatrix {
    let csc = sparskit::csr_to_csc(a);
    let rows = csc.rows();
    let cols = csc.cols();
    let pos = csc.pos().to_vec();
    let mut crd = csc.crd().to_vec();
    let mut vals = csc.values().to_vec();
    sort_rows(&pos, &mut crd, &mut vals);
    CscMatrix::from_parts(rows, cols, pos, crd, vals).expect("valid CSC structure")
}

/// The dual of [`csr_to_csc`].
pub fn csc_to_csr(a: &CscMatrix) -> CsrMatrix {
    let csr = sparskit::csc_to_csr(a);
    let rows = csr.rows();
    let cols = csr.cols();
    let pos = csr.pos().to_vec();
    let mut crd = csr.crd().to_vec();
    let mut vals = csr.values().to_vec();
    sort_rows(&pos, &mut crd, &mut vals);
    CsrMatrix::from_parts(rows, cols, pos, crd, vals).expect("valid CSR structure")
}

/// MKL-style CSR to DIA (`mkl_?csrdia`): a counting pass over a `(2N-1)`-sized
/// distance histogram, a pass building the offset list, and a fill pass that
/// looks diagonals up through a dense distance-to-slot map. MKL additionally
/// materialises the intermediate distance map per conversion.
pub fn csr_to_dia(a: &CsrMatrix) -> DiaMatrix {
    let rows = a.rows();
    let cols = a.cols();
    let pos = a.pos();
    let crd = a.crd();
    let vals = a.values();
    let shift = rows as i64 - 1;
    let ndiag_max = rows + cols - 1;

    let mut present = vec![false; ndiag_max];
    for i in 0..rows {
        for p in pos[i]..pos[i + 1] {
            present[(crd[p] as i64 - i as i64 + shift) as usize] = true;
        }
    }
    let mut offsets = Vec::new();
    let mut slot_of = vec![usize::MAX; ndiag_max];
    for (d, &is_present) in present.iter().enumerate() {
        if is_present {
            slot_of[d] = offsets.len();
            offsets.push(d as i64 - shift);
        }
    }
    // MKL copies the handle's arrays before converting.
    let crd_copy = crd.to_vec();
    let vals_copy = vals.to_vec();
    let mut out_vals = vec![0.0; offsets.len() * rows];
    for i in 0..rows {
        for p in pos[i]..pos[i + 1] {
            let d = slot_of[(crd_copy[p] as i64 - i as i64 + shift) as usize];
            out_vals[d * rows + i] = vals_copy[p];
        }
    }
    DiaMatrix::from_parts(rows, cols, offsets, out_vals).expect("valid DIA structure")
}

/// COO to DIA via a CSR temporary (no direct MKL routine exists).
pub fn coo_to_dia(a: &CooMatrix) -> DiaMatrix {
    csr_to_dia(&coo_to_csr(a))
}

/// CSC to DIA via a CSR temporary (no direct MKL routine exists).
pub fn csc_to_dia(a: &CscMatrix) -> DiaMatrix {
    csr_to_dia(&csc_to_csr(a))
}

/// CSC to ELL via a CSR temporary and the SPARSKIT-style ELL fill (MKL has no
/// ELL conversion; the paper's MKL columns omit ELL targets, but the helper is
/// provided for completeness of the two-step path).
pub fn csc_to_ell(a: &CscMatrix) -> EllMatrix {
    sparskit::csr_to_ell(&csc_to_csr(a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_tensor::example::figure1_matrix;

    #[test]
    fn mkl_conversions_are_correct_and_sorted() {
        let t = figure1_matrix();
        let coo = CooMatrix::from_triples(&t);
        let csr = coo_to_csr(&coo);
        assert!(csr.has_sorted_rows());
        assert!(csr.to_triples().same_values(&t));

        let csc = csr_to_csc(&csr);
        assert!(csc.to_triples().same_values(&t));
        let back = csc_to_csr(&csc);
        assert!(back.to_triples().same_values(&t));

        assert!(csr_to_dia(&csr).to_triples().same_values(&t));
        assert!(coo_to_dia(&coo).to_triples().same_values(&t));
        assert!(csc_to_dia(&csc).to_triples().same_values(&t));
        assert!(csc_to_ell(&csc).to_triples().same_values(&t));
    }

    #[test]
    fn unsorted_input_rows_get_sorted() {
        // Build a COO with columns deliberately out of order within a row.
        let coo = CooMatrix::from_parts(
            2,
            4,
            vec![0, 0, 0, 1],
            vec![3, 1, 2, 0],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap();
        let csr = coo_to_csr(&coo);
        assert!(csr.has_sorted_rows());
        assert_eq!(csr.crd(), &[1, 2, 3, 0]);
        assert_eq!(csr.values(), &[2.0, 3.0, 1.0, 4.0]);
    }

    #[test]
    fn dia_matches_sparskit_result() {
        let t = figure1_matrix();
        let csr = CsrMatrix::from_triples(&t);
        let ours = csr_to_dia(&csr);
        let skit = crate::baselines::sparskit::csr_to_dia(&csr);
        assert_eq!(ours.offsets(), skit.offsets());
        assert_eq!(ours.values(), skit.values());
    }
}
