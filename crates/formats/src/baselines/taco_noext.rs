//! The "taco without extensions" baseline of Table 3.
//!
//! Without the paper's extensions, taco expresses COO→CSR conversion as the
//! tensor assignment `A(i,j) = B(i,j)`. Because its assembly machinery cannot
//! insert nonzeros into CSR out of order, the generated code must first sort
//! the input by coordinate, then append row by row — which is what makes it
//! roughly 20x slower than the histogram-based routine in the paper's
//! measurements. This module reproduces that algorithm.

use crate::{CooMatrix, CsrMatrix};

/// COO to CSR by sorting the nonzeros lexicographically and then appending
/// them in order (the pre-extension taco strategy).
pub fn coo_to_csr(a: &CooMatrix) -> CsrMatrix {
    let rows = a.rows();
    let nnz = a.nnz();

    // Materialise and sort (row, col, position) tuples; the value array is
    // gathered afterwards, mirroring taco's coordinate-sort preprocessing.
    let mut order: Vec<(usize, usize, usize)> = a
        .row_indices()
        .iter()
        .zip(a.col_indices())
        .enumerate()
        .map(|(p, (&i, &j))| (i, j, p))
        .collect();
    order.sort();

    // Append-only CSR assembly over the sorted stream.
    let mut pos = vec![0usize; rows + 1];
    let mut crd = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    let src_vals = a.values();
    for &(i, j, p) in &order {
        crd.push(j);
        vals.push(src_vals[p]);
        pos[i + 1] += 1;
    }
    for i in 0..rows {
        pos[i + 1] += pos[i];
    }
    CsrMatrix::from_parts(rows, a.cols(), pos, crd, vals)
        .expect("sorted assembly produces a valid CSR structure")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_tensor::example::figure1_matrix;

    #[test]
    fn sorted_assembly_matches_reference() {
        let t = figure1_matrix();
        let coo = CooMatrix::from_triples(&t);
        let csr = coo_to_csr(&coo);
        assert_eq!(csr.pos(), CsrMatrix::from_triples(&t).pos());
        assert!(csr.to_triples().same_values(&t));
        assert!(csr.has_sorted_rows());
    }

    #[test]
    fn handles_unsorted_input() {
        let t = figure1_matrix();
        let mut coo = CooMatrix::from_triples(&t);
        let mut state = 99usize;
        coo.shuffle_with(|bound| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state % bound
        });
        let csr = coo_to_csr(&coo);
        assert!(csr.to_triples().same_values(&t));
        assert!(csr.has_sorted_rows());
    }
}
