//! Rust ports of the SPARSKIT conversion routines used in Section 7.
//!
//! The ports follow the FORMATS module of SPARSKIT (Saad, 1994): `coocsr`,
//! `csrcsc`, `csrdia`, and `csrell`, plus the two-step paths through a CSR
//! temporary that an application must use for combinations the library does
//! not support directly.

use sparse_tensor::Value;

use crate::{CooMatrix, CscMatrix, CsrMatrix, DiaMatrix, EllMatrix};

/// SPARSKIT `coocsr`: COO to CSR by row histogram + scatter (a Gustavson
/// HALFPERM variant). The input need not be sorted.
pub fn coo_to_csr(a: &CooMatrix) -> CsrMatrix {
    let rows = a.rows();
    let nnz = a.nnz();
    let row = a.row_indices();
    let col = a.col_indices();
    let vals = a.values();

    let mut pos = vec![0usize; rows + 1];
    for &i in row {
        pos[i + 1] += 1;
    }
    for i in 0..rows {
        pos[i + 1] += pos[i];
    }
    let mut next = pos.clone();
    let mut out_crd = vec![0usize; nnz];
    let mut out_vals = vec![0.0; nnz];
    for p in 0..nnz {
        let i = row[p];
        let q = next[i];
        next[i] += 1;
        out_crd[q] = col[p];
        out_vals[q] = vals[p];
    }
    CsrMatrix::from_parts(rows, a.cols(), pos, out_crd, out_vals)
        .expect("coocsr produces a valid CSR structure")
}

/// SPARSKIT `csrcsc` (Gustavson's HALFPERM): CSR to CSC by column histogram +
/// scatter.
pub fn csr_to_csc(a: &CsrMatrix) -> CscMatrix {
    let rows = a.rows();
    let cols = a.cols();
    let nnz = a.nnz();
    let pos = a.pos();
    let crd = a.crd();
    let vals = a.values();

    let mut out_pos = vec![0usize; cols + 1];
    for &j in crd {
        out_pos[j + 1] += 1;
    }
    for j in 0..cols {
        out_pos[j + 1] += out_pos[j];
    }
    let mut next = out_pos.clone();
    let mut out_crd = vec![0usize; nnz];
    let mut out_vals = vec![0.0; nnz];
    for i in 0..rows {
        for p in pos[i]..pos[i + 1] {
            let j = crd[p];
            let q = next[j];
            next[j] += 1;
            out_crd[q] = i;
            out_vals[q] = vals[p];
        }
    }
    CscMatrix::from_parts(rows, cols, out_pos, out_crd, out_vals)
        .expect("csrcsc produces a valid CSC structure")
}

/// The dual of [`csr_to_csc`]: CSC to CSR by row histogram + scatter.
pub fn csc_to_csr(a: &CscMatrix) -> CsrMatrix {
    let rows = a.rows();
    let cols = a.cols();
    let nnz = a.nnz();
    let pos = a.pos();
    let crd = a.crd();
    let vals = a.values();

    let mut out_pos = vec![0usize; rows + 1];
    for &i in crd {
        out_pos[i + 1] += 1;
    }
    for i in 0..rows {
        out_pos[i + 1] += out_pos[i];
    }
    let mut next = out_pos.clone();
    let mut out_crd = vec![0usize; nnz];
    let mut out_vals = vec![0.0; nnz];
    for j in 0..cols {
        for p in pos[j]..pos[j + 1] {
            let i = crd[p];
            let q = next[i];
            next[i] += 1;
            out_crd[q] = j;
            out_vals[q] = vals[p];
        }
    }
    CsrMatrix::from_parts(rows, cols, out_pos, out_crd, out_vals)
        .expect("csccsr produces a valid CSR structure")
}

/// SPARSKIT `csrdia`: CSR to DIA.
///
/// SPARSKIT supports extracting only the `idiag` densest diagonals; its
/// selection repeatedly scans the per-diagonal counts to find the current
/// maximum, and its fill loop searches the selected-offset list for every
/// nonzero. The paper attributes SPARSKIT's ~2x slowdown on this conversion
/// to that algorithm, so the port keeps both behaviours (with `idiag` set to
/// "all nonzero diagonals", as in the evaluation).
// Keeps the Fortran `infdia` loop structure of the original.
#[allow(clippy::needless_range_loop)]
pub fn csr_to_dia(a: &CsrMatrix) -> DiaMatrix {
    let rows = a.rows();
    let cols = a.cols();
    let pos = a.pos();
    let crd = a.crd();
    let vals = a.values();
    let ndiag_max = rows + cols - 1;
    let shift = rows as i64 - 1;

    // Count nonzeros per diagonal (SPARSKIT's `infdia`).
    let mut counts = vec![0usize; ndiag_max];
    for i in 0..rows {
        for p in pos[i]..pos[i + 1] {
            let k = crd[p] as i64 - i as i64 + shift;
            counts[k as usize] += 1;
        }
    }
    let idiag = counts.iter().filter(|&&c| c > 0).count();

    // Densest-diagonal selection by repeated linear scans (inefficient on
    // purpose: this is the algorithm the paper measures).
    let mut remaining = counts.clone();
    let mut offsets: Vec<i64> = Vec::with_capacity(idiag);
    for _ in 0..idiag {
        let mut best = 0usize;
        let mut best_count = 0usize;
        for (d, &c) in remaining.iter().enumerate() {
            if c > best_count {
                best = d;
                best_count = c;
            }
        }
        remaining[best] = 0;
        offsets.push(best as i64 - shift);
    }
    offsets.sort_unstable();

    // Fill: for every nonzero, find its diagonal by scanning the offset list
    // (SPARSKIT scans the `ioff` array per nonzero).
    let mut out_vals = vec![0.0; idiag * rows];
    for i in 0..rows {
        for p in pos[i]..pos[i + 1] {
            let k = crd[p] as i64 - i as i64;
            let mut d = usize::MAX;
            for (n, &off) in offsets.iter().enumerate() {
                if off == k {
                    d = n;
                    break;
                }
            }
            debug_assert_ne!(d, usize::MAX, "every nonzero diagonal was selected");
            out_vals[d * rows + i] = vals[p];
        }
    }
    DiaMatrix::from_parts(rows, cols, offsets, out_vals)
        .expect("csrdia produces a valid DIA structure")
}

/// SPARSKIT `csrell`: CSR to ELL.
///
/// SPARSKIT takes caller-allocated output arrays and initialises them with an
/// explicit pass (the paper credits the generated code's use of `calloc` for
/// part of its speedup), so the port allocates and then explicitly zero-fills
/// before scattering.
// Keeps the Fortran `csrell` counter loop of the original.
#[allow(clippy::explicit_counter_loop)]
pub fn csr_to_ell(a: &CsrMatrix) -> EllMatrix {
    let rows = a.rows();
    let pos = a.pos();
    let crd = a.crd();
    let vals = a.values();

    let mut k = 0usize;
    for i in 0..rows {
        k = k.max(pos[i + 1] - pos[i]);
    }
    let len = k * rows;
    // Caller-style allocation followed by an explicit initialisation pass.
    let mut out_crd: Vec<usize> = Vec::with_capacity(len);
    let mut out_vals: Vec<Value> = Vec::with_capacity(len);
    out_crd.resize(len, usize::MAX);
    out_vals.resize(len, f64::NAN);
    for slot in out_crd.iter_mut() {
        *slot = 0;
    }
    for slot in out_vals.iter_mut() {
        *slot = 0.0;
    }
    for i in 0..rows {
        let mut count = 0usize;
        for p in pos[i]..pos[i + 1] {
            out_crd[count * rows + i] = crd[p];
            out_vals[count * rows + i] = vals[p];
            count += 1;
        }
    }
    EllMatrix::from_parts(rows, a.cols(), k, out_crd, out_vals)
        .expect("csrell produces a valid ELL structure")
}

/// COO to DIA via a CSR temporary (SPARSKIT has no direct routine).
pub fn coo_to_dia(a: &CooMatrix) -> DiaMatrix {
    csr_to_dia(&coo_to_csr(a))
}

/// COO to ELL via a CSR temporary (SPARSKIT has no direct routine).
pub fn coo_to_ell(a: &CooMatrix) -> EllMatrix {
    csr_to_ell(&coo_to_csr(a))
}

/// CSC to DIA via a CSR temporary (SPARSKIT has no direct routine).
pub fn csc_to_dia(a: &CscMatrix) -> DiaMatrix {
    csr_to_dia(&csc_to_csr(a))
}

/// CSC to ELL via a CSR temporary (SPARSKIT has no direct routine).
pub fn csc_to_ell(a: &CscMatrix) -> EllMatrix {
    csr_to_ell(&csc_to_csr(a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_tensor::example::figure1_matrix;

    #[test]
    fn coocsr_matches_reference() {
        let t = figure1_matrix();
        let coo = CooMatrix::from_triples(&t);
        let csr = coo_to_csr(&coo);
        assert_eq!(csr.pos(), CsrMatrix::from_triples(&t).pos());
        assert!(csr.to_triples().same_values(&t));
    }

    #[test]
    fn csrcsc_and_back_are_inverses() {
        let t = figure1_matrix();
        let csr = CsrMatrix::from_triples(&t);
        let csc = csr_to_csc(&csr);
        assert!(csc.to_triples().same_values(&t));
        let back = csc_to_csr(&csc);
        assert!(back.to_triples().same_values(&t));
        assert_eq!(back.pos(), csr.pos());
    }

    #[test]
    fn csrdia_selects_all_nonzero_diagonals() {
        let t = figure1_matrix();
        let dia = csr_to_dia(&CsrMatrix::from_triples(&t));
        assert_eq!(dia.offsets(), &[-2, 0, 1]);
        assert!(dia.to_triples().same_values(&t));
    }

    #[test]
    fn csrell_matches_reference_layout() {
        let t = figure1_matrix();
        let ell = csr_to_ell(&CsrMatrix::from_triples(&t));
        let reference = EllMatrix::from_triples(&t);
        assert_eq!(ell.slices(), reference.slices());
        assert_eq!(ell.crd(), reference.crd());
        assert_eq!(ell.values(), reference.values());
    }

    #[test]
    fn two_step_paths_produce_correct_results() {
        let t = figure1_matrix();
        let coo = CooMatrix::from_triples(&t);
        let csc = CscMatrix::from_triples(&t);
        assert!(coo_to_dia(&coo).to_triples().same_values(&t));
        assert!(coo_to_ell(&coo).to_triples().same_values(&t));
        assert!(csc_to_dia(&csc).to_triples().same_values(&t));
        assert!(csc_to_ell(&csc).to_triples().same_values(&t));
    }

    #[test]
    fn unsorted_coo_input_is_handled() {
        let t = figure1_matrix();
        let mut coo = CooMatrix::from_triples(&t);
        let mut state = 7usize;
        coo.shuffle_with(|bound| {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            state % bound
        });
        assert!(coo_to_csr(&coo).to_triples().same_values(&t));
        assert!(coo_to_dia(&coo).to_triples().same_values(&t));
    }
}
