//! Library-style baseline conversion routines.
//!
//! The paper's evaluation (Section 7) compares generated conversion routines
//! against SPARSKIT, Intel MKL, and taco without the paper's extensions.
//! None of those artifacts can be linked here, so this module ports their
//! *documented algorithms* to Rust, preserving the algorithmic properties the
//! paper's comparison rests on:
//!
//! * [`sparskit`] — Gustavson-style COO→CSR and CSR→CSC (HALFPERM), CSR→ELL
//!   with separately initialised user buffers, and CSR→DIA with the
//!   inefficient densest-diagonal selection the paper calls out. Conversions
//!   the library does not support directly (COO/CSC → DIA/ELL) go through a
//!   CSR temporary, exactly as described in Sections 1 and 7.
//! * [`mkl`] — MKL-style variants that additionally keep column indices
//!   sorted within each row/column (matrices handed to MKL kernels are
//!   expected sorted), which costs extra passes.
//! * [`taco_noext`] — the "taco without extensions" path of Table 3:
//!   conversion expressed as tensor assignment, which must sort the input
//!   before assembling because it cannot insert out of order.

pub mod mkl;
pub mod sparskit;
pub mod taco_noext;
