//! The skyline (SKY / variable-band) format used by Intel MKL, which stores,
//! for every row of a square matrix, all components from the row's first
//! nonzero up to and including the diagonal (the *banded* level format of
//! Figure 11, bottom).

use sparse_tensor::{SparseTriples, TensorError, Value};

/// A square sparse matrix's lower triangle in skyline format.
///
/// Row `i` stores the dense run of values from column `first[i]` (the column
/// of the row's first nonzero, clamped to the diagonal) through column `i`;
/// the run for row `i` lives at `vals[pos[i] .. pos[i+1]]`. Entries of the
/// strict upper triangle are ignored.
#[derive(Debug, Clone, PartialEq)]
pub struct SkylineMatrix {
    n: usize,
    pos: Vec<usize>,
    first: Vec<usize>,
    vals: Vec<Value>,
}

impl SkylineMatrix {
    /// Builds a skyline matrix from the lower triangle of canonical triples.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not a square order-2 tensor.
    pub fn from_triples(t: &SparseTriples) -> Self {
        assert_eq!(t.order(), 2, "skyline matrices are order-2 tensors");
        let n = t.shape().rows();
        assert_eq!(n, t.shape().cols(), "skyline matrices must be square");
        // min(j) per row over the lower triangle; rows without lower-triangle
        // nonzeros get an empty run starting at the diagonal.
        let mut first: Vec<usize> = (0..n).collect();
        for tr in t.iter() {
            let (i, j) = (tr.coord[0] as usize, tr.coord[1] as usize);
            if j <= i {
                first[i] = first[i].min(j);
            }
        }
        let mut pos = vec![0usize; n + 1];
        for i in 0..n {
            pos[i + 1] = pos[i] + (i - first[i] + 1);
        }
        let mut vals = vec![0.0; pos[n]];
        for tr in t.iter() {
            let (i, j) = (tr.coord[0] as usize, tr.coord[1] as usize);
            if j <= i {
                vals[pos[i] + (j - first[i])] = tr.value;
            }
        }
        SkylineMatrix {
            n,
            pos,
            first,
            vals,
        }
    }

    /// Creates a skyline matrix from raw arrays.
    ///
    /// # Errors
    ///
    /// Returns an error on inconsistent arrays.
    pub fn from_parts(
        n: usize,
        pos: Vec<usize>,
        first: Vec<usize>,
        vals: Vec<Value>,
    ) -> Result<Self, TensorError> {
        if pos.len() != n + 1 || first.len() != n {
            return Err(TensorError::InvalidStructure(
                "invalid skyline array lengths".into(),
            ));
        }
        for i in 0..n {
            if first[i] > i {
                return Err(TensorError::InvalidStructure(format!(
                    "skyline first[{i}] = {} exceeds the diagonal",
                    first[i]
                )));
            }
            if pos[i + 1] - pos[i] != i - first[i] + 1 {
                return Err(TensorError::InvalidStructure(format!(
                    "skyline row {i} run length mismatch"
                )));
            }
        }
        if vals.len() != pos[n] {
            return Err(TensorError::InvalidStructure(
                "skyline vals length mismatch".into(),
            ));
        }
        Ok(SkylineMatrix {
            n,
            pos,
            first,
            vals,
        })
    }

    /// Converts back to canonical triples (lower triangle only, skipping
    /// stored zeros).
    pub fn to_triples(&self) -> SparseTriples {
        let mut entries = Vec::new();
        for i in 0..self.n {
            for j in self.first[i]..=i {
                let v = self.vals[self.pos[i] + (j - self.first[i])];
                if v != 0.0 {
                    entries.push((i, j, v));
                }
            }
        }
        SparseTriples::from_matrix_entries(self.n, self.n, entries)
            .expect("stored coordinates are in bounds")
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The row run offsets.
    pub fn pos(&self) -> &[usize] {
        &self.pos
    }

    /// The first stored column of every row.
    pub fn first(&self) -> &[usize] {
        &self.first
    }

    /// The stored values (including explicit zeros inside each row's run).
    pub fn values(&self) -> &[Value] {
        &self.vals
    }

    /// Number of stored slots, including explicit zeros inside the profile.
    pub fn stored_len(&self) -> usize {
        self.vals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower_example() -> SparseTriples {
        SparseTriples::from_matrix_entries(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (1, 1, 2.0),
                (2, 0, 3.0),
                (2, 2, 4.0),
                (3, 2, 5.0),
                (3, 3, 6.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn stores_profile_between_first_nonzero_and_diagonal() {
        let sky = SkylineMatrix::from_triples(&lower_example());
        assert_eq!(sky.first(), &[0, 1, 0, 2]);
        assert_eq!(sky.pos(), &[0, 1, 2, 5, 7]);
        // Row 2 stores columns 0..=2 including the explicit zero at (2,1).
        assert_eq!(&sky.values()[2..5], &[3.0, 0.0, 4.0]);
        assert_eq!(sky.stored_len(), 7);
    }

    #[test]
    fn roundtrip_preserves_lower_triangle() {
        let t = lower_example();
        let sky = SkylineMatrix::from_triples(&t);
        assert!(sky.to_triples().same_values(&t));
    }

    #[test]
    fn upper_triangle_entries_are_ignored() {
        let t = SparseTriples::from_matrix_entries(3, 3, vec![(0, 2, 9.0), (2, 1, 1.0)]).unwrap();
        let sky = SkylineMatrix::from_triples(&t);
        let lower = SparseTriples::from_matrix_entries(3, 3, vec![(2, 1, 1.0)]).unwrap();
        assert!(sky.to_triples().same_values(&lower));
    }

    #[test]
    fn from_parts_validates() {
        assert!(SkylineMatrix::from_parts(2, vec![0, 1], vec![0, 1], vec![1.0]).is_err());
        assert!(SkylineMatrix::from_parts(2, vec![0, 1, 2], vec![0, 2], vec![1.0, 2.0]).is_err());
        assert!(SkylineMatrix::from_parts(2, vec![0, 2, 3], vec![0, 1], vec![1.0, 2.0]).is_err());
        let ok = SkylineMatrix::from_parts(2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).unwrap();
        assert_eq!(ok.dim(), 2);
    }

    #[test]
    #[should_panic]
    fn non_square_panics() {
        let t = SparseTriples::from_matrix_entries(2, 3, vec![(0, 0, 1.0)]).unwrap();
        SkylineMatrix::from_triples(&t);
    }
}
