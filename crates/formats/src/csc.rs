//! The CSC (compressed sparse column) format: the column-major dual of CSR.

use sparse_tensor::{SparseTriples, TensorError, Value};

/// A sparse matrix in CSC format.
///
/// `pos` has `cols + 1` entries; the row coordinates and values of column `j`
/// are stored at positions `pos[j] .. pos[j+1]` of `crd` / `vals`.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    pos: Vec<usize>,
    crd: Vec<usize>,
    vals: Vec<Value>,
}

impl CscMatrix {
    /// Creates a CSC matrix from raw arrays, validating the structure.
    ///
    /// # Errors
    ///
    /// Returns an error under the same conditions as
    /// [`crate::CsrMatrix::from_parts`], with rows and columns exchanged.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        pos: Vec<usize>,
        crd: Vec<usize>,
        vals: Vec<Value>,
    ) -> Result<Self, TensorError> {
        if pos.len() != cols + 1 {
            return Err(TensorError::InvalidStructure(format!(
                "CSC pos has length {}, expected {}",
                pos.len(),
                cols + 1
            )));
        }
        if pos[0] != 0 || *pos.last().expect("nonempty") != crd.len() {
            return Err(TensorError::InvalidStructure(
                "CSC pos must start at 0 and end at nnz".to_string(),
            ));
        }
        if pos.windows(2).any(|w| w[0] > w[1]) {
            return Err(TensorError::InvalidStructure(
                "CSC pos must be monotone".to_string(),
            ));
        }
        if crd.len() != vals.len() {
            return Err(TensorError::InvalidStructure(
                "CSC crd and vals must have equal length".to_string(),
            ));
        }
        if crd.iter().any(|&i| i >= rows) {
            return Err(TensorError::InvalidStructure(
                "CSC row index out of bounds".to_string(),
            ));
        }
        Ok(CscMatrix {
            rows,
            cols,
            pos,
            crd,
            vals,
        })
    }

    /// Builds a CSC matrix from canonical triples (reference construction).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not order 2.
    pub fn from_triples(t: &SparseTriples) -> Self {
        assert_eq!(t.order(), 2, "CSC matrices are order-2 tensors");
        let rows = t.shape().rows();
        let cols = t.shape().cols();
        let mut count = vec![0usize; cols];
        for triple in t.iter() {
            count[triple.coord[1] as usize] += 1;
        }
        let mut pos = vec![0usize; cols + 1];
        for j in 0..cols {
            pos[j + 1] = pos[j] + count[j];
        }
        let mut next = pos.clone();
        let mut crd = vec![0usize; t.nnz()];
        let mut vals = vec![0.0; t.nnz()];
        for triple in t.iter() {
            let j = triple.coord[1] as usize;
            let p = next[j];
            next[j] += 1;
            crd[p] = triple.coord[0] as usize;
            vals[p] = triple.value;
        }
        CscMatrix {
            rows,
            cols,
            pos,
            crd,
            vals,
        }
    }

    /// Converts back to canonical triples in stored (column-grouped) order.
    pub fn to_triples(&self) -> SparseTriples {
        let mut entries = Vec::with_capacity(self.nnz());
        for j in 0..self.cols {
            for p in self.pos[j]..self.pos[j + 1] {
                entries.push((self.crd[p], j, self.vals[p]));
            }
        }
        SparseTriples::from_matrix_entries(self.rows, self.cols, entries)
            .expect("stored coordinates are in bounds")
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.crd.len()
    }

    /// The `pos` array (length `cols + 1`).
    pub fn pos(&self) -> &[usize] {
        &self.pos
    }

    /// The row coordinate array.
    pub fn crd(&self) -> &[usize] {
        &self.crd
    }

    /// The value array.
    pub fn values(&self) -> &[Value] {
        &self.vals
    }

    /// Number of nonzeros stored in column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col_nnz(&self, j: usize) -> usize {
        self.pos[j + 1] - self.pos[j]
    }

    /// Iterates over the `(row, value)` pairs of column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> impl Iterator<Item = (usize, Value)> + '_ {
        (self.pos[j]..self.pos[j + 1]).map(move |p| (self.crd[p], self.vals[p]))
    }

    /// Iterates over `(row, col, value)` in stored (column-major) order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, Value)> + '_ {
        (0..self.cols).flat_map(move |j| self.col(j).map(move |(i, v)| (i, j, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_tensor::example::figure1_matrix;

    #[test]
    fn from_triples_groups_by_column() {
        let csc = CscMatrix::from_triples(&figure1_matrix());
        // Column nonzero counts of the example matrix: [2, 3, 2, 1, 1, 0].
        assert_eq!(csc.pos(), &[0, 2, 5, 7, 8, 9, 9]);
        assert_eq!(csc.crd(), &[0, 2, 0, 1, 3, 1, 2, 3, 3]);
        assert_eq!(csc.col_nnz(1), 3);
        assert_eq!(csc.col_nnz(5), 0);
    }

    #[test]
    fn roundtrip_preserves_values() {
        let t = figure1_matrix();
        let csc = CscMatrix::from_triples(&t);
        assert!(csc.to_triples().same_values(&t));
    }

    #[test]
    fn from_parts_validates_structure() {
        assert!(CscMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CscMatrix::from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
        assert!(CscMatrix::from_parts(2, 2, vec![0, 1, 1], vec![3], vec![1.0]).is_err());
        let ok = CscMatrix::from_parts(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0, 2.0]).unwrap();
        assert_eq!(ok.nnz(), 2);
        assert_eq!(ok.iter().count(), 2);
    }

    #[test]
    fn csc_equals_transposed_csr_of_transpose() {
        let t = figure1_matrix();
        let csc = CscMatrix::from_triples(&t);
        let csr_of_transpose = crate::CsrMatrix::from_triples(&t.permute_dims(&[1, 0]));
        assert_eq!(csc.pos(), csr_of_transpose.pos());
        assert_eq!(csc.crd(), csr_of_transpose.crd());
        assert_eq!(csc.values(), csr_of_transpose.values());
    }
}
