//! The COO (coordinate) format: parallel row / column / value arrays
//! (Figure 2a).

use sparse_tensor::{SparseTriples, TensorError, Value};

/// A sparse matrix in COO format.
///
/// COO stores the complete coordinates of every nonzero, which makes appends
/// cheap (the format applications use to *import* data, cf. Section 1) but
/// wastes memory on redundant row coordinates. Nonzeros are not required to
/// be sorted; [`CooMatrix::is_sorted`] reports whether they are.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    row: Vec<usize>,
    col: Vec<usize>,
    vals: Vec<Value>,
}

impl CooMatrix {
    /// Creates an empty COO matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            row: Vec::new(),
            col: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates a COO matrix from parallel arrays.
    ///
    /// # Errors
    ///
    /// Returns an error if the arrays have different lengths or any
    /// coordinate is out of bounds.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row: Vec<usize>,
        col: Vec<usize>,
        vals: Vec<Value>,
    ) -> Result<Self, TensorError> {
        if row.len() != col.len() || row.len() != vals.len() {
            return Err(TensorError::InvalidStructure(format!(
                "COO arrays have mismatched lengths {}/{}/{}",
                row.len(),
                col.len(),
                vals.len()
            )));
        }
        for (&i, &j) in row.iter().zip(&col) {
            if i >= rows || j >= cols {
                return Err(TensorError::InvalidStructure(format!(
                    "COO coordinate ({i},{j}) out of bounds for {rows}x{cols}"
                )));
            }
        }
        Ok(CooMatrix {
            rows,
            cols,
            row,
            col,
            vals,
        })
    }

    /// Builds a COO matrix from canonical triples, preserving their order.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not order 2.
    pub fn from_triples(t: &SparseTriples) -> Self {
        assert_eq!(t.order(), 2, "COO matrices are order-2 tensors");
        let mut m = CooMatrix::new(t.shape().rows(), t.shape().cols());
        for triple in t.iter() {
            m.push(
                triple.coord[0] as usize,
                triple.coord[1] as usize,
                triple.value,
            );
        }
        m
    }

    /// Converts back to canonical triples, preserving stored order.
    pub fn to_triples(&self) -> SparseTriples {
        SparseTriples::from_matrix_entries(self.rows, self.cols, self.iter().collect::<Vec<_>>())
            .expect("stored coordinates are in bounds")
    }

    /// Appends a nonzero.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn push(&mut self, i: usize, j: usize, v: Value) {
        assert!(
            i < self.rows && j < self.cols,
            "coordinate ({i},{j}) out of bounds"
        );
        self.row.push(i);
        self.col.push(j);
        self.vals.push(v);
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Row coordinate array.
    pub fn row_indices(&self) -> &[usize] {
        &self.row
    }

    /// Column coordinate array.
    pub fn col_indices(&self) -> &[usize] {
        &self.col
    }

    /// Value array.
    pub fn values(&self) -> &[Value] {
        &self.vals
    }

    /// Iterates over `(row, col, value)` in stored order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, Value)> + '_ {
        self.row
            .iter()
            .zip(&self.col)
            .zip(&self.vals)
            .map(|((&i, &j), &v)| (i, j, v))
    }

    /// True when nonzeros are sorted lexicographically by (row, column).
    pub fn is_sorted(&self) -> bool {
        (1..self.nnz()).all(|p| (self.row[p - 1], self.col[p - 1]) <= (self.row[p], self.col[p]))
    }

    /// Sorts nonzeros lexicographically by (row, column), stably.
    pub fn sort(&mut self) {
        let mut order: Vec<usize> = (0..self.nnz()).collect();
        order.sort_by_key(|&p| (self.row[p], self.col[p]));
        self.row = order.iter().map(|&p| self.row[p]).collect();
        self.col = order.iter().map(|&p| self.col[p]).collect();
        self.vals = order.iter().map(|&p| self.vals[p]).collect();
    }

    /// Randomly permutes the stored nonzeros (used by benchmarks to model
    /// unsorted COO input, which the paper's evaluation does not assume to be
    /// sorted).
    pub fn shuffle_with(&mut self, mut next: impl FnMut(usize) -> usize) {
        // Fisher-Yates with an injected random source to avoid a `rand`
        // dependency in this crate.
        for p in (1..self.nnz()).rev() {
            let q = next(p + 1);
            debug_assert!(q <= p);
            self.row.swap(p, q);
            self.col.swap(p, q);
            self.vals.swap(p, q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_tensor::example::figure1_matrix;

    #[test]
    fn from_triples_roundtrips() {
        let t = figure1_matrix();
        let coo = CooMatrix::from_triples(&t);
        assert_eq!(coo.nnz(), 9);
        assert_eq!(coo.rows(), 4);
        assert_eq!(coo.cols(), 6);
        assert!(coo.is_sorted());
        assert!(coo.to_triples().same_values(&t));
    }

    #[test]
    fn from_parts_validates() {
        assert!(CooMatrix::from_parts(2, 2, vec![0], vec![0, 1], vec![1.0]).is_err());
        assert!(CooMatrix::from_parts(2, 2, vec![2], vec![0], vec![1.0]).is_err());
        let m = CooMatrix::from_parts(2, 2, vec![0, 1], vec![1, 0], vec![1.0, 2.0]).unwrap();
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn sort_orders_rows_then_columns() {
        let mut m = CooMatrix::new(3, 3);
        m.push(2, 0, 1.0);
        m.push(0, 1, 2.0);
        m.push(0, 0, 3.0);
        assert!(!m.is_sorted());
        m.sort();
        assert!(m.is_sorted());
        assert_eq!(m.row_indices(), &[0, 0, 2]);
        assert_eq!(m.col_indices(), &[0, 1, 0]);
        assert_eq!(m.values(), &[3.0, 2.0, 1.0]);
    }

    #[test]
    fn shuffle_preserves_contents() {
        let t = figure1_matrix();
        let mut coo = CooMatrix::from_triples(&t);
        let mut state = 12345usize;
        coo.shuffle_with(|bound| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state % bound
        });
        assert!(coo.to_triples().same_values(&t));
    }

    #[test]
    #[should_panic]
    fn push_out_of_bounds_panics() {
        CooMatrix::new(2, 2).push(2, 0, 1.0);
    }
}
