//! Sparse matrix-vector multiplication kernels for every format.
//!
//! SpMV is the motivating workload of Section 1: the reason applications
//! convert between formats at all is that SpMV is much faster on CSR / DIA /
//! ELL than on COO, while COO / DOK are much faster to build. These kernels
//! are used by the `spmv_pipeline` example and by tests that confirm every
//! conversion preserves the operator (A·x is identical before and after).

use sparse_tensor::Value;

use crate::{BcsrMatrix, CooMatrix, CscMatrix, CsrMatrix, DiaMatrix, EllMatrix};

/// `y = A x` for a COO matrix.
///
/// # Panics
///
/// Panics if `x.len() != a.cols()`.
pub fn spmv_coo(a: &CooMatrix, x: &[Value]) -> Vec<Value> {
    assert_eq!(x.len(), a.cols(), "vector length mismatch");
    let mut y = vec![0.0; a.rows()];
    for (i, j, v) in a.iter() {
        y[i] += v * x[j];
    }
    y
}

/// `y = A x` for a CSR matrix.
///
/// # Panics
///
/// Panics if `x.len() != a.cols()`.
pub fn spmv_csr(a: &CsrMatrix, x: &[Value]) -> Vec<Value> {
    assert_eq!(x.len(), a.cols(), "vector length mismatch");
    let mut y = vec![0.0; a.rows()];
    let pos = a.pos();
    let crd = a.crd();
    let vals = a.values();
    for i in 0..a.rows() {
        let mut acc = 0.0;
        for p in pos[i]..pos[i + 1] {
            acc += vals[p] * x[crd[p]];
        }
        y[i] = acc;
    }
    y
}

/// `y = A x` for a CSC matrix.
///
/// # Panics
///
/// Panics if `x.len() != a.cols()`.
pub fn spmv_csc(a: &CscMatrix, x: &[Value]) -> Vec<Value> {
    assert_eq!(x.len(), a.cols(), "vector length mismatch");
    let mut y = vec![0.0; a.rows()];
    let pos = a.pos();
    let crd = a.crd();
    let vals = a.values();
    for j in 0..a.cols() {
        let xj = x[j];
        for p in pos[j]..pos[j + 1] {
            y[crd[p]] += vals[p] * xj;
        }
    }
    y
}

/// `y = A x` for a DIA matrix (vectorisation-friendly strip loops).
///
/// # Panics
///
/// Panics if `x.len() != a.cols()`.
pub fn spmv_dia(a: &DiaMatrix, x: &[Value]) -> Vec<Value> {
    assert_eq!(x.len(), a.cols(), "vector length mismatch");
    let rows = a.rows();
    let cols = a.cols() as i64;
    let mut y = vec![0.0; rows];
    let vals = a.values();
    for (d, &k) in a.offsets().iter().enumerate() {
        let i_lo = (-k).max(0) as usize;
        let i_hi = ((cols - k).min(rows as i64)).max(0) as usize;
        let strip = &vals[d * rows..(d + 1) * rows];
        for i in i_lo..i_hi {
            y[i] += strip[i] * x[(i as i64 + k) as usize];
        }
    }
    y
}

/// `y = A x` for an ELL matrix.
///
/// # Panics
///
/// Panics if `x.len() != a.cols()`.
pub fn spmv_ell(a: &EllMatrix, x: &[Value]) -> Vec<Value> {
    assert_eq!(x.len(), a.cols(), "vector length mismatch");
    let rows = a.rows();
    let mut y = vec![0.0; rows];
    let crd = a.crd();
    let vals = a.values();
    for k in 0..a.slices() {
        let base = k * rows;
        for i in 0..rows {
            y[i] += vals[base + i] * x[crd[base + i]];
        }
    }
    y
}

/// `y = A x` for a BCSR matrix.
///
/// # Panics
///
/// Panics if `x.len() != a.cols()`.
pub fn spmv_bcsr(a: &BcsrMatrix, x: &[Value]) -> Vec<Value> {
    assert_eq!(x.len(), a.cols(), "vector length mismatch");
    let (br, bc) = a.block_shape();
    let bsize = br * bc;
    let mut y = vec![0.0; a.rows()];
    let pos = a.pos();
    let crd = a.crd();
    let vals = a.values();
    for bi in 0..pos.len() - 1 {
        for p in pos[bi]..pos[bi + 1] {
            let bj = crd[p];
            for li in 0..br {
                let i = bi * br + li;
                if i >= a.rows() {
                    break;
                }
                let mut acc = 0.0;
                for lj in 0..bc {
                    let j = bj * bc + lj;
                    if j >= a.cols() {
                        break;
                    }
                    acc += vals[p * bsize + li * bc + lj] * x[j];
                }
                y[i] += acc;
            }
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_tensor::example::figure1_matrix;

    fn x6() -> Vec<Value> {
        vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
    }

    fn reference_y() -> Vec<Value> {
        figure1_matrix().to_dense().spmv(&x6())
    }

    #[test]
    fn all_formats_compute_the_same_product() {
        let t = figure1_matrix();
        let x = x6();
        let y = reference_y();
        assert_eq!(spmv_coo(&CooMatrix::from_triples(&t), &x), y);
        assert_eq!(spmv_csr(&CsrMatrix::from_triples(&t), &x), y);
        assert_eq!(spmv_csc(&CscMatrix::from_triples(&t), &x), y);
        assert_eq!(spmv_dia(&DiaMatrix::from_triples(&t), &x), y);
        assert_eq!(spmv_ell(&EllMatrix::from_triples(&t), &x), y);
        assert_eq!(spmv_bcsr(&BcsrMatrix::from_triples(&t, 2, 2), &x), y);
    }

    #[test]
    #[should_panic]
    fn wrong_vector_length_panics() {
        spmv_csr(&CsrMatrix::from_triples(&figure1_matrix()), &[1.0, 2.0]);
    }

    #[test]
    fn empty_matrix_products_are_zero() {
        let t = sparse_tensor::SparseTriples::new(sparse_tensor::Shape::matrix(3, 4));
        let x = vec![1.0; 4];
        assert_eq!(spmv_csr(&CsrMatrix::from_triples(&t), &x), vec![0.0; 3]);
        assert_eq!(spmv_dia(&DiaMatrix::from_triples(&t), &x), vec![0.0; 3]);
        assert_eq!(spmv_ell(&EllMatrix::from_triples(&t), &x), vec![0.0; 3]);
    }
}
