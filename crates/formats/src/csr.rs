//! The CSR (compressed sparse row) format: `pos` / `crd` / `vals` arrays
//! (Figure 2b).

use sparse_tensor::{SparseTriples, TensorError, Value};

/// A sparse matrix in CSR format.
///
/// `pos` has `rows + 1` entries; the column coordinates and values of row `i`
/// are stored at positions `pos[i] .. pos[i+1]` of `crd` / `vals`. Nonzeros
/// are grouped by row but are *not* required to be sorted by column within a
/// row (the paper's evaluation makes the same assumption).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    pos: Vec<usize>,
    crd: Vec<usize>,
    vals: Vec<Value>,
}

impl CsrMatrix {
    /// Creates a CSR matrix from raw arrays, validating the structure.
    ///
    /// # Errors
    ///
    /// Returns an error when `pos` is not a monotone array of length
    /// `rows + 1` starting at 0 and ending at `crd.len()`, when `crd` and
    /// `vals` lengths differ, or when any column index is out of bounds.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        pos: Vec<usize>,
        crd: Vec<usize>,
        vals: Vec<Value>,
    ) -> Result<Self, TensorError> {
        if pos.len() != rows + 1 {
            return Err(TensorError::InvalidStructure(format!(
                "CSR pos has length {}, expected {}",
                pos.len(),
                rows + 1
            )));
        }
        if pos[0] != 0 || *pos.last().expect("nonempty") != crd.len() {
            return Err(TensorError::InvalidStructure(
                "CSR pos must start at 0 and end at nnz".to_string(),
            ));
        }
        if pos.windows(2).any(|w| w[0] > w[1]) {
            return Err(TensorError::InvalidStructure(
                "CSR pos must be monotone".to_string(),
            ));
        }
        if crd.len() != vals.len() {
            return Err(TensorError::InvalidStructure(
                "CSR crd and vals must have equal length".to_string(),
            ));
        }
        if crd.iter().any(|&j| j >= cols) {
            return Err(TensorError::InvalidStructure(
                "CSR column index out of bounds".to_string(),
            ));
        }
        Ok(CsrMatrix {
            rows,
            cols,
            pos,
            crd,
            vals,
        })
    }

    /// Builds a CSR matrix from canonical triples (reference construction via
    /// a row histogram; duplicates are kept as stored).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not order 2.
    pub fn from_triples(t: &SparseTriples) -> Self {
        assert_eq!(t.order(), 2, "CSR matrices are order-2 tensors");
        let rows = t.shape().rows();
        let cols = t.shape().cols();
        let mut count = vec![0usize; rows];
        for triple in t.iter() {
            count[triple.coord[0] as usize] += 1;
        }
        let mut pos = vec![0usize; rows + 1];
        for i in 0..rows {
            pos[i + 1] = pos[i] + count[i];
        }
        let mut next = pos.clone();
        let mut crd = vec![0usize; t.nnz()];
        let mut vals = vec![0.0; t.nnz()];
        for triple in t.iter() {
            let i = triple.coord[0] as usize;
            let p = next[i];
            next[i] += 1;
            crd[p] = triple.coord[1] as usize;
            vals[p] = triple.value;
        }
        CsrMatrix {
            rows,
            cols,
            pos,
            crd,
            vals,
        }
    }

    /// Converts back to canonical triples in stored (row-grouped) order.
    pub fn to_triples(&self) -> SparseTriples {
        let mut entries = Vec::with_capacity(self.nnz());
        for i in 0..self.rows {
            for p in self.pos[i]..self.pos[i + 1] {
                entries.push((i, self.crd[p], self.vals[p]));
            }
        }
        SparseTriples::from_matrix_entries(self.rows, self.cols, entries)
            .expect("stored coordinates are in bounds")
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.crd.len()
    }

    /// The `pos` array (length `rows + 1`).
    pub fn pos(&self) -> &[usize] {
        &self.pos
    }

    /// The column coordinate array.
    pub fn crd(&self) -> &[usize] {
        &self.crd
    }

    /// The value array.
    pub fn values(&self) -> &[Value] {
        &self.vals
    }

    /// Number of nonzeros stored in row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_nnz(&self, i: usize) -> usize {
        self.pos[i + 1] - self.pos[i]
    }

    /// Iterates over the `(column, value)` pairs of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, Value)> + '_ {
        (self.pos[i]..self.pos[i + 1]).map(move |p| (self.crd[p], self.vals[p]))
    }

    /// Iterates over `(row, col, value)` in stored order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, Value)> + '_ {
        (0..self.rows).flat_map(move |i| self.row(i).map(move |(j, v)| (i, j, v)))
    }

    /// True when the columns within every row are sorted ascending.
    pub fn has_sorted_rows(&self) -> bool {
        (0..self.rows)
            .all(|i| (self.pos[i] + 1..self.pos[i + 1]).all(|p| self.crd[p - 1] <= self.crd[p]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_tensor::example::figure1_matrix;

    #[test]
    fn from_triples_matches_figure2b() {
        let csr = CsrMatrix::from_triples(&figure1_matrix());
        assert_eq!(csr.pos(), &[0, 2, 4, 6, 9]);
        assert_eq!(csr.crd(), &[0, 1, 1, 2, 0, 2, 1, 3, 4]);
        assert_eq!(csr.values(), &[5.0, 1.0, 7.0, 3.0, 8.0, 2.0, 4.0, 9.0, 6.0]);
        assert!(csr.has_sorted_rows());
        assert_eq!(csr.row_nnz(3), 3);
    }

    #[test]
    fn roundtrip_preserves_values() {
        let t = figure1_matrix();
        let csr = CsrMatrix::from_triples(&t);
        assert!(csr.to_triples().same_values(&t));
    }

    #[test]
    fn from_parts_validates_structure() {
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 2, 1], vec![0], vec![1.0]).is_err());
        assert!(CsrMatrix::from_parts(2, 2, vec![1, 1, 1], vec![], vec![]).is_err());
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1, 1], vec![5], vec![1.0]).is_err());
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1, 1], vec![0], vec![1.0, 2.0]).is_err());
        let ok = CsrMatrix::from_parts(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0, 2.0]).unwrap();
        assert_eq!(ok.nnz(), 2);
    }

    #[test]
    fn row_iteration() {
        let csr = CsrMatrix::from_triples(&figure1_matrix());
        let row3: Vec<_> = csr.row(3).collect();
        assert_eq!(row3, vec![(1, 4.0), (3, 9.0), (4, 6.0)]);
        let all: Vec<_> = csr.iter().collect();
        assert_eq!(all.len(), 9);
        assert_eq!(all[0], (0, 0, 5.0));
    }

    #[test]
    fn empty_rows_are_handled() {
        let t = SparseTriples::from_matrix_entries(3, 3, vec![(2, 2, 1.0)]).unwrap();
        let csr = CsrMatrix::from_triples(&t);
        assert_eq!(csr.pos(), &[0, 0, 0, 1]);
        assert_eq!(csr.row_nnz(0), 0);
        assert!(csr.to_triples().same_values(&t));
    }
}
