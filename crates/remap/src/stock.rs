//! Stock coordinate remappings for the formats discussed in the paper.

use crate::ast::{canonical_names, BinOp, DstIndex, IndexExpr, Remapping};
use crate::parser::parse_remapping;

/// A pure mode-permutation remapping over the canonical variable names:
/// storage dimension `d` holds canonical mode `order[d]`, so `&[2, 0, 1]`
/// yields `(i,j,k) -> (k,i,j)` (mode `k` outermost). The identity order
/// reproduces [`Remapping::identity`].
///
/// These remappings are the paper's "mode ordering" degree of freedom: they
/// are trivially invertible (every destination index is a bare source
/// variable), so formats built on them are both conversion targets and
/// readable conversion sources.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..order.len()`.
pub fn mode_permutation(order: &[usize]) -> Remapping {
    let n = order.len();
    let mut seen = vec![false; n];
    for &m in order {
        assert!(
            m < n && !seen[m],
            "mode order {order:?} is not a permutation of 0..{n}"
        );
        seen[m] = true;
    }
    let names = canonical_names(n);
    let dst = order
        .iter()
        .map(|&m| DstIndex::simple(IndexExpr::Var(names[m].clone())))
        .collect();
    Remapping::new(names, dst)
}

/// Identity remapping for row-major formats (COO, CSR, dense): `(i,j) -> (i,j)`.
pub fn row_major_matrix() -> Remapping {
    Remapping::identity(2)
}

/// Column-major (transpose) remapping used by CSC: `(i,j) -> (j,i)`.
pub fn column_major_matrix() -> Remapping {
    parse_remapping("(i,j) -> (j,i)").expect("stock remapping parses")
}

/// The DIA remapping of Figure 5: `(i,j) -> (j-i,i,j)` groups nonzeros by
/// diagonal.
pub fn dia() -> Remapping {
    parse_remapping("(i,j) -> (j-i,i,j)").expect("stock remapping parses")
}

/// The ELL remapping of Figure 7/9: `(i,j) -> (k=#i in k,i,j)` groups together
/// up to one nonzero from each row per slice.
pub fn ell() -> Remapping {
    parse_remapping("(i,j) -> (k=#i in k,i,j)").expect("stock remapping parses")
}

/// The JAD (jagged diagonal) remapping; like ELL it slices rows by
/// nonzero rank, so it shares the `#i` counter remapping.
pub fn jad() -> Remapping {
    parse_remapping("(i,j) -> (#i,i,j)").expect("stock remapping parses")
}

/// The BCSR remapping with symbolic block sizes `M` x `N`:
/// `(i,j) -> (i/M,j/N,i,j)`.
pub fn bcsr() -> Remapping {
    parse_remapping("(i,j) -> (i/M,j/N,i,j)").expect("stock remapping parses")
}

/// The BCSR remapping with concrete block sizes substituted for `M` and `N`,
/// and block-local coordinates in the inner dimensions:
/// `(i,j) -> (i/bm, j/bn, i%bm, j%bn)`.
///
/// # Panics
///
/// Panics if either block size is zero.
pub fn bcsr_with_blocks(block_rows: usize, block_cols: usize) -> Remapping {
    assert!(
        block_rows > 0 && block_cols > 0,
        "block sizes must be positive"
    );
    let (bm, bn) = (block_rows as i64, block_cols as i64);
    let i = || IndexExpr::var("i");
    let j = || IndexExpr::var("j");
    Remapping::new(
        vec!["i".into(), "j".into()],
        vec![
            DstIndex::simple(IndexExpr::binary(BinOp::Div, i(), IndexExpr::Const(bm))),
            DstIndex::simple(IndexExpr::binary(BinOp::Div, j(), IndexExpr::Const(bn))),
            DstIndex::simple(IndexExpr::binary(BinOp::Rem, i(), IndexExpr::Const(bm))),
            DstIndex::simple(IndexExpr::binary(BinOp::Rem, j(), IndexExpr::Const(bn))),
        ],
    )
}

/// Builds the expression interleaving the low `bits` bits of the given
/// variables (Morton / Z-order), least significant bit first:
/// `(v0&1) | ((v1&1)<<1) | ... | (((v0>>1)&1)<<n) | ...`.
///
/// # Panics
///
/// Panics if `vars` is empty or `bits` is zero.
pub fn morton_interleave_expr(vars: &[IndexExpr], bits: u32) -> IndexExpr {
    assert!(!vars.is_empty(), "at least one variable required");
    assert!(bits > 0, "at least one bit required");
    let mut result: Option<IndexExpr> = None;
    let mut out_bit = 0i64;
    for b in 0..bits {
        for v in vars {
            let shifted_in = if b == 0 {
                v.clone()
            } else {
                IndexExpr::binary(BinOp::Shr, v.clone(), IndexExpr::Const(b as i64))
            };
            let bit = IndexExpr::binary(BinOp::And, shifted_in, IndexExpr::Const(1));
            let placed = if out_bit == 0 {
                bit
            } else {
                IndexExpr::binary(BinOp::Shl, bit, IndexExpr::Const(out_bit))
            };
            result = Some(match result {
                None => placed,
                Some(acc) => IndexExpr::binary(BinOp::Or, acc, placed),
            });
            out_bit += 1;
        }
    }
    result.expect("bits > 0 and vars nonempty")
}

/// A HiCOO-style remapping for matrices: nonzeros are grouped into
/// `block x block` tiles, tiles are ordered by the Morton code of their block
/// coordinates, and nonzeros within a tile are ordered by the Morton code of
/// their tile-local coordinates (Section 4.1's HiCOO example, specialised to
/// matrices).
///
/// `bits` controls how many bits of each (block or local) coordinate are
/// interleaved; it must be large enough to cover the coordinate range for the
/// ordering to be a strict Morton order.
///
/// # Panics
///
/// Panics if `block` is zero or `bits` is zero.
pub fn hicoo_matrix(block: usize, bits: u32) -> Remapping {
    assert!(block > 0, "block size must be positive");
    let b = block as i64;
    let i = || IndexExpr::var("i");
    let j = || IndexExpr::var("j");
    let block_i = IndexExpr::binary(BinOp::Div, i(), IndexExpr::Const(b));
    let block_j = IndexExpr::binary(BinOp::Div, j(), IndexExpr::Const(b));
    let local_i = IndexExpr::binary(BinOp::Rem, i(), IndexExpr::Const(b));
    let local_j = IndexExpr::binary(BinOp::Rem, j(), IndexExpr::Const(b));
    let block_morton = DstIndex {
        lets: vec![
            ("r".to_string(), block_i.clone()),
            ("s".to_string(), block_j.clone()),
        ],
        expr: morton_interleave_expr(
            &[IndexExpr::LetVar("r".into()), IndexExpr::LetVar("s".into())],
            bits,
        ),
    };
    let local_morton = DstIndex {
        lets: vec![("u".to_string(), local_i), ("v".to_string(), local_j)],
        expr: morton_interleave_expr(
            &[IndexExpr::LetVar("u".into()), IndexExpr::LetVar("v".into())],
            bits,
        ),
    };
    Remapping::new(
        vec!["i".into(), "j".into()],
        vec![
            block_morton,
            DstIndex::simple(block_i),
            DstIndex::simple(block_j),
            local_morton,
            DstIndex::simple(IndexExpr::var("i")),
            DstIndex::simple(IndexExpr::var("j")),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::EvalContext;

    #[test]
    fn mode_permutation_permutes_coordinates() {
        assert!(mode_permutation(&[0, 1, 2]).is_identity());
        let remap = mode_permutation(&[2, 0, 1]);
        assert_eq!(remap.to_string(), "(i,j,k) -> (k,i,j)");
        let mut ctx = EvalContext::new(&remap);
        assert_eq!(ctx.apply(&[5, 7, 9]).unwrap(), vec![9, 5, 7]);
        // Pure permutations are invertible.
        let inv = remap.inverter().expect("permutation inverts");
        assert_eq!(inv.apply(&[9, 5, 7]), vec![5, 7, 9]);
    }

    #[test]
    #[should_panic]
    fn non_permutation_mode_order_panics() {
        mode_permutation(&[0, 0, 1]);
    }

    #[test]
    fn stock_remappings_have_expected_shape() {
        assert!(row_major_matrix().is_identity());
        assert_eq!(column_major_matrix().dest_order(), 2);
        assert_eq!(dia().dest_order(), 3);
        assert_eq!(ell().dest_order(), 3);
        assert!(ell().has_counter());
        assert!(jad().has_counter());
        assert_eq!(bcsr().params(), vec!["M".to_string(), "N".to_string()]);
        assert_eq!(bcsr_with_blocks(2, 3).dest_order(), 4);
    }

    #[test]
    fn bcsr_with_blocks_maps_into_tiles() {
        let remap = bcsr_with_blocks(2, 3);
        let mut ctx = EvalContext::new(&remap);
        assert_eq!(ctx.apply(&[5, 7]).unwrap(), vec![2, 2, 1, 1]);
        assert_eq!(ctx.apply(&[0, 0]).unwrap(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn morton_interleave_matches_reference() {
        fn reference_morton(x: u64, y: u64, bits: u32) -> u64 {
            let mut out = 0u64;
            for b in 0..bits {
                out |= ((x >> b) & 1) << (2 * b);
                out |= ((y >> b) & 1) << (2 * b + 1);
            }
            out
        }
        let expr = morton_interleave_expr(&[IndexExpr::var("i"), IndexExpr::var("j")], 4);
        let remap = Remapping::new(
            vec!["i".into(), "j".into()],
            vec![
                DstIndex::simple(expr),
                DstIndex::simple(IndexExpr::var("i")),
            ],
        );
        let mut ctx = EvalContext::new(&remap);
        for i in 0..16i64 {
            for j in 0..16i64 {
                let got = ctx.apply(&[i, j]).unwrap()[0];
                assert_eq!(
                    got as u64,
                    reference_morton(i as u64, j as u64, 4),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn hicoo_orders_blocks_before_locals() {
        let remap = hicoo_matrix(2, 2);
        assert_eq!(remap.dest_order(), 6);
        let mut ctx = EvalContext::new(&remap);
        // (3, 2) lies in block (1, 1) with local coordinates (1, 0).
        let c = ctx.apply(&[3, 2]).unwrap();
        assert_eq!(c[1], 1);
        assert_eq!(c[2], 1);
        assert_eq!(c[4], 3);
        assert_eq!(c[5], 2);
        // Block Morton code of (1,1) is 3; local Morton code of (1,0) is 1.
        assert_eq!(c[0], 3);
        assert_eq!(c[3], 1);
    }

    #[test]
    #[should_panic]
    fn zero_block_size_panics() {
        bcsr_with_blocks(0, 2);
    }
}
