//! Conservative bounds inference for remapped coordinate expressions.
//!
//! Generated conversion code needs static bounds for the auxiliary data
//! structures that the remapping implies: the `nz` bit set for CSR→DIA has
//! `2N-1` entries because the offset expression `j-i` ranges over
//! `[-(N-1), N-1]`, and a counter array for `#i` has one entry per possible
//! value of `i`. This module computes such bounds by interval analysis over
//! the remapping AST.

use std::collections::HashMap;

use sparse_tensor::DimBounds;

use crate::ast::{BinOp, DstIndex, IndexExpr, Remapping};
use crate::error::RemapError;

/// Environment for bounds inference: bounds of every source index variable,
/// values of symbolic parameters, and (optionally) the source nonzero count
/// used to bound counters.
#[derive(Debug, Clone, Default)]
pub struct BoundsEnv {
    vars: HashMap<String, DimBounds>,
    params: HashMap<String, i64>,
    nnz: Option<usize>,
}

impl BoundsEnv {
    /// Creates an empty environment.
    pub fn new() -> Self {
        BoundsEnv::default()
    }

    /// Builds an environment from a remapping's source variables and the
    /// extents of the corresponding canonical tensor dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims.len()` differs from the remapping's source order.
    pub fn for_remapping(remap: &Remapping, dims: &[usize]) -> Self {
        assert_eq!(dims.len(), remap.source_order(), "dimension count mismatch");
        let mut env = BoundsEnv::new();
        for (name, &extent) in remap.src.iter().zip(dims) {
            env.vars
                .insert(name.clone(), DimBounds::from_extent(extent));
        }
        env
    }

    /// Sets the bounds of a source index variable.
    pub fn with_var(mut self, name: &str, bounds: DimBounds) -> Self {
        self.vars.insert(name.to_string(), bounds);
        self
    }

    /// Binds a symbolic parameter.
    pub fn with_param(mut self, name: &str, value: i64) -> Self {
        self.params.insert(name.to_string(), value);
        self
    }

    /// Supplies the source nonzero count, used as the bound for counters.
    pub fn with_nnz(mut self, nnz: usize) -> Self {
        self.nnz = Some(nnz);
        self
    }

    fn var(&self, name: &str) -> Result<Interval, RemapError> {
        self.vars
            .get(name)
            .map(|b| Interval {
                lo: b.lower,
                hi: b.upper - 1,
            })
            .ok_or_else(|| RemapError::UnboundVariable(name.to_string()))
    }

    fn param(&self, name: &str) -> Result<Interval, RemapError> {
        self.params
            .get(name)
            .map(|&v| Interval { lo: v, hi: v })
            .ok_or_else(|| RemapError::MissingParameter(name.to_string()))
    }

    /// Conservative bound for a counter: a counter over variables
    /// `(i1, ..., ik)` cannot exceed the number of distinct coordinates of the
    /// remaining dimensions (duplicate-free input), nor the total number of
    /// nonzeros when that is known.
    fn counter(&self, vars: &[String]) -> Interval {
        let mut others: i64 = 1;
        for (name, b) in &self.vars {
            if !vars.contains(name) {
                others = others.saturating_mul(b.extent() as i64);
            }
        }
        let mut hi = others.saturating_sub(1).max(0);
        if let Some(nnz) = self.nnz {
            hi = hi.min((nnz as i64).saturating_sub(1).max(0));
        }
        Interval { lo: 0, hi }
    }
}

/// A closed integer interval `[lo, hi]` used internally by the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval {
    lo: i64,
    hi: i64,
}

impl Interval {
    fn constant(v: i64) -> Self {
        Interval { lo: v, hi: v }
    }

    fn nonneg(&self) -> bool {
        self.lo >= 0
    }
}

fn combine(op: BinOp, a: Interval, b: Interval) -> Result<Interval, RemapError> {
    let iv = |lo: i64, hi: i64| Interval {
        lo: lo.min(hi),
        hi: lo.max(hi),
    };
    match op {
        BinOp::Add => Ok(iv(a.lo.saturating_add(b.lo), a.hi.saturating_add(b.hi))),
        BinOp::Sub => Ok(iv(a.lo.saturating_sub(b.hi), a.hi.saturating_sub(b.lo))),
        BinOp::Mul => {
            let products = [
                a.lo.saturating_mul(b.lo),
                a.lo.saturating_mul(b.hi),
                a.hi.saturating_mul(b.lo),
                a.hi.saturating_mul(b.hi),
            ];
            Ok(Interval {
                lo: *products.iter().min().expect("nonempty"),
                hi: *products.iter().max().expect("nonempty"),
            })
        }
        BinOp::Div => {
            if b.lo <= 0 && b.hi >= 0 {
                return Err(RemapError::DivisionByZero);
            }
            let quotients = [a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi];
            Ok(Interval {
                lo: *quotients.iter().min().expect("nonempty"),
                hi: *quotients.iter().max().expect("nonempty"),
            })
        }
        BinOp::Rem => {
            if b.lo <= 0 && b.hi >= 0 {
                return Err(RemapError::DivisionByZero);
            }
            let max_abs = b.lo.abs().max(b.hi.abs()) - 1;
            if a.nonneg() {
                Ok(Interval {
                    lo: 0,
                    hi: max_abs.min(a.hi),
                })
            } else {
                Ok(Interval {
                    lo: -max_abs,
                    hi: max_abs,
                })
            }
        }
        BinOp::Shl => {
            if b.lo < 0 || b.hi >= 64 {
                return Err(RemapError::InvalidShift(if b.lo < 0 { b.lo } else { b.hi }));
            }
            let candidates = [
                a.lo.checked_shl(b.lo as u32).unwrap_or(i64::MAX),
                a.lo.checked_shl(b.hi as u32).unwrap_or(i64::MAX),
                a.hi.checked_shl(b.lo as u32).unwrap_or(i64::MAX),
                a.hi.checked_shl(b.hi as u32).unwrap_or(i64::MAX),
            ];
            Ok(Interval {
                lo: *candidates.iter().min().expect("nonempty"),
                hi: *candidates.iter().max().expect("nonempty"),
            })
        }
        BinOp::Shr => {
            if b.lo < 0 || b.hi >= 64 {
                return Err(RemapError::InvalidShift(if b.lo < 0 { b.lo } else { b.hi }));
            }
            let candidates = [a.lo >> b.lo, a.lo >> b.hi, a.hi >> b.lo, a.hi >> b.hi];
            Ok(Interval {
                lo: *candidates.iter().min().expect("nonempty"),
                hi: *candidates.iter().max().expect("nonempty"),
            })
        }
        BinOp::And => {
            if a.nonneg() && b.nonneg() {
                Ok(Interval {
                    lo: 0,
                    hi: a.hi.min(b.hi),
                })
            } else {
                Ok(Interval {
                    lo: a.lo.min(b.lo).min(0),
                    hi: a.hi.max(b.hi).max(0),
                })
            }
        }
        BinOp::Or | BinOp::Xor => {
            if a.nonneg() && b.nonneg() {
                let max = a.hi.max(b.hi);
                // Smallest all-ones value covering `max`.
                let mut mask: i64 = 1;
                while mask <= max {
                    mask = (mask << 1) | 1;
                }
                Ok(Interval { lo: 0, hi: mask })
            } else {
                // Conservative fallback for signed bit operations.
                Ok(Interval {
                    lo: i64::MIN / 4,
                    hi: i64::MAX / 4,
                })
            }
        }
    }
}

fn infer_interval(
    expr: &IndexExpr,
    env: &BoundsEnv,
    lets: &HashMap<String, Interval>,
) -> Result<Interval, RemapError> {
    match expr {
        IndexExpr::Const(c) => Ok(Interval::constant(*c)),
        IndexExpr::Var(name) => env.var(name),
        IndexExpr::LetVar(name) => lets
            .get(name)
            .copied()
            .ok_or_else(|| RemapError::UnboundVariable(name.clone())),
        IndexExpr::Param(name) => env.param(name),
        IndexExpr::Counter(vars) => Ok(env.counter(vars)),
        IndexExpr::Binary(op, lhs, rhs) => {
            let a = infer_interval(lhs, env, lets)?;
            let b = infer_interval(rhs, env, lets)?;
            combine(*op, a, b)
        }
    }
}

fn infer_dst_bounds(dst: &DstIndex, env: &BoundsEnv) -> Result<DimBounds, RemapError> {
    let mut lets: HashMap<String, Interval> = HashMap::new();
    for (name, expr) in &dst.lets {
        let interval = infer_interval(expr, env, &lets)?;
        lets.insert(name.clone(), interval);
    }
    let interval = infer_interval(&dst.expr, env, &lets)?;
    Ok(DimBounds::new(interval.lo, interval.hi + 1))
}

/// Infers conservative coordinate bounds for every destination dimension of a
/// remapping.
///
/// # Errors
///
/// Returns an error when a variable or parameter is unbound, or when the
/// analysis encounters a possible division by zero or invalid shift.
pub fn infer_bounds(remap: &Remapping, env: &BoundsEnv) -> Result<Vec<DimBounds>, RemapError> {
    remap.dst.iter().map(|d| infer_dst_bounds(d, env)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_remapping;

    #[test]
    fn dia_offset_bounds_cover_2n_minus_1_diagonals() {
        // For an N x N matrix, j - i ranges over [-(N-1), N-1]: 2N-1 values,
        // matching the `bool nz[2 * N - 1]` allocation in Figure 6a.
        let remap = parse_remapping("(i,j) -> (j-i,i,j)").unwrap();
        let env = BoundsEnv::for_remapping(&remap, &[100, 100]);
        let bounds = infer_bounds(&remap, &env).unwrap();
        assert_eq!(bounds[0], DimBounds::new(-99, 100));
        assert_eq!(bounds[0].extent(), 199);
        assert_eq!(bounds[1], DimBounds::new(0, 100));
        assert_eq!(bounds[2], DimBounds::new(0, 100));
    }

    #[test]
    fn rectangular_dia_bounds() {
        let remap = parse_remapping("(i,j) -> (j-i,i,j)").unwrap();
        let env = BoundsEnv::for_remapping(&remap, &[4, 6]);
        let bounds = infer_bounds(&remap, &env).unwrap();
        assert_eq!(bounds[0], DimBounds::new(-3, 6));
    }

    #[test]
    fn bcsr_block_bounds_use_parameters() {
        let remap = parse_remapping("(i,j) -> (i/M,j/N,i,j)").unwrap();
        let env = BoundsEnv::for_remapping(&remap, &[8, 12])
            .with_param("M", 2)
            .with_param("N", 3);
        let bounds = infer_bounds(&remap, &env).unwrap();
        assert_eq!(bounds[0], DimBounds::new(0, 4));
        assert_eq!(bounds[1], DimBounds::new(0, 4));
    }

    #[test]
    fn counter_bounds_use_other_dimensions_and_nnz() {
        let remap = parse_remapping("(i,j) -> (#i,i,j)").unwrap();
        // Without nnz: at most `cols` nonzeros per row.
        let env = BoundsEnv::for_remapping(&remap, &[4, 6]);
        let bounds = infer_bounds(&remap, &env).unwrap();
        assert_eq!(bounds[0], DimBounds::new(0, 6));
        // With nnz = 3 the counter cannot exceed 2.
        let env = BoundsEnv::for_remapping(&remap, &[4, 6]).with_nnz(3);
        let bounds = infer_bounds(&remap, &env).unwrap();
        assert_eq!(bounds[0], DimBounds::new(0, 3));
    }

    #[test]
    fn morton_bits_are_bounded() {
        let remap = parse_remapping("(i,j) -> (r=i/4 in s=j/4 in (r&1)|((s&1)<<1),i,j)").unwrap();
        let env = BoundsEnv::for_remapping(&remap, &[16, 16]);
        let bounds = infer_bounds(&remap, &env).unwrap();
        assert_eq!(bounds[0].lower, 0);
        assert!(
            bounds[0].upper <= 4,
            "two interleaved bits fit in [0, 4), got {}",
            bounds[0]
        );
    }

    #[test]
    fn division_by_zero_parameter_is_detected() {
        let remap = parse_remapping("(i,j) -> (i/M,i,j)").unwrap();
        let env = BoundsEnv::for_remapping(&remap, &[4, 4]).with_param("M", 0);
        assert!(matches!(
            infer_bounds(&remap, &env),
            Err(RemapError::DivisionByZero)
        ));
    }

    #[test]
    fn missing_bindings_are_reported() {
        let remap = parse_remapping("(i,j) -> (i/M,i,j)").unwrap();
        let env = BoundsEnv::for_remapping(&remap, &[4, 4]);
        assert!(matches!(
            infer_bounds(&remap, &env),
            Err(RemapError::MissingParameter(_))
        ));
        let remap = parse_remapping("(i,j) -> (i,j)").unwrap();
        let env = BoundsEnv::new().with_var("i", DimBounds::from_extent(4));
        assert!(matches!(
            infer_bounds(&remap, &env),
            Err(RemapError::UnboundVariable(_))
        ));
    }

    #[test]
    fn modulo_of_nonnegative_dividend_is_nonnegative() {
        let remap = parse_remapping("(i,j) -> (i%M,j)").unwrap();
        let env = BoundsEnv::for_remapping(&remap, &[100, 100]).with_param("M", 8);
        let bounds = infer_bounds(&remap, &env).unwrap();
        assert_eq!(bounds[0], DimBounds::new(0, 8));
    }
}
