//! Evaluation of coordinate remappings.
//!
//! The evaluator implements the semantics of Section 4: for each nonzero of
//! the canonical input tensor, the destination expressions are evaluated over
//! its coordinates to produce the remapped coordinates. Counters (`#i...`)
//! are stateful: they count how many nonzeros with the same values of the
//! listed index variables have been seen so far, in iteration order.

use std::collections::HashMap;

use sparse_tensor::{Coord, DimBounds, SparseTriples, Value};

use crate::ast::{BinOp, DstIndex, IndexExpr, Remapping};
use crate::error::RemapError;

/// State of every counter appearing in a remapping.
///
/// Each counter `#i1...ik` is keyed by the tuple of current values of
/// `(i1, ..., ik)`; evaluating the counter returns the current count for that
/// tuple and then increments it (Section 4.2).
#[derive(Debug, Default, Clone)]
pub struct CounterState {
    counters: HashMap<Vec<String>, HashMap<Vec<i64>, i64>>,
}

impl CounterState {
    /// Creates empty counter state.
    pub fn new() -> Self {
        CounterState::default()
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        self.counters.clear();
    }

    /// Returns the current count for a counter/key pair and increments it.
    pub fn next(&mut self, vars: &[String], key: Vec<i64>) -> i64 {
        let slot = self
            .counters
            .entry(vars.to_vec())
            .or_default()
            .entry(key)
            .or_insert(0);
        let current = *slot;
        *slot += 1;
        current
    }

    /// Returns the current count for a counter/key pair without incrementing.
    pub fn peek(&self, vars: &[String], key: &[i64]) -> i64 {
        self.counters
            .get(vars)
            .and_then(|m| m.get(key))
            .copied()
            .unwrap_or(0)
    }
}

/// Applies binary operators with the same semantics the generated C code
/// would have (truncating division, 64-bit shifts).
pub(crate) fn apply_binop(op: BinOp, lhs: i64, rhs: i64) -> Result<i64, RemapError> {
    match op {
        BinOp::Add => Ok(lhs.wrapping_add(rhs)),
        BinOp::Sub => Ok(lhs.wrapping_sub(rhs)),
        BinOp::Mul => Ok(lhs.wrapping_mul(rhs)),
        BinOp::Div => {
            if rhs == 0 {
                Err(RemapError::DivisionByZero)
            } else {
                Ok(lhs / rhs)
            }
        }
        BinOp::Rem => {
            if rhs == 0 {
                Err(RemapError::DivisionByZero)
            } else {
                Ok(lhs % rhs)
            }
        }
        BinOp::Shl => {
            if !(0..64).contains(&rhs) {
                Err(RemapError::InvalidShift(rhs))
            } else {
                Ok(lhs << rhs)
            }
        }
        BinOp::Shr => {
            if !(0..64).contains(&rhs) {
                Err(RemapError::InvalidShift(rhs))
            } else {
                Ok(lhs >> rhs)
            }
        }
        BinOp::And => Ok(lhs & rhs),
        BinOp::Or => Ok(lhs | rhs),
        BinOp::Xor => Ok(lhs ^ rhs),
    }
}

/// Evaluation context for one remapping: parameter bindings plus counter
/// state.
#[derive(Debug, Clone)]
pub struct EvalContext<'a> {
    remap: &'a Remapping,
    params: HashMap<String, i64>,
    counters: CounterState,
}

impl<'a> EvalContext<'a> {
    /// Creates a context with no parameters bound.
    pub fn new(remap: &'a Remapping) -> Self {
        EvalContext {
            remap,
            params: HashMap::new(),
            counters: CounterState::new(),
        }
    }

    /// Binds a symbolic parameter (e.g. a block size `M`) to a value.
    pub fn with_param(mut self, name: &str, value: i64) -> Self {
        self.params.insert(name.to_string(), value);
        self
    }

    /// Binds a symbolic parameter in place.
    pub fn set_param(&mut self, name: &str, value: i64) {
        self.params.insert(name.to_string(), value);
    }

    /// The remapping this context evaluates.
    pub fn remapping(&self) -> &Remapping {
        self.remap
    }

    /// Resets counter state (e.g. before re-running a fused phase, as the
    /// generated CSR→ELL code does between analysis and assembly).
    pub fn reset_counters(&mut self) {
        self.counters.reset();
    }

    /// Evaluates the remapping on one source coordinate, advancing counters.
    ///
    /// # Errors
    ///
    /// Returns an error when the coordinate arity does not match the
    /// remapping, a parameter is unbound, or evaluation hits a division by
    /// zero / invalid shift.
    pub fn apply(&mut self, source: &[i64]) -> Result<Coord, RemapError> {
        if source.len() != self.remap.source_order() {
            return Err(RemapError::ArityMismatch {
                expected: self.remap.source_order(),
                found: source.len(),
            });
        }
        let mut out = Vec::with_capacity(self.remap.dest_order());
        let dst: &[DstIndex] = &self.remap.dst;
        for d in dst {
            let mut lets: HashMap<String, i64> = HashMap::new();
            for (name, expr) in &d.lets {
                let v = self.eval_expr(expr, source, &lets)?;
                lets.insert(name.clone(), v);
            }
            out.push(self.eval_expr(&d.expr, source, &lets)?);
        }
        Ok(out)
    }

    fn eval_expr(
        &mut self,
        expr: &IndexExpr,
        source: &[i64],
        lets: &HashMap<String, i64>,
    ) -> Result<i64, RemapError> {
        match expr {
            IndexExpr::Const(c) => Ok(*c),
            IndexExpr::Var(name) => {
                let idx = self
                    .remap
                    .src
                    .iter()
                    .position(|s| s == name)
                    .ok_or_else(|| RemapError::UnboundVariable(name.clone()))?;
                Ok(source[idx])
            }
            IndexExpr::LetVar(name) => lets
                .get(name)
                .copied()
                .ok_or_else(|| RemapError::UnboundVariable(name.clone())),
            IndexExpr::Param(name) => self
                .params
                .get(name)
                .copied()
                .ok_or_else(|| RemapError::MissingParameter(name.clone())),
            IndexExpr::Counter(vars) => {
                let mut key = Vec::with_capacity(vars.len());
                for v in vars {
                    let idx = self
                        .remap
                        .src
                        .iter()
                        .position(|s| s == v)
                        .ok_or_else(|| RemapError::UnboundVariable(v.clone()))?;
                    key.push(source[idx]);
                }
                Ok(self.counters.next(vars, key))
            }
            IndexExpr::Binary(op, lhs, rhs) => {
                let l = self.eval_expr(lhs, source, lets)?;
                let r = self.eval_expr(rhs, source, lets)?;
                apply_binop(*op, l, r)
            }
        }
    }

    /// Remaps an entire tensor, producing the remapped component list along
    /// with the observed coordinate bounds of every remapped dimension.
    ///
    /// The iteration order of `tensor` matters when the remapping contains
    /// counters (Figure 9 notes that the result of `#i` depends on the order
    /// nonzeros are iterated in); counters are reset before the pass.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn apply_all(&mut self, tensor: &SparseTriples) -> Result<RemappedTriples, RemapError> {
        self.reset_counters();
        let mut triples = Vec::with_capacity(tensor.nnz());
        for t in tensor.iter() {
            let coord = self.apply(&t.coord)?;
            triples.push((coord, t.value));
        }
        let dest_order = self.remap.dest_order();
        let mut bounds = vec![DimBounds::new(0, 0); dest_order];
        if !triples.is_empty() {
            for d in 0..dest_order {
                let lo = triples.iter().map(|(c, _)| c[d]).min().expect("nonempty");
                let hi = triples.iter().map(|(c, _)| c[d]).max().expect("nonempty");
                bounds[d] = DimBounds::new(lo, hi + 1);
            }
        }
        Ok(RemappedTriples {
            bounds,
            triples,
            source_shape: tensor.shape().clone(),
        })
    }
}

/// A tensor in remapped coordinate space.
///
/// Remapped coordinates can be negative (e.g. DIA diagonal offsets), so the
/// remapped tensor carries [`DimBounds`] instead of a [`sparse_tensor::Shape`].
#[derive(Debug, Clone, PartialEq)]
pub struct RemappedTriples {
    /// Observed coordinate bounds of every remapped dimension.
    pub bounds: Vec<DimBounds>,
    /// Remapped coordinates and values, in source iteration order.
    pub triples: Vec<(Coord, Value)>,
    /// Shape of the canonical source tensor.
    pub source_shape: sparse_tensor::Shape,
}

impl RemappedTriples {
    /// Number of remapped components.
    pub fn nnz(&self) -> usize {
        self.triples.len()
    }

    /// Order of the remapped coordinate space.
    pub fn order(&self) -> usize {
        self.bounds.len()
    }

    /// Returns the components sorted lexicographically by remapped
    /// coordinate — the storage order of the target format (Section 4).
    pub fn sorted(&self) -> Vec<(Coord, Value)> {
        let mut v = self.triples.clone();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_remapping;
    use sparse_tensor::example::figure1_matrix;

    #[test]
    fn dia_remapping_matches_figure5() {
        // (i,j) -> (j-i,i,j): each nonzero's first coordinate is its diagonal
        // offset.
        let remap = parse_remapping("(i,j) -> (j-i,i,j)").unwrap();
        let mut ctx = EvalContext::new(&remap);
        assert_eq!(ctx.apply(&[2, 0]).unwrap(), vec![-2, 2, 0]);
        assert_eq!(ctx.apply(&[0, 0]).unwrap(), vec![0, 0, 0]);
        assert_eq!(ctx.apply(&[3, 4]).unwrap(), vec![1, 3, 4]);

        let remapped = ctx.apply_all(&figure1_matrix()).unwrap();
        assert_eq!(remapped.nnz(), 9);
        assert_eq!(remapped.bounds[0], DimBounds::new(-2, 2));
        assert_eq!(remapped.bounds[1], DimBounds::new(0, 4));
        assert_eq!(remapped.bounds[2], DimBounds::new(0, 5));
        // Exactly three distinct diagonals, matching Figure 5.
        let mut offsets: Vec<i64> = remapped.triples.iter().map(|(c, _)| c[0]).collect();
        offsets.sort_unstable();
        offsets.dedup();
        assert_eq!(offsets, vec![-2, 0, 1]);
    }

    #[test]
    fn ell_counter_remapping_matches_figure9() {
        // (i,j) -> (#i,i,j): the k-th nonzero of each row maps to slice k.
        let remap = parse_remapping("(i,j) -> (#i,i,j)").unwrap();
        let mut ctx = EvalContext::new(&remap);
        let remapped = ctx.apply_all(&figure1_matrix()).unwrap();
        // Row nonzero counts are [2,2,2,3], so slices 0 and 1 hold 4 and 4
        // entries... slice 0 holds one entry per nonempty row.
        let slice_of = |k: i64| remapped.triples.iter().filter(|(c, _)| c[0] == k).count();
        assert_eq!(slice_of(0), 4);
        assert_eq!(slice_of(1), 4);
        assert_eq!(slice_of(2), 1);
        assert_eq!(remapped.bounds[0], DimBounds::new(0, 3));
        // Slice 2 contains only the third nonzero of row 3, which is (3,4)=6.
        let last = remapped.triples.iter().find(|(c, _)| c[0] == 2).unwrap();
        assert_eq!(last.0, vec![2, 3, 4]);
        assert_eq!(last.1, 6.0);
    }

    #[test]
    fn bcsr_remapping_uses_parameters() {
        let remap = parse_remapping("(i,j) -> (i/M,j/N,i,j)").unwrap();
        let mut ctx = EvalContext::new(&remap)
            .with_param("M", 2)
            .with_param("N", 3);
        assert_eq!(ctx.apply(&[3, 4]).unwrap(), vec![1, 1, 3, 4]);
        // Missing parameter is an error.
        let mut bare = EvalContext::new(&remap);
        assert!(matches!(
            bare.apply(&[1, 1]),
            Err(RemapError::MissingParameter(_))
        ));
    }

    #[test]
    fn let_bindings_and_bitops_compute_morton_bits() {
        let remap = parse_remapping("(i,j) -> (r=i/2 in s=j/2 in (r&1)|((s&1)<<1),i,j)").unwrap();
        let mut ctx = EvalContext::new(&remap);
        assert_eq!(ctx.apply(&[2, 2]).unwrap()[0], 0b01 | 0b10);
        assert_eq!(ctx.apply(&[0, 2]).unwrap()[0], 0b10);
        assert_eq!(ctx.apply(&[2, 0]).unwrap()[0], 0b01);
        assert_eq!(ctx.apply(&[0, 0]).unwrap()[0], 0);
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let remap = parse_remapping("(i,j) -> (i,j)").unwrap();
        let mut ctx = EvalContext::new(&remap);
        assert!(matches!(
            ctx.apply(&[1]),
            Err(RemapError::ArityMismatch {
                expected: 2,
                found: 1
            })
        ));
    }

    #[test]
    fn division_and_shift_errors() {
        assert_eq!(apply_binop(BinOp::Div, 7, 2).unwrap(), 3);
        assert!(matches!(
            apply_binop(BinOp::Div, 1, 0),
            Err(RemapError::DivisionByZero)
        ));
        assert!(matches!(
            apply_binop(BinOp::Rem, 1, 0),
            Err(RemapError::DivisionByZero)
        ));
        assert!(matches!(
            apply_binop(BinOp::Shl, 1, 64),
            Err(RemapError::InvalidShift(64))
        ));
        assert!(matches!(
            apply_binop(BinOp::Shr, 1, -1),
            Err(RemapError::InvalidShift(-1))
        ));
        assert_eq!(apply_binop(BinOp::Xor, 0b1100, 0b1010).unwrap(), 0b0110);
    }

    #[test]
    fn counters_reset_between_passes() {
        let remap = parse_remapping("(i,j) -> (#i,i,j)").unwrap();
        let mut ctx = EvalContext::new(&remap);
        let first = ctx.apply_all(&figure1_matrix()).unwrap();
        let second = ctx.apply_all(&figure1_matrix()).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn counter_state_peek_and_next() {
        let mut state = CounterState::new();
        let vars = vec!["i".to_string()];
        assert_eq!(state.peek(&vars, &[3]), 0);
        assert_eq!(state.next(&vars, vec![3]), 0);
        assert_eq!(state.next(&vars, vec![3]), 1);
        assert_eq!(state.next(&vars, vec![4]), 0);
        assert_eq!(state.peek(&vars, &[3]), 2);
        state.reset();
        assert_eq!(state.peek(&vars, &[3]), 0);
    }

    #[test]
    fn identity_remapping_is_a_no_op() {
        let remap = Remapping::identity(2);
        let mut ctx = EvalContext::new(&remap);
        let m = figure1_matrix();
        let remapped = ctx.apply_all(&m).unwrap();
        for ((coord, value), t) in remapped.triples.iter().zip(m.iter()) {
            assert_eq!(coord, &t.coord);
            assert_eq!(*value, t.value);
        }
    }

    #[test]
    fn sorted_order_is_lexicographic_in_remapped_space() {
        let remap = parse_remapping("(i,j) -> (j-i,i,j)").unwrap();
        let mut ctx = EvalContext::new(&remap);
        let remapped = ctx.apply_all(&figure1_matrix()).unwrap();
        let sorted = remapped.sorted();
        assert!(sorted.windows(2).all(|w| w[0].0 <= w[1].0));
        // First stored nonzero is the first entry of the -2 diagonal: (2,0)=8.
        assert_eq!(sorted[0].0, vec![-2, 2, 0]);
        assert_eq!(sorted[0].1, 8.0);
    }
}
