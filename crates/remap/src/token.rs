//! Tokens of coordinate remapping notation.

use crate::error::RemapError;

/// A lexical token of coordinate remapping notation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An identifier (index variable, let variable, parameter, or the `in`
    /// keyword — the parser distinguishes them).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `->`
    Arrow,
    /// `=`
    Equals,
    /// `#`
    Hash,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
}

/// A token together with the byte position where it starts (for error
/// reporting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Byte offset of the token's first character in the source text.
    pub position: usize,
}

/// Tokenises remapping-notation source text.
///
/// # Errors
///
/// Returns [`RemapError::Lex`] on any character outside the notation's
/// alphabet.
pub fn lex(input: &str) -> Result<Vec<SpannedToken>, RemapError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let c = bytes[pos] as char;
        let start = pos;
        let token = match c {
            c if c.is_whitespace() => {
                pos += 1;
                continue;
            }
            '(' => {
                pos += 1;
                Token::LParen
            }
            ')' => {
                pos += 1;
                Token::RParen
            }
            ',' => {
                pos += 1;
                Token::Comma
            }
            '=' => {
                pos += 1;
                Token::Equals
            }
            '#' => {
                pos += 1;
                Token::Hash
            }
            '+' => {
                pos += 1;
                Token::Plus
            }
            '-' => {
                if bytes.get(pos + 1) == Some(&b'>') {
                    pos += 2;
                    Token::Arrow
                } else {
                    pos += 1;
                    Token::Minus
                }
            }
            '*' => {
                pos += 1;
                Token::Star
            }
            '/' => {
                pos += 1;
                Token::Slash
            }
            '%' => {
                pos += 1;
                Token::Percent
            }
            '&' => {
                pos += 1;
                Token::Amp
            }
            '|' => {
                pos += 1;
                Token::Pipe
            }
            '^' => {
                pos += 1;
                Token::Caret
            }
            '<' => {
                if bytes.get(pos + 1) == Some(&b'<') {
                    pos += 2;
                    Token::Shl
                } else {
                    return Err(RemapError::Lex {
                        position: pos,
                        found: '<',
                    });
                }
            }
            '>' => {
                if bytes.get(pos + 1) == Some(&b'>') {
                    pos += 2;
                    Token::Shr
                } else {
                    return Err(RemapError::Lex {
                        position: pos,
                        found: '>',
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let mut end = pos;
                while end < bytes.len() && (bytes[end] as char).is_ascii_digit() {
                    end += 1;
                }
                let value: i64 = input[pos..end].parse().map_err(|_| RemapError::Lex {
                    position: pos,
                    found: c,
                })?;
                pos = end;
                Token::Int(value)
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut end = pos;
                while end < bytes.len()
                    && ((bytes[end] as char).is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                let name = input[pos..end].to_string();
                pos = end;
                Token::Ident(name)
            }
            other => {
                return Err(RemapError::Lex {
                    position: pos,
                    found: other,
                })
            }
        };
        tokens.push(SpannedToken {
            token,
            position: start,
        });
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<Token> {
        lex(input).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn lexes_simple_remapping() {
        assert_eq!(
            kinds("(i,j) -> (j-i,i,j)"),
            vec![
                Token::LParen,
                Token::Ident("i".into()),
                Token::Comma,
                Token::Ident("j".into()),
                Token::RParen,
                Token::Arrow,
                Token::LParen,
                Token::Ident("j".into()),
                Token::Minus,
                Token::Ident("i".into()),
                Token::Comma,
                Token::Ident("i".into()),
                Token::Comma,
                Token::Ident("j".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn lexes_counters_shifts_and_bitops() {
        assert_eq!(
            kinds("#i << 2 >> 1 & 3 | 4 ^ 5"),
            vec![
                Token::Hash,
                Token::Ident("i".into()),
                Token::Shl,
                Token::Int(2),
                Token::Shr,
                Token::Int(1),
                Token::Amp,
                Token::Int(3),
                Token::Pipe,
                Token::Int(4),
                Token::Caret,
                Token::Int(5),
            ]
        );
    }

    #[test]
    fn lexes_numbers_and_identifiers_with_digits() {
        assert_eq!(
            kinds("i1 = 42 in i1"),
            vec![
                Token::Ident("i1".into()),
                Token::Equals,
                Token::Int(42),
                Token::Ident("in".into()),
                Token::Ident("i1".into()),
            ]
        );
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(matches!(
            lex("i $ j"),
            Err(RemapError::Lex { found: '$', .. })
        ));
        assert!(matches!(
            lex("i < j"),
            Err(RemapError::Lex { found: '<', .. })
        ));
        assert!(matches!(
            lex("i > j"),
            Err(RemapError::Lex { found: '>', .. })
        ));
    }

    #[test]
    fn positions_point_at_token_start() {
        let tokens = lex("(i, j)").unwrap();
        assert_eq!(tokens[0].position, 0);
        assert_eq!(tokens[1].position, 1);
        assert_eq!(tokens[3].position, 4);
    }
}
