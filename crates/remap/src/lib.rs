//! Coordinate remapping notation (Section 4 of the PLDI 2020 paper).
//!
//! A *coordinate remapping* describes how a tensor format groups together and
//! orders nonzeros in memory by mapping each component's canonical coordinates
//! to coordinates in a higher-order "remapped" space whose lexicographic order
//! matches the format's storage order. Examples from the paper:
//!
//! * DIA:   `(i,j) -> (j-i,i,j)` — group nonzeros by diagonal,
//! * BCSR:  `(i,j) -> (i/M,j/N,i,j)` — group nonzeros by fixed-size block,
//! * ELL:   `(i,j) -> (k=#i in k,i,j)` — the `k`-th nonzero of each row goes
//!   to slice `k` (`#i` is a per-row counter),
//! * HiCOO-style Morton orders via let-bound bit interleaving.
//!
//! This crate implements the notation end to end: a lexer and recursive
//! descent parser for the grammar of Figure 8, a typed AST, an evaluator with
//! counter state (including the scalar-counter optimisation of Section 4.2),
//! conservative bounds inference for remapped dimensions, and a library of
//! stock remappings for the formats used in the paper.
//!
//! # Example
//!
//! ```
//! use coord_remap::{Remapping, EvalContext};
//!
//! let remap: Remapping = "(i,j) -> (j-i,i,j)".parse()?;
//! let mut ctx = EvalContext::new(&remap);
//! assert_eq!(ctx.apply(&[2, 0])?, vec![-2, 2, 0]);
//! # Ok::<(), coord_remap::RemapError>(())
//! ```

pub mod ast;
pub mod bounds;
pub mod error;
pub mod eval;
pub mod invert;
pub mod parser;
pub mod stock;
pub mod token;

pub use ast::{BinOp, DstIndex, IndexExpr, Remapping};
pub use bounds::{infer_bounds, BoundsEnv};
pub use error::RemapError;
pub use eval::{CounterState, EvalContext, RemappedTriples};
pub use invert::Inverter;
pub use parser::parse_remapping;
