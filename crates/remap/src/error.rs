//! Errors produced while parsing or evaluating coordinate remappings.

use std::error::Error;
use std::fmt;

/// Errors produced by the coordinate remapping notation implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemapError {
    /// The remapping text could not be tokenised.
    Lex {
        /// Byte position of the offending character.
        position: usize,
        /// The offending character.
        found: char,
    },
    /// The token stream did not match the grammar of Figure 8.
    Parse {
        /// Human-readable description of what was expected.
        message: String,
        /// Byte position where parsing failed.
        position: usize,
    },
    /// An identifier was used that is neither a source index variable, a
    /// let-bound variable, nor a bound parameter.
    UnboundVariable(String),
    /// A parameter needed during evaluation was not supplied.
    MissingParameter(String),
    /// The number of source coordinates supplied does not match the remapping.
    ArityMismatch {
        /// Number of source index variables in the remapping.
        expected: usize,
        /// Number of coordinates supplied.
        found: usize,
    },
    /// Division or remainder by zero during evaluation.
    DivisionByZero,
    /// A shift amount was negative or too large.
    InvalidShift(i64),
}

impl fmt::Display for RemapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemapError::Lex { position, found } => {
                write!(f, "unexpected character {found:?} at byte {position}")
            }
            RemapError::Parse { message, position } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            RemapError::UnboundVariable(name) => write!(f, "unbound variable `{name}`"),
            RemapError::MissingParameter(name) => {
                write!(f, "parameter `{name}` was not supplied for evaluation")
            }
            RemapError::ArityMismatch { expected, found } => {
                write!(f, "expected {expected} source coordinates, found {found}")
            }
            RemapError::DivisionByZero => write!(f, "division or remainder by zero"),
            RemapError::InvalidShift(amount) => write!(f, "invalid shift amount {amount}"),
        }
    }
}

impl Error for RemapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(RemapError::UnboundVariable("q".into())
            .to_string()
            .contains("`q`"));
        assert!(RemapError::MissingParameter("N".into())
            .to_string()
            .contains("`N`"));
        assert!(RemapError::ArityMismatch {
            expected: 2,
            found: 3
        }
        .to_string()
        .contains('2'));
        assert!(RemapError::DivisionByZero.to_string().contains("zero"));
        assert!(RemapError::Lex {
            position: 3,
            found: '$'
        }
        .to_string()
        .contains('$'));
        assert!(RemapError::Parse {
            message: "expected `)`".into(),
            position: 7
        }
        .to_string()
        .contains("expected"));
        assert!(RemapError::InvalidShift(-1).to_string().contains("-1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RemapError>();
    }
}
