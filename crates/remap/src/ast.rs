//! Abstract syntax of coordinate remapping notation (Figure 8).

use std::fmt;
use std::str::FromStr;

use crate::error::RemapError;

/// Binary operators usable in remapped coordinate expressions.
///
/// The grammar of Figure 8 admits arithmetic, shift, and bitwise operators;
/// bitwise operators are what make Morton-order (HiCOO-style) remappings
/// expressible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division, truncating toward negative infinity is *not*
    /// used; the generated C code uses truncating division so we do too)
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
}

impl BinOp {
    /// The operator's surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
        }
    }

    /// Binding strength used by the parser and pretty printer. Higher binds
    /// tighter, mirroring the precedence levels of the Figure 8 grammar
    /// (`|` < `^` < `&` < shifts < additive < multiplicative).
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::Xor => 2,
            BinOp::And => 3,
            BinOp::Shl | BinOp::Shr => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div | BinOp::Rem => 6,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// An expression computing one remapped coordinate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IndexExpr {
    /// A source index variable, e.g. `i`.
    Var(String),
    /// A let-bound variable introduced by an enclosing `v = e in ...`.
    LetVar(String),
    /// A symbolic parameter such as a block size `M` or dimension size `N`;
    /// bound at evaluation / code-generation time.
    Param(String),
    /// An integer literal.
    Const(i64),
    /// A counter `#i1...ik`: the number of nonzeros with the same values of
    /// the listed index variables seen so far (Section 4.1). An empty list is
    /// a single global counter.
    Counter(Vec<String>),
    /// A binary operation.
    Binary(BinOp, Box<IndexExpr>, Box<IndexExpr>),
}

impl IndexExpr {
    /// Convenience constructor for a binary operation.
    pub fn binary(op: BinOp, lhs: IndexExpr, rhs: IndexExpr) -> Self {
        IndexExpr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor for a source variable reference.
    pub fn var(name: &str) -> Self {
        IndexExpr::Var(name.to_string())
    }

    /// True when the expression contains a counter anywhere.
    pub fn has_counter(&self) -> bool {
        match self {
            IndexExpr::Counter(_) => true,
            IndexExpr::Binary(_, l, r) => l.has_counter() || r.has_counter(),
            _ => false,
        }
    }

    /// Collects the source variables the expression reads, in first-use order.
    pub fn free_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_free_vars(&mut out);
        out
    }

    fn collect_free_vars(&self, out: &mut Vec<String>) {
        match self {
            IndexExpr::Var(v) if !out.contains(v) => out.push(v.clone()),
            IndexExpr::Var(_) => {}
            IndexExpr::Counter(vs) => {
                for v in vs {
                    if !out.contains(v) {
                        out.push(v.clone());
                    }
                }
            }
            IndexExpr::Binary(_, l, r) => {
                l.collect_free_vars(out);
                r.collect_free_vars(out);
            }
            _ => {}
        }
    }

    /// Collects the parameter names the expression references.
    pub fn params(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_params(&mut out);
        out
    }

    fn collect_params(&self, out: &mut Vec<String>) {
        match self {
            IndexExpr::Param(p) if !out.contains(p) => out.push(p.clone()),
            IndexExpr::Param(_) => {}
            IndexExpr::Binary(_, l, r) => {
                l.collect_params(out);
                r.collect_params(out);
            }
            _ => {}
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent: u8) -> fmt::Result {
        match self {
            IndexExpr::Var(v) | IndexExpr::LetVar(v) | IndexExpr::Param(v) => f.write_str(v),
            IndexExpr::Const(c) => write!(f, "{c}"),
            IndexExpr::Counter(vs) => {
                write!(f, "#{}", vs.join(" "))
            }
            IndexExpr::Binary(op, l, r) => {
                let prec = op.precedence();
                let need_parens = prec < parent;
                if need_parens {
                    f.write_str("(")?;
                }
                l.fmt_prec(f, prec)?;
                write!(f, "{op}")?;
                r.fmt_prec(f, prec + 1)?;
                if need_parens {
                    f.write_str(")")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for IndexExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

/// One destination coordinate: an optional chain of let bindings followed by
/// the coordinate expression (`ivar_let` in Figure 8).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DstIndex {
    /// Let bindings, evaluated in order; later bindings and the body may
    /// reference earlier ones.
    pub lets: Vec<(String, IndexExpr)>,
    /// The expression producing the coordinate.
    pub expr: IndexExpr,
}

impl DstIndex {
    /// A destination index with no let bindings.
    pub fn simple(expr: IndexExpr) -> Self {
        DstIndex {
            lets: Vec::new(),
            expr,
        }
    }

    /// True when this destination coordinate uses a counter.
    pub fn has_counter(&self) -> bool {
        self.expr.has_counter() || self.lets.iter().any(|(_, e)| e.has_counter())
    }
}

impl fmt::Display for DstIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, expr) in &self.lets {
            write!(f, "{name}={expr} in ")?;
        }
        write!(f, "{}", self.expr)
    }
}

/// A complete coordinate remapping statement: `(src...) -> (dst...)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Remapping {
    /// Source index variables (one per dimension of the canonical tensor).
    pub src: Vec<String>,
    /// Destination coordinate expressions (one per dimension of the remapped
    /// tensor).
    pub dst: Vec<DstIndex>,
}

impl Remapping {
    /// Creates a remapping from parts.
    ///
    /// # Panics
    ///
    /// Panics if either side is empty.
    pub fn new(src: Vec<String>, dst: Vec<DstIndex>) -> Self {
        assert!(
            !src.is_empty(),
            "remapping must have at least one source index"
        );
        assert!(
            !dst.is_empty(),
            "remapping must have at least one destination index"
        );
        Remapping { src, dst }
    }

    /// The identity remapping over `order` dimensions with variables
    /// `i1..i_order` (or `i, j, k, l` for low orders, matching the paper's
    /// presentation).
    pub fn identity(order: usize) -> Self {
        let names = canonical_names(order);
        let dst = names
            .iter()
            .map(|n| DstIndex::simple(IndexExpr::Var(n.clone())))
            .collect();
        Remapping::new(names, dst)
    }

    /// Order of the canonical (source) tensor.
    pub fn source_order(&self) -> usize {
        self.src.len()
    }

    /// Order of the remapped (destination) tensor.
    pub fn dest_order(&self) -> usize {
        self.dst.len()
    }

    /// True when any destination coordinate uses a counter.
    pub fn has_counter(&self) -> bool {
        self.dst.iter().any(DstIndex::has_counter)
    }

    /// All parameter names referenced anywhere in the remapping.
    pub fn params(&self) -> Vec<String> {
        let mut out = Vec::new();
        for d in &self.dst {
            for (_, e) in &d.lets {
                for p in e.params() {
                    if !out.contains(&p) {
                        out.push(p);
                    }
                }
            }
            for p in d.expr.params() {
                if !out.contains(&p) {
                    out.push(p);
                }
            }
        }
        out
    }

    /// True when the remapping is the identity on its source variables.
    pub fn is_identity(&self) -> bool {
        self.src.len() == self.dst.len()
            && self
                .src
                .iter()
                .zip(&self.dst)
                .all(|(s, d)| d.lets.is_empty() && d.expr == IndexExpr::Var(s.clone()))
    }
}

impl fmt::Display for Remapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dst: Vec<String> = self.dst.iter().map(|d| d.to_string()).collect();
        write!(f, "({}) -> ({})", self.src.join(","), dst.join(","))
    }
}

impl FromStr for Remapping {
    type Err = RemapError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        crate::parser::parse_remapping(s)
    }
}

/// Canonical index variable names used by [`Remapping::identity`]: `i, j, k, l`
/// for orders up to 4, then `i1, i2, ...`.
pub fn canonical_names(order: usize) -> Vec<String> {
    if order <= 4 {
        ["i", "j", "k", "l"][..order]
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        (1..=order).map(|d| format!("i{d}")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_remapping_roundtrips() {
        let r = Remapping::identity(2);
        assert_eq!(r.to_string(), "(i,j) -> (i,j)");
        assert!(r.is_identity());
        assert!(!r.has_counter());
        assert_eq!(r.source_order(), 2);
        assert_eq!(r.dest_order(), 2);
    }

    #[test]
    fn canonical_names_switch_to_numbered() {
        assert_eq!(canonical_names(3), vec!["i", "j", "k"]);
        assert_eq!(canonical_names(5)[4], "i5");
    }

    #[test]
    fn display_respects_precedence() {
        // (i + j) * 2 must keep its parentheses; i + j * 2 must not gain any.
        let sum = IndexExpr::binary(BinOp::Add, IndexExpr::var("i"), IndexExpr::var("j"));
        let scaled = IndexExpr::binary(BinOp::Mul, sum.clone(), IndexExpr::Const(2));
        assert_eq!(scaled.to_string(), "(i+j)*2");
        let linear = IndexExpr::binary(
            BinOp::Add,
            IndexExpr::var("i"),
            IndexExpr::binary(BinOp::Mul, IndexExpr::var("j"), IndexExpr::Const(2)),
        );
        assert_eq!(linear.to_string(), "i+j*2");
    }

    #[test]
    fn counter_detection() {
        let dst = DstIndex::simple(IndexExpr::Counter(vec!["i".into()]));
        assert!(dst.has_counter());
        let r = Remapping::new(
            vec!["i".into(), "j".into()],
            vec![
                dst,
                DstIndex::simple(IndexExpr::var("i")),
                DstIndex::simple(IndexExpr::var("j")),
            ],
        );
        assert!(r.has_counter());
        assert!(!r.is_identity());
    }

    #[test]
    fn free_vars_and_params() {
        let e = IndexExpr::binary(
            BinOp::Div,
            IndexExpr::var("i"),
            IndexExpr::Param("M".into()),
        );
        assert_eq!(e.free_vars(), vec!["i".to_string()]);
        assert_eq!(e.params(), vec!["M".to_string()]);
    }

    #[test]
    fn dst_index_display_with_lets() {
        let d = DstIndex {
            lets: vec![(
                "r".to_string(),
                IndexExpr::binary(BinOp::Div, IndexExpr::var("i"), IndexExpr::Const(4)),
            )],
            expr: IndexExpr::binary(
                BinOp::And,
                IndexExpr::LetVar("r".into()),
                IndexExpr::Const(1),
            ),
        };
        assert_eq!(d.to_string(), "r=i/4 in r&1");
    }

    #[test]
    #[should_panic]
    fn empty_source_panics() {
        Remapping::new(vec![], vec![DstIndex::simple(IndexExpr::Const(0))]);
    }
}
