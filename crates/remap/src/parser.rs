//! Recursive-descent parser for coordinate remapping notation (Figure 8).

use crate::ast::{BinOp, DstIndex, IndexExpr, Remapping};
use crate::error::RemapError;
use crate::token::{lex, SpannedToken, Token};

/// Parses a remapping statement such as `(i,j) -> (j-i,i,j)`.
///
/// Identifiers are classified as follows: names bound on the left-hand side
/// are source index variables, names bound by `v = e in` are let variables,
/// and any other identifier is a symbolic parameter (e.g. the block sizes `M`
/// and `N` in the BCSR remapping).
///
/// # Errors
///
/// Returns [`RemapError::Lex`] or [`RemapError::Parse`] if the text does not
/// conform to the grammar of Figure 8.
pub fn parse_remapping(input: &str) -> Result<Remapping, RemapError> {
    let tokens = lex(input)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        input_len: input.len(),
    };
    let remapping = parser.parse_remapping()?;
    parser.expect_end()?;
    Ok(remapping)
}

/// Parses a single destination-coordinate expression (an `ivar_let`), given
/// the names of the source index variables. Used by tests and by format
/// specifications that build remappings programmatically.
///
/// # Errors
///
/// Returns an error if the text is not a valid `ivar_let`.
pub fn parse_dst_index(input: &str, src_vars: &[String]) -> Result<DstIndex, RemapError> {
    let tokens = lex(input)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        input_len: input.len(),
    };
    let dst = parser.parse_ivar_let(src_vars)?;
    parser.expect_end()?;
    Ok(dst)
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|t| &t.token)
    }

    fn position(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.position)
            .unwrap_or(self.input_len)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> RemapError {
        RemapError::Parse {
            message: message.into(),
            position: self.position(),
        }
    }

    fn expect(&mut self, expected: &Token, what: &str) -> Result<(), RemapError> {
        match self.peek() {
            Some(t) if t == expected => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.error(format!("expected {what}"))),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, RemapError> {
        match self.peek() {
            Some(Token::Ident(name)) => {
                let name = name.clone();
                self.pos += 1;
                Ok(name)
            }
            _ => Err(self.error(format!("expected {what}"))),
        }
    }

    fn expect_end(&self) -> Result<(), RemapError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.error("unexpected trailing input"))
        }
    }

    fn parse_remapping(&mut self) -> Result<Remapping, RemapError> {
        let src = self.parse_src_indices()?;
        self.expect(&Token::Arrow, "`->`")?;
        let dst = self.parse_dst_indices(&src)?;
        Ok(Remapping::new(src, dst))
    }

    fn parse_src_indices(&mut self) -> Result<Vec<String>, RemapError> {
        self.expect(&Token::LParen, "`(`")?;
        let mut vars = vec![self.expect_ident("a source index variable")?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            vars.push(self.expect_ident("a source index variable")?);
        }
        self.expect(&Token::RParen, "`)`")?;
        for (n, v) in vars.iter().enumerate() {
            if vars[..n].contains(v) {
                return Err(self.error(format!("duplicate source index variable `{v}`")));
            }
            if v == "in" {
                return Err(self.error("`in` cannot be used as an index variable"));
            }
        }
        Ok(vars)
    }

    fn parse_dst_indices(&mut self, src: &[String]) -> Result<Vec<DstIndex>, RemapError> {
        self.expect(&Token::LParen, "`(`")?;
        let mut dst = vec![self.parse_ivar_let(src)?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            dst.push(self.parse_ivar_let(src)?);
        }
        self.expect(&Token::RParen, "`)`")?;
        Ok(dst)
    }

    fn parse_ivar_let(&mut self, src: &[String]) -> Result<DstIndex, RemapError> {
        let mut lets: Vec<(String, IndexExpr)> = Vec::new();
        loop {
            // A let binding starts with `ident =` (and the ident is not a
            // source variable reference inside an expression, because `=`
            // never appears inside expressions).
            let starts_binding = matches!(
                (self.peek(), self.peek2()),
                (Some(Token::Ident(_)), Some(Token::Equals))
            );
            if !starts_binding {
                break;
            }
            let name = self.expect_ident("a let-bound variable name")?;
            if src.contains(&name) {
                return Err(self.error(format!(
                    "let-bound variable `{name}` shadows a source index variable"
                )));
            }
            self.expect(&Token::Equals, "`=`")?;
            let bound_names: Vec<String> = lets.iter().map(|(n, _)| n.clone()).collect();
            let value = self.parse_expr(src, &bound_names)?;
            lets.push((name, value));
            // The `in` keyword separating the binding from what follows.
            match self.advance() {
                Some(Token::Ident(kw)) if kw == "in" => {}
                _ => return Err(self.error("expected `in` after let binding")),
            }
        }
        let bound_names: Vec<String> = lets.iter().map(|(n, _)| n.clone()).collect();
        let expr = self.parse_expr(src, &bound_names)?;
        Ok(DstIndex { lets, expr })
    }

    fn parse_expr(&mut self, src: &[String], lets: &[String]) -> Result<IndexExpr, RemapError> {
        self.parse_binary(src, lets, 1)
    }

    /// Precedence-climbing over the operator levels of Figure 8.
    fn parse_binary(
        &mut self,
        src: &[String],
        lets: &[String],
        min_prec: u8,
    ) -> Result<IndexExpr, RemapError> {
        let mut lhs = if min_prec > BinOp::Mul.precedence() {
            self.parse_factor(src, lets)?
        } else {
            self.parse_binary(src, lets, min_prec + 1)?
        };
        loop {
            let op = match self.peek() {
                Some(Token::Pipe) => BinOp::Or,
                Some(Token::Caret) => BinOp::Xor,
                Some(Token::Amp) => BinOp::And,
                Some(Token::Shl) => BinOp::Shl,
                Some(Token::Shr) => BinOp::Shr,
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Rem,
                _ => break,
            };
            if op.precedence() != min_prec {
                break;
            }
            self.pos += 1;
            let rhs = if min_prec >= BinOp::Mul.precedence() {
                self.parse_factor(src, lets)?
            } else {
                self.parse_binary(src, lets, min_prec + 1)?
            };
            lhs = IndexExpr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_factor(&mut self, src: &[String], lets: &[String]) -> Result<IndexExpr, RemapError> {
        match self.peek().cloned() {
            Some(Token::LParen) => {
                self.pos += 1;
                let inner = self.parse_expr(src, lets)?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(inner)
            }
            Some(Token::Hash) => {
                self.pos += 1;
                // Figure 8: `ivar_counter := '#' { ivar }` — the indexing
                // variables are juxtaposed (e.g. `#i j`), so a following comma
                // always separates destination coordinates instead.
                let mut vars = Vec::new();
                while let Some(Token::Ident(name)) = self.peek() {
                    if name == "in" || !src.contains(name) {
                        break;
                    }
                    vars.push(name.clone());
                    self.pos += 1;
                }
                Ok(IndexExpr::Counter(vars))
            }
            Some(Token::Int(value)) => {
                self.pos += 1;
                Ok(IndexExpr::Const(value))
            }
            Some(Token::Minus) => {
                // Allow a leading negation of a factor (e.g. `-1`).
                self.pos += 1;
                let inner = self.parse_factor(src, lets)?;
                Ok(IndexExpr::binary(BinOp::Sub, IndexExpr::Const(0), inner))
            }
            Some(Token::Ident(name)) => {
                if name == "in" {
                    return Err(self.error("`in` cannot appear inside an expression"));
                }
                self.pos += 1;
                if src.contains(&name) {
                    Ok(IndexExpr::Var(name))
                } else if lets.contains(&name) {
                    Ok(IndexExpr::LetVar(name))
                } else {
                    Ok(IndexExpr::Param(name))
                }
            }
            _ => Err(self.error("expected an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_dia_remapping() {
        let r = parse_remapping("(i,j) -> (j-i,i,j)").unwrap();
        assert_eq!(r.src, vec!["i", "j"]);
        assert_eq!(r.dest_order(), 3);
        assert_eq!(r.dst[0].expr.to_string(), "j-i");
        assert_eq!(r.to_string(), "(i,j) -> (j-i,i,j)");
    }

    #[test]
    fn parses_bcsr_remapping_with_parameters() {
        let r = parse_remapping("(i,j) -> (i/M,j/N,i,j)").unwrap();
        assert_eq!(r.params(), vec!["M".to_string(), "N".to_string()]);
        assert_eq!(
            r.dst[0].expr,
            IndexExpr::binary(
                BinOp::Div,
                IndexExpr::var("i"),
                IndexExpr::Param("M".into()),
            )
        );
    }

    #[test]
    fn parses_ell_remapping_with_counter_and_let() {
        let r = parse_remapping("(i,j) -> (k=#i in k,i,j)").unwrap();
        assert!(r.has_counter());
        assert_eq!(r.dst[0].lets.len(), 1);
        assert_eq!(r.dst[0].lets[0].0, "k");
        assert_eq!(r.dst[0].lets[0].1, IndexExpr::Counter(vec!["i".into()]));
        assert_eq!(r.dst[0].expr, IndexExpr::LetVar("k".into()));
    }

    #[test]
    fn parses_bare_counter_destination() {
        let r = parse_remapping("(i,j) -> (#i,i,j)").unwrap();
        assert_eq!(r.dst[0].expr, IndexExpr::Counter(vec!["i".into()]));
    }

    #[test]
    fn parses_multi_variable_counter() {
        let r = parse_remapping("(i,j,k) -> (#i j,i,j,k)").unwrap();
        assert_eq!(
            r.dst[0].expr,
            IndexExpr::Counter(vec!["i".into(), "j".into()])
        );
        // The remaining destination coordinates are the plain variables.
        assert_eq!(r.dst.len(), 4);
        assert_eq!(r.dst[1].expr, IndexExpr::var("i"));
    }

    #[test]
    fn parses_morton_style_nested_lets_and_bitops() {
        let text = "(i,j) -> (r=i/4 in s=j/4 in (r&1)|((s&1)<<1),i/4,j/4,i%4,j%4)";
        let r = parse_remapping(text).unwrap();
        assert_eq!(r.dest_order(), 5);
        assert_eq!(r.dst[0].lets.len(), 2);
        assert_eq!(r.dst[0].expr.to_string(), "r&1|(s&1)<<1");
    }

    #[test]
    fn respects_operator_precedence() {
        let r = parse_remapping("(i,j) -> (i+j*2,i)").unwrap();
        assert_eq!(
            r.dst[0].expr,
            IndexExpr::binary(
                BinOp::Add,
                IndexExpr::var("i"),
                IndexExpr::binary(BinOp::Mul, IndexExpr::var("j"), IndexExpr::Const(2)),
            )
        );
        let r = parse_remapping("(i,j) -> (i&3|j,i)").unwrap();
        // `|` binds loosest.
        match &r.dst[0].expr {
            IndexExpr::Binary(BinOp::Or, _, _) => {}
            other => panic!("expected top-level `|`, got {other:?}"),
        }
    }

    #[test]
    fn parses_leading_negation() {
        let r = parse_remapping("(i,j) -> (-1+i,j)").unwrap();
        assert_eq!(r.dst[0].expr.to_string(), "0-1+i");
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(parse_remapping("(i,j) (j,i)").is_err());
        assert!(parse_remapping("(i,j) -> ()").is_err());
        assert!(parse_remapping("() -> (i)").is_err());
        assert!(parse_remapping("(i,i) -> (i)").is_err());
        assert!(parse_remapping("(i,j) -> (k=#i k,i,j)").is_err());
        assert!(parse_remapping("(i,j) -> (i,j) extra").is_err());
        assert!(parse_remapping("(in,j) -> (j)").is_err());
        assert!(parse_remapping("(i,j) -> (i=j in i,j)").is_err());
    }

    #[test]
    fn parse_dst_index_standalone() {
        let src = vec!["i".to_string(), "j".to_string()];
        let d = parse_dst_index("r=i/2 in r*2+j", &src).unwrap();
        assert_eq!(d.lets.len(), 1);
        assert_eq!(d.expr.to_string(), "r*2+j");
        assert!(parse_dst_index("r=", &src).is_err());
    }

    #[test]
    fn roundtrip_through_display() {
        for text in [
            "(i,j) -> (j-i,i,j)",
            "(i,j) -> (i/M,j/N,i,j)",
            "(i,j) -> (k=#i in k,i,j)",
            "(i,j,k) -> (i,j,k)",
        ] {
            let r = parse_remapping(text).unwrap();
            let reparsed = parse_remapping(&r.to_string()).unwrap();
            assert_eq!(r, reparsed, "roundtrip failed for {text}");
        }
    }
}
