//! Point inversion of coordinate remappings.
//!
//! A remapping sends canonical coordinates into the format's storage order;
//! reading a format *back* (making an assembled custom tensor a conversion
//! source) needs the opposite direction: given a storage coordinate tuple,
//! recover the canonical coordinates it came from.
//!
//! General remappings are not invertible (a counter `#i` erases the column,
//! a Morton code folds two variables into one), but every remapping whose
//! destination preserves its sources *is* — and in practice format
//! remappings do preserve their sources, because the innermost storage
//! dimensions must still address the original tensor. Two recovery shapes
//! cover the entire stock zoo and the builder formats we care about:
//!
//! 1. **projection** — a destination dimension is literally the source
//!    variable (`(i,j) -> (j-i,i,j)` keeps both `i` and `j`);
//! 2. **div/rem recombination** — a pair of destination dimensions splits the
//!    variable by a positive constant (`(i,j) -> (i/2,j/2,i%2,j%2)` stores
//!    `i` as quotient and remainder; `i = (i/2)*2 + i%2`).
//!
//! [`Remapping::inverter`] analyses the AST once and returns a reusable
//! [`Inverter`]; remappings outside the two shapes (counters only, folded
//! variables) return `None` and the format stays target-only.

use crate::ast::{BinOp, IndexExpr, Remapping};

/// How one source variable is recovered from a storage coordinate tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Recovery {
    /// The variable appears verbatim at this destination dimension.
    Direct(usize),
    /// The variable was split as `var / c` (at `div`) and `var % c` (at
    /// `rem`) for a positive constant `c`; recombine as `dst[div]*c +
    /// dst[rem]`.
    DivRem { div: usize, rem: usize, c: i64 },
}

/// A precomputed inverse of a [`Remapping`], mapping destination (storage)
/// coordinate tuples back to canonical source coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inverter {
    per_src: Vec<Recovery>,
}

impl Inverter {
    /// Recovers the canonical coordinates of one storage coordinate tuple.
    ///
    /// # Panics
    ///
    /// Panics if `dest` is shorter than the remapping's destination order
    /// (the tuple must come from the same remapping the inverter was built
    /// for).
    pub fn apply(&self, dest: &[i64]) -> Vec<i64> {
        self.per_src
            .iter()
            .map(|r| match *r {
                Recovery::Direct(d) => dest[d],
                Recovery::DivRem { div, rem, c } => dest[div] * c + dest[rem],
            })
            .collect()
    }
}

/// Matches `expr` as `op(Var(v), Const(c))` and returns `(v, c)`.
fn as_var_op_const(expr: &IndexExpr, op: BinOp) -> Option<(&str, i64)> {
    match expr {
        IndexExpr::Binary(o, lhs, rhs) if *o == op => match (lhs.as_ref(), rhs.as_ref()) {
            (IndexExpr::Var(v), IndexExpr::Const(c)) => Some((v.as_str(), *c)),
            _ => None,
        },
        _ => None,
    }
}

impl Remapping {
    /// Builds a point inverse of the remapping, or `None` when some source
    /// variable cannot be recovered from the destination dimensions (see the
    /// module docs for the recovery shapes supported).
    pub fn inverter(&self) -> Option<Inverter> {
        let mut per_src = Vec::with_capacity(self.src.len());
        for var in &self.src {
            let recovery = self.recover(var)?;
            per_src.push(recovery);
        }
        Some(Inverter { per_src })
    }

    /// True when [`Remapping::inverter`] would succeed.
    pub fn is_invertible(&self) -> bool {
        self.inverter().is_some()
    }

    fn recover(&self, var: &str) -> Option<Recovery> {
        // Projection: some destination dimension is exactly `var`. Let
        // bindings are ignored — a let-wrapped body is no longer a plain
        // projection.
        for (d, dst) in self.dst.iter().enumerate() {
            if dst.lets.is_empty() && dst.expr == IndexExpr::Var(var.to_string()) {
                return Some(Recovery::Direct(d));
            }
        }
        // Div/rem split by the same positive constant.
        for (d_div, dst_div) in self.dst.iter().enumerate() {
            if !dst_div.lets.is_empty() {
                continue;
            }
            let Some((v, c)) = as_var_op_const(&dst_div.expr, BinOp::Div) else {
                continue;
            };
            if v != var || c <= 0 {
                continue;
            }
            for (d_rem, dst_rem) in self.dst.iter().enumerate() {
                if !dst_rem.lets.is_empty() {
                    continue;
                }
                if as_var_op_const(&dst_rem.expr, BinOp::Rem) == Some((v, c)) {
                    return Some(Recovery::DivRem {
                        div: d_div,
                        rem: d_rem,
                        c,
                    });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::EvalContext;
    use crate::parser::parse_remapping;
    use crate::stock;

    fn roundtrips(remap: &Remapping, src: &[i64]) {
        let inv = remap.inverter().expect("invertible");
        let mut ctx = EvalContext::new(remap);
        let dest = ctx.apply(src).expect("remapping applies");
        assert_eq!(inv.apply(&dest), src, "{remap}: {src:?}");
    }

    #[test]
    fn stock_remappings_are_invertible() {
        for remap in [
            stock::row_major_matrix(),
            stock::column_major_matrix(),
            stock::dia(),
            stock::ell(),
            stock::jad(),
            stock::bcsr_with_blocks(2, 3),
            stock::hicoo_matrix(2, 4),
        ] {
            assert!(remap.is_invertible(), "{remap}");
            for point in [[0i64, 0], [3, 5], [7, 2]] {
                roundtrips(&remap, &point);
            }
        }
        assert!(Remapping::identity(3).is_invertible());
        roundtrips(&Remapping::identity(3), &[1, 4, 2]);
    }

    #[test]
    fn div_rem_recombination_recovers_block_coordinates() {
        let remap = parse_remapping("(i,j) -> (i/2,j/4,i%2,j%4)").unwrap();
        let inv = remap.inverter().unwrap();
        // Storage tuple (bi, bj, li, lj) = (3, 1, 1, 2) -> (i, j) = (7, 6).
        assert_eq!(inv.apply(&[3, 1, 1, 2]), vec![7, 6]);
        for i in 0..9i64 {
            for j in 0..9i64 {
                roundtrips(&remap, &[i, j]);
            }
        }
    }

    #[test]
    fn folded_and_counter_only_remappings_are_not_invertible() {
        // The column is erased: only a counter and the row survive.
        let remap = parse_remapping("(i,j) -> (#i,i)").unwrap();
        assert!(!remap.is_invertible());
        // Folded: i+j cannot be split back.
        let remap = parse_remapping("(i,j) -> (i+j,i*2)").unwrap();
        assert!(!remap.is_invertible());
        // A div without the matching rem loses the low bits.
        let remap = parse_remapping("(i,j) -> (i/2,j)").unwrap();
        assert!(!remap.is_invertible());
        // Let-wrapped projections do not count as projections.
        let remap = parse_remapping("(i,j) -> (r=i in r,j)").unwrap();
        assert!(!remap.is_invertible());
    }

    #[test]
    fn negative_coordinates_recombine_exactly() {
        // DIA-style tuples carry a negative offset dimension; projection
        // recovery must pass negatives through untouched.
        let remap = stock::dia();
        roundtrips(&remap, &[5, 1]);
        let inv = remap.inverter().unwrap();
        assert_eq!(inv.apply(&[-4, 5, 1]), vec![5, 1]);
    }
}
