//! Error types shared by the tensor substrate.

use std::error::Error;
use std::fmt;

use crate::coord::Shape;

/// Errors raised when constructing or validating tensors.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// A coordinate lies outside the tensor shape.
    OutOfBounds {
        /// The offending coordinate.
        coord: Vec<i64>,
        /// The shape it was checked against.
        shape: Shape,
    },
    /// A coordinate tuple had the wrong number of dimensions.
    OrderMismatch {
        /// Expected tensor order.
        expected: usize,
        /// Order of the offending coordinate.
        found: usize,
    },
    /// Two tensors that must have identical shapes do not.
    ShapeMismatch {
        /// Shape of the left operand.
        left: Shape,
        /// Shape of the right operand.
        right: Shape,
    },
    /// A structurally invalid format container (e.g. a non-monotone `pos`
    /// array) was encountered.
    InvalidStructure(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::OutOfBounds { coord, shape } => {
                write!(f, "coordinate {coord:?} out of bounds for shape {shape}")
            }
            TensorError::OrderMismatch { expected, found } => {
                write!(
                    f,
                    "expected order-{expected} coordinate, found order-{found}"
                )
            }
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left} vs {right}")
            }
            TensorError::InvalidStructure(msg) => write!(f, "invalid structure: {msg}"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TensorError::OutOfBounds {
            coord: vec![5, 0],
            shape: Shape::matrix(4, 6),
        };
        assert!(e.to_string().contains("out of bounds"));
        let e = TensorError::OrderMismatch {
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains("order-2"));
        let e = TensorError::ShapeMismatch {
            left: Shape::matrix(1, 2),
            right: Shape::matrix(2, 1),
        };
        assert!(e.to_string().contains("mismatch"));
        let e = TensorError::InvalidStructure("pos not monotone".into());
        assert!(e.to_string().contains("pos not monotone"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
