//! The running-example matrix used throughout the paper (Figures 1, 2, 3, 5,
//! 9, 10).
//!
//! The 4x6 matrix of Figure 1 has nine nonzeros lying on three diagonals
//! (offsets -2, 0 and 1, cf. Figure 5). The coordinates below are
//! reconstructed from the attribute-query results of Figure 10 (row nonzero
//! counts `[2, 2, 2, 3]`, per-row min/max column coordinates, and the
//! nonempty-column bit set) and the values from the ELL layout in Figure 2d,
//! whose `vals` array reads `5 7 8 4 | 1 3 2 9 | 0 0 0 6` (slice-major):
//!
//! ```text
//!         cols:  0  1  2  3  4  5
//! row 0:         5  1  .  .  .  .
//! row 1:         .  7  3  .  .  .
//! row 2:         8  .  2  .  .  .
//! row 3:         .  4  .  9  6  .
//! ```

use crate::triples::SparseTriples;
use crate::Value;

/// Row, column, and value lists of the Figure 1 / Figure 2 example matrix, in
/// row-major (COO) order.
pub const FIGURE1_ENTRIES: [(usize, usize, Value); 9] = [
    (0, 0, 5.0),
    (0, 1, 1.0),
    (1, 1, 7.0),
    (1, 2, 3.0),
    (2, 0, 8.0),
    (2, 2, 2.0),
    (3, 1, 4.0),
    (3, 3, 9.0),
    (3, 4, 6.0),
];

/// Number of rows of the example matrix.
pub const FIGURE1_ROWS: usize = 4;
/// Number of columns of the example matrix.
pub const FIGURE1_COLS: usize = 6;

/// Builds the 4x6 example matrix of Figure 1 as canonical triples, in
/// row-major (COO) order.
pub fn figure1_matrix() -> SparseTriples {
    SparseTriples::from_matrix_entries(FIGURE1_ROWS, FIGURE1_COLS, FIGURE1_ENTRIES)
        .expect("example entries are in bounds")
}

/// Coordinates and values of the running order-3 example tensor used by the
/// rank-N conversion tests: a 3x4x5 tensor with eight nonzeros spread over
/// three root slices, deliberately listed *out* of lexicographic order (COO
/// inputs are not assumed sorted).
pub const EXAMPLE3_ENTRIES: [(usize, usize, usize, Value); 8] = [
    (2, 0, 1, 6.0),
    (0, 0, 0, 1.0),
    (0, 2, 4, 3.0),
    (2, 3, 0, 7.0),
    (0, 0, 3, 2.0),
    (2, 0, 4, 5.0),
    (1, 1, 2, 4.0),
    (2, 3, 3, 8.0),
];

/// Shape of the order-3 example tensor.
pub const EXAMPLE3_DIMS: [usize; 3] = [3, 4, 5];

/// Builds the 3x4x5 order-3 example tensor as canonical triples, preserving
/// the (unsorted) entry order of [`EXAMPLE3_ENTRIES`].
pub fn example3_tensor() -> SparseTriples {
    SparseTriples::from_entries(
        crate::Shape::new(EXAMPLE3_DIMS.to_vec()),
        EXAMPLE3_ENTRIES
            .iter()
            .map(|&(i, j, k, v)| (vec![i as i64, j as i64, k as i64], v)),
    )
    .expect("example entries are in bounds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_matrix_shape_and_nnz() {
        let m = figure1_matrix();
        assert_eq!(m.shape().rows(), 4);
        assert_eq!(m.shape().cols(), 6);
        assert_eq!(m.nnz(), 9);
        assert!(m.is_sorted());
    }

    #[test]
    fn example_matrix_values_match_figure2() {
        let m = figure1_matrix();
        assert_eq!(m.get(&[0, 0]), 5.0);
        assert_eq!(m.get(&[1, 2]), 3.0);
        assert_eq!(m.get(&[3, 4]), 6.0);
        assert_eq!(m.get(&[2, 1]), 0.0);
    }

    #[test]
    fn example_matrix_row_counts_match_figure10() {
        // Figure 10 (left): count(j) per row is [2, 2, 2, 3].
        let m = figure1_matrix();
        let mut per_row = [0usize; 4];
        for t in m.iter() {
            per_row[t.coord[0] as usize] += 1;
        }
        assert_eq!(per_row, [2, 2, 2, 3]);
    }

    #[test]
    fn example_tensor_shape_and_values() {
        let t = example3_tensor();
        assert_eq!(t.order(), 3);
        assert_eq!(t.shape().dims(), &[3, 4, 5]);
        assert_eq!(t.nnz(), 8);
        assert!(!t.is_sorted());
        assert_eq!(t.get(&[2, 3, 0]), 7.0);
        assert_eq!(t.get(&[1, 1, 2]), 4.0);
        assert_eq!(t.get(&[1, 0, 0]), 0.0);
    }

    #[test]
    fn example_matrix_diagonals_match_figure5() {
        // Figure 5: the nonzero diagonals have offsets -2, 0 and 1.
        let m = figure1_matrix();
        let mut offsets: Vec<i64> = m.iter().map(|t| t.coord[1] - t.coord[0]).collect();
        offsets.sort_unstable();
        offsets.dedup();
        assert_eq!(offsets, vec![-2, 0, 1]);
    }
}
