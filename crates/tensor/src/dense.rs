//! Dense matrices, used as the ground-truth representation in tests and as
//! the output of dense level formats.

use crate::coord::Shape;
use crate::error::TensorError;
use crate::Value;

/// A dense, row-major matrix of [`Value`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Value>,
}

impl DenseMatrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidStructure`] if `data.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<Value>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::InvalidStructure(format!(
                "expected {} values for a {rows}x{cols} matrix, got {}",
                rows * cols,
                data.len()
            )));
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The matrix shape.
    pub fn shape(&self) -> Shape {
        Shape::matrix(self.rows, self.cols)
    }

    /// The value at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> Value {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        self.data[i * self.cols + j]
    }

    /// Mutable access to the value at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn get_mut(&mut self, i: usize, j: usize) -> &mut Value {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }

    /// Sets the value at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn set(&mut self, i: usize, j: usize, v: Value) {
        *self.get_mut(i, j) = v;
    }

    /// The underlying row-major buffer.
    pub fn data(&self) -> &[Value] {
        &self.data
    }

    /// Number of nonzero entries.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }

    /// Dense matrix-vector product `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn spmv(&self, x: &[Value]) -> Vec<Value> {
        assert_eq!(x.len(), self.cols, "vector length mismatch");
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Iterates over nonzero entries as `(row, col, value)`.
    pub fn iter_nonzeros(&self) -> impl Iterator<Item = (usize, usize, Value)> + '_ {
        self.data.iter().enumerate().filter_map(move |(off, &v)| {
            if v != 0.0 {
                Some((off / self.cols, off % self.cols, v))
            } else {
                None
            }
        })
    }

    /// Maximum absolute element-wise difference to another matrix.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> Value {
        assert_eq!(self.rows, other.rows, "row count mismatch");
        assert_eq!(self.cols, other.cols, "column count mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, Value::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut m = DenseMatrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.nnz(), 0);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.shape(), Shape::matrix(2, 3));
    }

    #[test]
    fn from_row_major_validates_length() {
        assert!(DenseMatrix::from_row_major(2, 2, vec![1.0; 3]).is_err());
        let m = DenseMatrix::from_row_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn spmv_matches_manual_computation() {
        let m = DenseMatrix::from_row_major(2, 3, vec![1.0, 0.0, 2.0, 0.0, 3.0, 0.0]).unwrap();
        let y = m.spmv(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![7.0, 6.0]);
    }

    #[test]
    #[should_panic]
    fn spmv_rejects_wrong_length() {
        DenseMatrix::zeros(2, 3).spmv(&[1.0, 2.0]);
    }

    #[test]
    fn iter_nonzeros_yields_coordinates() {
        let m = DenseMatrix::from_row_major(2, 2, vec![0.0, 1.0, 2.0, 0.0]).unwrap();
        let nz: Vec<_> = m.iter_nonzeros().collect();
        assert_eq!(nz, vec![(0, 1, 1.0), (1, 0, 2.0)]);
    }

    #[test]
    fn max_abs_diff_measures_divergence() {
        let a = DenseMatrix::from_row_major(1, 2, vec![1.0, 2.0]).unwrap();
        let b = DenseMatrix::from_row_major(1, 2, vec![1.5, 2.0]).unwrap();
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }

    #[test]
    #[should_panic]
    fn get_out_of_bounds_panics() {
        DenseMatrix::zeros(1, 1).get(0, 1);
    }
}
