//! Order-`N` coordinate/value lists (the canonical tensor representation).

use std::collections::HashMap;

use crate::coord::{lex_cmp, Coord, Shape};
use crate::dense::DenseMatrix;
use crate::error::TensorError;
use crate::Value;

/// One stored component: a coordinate tuple and its value.
#[derive(Debug, Clone, PartialEq)]
pub struct Triple {
    /// The component's coordinates, one per tensor dimension.
    pub coord: Coord,
    /// The component's value.
    pub value: Value,
}

impl Triple {
    /// Creates a triple from a coordinate and value.
    pub fn new(coord: Coord, value: Value) -> Self {
        Triple { coord, value }
    }
}

/// An order-`N` sparse tensor stored as an unordered list of coordinates and
/// values.
///
/// `SparseTriples` is the *canonical* representation the paper's coordinate
/// remappings are defined over: every concrete format in the workspace can be
/// converted to and from it, and it is the ground-truth representation used to
/// check conversions in tests.
///
/// The list is not required to be sorted or duplicate-free; [`SparseTriples::sort`]
/// and [`SparseTriples::sum_duplicates`] establish those properties when needed.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseTriples {
    shape: Shape,
    triples: Vec<Triple>,
}

impl SparseTriples {
    /// Creates an empty tensor with the given shape.
    pub fn new(shape: Shape) -> Self {
        SparseTriples {
            shape,
            triples: Vec::new(),
        }
    }

    /// Creates an empty tensor with the given shape, reserving room for `cap`
    /// nonzeros.
    pub fn with_capacity(shape: Shape, cap: usize) -> Self {
        SparseTriples {
            shape,
            triples: Vec::with_capacity(cap),
        }
    }

    /// Builds a tensor from parallel coordinate / value lists.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::OutOfBounds`] or [`TensorError::OrderMismatch`]
    /// if any coordinate is invalid for `shape`.
    pub fn from_entries(
        shape: Shape,
        entries: impl IntoIterator<Item = (Coord, Value)>,
    ) -> Result<Self, TensorError> {
        let mut t = SparseTriples::new(shape);
        for (coord, value) in entries {
            t.push(coord, value)?;
        }
        Ok(t)
    }

    /// Builds a matrix from `(row, col, value)` tuples.
    ///
    /// # Errors
    ///
    /// Returns an error if any coordinate is out of bounds.
    pub fn from_matrix_entries(
        rows: usize,
        cols: usize,
        entries: impl IntoIterator<Item = (usize, usize, Value)>,
    ) -> Result<Self, TensorError> {
        SparseTriples::from_entries(
            Shape::matrix(rows, cols),
            entries
                .into_iter()
                .map(|(i, j, v)| (vec![i as i64, j as i64], v)),
        )
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The tensor's order (number of dimensions).
    pub fn order(&self) -> usize {
        self.shape.order()
    }

    /// The number of stored components.
    pub fn nnz(&self) -> usize {
        self.triples.len()
    }

    /// Returns true when no components are stored.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Appends a component.
    ///
    /// # Errors
    ///
    /// Returns an error if `coord` does not match the shape.
    pub fn push(&mut self, coord: Coord, value: Value) -> Result<(), TensorError> {
        if coord.len() != self.shape.order() {
            return Err(TensorError::OrderMismatch {
                expected: self.shape.order(),
                found: coord.len(),
            });
        }
        if !self.shape.contains(&coord) {
            return Err(TensorError::OutOfBounds {
                coord,
                shape: self.shape.clone(),
            });
        }
        self.triples.push(Triple::new(coord, value));
        Ok(())
    }

    /// Iterates over stored components.
    pub fn iter(&self) -> impl Iterator<Item = &Triple> + '_ {
        self.triples.iter()
    }

    /// The stored components as a slice.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Consumes the tensor and returns its components.
    pub fn into_triples(self) -> Vec<Triple> {
        self.triples
    }

    /// Sorts components lexicographically by coordinate (stable).
    pub fn sort(&mut self) {
        self.triples.sort_by(|a, b| lex_cmp(&a.coord, &b.coord));
    }

    /// Returns a sorted copy.
    pub fn sorted(&self) -> Self {
        let mut c = self.clone();
        c.sort();
        c
    }

    /// Returns true when components are sorted lexicographically by coordinate.
    pub fn is_sorted(&self) -> bool {
        self.triples
            .windows(2)
            .all(|w| lex_cmp(&w[0].coord, &w[1].coord) != std::cmp::Ordering::Greater)
    }

    /// Sums duplicate coordinates together, leaving a sorted, duplicate-free
    /// component list.
    pub fn sum_duplicates(&mut self) {
        self.sort();
        let mut out: Vec<Triple> = Vec::with_capacity(self.triples.len());
        for t in self.triples.drain(..) {
            match out.last_mut() {
                Some(last) if last.coord == t.coord => last.value += t.value,
                _ => out.push(t),
            }
        }
        self.triples = out;
    }

    /// Removes stored components whose value is exactly zero.
    pub fn prune_zeros(&mut self) {
        self.triples.retain(|t| t.value != 0.0);
    }

    /// Returns the value stored at `coord`, summing duplicates, or `0.0`.
    pub fn get(&self, coord: &[i64]) -> Value {
        self.triples
            .iter()
            .filter(|t| t.coord == coord)
            .map(|t| t.value)
            .sum()
    }

    /// Permutes the dimensions of every coordinate (e.g. `[1, 0]` transposes a
    /// matrix).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..order`.
    pub fn permute_dims(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.order(), "permutation order mismatch");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(p < perm.len() && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        let shape = Shape::new(perm.iter().map(|&p| self.shape.dim(p)).collect());
        let triples = self
            .triples
            .iter()
            .map(|t| Triple::new(perm.iter().map(|&p| t.coord[p]).collect(), t.value))
            .collect();
        SparseTriples { shape, triples }
    }

    /// Converts to a dense matrix (order-2 tensors only), summing duplicates.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not order 2.
    pub fn to_dense(&self) -> DenseMatrix {
        assert_eq!(self.order(), 2, "to_dense requires an order-2 tensor");
        let mut d = DenseMatrix::zeros(self.shape.rows(), self.shape.cols());
        for t in &self.triples {
            let (i, j) = (t.coord[0] as usize, t.coord[1] as usize);
            *d.get_mut(i, j) += t.value;
        }
        d
    }

    /// Builds a map from coordinate to accumulated value (used by tests for
    /// order-insensitive equality).
    pub fn to_map(&self) -> HashMap<Coord, Value> {
        let mut map: HashMap<Coord, Value> = HashMap::with_capacity(self.triples.len());
        for t in &self.triples {
            *map.entry(t.coord.clone()).or_insert(0.0) += t.value;
        }
        map.retain(|_, v| *v != 0.0);
        map
    }

    /// Structural + value equality that ignores component ordering and
    /// duplicate splitting.
    pub fn same_values(&self, other: &SparseTriples) -> bool {
        self.shape == other.shape && self.to_map() == other.to_map()
    }
}

impl Extend<(Coord, Value)> for SparseTriples {
    fn extend<T: IntoIterator<Item = (Coord, Value)>>(&mut self, iter: T) {
        for (coord, value) in iter {
            self.push(coord, value)
                .expect("coordinate out of bounds in Extend");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseTriples {
        SparseTriples::from_matrix_entries(
            3,
            3,
            vec![(2, 1, 4.0), (0, 0, 1.0), (1, 2, 3.0), (0, 2, 2.0)],
        )
        .unwrap()
    }

    #[test]
    fn push_validates_bounds_and_order() {
        let mut t = SparseTriples::new(Shape::matrix(2, 2));
        assert!(t.push(vec![1, 1], 1.0).is_ok());
        assert!(matches!(
            t.push(vec![2, 0], 1.0),
            Err(TensorError::OutOfBounds { .. })
        ));
        assert!(matches!(
            t.push(vec![0], 1.0),
            Err(TensorError::OrderMismatch { .. })
        ));
    }

    #[test]
    fn sort_orders_lexicographically() {
        let mut t = sample();
        assert!(!t.is_sorted());
        t.sort();
        assert!(t.is_sorted());
        let coords: Vec<_> = t.iter().map(|t| (t.coord[0], t.coord[1])).collect();
        assert_eq!(coords, vec![(0, 0), (0, 2), (1, 2), (2, 1)]);
    }

    #[test]
    fn sum_duplicates_merges() {
        let mut t =
            SparseTriples::from_matrix_entries(2, 2, vec![(0, 1, 1.0), (0, 1, 2.5), (1, 0, 3.0)])
                .unwrap();
        t.sum_duplicates();
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.get(&[0, 1]), 3.5);
        assert_eq!(t.get(&[1, 0]), 3.0);
    }

    #[test]
    fn prune_zeros_removes_explicit_zeros() {
        let mut t =
            SparseTriples::from_matrix_entries(2, 2, vec![(0, 0, 0.0), (1, 1, 2.0)]).unwrap();
        t.prune_zeros();
        assert_eq!(t.nnz(), 1);
    }

    #[test]
    fn permute_dims_transposes() {
        let t = sample();
        let tt = t.permute_dims(&[1, 0]);
        assert_eq!(tt.shape(), &Shape::matrix(3, 3));
        assert_eq!(tt.get(&[1, 2]), 4.0);
        assert_eq!(tt.get(&[2, 1]), 3.0);
    }

    #[test]
    #[should_panic]
    fn permute_dims_rejects_bad_permutation() {
        sample().permute_dims(&[0, 0]);
    }

    #[test]
    fn to_dense_matches_entries() {
        let d = sample().to_dense();
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(0, 2), 2.0);
        assert_eq!(d.get(1, 2), 3.0);
        assert_eq!(d.get(2, 1), 4.0);
        assert_eq!(d.get(2, 2), 0.0);
    }

    #[test]
    fn same_values_is_order_insensitive() {
        let a = sample();
        let b = sample().sorted();
        assert!(a.same_values(&b));
        let mut c = sample();
        c.push(vec![0, 1], 9.0).unwrap();
        assert!(!a.same_values(&c));
    }

    #[test]
    fn same_values_merges_duplicates() {
        let a = SparseTriples::from_matrix_entries(2, 2, vec![(0, 0, 3.0)]).unwrap();
        let b = SparseTriples::from_matrix_entries(2, 2, vec![(0, 0, 1.0), (0, 0, 2.0)]).unwrap();
        assert!(a.same_values(&b));
    }

    #[test]
    fn extend_appends_entries() {
        let mut t = SparseTriples::new(Shape::matrix(2, 2));
        t.extend(vec![(vec![0, 0], 1.0), (vec![1, 1], 2.0)]);
        assert_eq!(t.nnz(), 2);
    }

    #[test]
    fn get_sums_duplicates() {
        let t = SparseTriples::from_matrix_entries(2, 2, vec![(0, 0, 1.0), (0, 0, 4.0)]).unwrap();
        assert_eq!(t.get(&[0, 0]), 5.0);
        assert_eq!(t.get(&[1, 1]), 0.0);
    }
}
