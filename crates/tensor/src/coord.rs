//! Coordinates and shapes for order-`N` tensors.

use std::fmt;

/// A coordinate tuple identifying one component of an order-`N` tensor.
///
/// Coordinates are stored as `i64` rather than `usize` because coordinate
/// *remappings* (Section 4 of the paper) routinely produce negative
/// intermediate coordinates — e.g. the DIA remapping `(i,j) -> (j-i,i,j)`
/// yields offsets in `[-(N-1), N-1]`.
pub type Coord = Vec<i64>;

/// The extent of every dimension of a tensor.
///
/// For remapped dimensions whose extent is only known after analysis (e.g. the
/// number of nonzero diagonals `K` in DIA), the shape stores the *coordinate
/// bounds* of the dimension instead; see [`DimBounds`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension extents.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty.
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(
            !dims.is_empty(),
            "a tensor must have at least one dimension"
        );
        Shape { dims }
    }

    /// Convenience constructor for a matrix shape.
    pub fn matrix(rows: usize, cols: usize) -> Self {
        Shape::new(vec![rows, cols])
    }

    /// Convenience constructor for a vector shape.
    pub fn vector(len: usize) -> Self {
        Shape::new(vec![len])
    }

    /// Convenience constructor for an order-3 tensor shape.
    pub fn tensor3(d0: usize, d1: usize, d2: usize) -> Self {
        Shape::new(vec![d0, d1, d2])
    }

    /// The number of dimensions (the tensor order).
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// The extent of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= self.order()`.
    pub fn dim(&self, d: usize) -> usize {
        self.dims[d]
    }

    /// All dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of rows (first dimension) for matrix shapes.
    pub fn rows(&self) -> usize {
        self.dims[0]
    }

    /// Number of columns (second dimension) for matrix shapes.
    ///
    /// # Panics
    ///
    /// Panics if the shape has fewer than two dimensions.
    pub fn cols(&self) -> usize {
        self.dims[1]
    }

    /// Total number of components of a dense tensor with this shape.
    pub fn dense_size(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns true when `coord` is inside the bounds of this shape.
    pub fn contains(&self, coord: &[i64]) -> bool {
        coord.len() == self.order()
            && coord
                .iter()
                .zip(&self.dims)
                .all(|(&c, &d)| c >= 0 && (c as usize) < d)
    }

    /// Row-major linear offset of `coord`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn linearize(&self, coord: &[i64]) -> usize {
        assert!(
            self.contains(coord),
            "coordinate {coord:?} out of bounds for {self}"
        );
        let mut off = 0usize;
        for (d, &c) in coord.iter().enumerate() {
            off = off * self.dims[d] + c as usize;
        }
        off
    }

    /// Inverse of [`Shape::linearize`].
    pub fn delinearize(&self, mut offset: usize) -> Coord {
        let mut coord = vec![0i64; self.order()];
        for d in (0..self.order()).rev() {
            coord[d] = (offset % self.dims[d]) as i64;
            offset /= self.dims[d];
        }
        coord
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dims: Vec<String> = self.dims.iter().map(|d| d.to_string()).collect();
        write!(f, "{}", dims.join("x"))
    }
}

/// Inclusive lower / exclusive upper coordinate bounds of one dimension of a
/// (possibly remapped) coordinate space.
///
/// Remapped dimensions can have negative lower bounds: the offset dimension of
/// DIA ranges over `[-(rows-1), cols)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DimBounds {
    /// Smallest coordinate value (inclusive).
    pub lower: i64,
    /// Largest coordinate value plus one (exclusive).
    pub upper: i64,
}

impl DimBounds {
    /// Creates bounds `[lower, upper)`.
    ///
    /// # Panics
    ///
    /// Panics if `upper < lower`.
    pub fn new(lower: i64, upper: i64) -> Self {
        assert!(
            upper >= lower,
            "upper bound {upper} below lower bound {lower}"
        );
        DimBounds { lower, upper }
    }

    /// Bounds of an ordinary dimension `[0, extent)`.
    pub fn from_extent(extent: usize) -> Self {
        DimBounds {
            lower: 0,
            upper: extent as i64,
        }
    }

    /// Number of distinct coordinate values in the bounds.
    pub fn extent(&self) -> usize {
        (self.upper - self.lower) as usize
    }

    /// True when `c` lies within the bounds.
    pub fn contains(&self, c: i64) -> bool {
        c >= self.lower && c < self.upper
    }
}

impl fmt::Display for DimBounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.lower, self.upper)
    }
}

/// Compares two coordinates lexicographically.
pub fn lex_cmp(a: &[i64], b: &[i64]) -> std::cmp::Ordering {
    a.cmp(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_basic_accessors() {
        let s = Shape::matrix(4, 6);
        assert_eq!(s.order(), 2);
        assert_eq!(s.rows(), 4);
        assert_eq!(s.cols(), 6);
        assert_eq!(s.dim(0), 4);
        assert_eq!(s.dim(1), 6);
        assert_eq!(s.dense_size(), 24);
        assert_eq!(s.to_string(), "4x6");
    }

    #[test]
    fn shape_contains_checks_bounds() {
        let s = Shape::matrix(4, 6);
        assert!(s.contains(&[0, 0]));
        assert!(s.contains(&[3, 5]));
        assert!(!s.contains(&[4, 0]));
        assert!(!s.contains(&[0, 6]));
        assert!(!s.contains(&[-1, 0]));
        assert!(!s.contains(&[0]));
    }

    #[test]
    fn linearize_roundtrips() {
        let s = Shape::new(vec![3, 4, 5]);
        for off in 0..s.dense_size() {
            let c = s.delinearize(off);
            assert_eq!(s.linearize(&c), off);
        }
    }

    #[test]
    #[should_panic]
    fn linearize_out_of_bounds_panics() {
        Shape::matrix(2, 2).linearize(&[2, 0]);
    }

    #[test]
    #[should_panic]
    fn empty_shape_panics() {
        Shape::new(vec![]);
    }

    #[test]
    fn dim_bounds() {
        let b = DimBounds::new(-3, 6);
        assert_eq!(b.extent(), 9);
        assert!(b.contains(-3));
        assert!(b.contains(5));
        assert!(!b.contains(6));
        assert!(!b.contains(-4));
        assert_eq!(DimBounds::from_extent(4), DimBounds::new(0, 4));
        assert_eq!(b.to_string(), "[-3, 6)");
    }

    #[test]
    fn lex_cmp_orders_lexicographically() {
        use std::cmp::Ordering::*;
        assert_eq!(lex_cmp(&[0, 1], &[0, 2]), Less);
        assert_eq!(lex_cmp(&[1, 0], &[0, 9]), Greater);
        assert_eq!(lex_cmp(&[2, 3], &[2, 3]), Equal);
    }
}
