//! Sparse tensor substrate for the PLDI 2020 format-conversion reproduction.
//!
//! This crate provides the canonical, format-agnostic representations that the
//! rest of the workspace builds on:
//!
//! * [`Shape`] and coordinate handling for order-`N` tensors,
//! * [`SparseTriples`]: an order-`N` coordinate/value list (the "canonical"
//!   tensor the paper's coordinate remappings act on),
//! * [`DenseMatrix`]: a dense reference representation used as ground truth in
//!   tests,
//! * [`MatrixStats`]: the structural statistics reported in Table 2 of the
//!   paper (nonzero count, nonzero-diagonal count, maximum nonzeros per row).
//!
//! # Example
//!
//! ```
//! use sparse_tensor::Shape;
//!
//! // The running-example 4x6 matrix of Figure 1 in the paper.
//! let m = sparse_tensor::example::figure1_matrix();
//! assert_eq!(m.shape(), &Shape::matrix(4, 6));
//! assert_eq!(m.nnz(), 9);
//! ```

#![warn(missing_docs)]

pub mod coord;
pub mod dense;
pub mod error;
pub mod example;
pub mod stats;
pub mod triples;

pub use coord::{Coord, DimBounds, Shape};
pub use dense::DenseMatrix;
pub use error::TensorError;
pub use stats::{MatrixStats, TensorStats};
pub use triples::{SparseTriples, Triple};

/// The scalar value type used throughout the workspace.
///
/// The paper's prototype (and the SPARSKIT / MKL routines it compares against)
/// operates on double-precision values; we follow suit.
pub type Value = f64;
