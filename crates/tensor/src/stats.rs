//! Structural statistics of sparse matrices.
//!
//! These are exactly the quantities reported in Table 2 of the paper
//! (dimensions, nonzero count, number of nonzero diagonals, maximum nonzeros
//! per row), plus a few more that the workload generators and DIA/ELL
//! admissibility checks need (bandwidth, density of the padded DIA/ELL
//! representations).

use std::collections::HashSet;

use crate::triples::SparseTriples;

/// Structural statistics of a sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixStats {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Number of stored nonzeros (after duplicate summation).
    pub nnz: usize,
    /// Number of distinct diagonals (`j - i` offsets) containing a nonzero.
    pub nonzero_diagonals: usize,
    /// Maximum number of nonzeros in any row.
    pub max_nnz_per_row: usize,
    /// Lower bandwidth: `max(i - j)` over nonzeros (0 if none below diagonal).
    pub lower_bandwidth: usize,
    /// Upper bandwidth: `max(j - i)` over nonzeros (0 if none above diagonal).
    pub upper_bandwidth: usize,
}

impl MatrixStats {
    /// Computes statistics for an order-2 [`SparseTriples`] tensor.
    ///
    /// Duplicate coordinates are counted once (the paper's matrices are
    /// duplicate-free SuiteSparse matrices).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not order 2.
    pub fn compute(m: &SparseTriples) -> Self {
        assert_eq!(m.order(), 2, "MatrixStats requires an order-2 tensor");
        let rows = m.shape().rows();
        let cols = m.shape().cols();
        let mut coords: HashSet<(i64, i64)> = HashSet::with_capacity(m.nnz());
        for t in m.iter() {
            coords.insert((t.coord[0], t.coord[1]));
        }
        let nnz = coords.len();
        let mut diagonals: HashSet<i64> = HashSet::new();
        let mut per_row = vec![0usize; rows];
        let mut lower = 0i64;
        let mut upper = 0i64;
        for &(i, j) in &coords {
            diagonals.insert(j - i);
            per_row[i as usize] += 1;
            lower = lower.max(i - j);
            upper = upper.max(j - i);
        }
        MatrixStats {
            rows,
            cols,
            nnz,
            nonzero_diagonals: diagonals.len(),
            max_nnz_per_row: per_row.iter().copied().max().unwrap_or(0),
            lower_bandwidth: lower as usize,
            upper_bandwidth: upper as usize,
        }
    }

    /// Fraction of stored values that are nonzero if the matrix were stored in
    /// DIA (one dense column of length `rows` per nonzero diagonal).
    pub fn dia_fill(&self) -> f64 {
        if self.nonzero_diagonals == 0 {
            return 0.0;
        }
        self.nnz as f64 / (self.nonzero_diagonals as f64 * self.rows as f64)
    }

    /// Fraction of stored values that are nonzero if the matrix were stored in
    /// ELL (`max_nnz_per_row` slots per row).
    pub fn ell_fill(&self) -> f64 {
        if self.max_nnz_per_row == 0 {
            return 0.0;
        }
        self.nnz as f64 / (self.max_nnz_per_row as f64 * self.rows as f64)
    }

    /// The paper omits DIA/ELL results for matrices that would be stored with
    /// more than 75% explicit zeros; this reproduces that admissibility test.
    pub fn dia_admissible(&self) -> bool {
        self.dia_fill() >= 0.25
    }

    /// See [`MatrixStats::dia_admissible`]; same 25%-fill rule for ELL.
    pub fn ell_admissible(&self) -> bool {
        self.ell_fill() >= 0.25
    }
}

/// Structural statistics of an order-N tensor: the mode-level attribute
/// queries a format selector needs to pick a CSF mode ordering (fiber counts
/// along each candidate order) or to judge whether fiber compression pays
/// off at all.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorStats {
    /// Tensor order (number of dimensions).
    pub order: usize,
    /// Number of distinct nonzero coordinates.
    pub nnz: usize,
    /// Distinct coordinate values per mode (`distinct[d]` is the number of
    /// root fibers of a CSF tree with mode `d` outermost).
    pub distinct: Vec<usize>,
    /// Distinct coordinate *pairs* over modes `(d, e)`, indexed `[d][e]`
    /// (the number of depth-1 fibers of a CSF tree ordered `d` then `e`).
    /// The diagonal repeats `distinct`.
    pub pair_distinct: Vec<Vec<usize>>,
}

impl TensorStats {
    /// Computes statistics for a [`SparseTriples`] tensor of any order.
    /// Duplicate coordinates are counted once, like [`MatrixStats::compute`].
    pub fn compute(t: &SparseTriples) -> Self {
        let order = t.order();
        let mut coords: HashSet<&[i64]> = HashSet::with_capacity(t.nnz());
        for triple in t.iter() {
            coords.insert(&triple.coord[..]);
        }
        let mut distinct = vec![0usize; order];
        let mut pair_distinct = vec![vec![0usize; order]; order];
        let mut singles: HashSet<i64> = HashSet::new();
        let mut pairs: HashSet<(i64, i64)> = HashSet::new();
        for d in 0..order {
            singles.clear();
            for c in &coords {
                singles.insert(c[d]);
            }
            distinct[d] = singles.len();
            for e in 0..order {
                if e == d {
                    pair_distinct[d][d] = distinct[d];
                    continue;
                }
                pairs.clear();
                for c in &coords {
                    pairs.insert((c[d], c[e]));
                }
                pair_distinct[d][e] = pairs.len();
            }
        }
        TensorStats {
            order,
            nnz: coords.len(),
            distinct,
            pair_distinct,
        }
    }

    /// Number of interior fibers (all tree nodes above the leaf coordinates)
    /// of a CSF tree packed along `mode_order` — the quantity a mode-order
    /// selector minimises. Supported for orders up to 3, where the singles
    /// and pairs tracked here cover every prefix.
    ///
    /// # Panics
    ///
    /// Panics if `mode_order` does not have one entry per mode or the order
    /// exceeds 3.
    pub fn csf_fibers(&self, mode_order: &[usize]) -> usize {
        assert_eq!(mode_order.len(), self.order, "one mode per dimension");
        assert!(self.order <= 3, "prefix statistics cover orders up to 3");
        match mode_order {
            [] | [_] => 0,
            [o0, _] => self.distinct[*o0],
            [o0, o1, _] => self.distinct[*o0] + self.pair_distinct[*o0][*o1],
            _ => unreachable!("order checked above"),
        }
    }

    /// Fraction of leaf coordinates that start a fresh innermost fiber when
    /// packed along `mode_order`: 1.0 means every nonzero sits in its own
    /// fiber (CSF's `pos` arrays are pure overhead), small values mean long
    /// fibers (compression pays off).
    pub fn fiber_overhead(&self, mode_order: &[usize]) -> f64 {
        if self.nnz == 0 {
            return 0.0;
        }
        match mode_order {
            [] | [_] => 0.0,
            [o0, _] => self.distinct[*o0] as f64 / self.nnz as f64,
            [o0, o1, _] => self.pair_distinct[*o0][*o1] as f64 / self.nnz as f64,
            _ => panic!("prefix statistics cover orders up to 3"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::figure1_matrix;

    #[test]
    fn figure1_statistics() {
        // The Figure 1 matrix: 4x6, 9 nonzeros, 5 nonzero diagonals
        // (offsets -2, 0, 1 plus the singletons at (1,3)->2 and (3,4)->1...).
        let stats = MatrixStats::compute(&figure1_matrix());
        assert_eq!(stats.rows, 4);
        assert_eq!(stats.cols, 6);
        assert_eq!(stats.nnz, 9);
        assert_eq!(stats.max_nnz_per_row, 3);
        // Offsets present: 0-0=0, 1-0=1, 1-1=0, 2-1=1, 0-2=-2, 2-2=0, 3-1=-2, 3-3=0, 4-3=1
        assert_eq!(stats.nonzero_diagonals, 3);
        assert_eq!(stats.lower_bandwidth, 2);
        assert_eq!(stats.upper_bandwidth, 1);
    }

    #[test]
    fn fill_ratios() {
        let stats = MatrixStats::compute(&figure1_matrix());
        let dia = stats.dia_fill();
        let ell = stats.ell_fill();
        assert!((dia - 9.0 / 12.0).abs() < 1e-12);
        assert!((ell - 9.0 / 12.0).abs() < 1e-12);
        assert!(stats.dia_admissible());
        assert!(stats.ell_admissible());
    }

    #[test]
    fn empty_matrix_statistics() {
        let m = SparseTriples::new(crate::Shape::matrix(3, 3));
        let stats = MatrixStats::compute(&m);
        assert_eq!(stats.nnz, 0);
        assert_eq!(stats.nonzero_diagonals, 0);
        assert_eq!(stats.max_nnz_per_row, 0);
        assert_eq!(stats.dia_fill(), 0.0);
        assert_eq!(stats.ell_fill(), 0.0);
        assert!(!stats.dia_admissible());
        assert!(!stats.ell_admissible());
    }

    #[test]
    fn duplicates_counted_once() {
        let m = SparseTriples::from_matrix_entries(2, 2, vec![(0, 0, 1.0), (0, 0, 2.0)]).unwrap();
        let stats = MatrixStats::compute(&m);
        assert_eq!(stats.nnz, 1);
        assert_eq!(stats.max_nnz_per_row, 1);
    }
}
