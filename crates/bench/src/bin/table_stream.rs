//! Benchmarks the streaming conversion pipeline against the in-memory
//! service on the same inputs, and appends rows to the
//! `BENCH_conversions.json` document the other table binaries write.
//!
//! Three variants are measured per input/target pair, distinguished by a
//! matrix-name suffix so the regression gate can track each separately:
//!
//! * `<name>` — the in-memory `ConversionService::convert` baseline,
//! * `<name>+stream` — `convert_stream` under a budget everything fits in
//!   (the in-memory fast case: pipeline overhead only, no disk),
//! * `<name>+spill` — `convert_stream` under a budget ~1/8 the input's
//!   working set, forcing external merge sort spills.
//!
//! Environment variables:
//!
//! * `STREAM_SCALE` — input size relative to the default (default 1.0; CI
//!   smoke mode uses a small fraction),
//! * `TABLE_REPS` — repetitions per measurement, median reported (default 3),
//! * `BENCH_THREADS` — pool width (default: machine parallelism),
//! * `BENCH_JSON` — output path (default `BENCH_conversions.json`).

use conv_bench::{env_f64, env_usize, merge_bench_json, render_bench_json, BenchRecord};
use conv_runtime::{ConversionService, ServiceConfig, StreamOptions, WorkerPool};
use conv_stream::{entry_bytes, CooBlockStream, MemoryBudget};
use conv_workloads::{irregular, tensor3_uniform};
use sparse_conv::convert::{AnyMatrix, FormatId};
use sparse_conv::Format;
use sparse_formats::{CooMatrix, CooTensor};

struct Input {
    name: &'static str,
    source: AnyMatrix,
    target: FormatId,
    block_nnz: usize,
}

fn inputs(scale: f64) -> Vec<Input> {
    let s = |n: usize| ((n as f64 * scale).round() as usize).max(4);
    let rows = s(20_000);
    let nnz = s(400_000);
    // Cap the row length so every scale keeps target_nnz feasible.
    let max_row = ((2 * nnz) / rows + 1).min(rows);
    let matrix =
        irregular(rows, rows, nnz, max_row, 11).expect("irregular matrix parameters are valid");
    let dims = [s(128), s(128), s(128)];
    let t_nnz = ((100_000_f64 * scale).round().max(16.0) as usize).min(dims.iter().product());
    let tensor = tensor3_uniform(dims, t_nnz, 23).expect("uniform tensor parameters are valid");
    vec![
        Input {
            name: "irregular2d",
            source: AnyMatrix::Coo(CooMatrix::from_triples(&matrix)),
            target: FormatId::Csr,
            block_nnz: 1 << 12,
        },
        Input {
            name: "uniform3d",
            source: AnyMatrix::Coo3(CooTensor::from_triples(&tensor)),
            target: FormatId::Csf,
            block_nnz: 1 << 12,
        },
    ]
}

fn stream_of(src: &AnyMatrix, block_nnz: usize) -> CooBlockStream {
    match src {
        AnyMatrix::Coo(m) => CooBlockStream::from_matrix(m, block_nnz),
        AnyMatrix::Coo3(t) => CooBlockStream::new(t.clone(), block_nnz),
        _ => unreachable!("streaming benchmarks start from COO sources"),
    }
}

fn main() {
    let scale = env_f64("STREAM_SCALE", 1.0);
    let reps = env_usize("TABLE_REPS", 3);
    let threads = env_usize("BENCH_THREADS", WorkerPool::machine_sized().threads());
    let json_path =
        std::env::var("BENCH_JSON").unwrap_or_else(|_| "BENCH_conversions.json".to_string());

    println!(
        "Streaming conversion benchmark (scale {scale}, {reps} reps, median, {threads} thread(s))"
    );
    let service = ConversionService::new(ServiceConfig {
        threads,
        parallel_nnz_threshold: 0,
        ..ServiceConfig::default()
    });
    let mut records: Vec<BenchRecord> = Vec::new();
    for input in inputs(scale) {
        let nnz = input.source.nnz();
        let order = input.source.shape().order();
        let working_set = entry_bytes(order) * nnz;
        let target: Format = input.target.into();
        // The spilling variant gets ~1/8 of the input's sort working set.
        let tight = MemoryBudget::bytes((working_set / 8).max(1024));
        let roomy = MemoryBudget::bytes(working_set.max(1024) * 4);
        println!(
            "  {:<12} {} nnz, {} KiB working set, spill budget {} KiB",
            input.name,
            nnz,
            working_set / 1024,
            tight.bytes / 1024
        );
        let variants: [(&str, Option<MemoryBudget>); 3] = [
            ("", None),
            ("+stream", Some(roomy)),
            ("+spill", Some(tight)),
        ];
        for (suffix, budget) in variants {
            let median = match budget {
                None => conv_bench::median_time(reps, || {
                    service
                        .convert(&input.source, input.target)
                        .expect("in-memory conversion")
                        .nnz()
                }),
                Some(budget) => {
                    let opts = StreamOptions::with_budget(budget);
                    conv_bench::median_time(reps, || {
                        service
                            .convert_stream(
                                stream_of(&input.source, input.block_nnz),
                                input.target,
                                &opts,
                            )
                            .expect("streamed conversion")
                            .tensor
                            .nnz()
                    })
                }
            };
            let label = format!("{}{}", input.name, suffix);
            println!(
                "  {:<20} -> {:<4} {:>12} ns",
                label,
                target.to_string(),
                median.as_nanos()
            );
            records.push(BenchRecord::for_pair(
                &label,
                &input.source.format(),
                &target,
                nnz as u64,
                threads,
                scale,
                median.as_nanos(),
            ));
        }
    }

    let json = match std::fs::read_to_string(&json_path)
        .ok()
        .and_then(|existing| merge_bench_json(&existing, &records))
    {
        Some(merged) => merged,
        None => render_bench_json(scale, reps, &records),
    };
    std::fs::write(&json_path, json).expect("write benchmark JSON");
    println!("wrote {} entries to {json_path}", records.len());
}
