//! Compares two `BENCH_conversions.json` documents and fails (exit 1) when
//! any shared row regressed beyond a threshold.
//!
//! Usage: `bench_check BASELINE.json CURRENT.json`
//!
//! Raw nanoseconds are not comparable across machines (the committed
//! baseline snapshot and a CI runner differ in clock speed), so both
//! documents are first *normalised by their own geomean* over the rows they
//! share: machine speed cancels and what remains is each row's time
//! relative to its siblings. A row "regresses" when its normalised time
//! grows by more than the threshold. On failure the three rows with the
//! worst normalised slowdown are repeated with their absolute times in
//! microseconds, so the log points straight at the suspects.
//!
//! Environment variables:
//!
//! * `BENCH_REGRESSION_PCT` — allowed relative growth, percent (default 20),
//! * `BENCH_MIN_NS` — minimum absolute slowdown (normalised, in baseline
//!   nanoseconds) for a row to count as regressed (default 50000). Sub-floor
//!   rows are timer noise: a 100 µs row doubling is a 100 µs delta, not a
//!   regression worth failing CI over.

use std::collections::HashMap;
use std::process::ExitCode;

use conv_bench::{env_f64, geomean, parse_bench_json, BenchRecord};

/// Identity of a measured row (scale included: the same pair measured at a
/// different input size is a different measurement).
fn key(r: &BenchRecord) -> String {
    format!(
        "{} {}->{} t{} s{}",
        r.matrix, r.source, r.target, r.threads, r.scale
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, current_path] = &args[..] else {
        eprintln!("usage: bench_check BASELINE.json CURRENT.json");
        return ExitCode::from(2);
    };
    let read = |path: &str| -> Vec<BenchRecord> {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        parse_bench_json(&text)
    };
    let baseline: HashMap<String, u128> = read(baseline_path)
        .iter()
        .map(|r| (key(r), r.median_ns))
        .collect();
    // The throughput fields ride along for the log only; the gate keys on
    // median_ns exactly as it did before they existed.
    let current_records = read(current_path);
    let current: HashMap<String, u128> = current_records
        .iter()
        .map(|r| (key(r), r.median_ns))
        .collect();
    let throughput: HashMap<String, f64> = current_records
        .iter()
        .map(|r| (key(r), r.throughput_mnnz_s))
        .collect();

    let threshold = env_f64("BENCH_REGRESSION_PCT", 20.0) / 100.0;
    let floor_ns = env_f64("BENCH_MIN_NS", 50_000.0);

    let mut shared: Vec<&String> = baseline
        .keys()
        .filter(|k| current.contains_key(*k))
        .collect();
    shared.sort();
    if shared.is_empty() {
        // First run after a row rename: nothing comparable, nothing to gate.
        println!(
            "bench_check: no shared rows between {baseline_path} ({}) and {current_path} ({})",
            baseline.len(),
            current.len()
        );
        return ExitCode::SUCCESS;
    }
    let old_gm = geomean(
        &shared
            .iter()
            .map(|k| baseline[*k] as f64)
            .collect::<Vec<_>>(),
    );
    let new_gm = geomean(
        &shared
            .iter()
            .map(|k| current[*k] as f64)
            .collect::<Vec<_>>(),
    );
    println!(
        "bench_check: {} shared rows, geomeans {:.0} ns -> {:.0} ns (machine factor {:.2}x)",
        shared.len(),
        old_gm,
        new_gm,
        new_gm / old_gm
    );

    let mut regressions = 0usize;
    let mut rows: Vec<(&String, f64, f64, f64)> = Vec::with_capacity(shared.len());
    for k in &shared {
        let (old_ns, new_ns) = (baseline[*k] as f64, current[*k] as f64);
        let ratio = (new_ns / new_gm) / (old_ns / old_gm);
        // The regression magnitude in baseline-machine nanoseconds: relative
        // growth alone flags micro-rows whose medians jitter by 2x.
        let delta_ns = (ratio - 1.0) * old_ns;
        let marker = if ratio > 1.0 + threshold && delta_ns > floor_ns {
            regressions += 1;
            " REGRESSED"
        } else {
            ""
        };
        rows.push((k, old_ns, new_ns, ratio));
        let rate = throughput
            .get(*k)
            .filter(|&&t| t > 0.0)
            .map(|t| format!(", {t:.1} Mnnz/s"))
            .unwrap_or_default();
        println!(
            "  {k}: {old_ns:.0} ns -> {new_ns:.0} ns (normalised {:+.1}%{rate}){marker}",
            (ratio - 1.0) * 100.0
        );
    }
    if regressions > 0 {
        // Spotlight the worst offenders with absolute times: the normalised
        // percentages above say *that* something slowed down, these say by
        // how many microseconds against the snapshot.
        rows.sort_by(|a, b| b.3.total_cmp(&a.3));
        eprintln!("bench_check: top slowdowns vs. snapshot:");
        for (k, old_ns, new_ns, ratio) in rows.iter().take(3) {
            eprintln!(
                "  {k}: {:.1} µs -> {:.1} µs ({:+.1} µs, normalised {:+.1}%)",
                old_ns / 1e3,
                new_ns / 1e3,
                (new_ns - old_ns) / 1e3,
                (ratio - 1.0) * 100.0
            );
        }
        eprintln!(
            "bench_check: {regressions} row(s) regressed more than {:.0}% (normalised)",
            threshold * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("bench_check: ok");
    ExitCode::SUCCESS
}
