//! Benchmarks the order-3 tensor conversions (the paper's Table 4-style
//! COO→CSF sorting/packing evaluation) through the conversion service, and
//! appends machine-readable rows to the `BENCH_conversions.json` document
//! that `table2` starts (falling back to a fresh document when none
//! exists).
//!
//! Usage: `table4 [--route=POLICY] [FORMAT ...]` — the optional positional
//! arguments are conversion *target* formats parsed by `Format::from_str`:
//! the stock tensor formats (`COO3`, `CSF`), a registered custom format
//! name, or a full spec string (`NAME:REMAP:DIMS:LEVELS`) describing an
//! order-3 format. The default benchmarks both stock directions: COO3→CSF
//! and CSF→COO3, each from synthetic order-3 tensors at one thread and at
//! `BENCH_THREADS` threads; every emitted row records the spec fingerprint
//! and the route taken next to the format name. `--route=` overrides the
//! routing policy (`auto|legacy|direct|via-coo|multi-hop`); online
//! calibration is off so routing stays deterministic.
//!
//! Environment variables:
//!
//! * `TENSOR_SCALE` — tensor size relative to the default (default 1.0; CI
//!   smoke mode uses a small fraction),
//! * `TABLE_REPS` — repetitions per measurement, median reported (default 3),
//! * `BENCH_THREADS` — pool width of the parallel measurement (default: the
//!   machine's available parallelism),
//! * `BENCH_JSON` — output path (default `BENCH_conversions.json`).

use conv_bench::{env_f64, env_usize, merge_bench_json, render_bench_json, BenchRecord};
use conv_runtime::{ConversionService, RoutingPolicy, ServiceConfig, WorkerPool};
use conv_workloads::{tensor3_fibered, tensor3_uniform};
use sparse_conv::convert::{AnyMatrix, FormatId};
use sparse_conv::Format;
use sparse_formats::CooTensor;
use sparse_tensor::SparseTriples;

/// Synthesises the benchmark tensors at the given scale: one uniform-random
/// tensor (unstructured, fiber-heavy) and one mode-1-fibered tensor (skewed,
/// factorisation-style).
fn tensors(scale: f64) -> Vec<(&'static str, SparseTriples)> {
    let s = |n: usize| ((n as f64 * scale).round() as usize).max(2);
    let uniform_dims = [s(256), s(256), s(256)];
    // Clamp to the cell count so extreme smoke-mode scales stay valid.
    let uniform_nnz = ((200_000_f64 * scale * scale).round().max(16.0) as usize)
        .min(uniform_dims.iter().product());
    vec![
        (
            "uniform3d",
            tensor3_uniform(uniform_dims, uniform_nnz, 42)
                .expect("uniform tensor parameters are valid"),
        ),
        (
            "fibered3d",
            tensor3_fibered(
                [s(512), s(256), s(128)],
                s(16).min(s(256)),
                s(24).min(s(128)),
                7,
            )
            .expect("fibered tensor parameters are valid"),
        ),
    ]
}

/// Splits the CLI into a routing policy (`--route=...`) and the remaining
/// positional arguments.
fn routing_from_cli(args: Vec<String>) -> (RoutingPolicy, Vec<String>) {
    let mut routing = RoutingPolicy::CostModel;
    let mut rest = Vec::new();
    for arg in args {
        if let Some(policy) = arg.strip_prefix("--route=") {
            match policy.parse() {
                Ok(p) => routing = p,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
        } else {
            rest.push(arg);
        }
    }
    (routing, rest)
}

fn target_formats_from_cli(args: Vec<String>) -> Vec<Format> {
    if args.is_empty() {
        return vec![Format::csf(), Format::coo3()];
    }
    let mut formats = Vec::new();
    for arg in args {
        match arg.parse::<Format>() {
            Ok(f) if f.spec().is_some() && f.order() == 3 => formats.push(f),
            Ok(f) => eprintln!("skipping {f}: table4 benchmarks order-3 tensor targets only"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    if formats.is_empty() {
        eprintln!("error: no benchmarkable tensor target in the requested set");
        std::process::exit(2);
    }
    formats
}

fn main() {
    let scale = env_f64("TENSOR_SCALE", 1.0);
    let reps = env_usize("TABLE_REPS", 3);
    let threads = env_usize("BENCH_THREADS", WorkerPool::machine_sized().threads());
    let json_path =
        std::env::var("BENCH_JSON").unwrap_or_else(|_| "BENCH_conversions.json".to_string());
    let (routing, args) = routing_from_cli(std::env::args().skip(1).collect());
    let targets = target_formats_from_cli(args);

    // Always measure the 1- and 2-thread points plus the configured pool, so
    // rows stay comparable across documents generated under different
    // BENCH_THREADS settings.
    let mut thread_counts: Vec<usize> = vec![1, 2, threads];
    thread_counts.sort_unstable();
    thread_counts.dedup();
    thread_counts.retain(|&t| t <= threads.max(1));
    let target_names: Vec<String> = targets.iter().map(|t| t.to_string()).collect();
    println!(
        "Tensor conversion benchmark (order-3, scale {scale}, {reps} reps, median; \
         targets: {}; {} thread pool(s))",
        target_names.join(", "),
        thread_counts.len()
    );
    let mut records: Vec<BenchRecord> = Vec::new();
    for (name, triples) in tensors(scale) {
        let coo3 = AnyMatrix::Coo3(CooTensor::from_triples(&triples));
        println!(
            "  {:<10} {} dims, {} nnz",
            name,
            triples.shape(),
            triples.nnz()
        );
        for &threads in &thread_counts {
            let service = ConversionService::new(ServiceConfig {
                threads,
                parallel_nnz_threshold: 0,
                routing,
                online_calibration: false,
            });
            // CSF sources are derived once per pool.
            let csf = service
                .convert(&coo3, FormatId::Csf)
                .expect("COO3 converts to CSF");
            for target in &targets {
                // CSF targets are fed from COO3; COO3 (and custom) targets
                // from the packed CSF (resp. COO3) source.
                let sources: Vec<&AnyMatrix> = match target.id() {
                    Some(FormatId::Csf) => vec![&coo3],
                    Some(_) => vec![&csf],
                    None => vec![&coo3],
                };
                for src in sources {
                    if service.convert(src, target).is_err() {
                        continue;
                    }
                    let route = service.last_report().map(|r| r.route).unwrap_or_default();
                    let median = conv_bench::median_time(reps, || {
                        service
                            .convert(src, target)
                            .expect("warmed conversion")
                            .nnz()
                    });
                    println!(
                        "  {:<10} {:>4} -> {:<4} {} thread(s): {:>12} ns  [{}]",
                        name,
                        src.format(),
                        target.to_string(),
                        threads,
                        median.as_nanos(),
                        route,
                    );
                    records.push(
                        BenchRecord::for_pair(
                            name,
                            &src.format(),
                            target,
                            src.nnz() as u64,
                            threads,
                            scale,
                            median.as_nanos(),
                        )
                        .with_route(&route),
                    );
                }
            }
        }
    }

    let json = match std::fs::read_to_string(&json_path)
        .ok()
        .and_then(|existing| merge_bench_json(&existing, &records))
    {
        Some(merged) => merged,
        None => render_bench_json(scale, reps, &records),
    };
    match std::fs::write(&json_path, &json) {
        Ok(()) => println!("\nappended {} entries to {json_path}", records.len()),
        Err(e) => eprintln!("\nfailed to write {json_path}: {e}"),
    }
}
