//! Regenerates Table 2: the structural statistics of the evaluation matrices.
//!
//! The paper reports statistics of 21 SuiteSparse matrices; this binary
//! prints the same columns for the synthetic stand-ins at the chosen scale
//! (environment variable `TABLE_SCALE`, default 0.05) next to the paper's
//! full-size numbers.

use conv_bench::{env_f64, suite};
use sparse_tensor::MatrixStats;

fn main() {
    let scale = env_f64("TABLE_SCALE", 0.05);
    println!("Table 2 reproduction (synthetic stand-ins at scale {scale})");
    println!(
        "{:<18} {:>12} {:>10} {:>10} {:>9} | {:>12} {:>10} {:>10} {:>9}",
        "Matrix",
        "paper dims",
        "paper nnz",
        "paper diag",
        "paper mr",
        "gen dims",
        "gen nnz",
        "gen diag",
        "gen mr"
    );
    for spec in suite(None) {
        let matrix = spec.generate(scale);
        let stats = MatrixStats::compute(&matrix);
        println!(
            "{:<18} {:>12} {:>10} {:>10} {:>9} | {:>12} {:>10} {:>10} {:>9}",
            spec.name,
            format!("{}x{}", spec.dim, spec.dim),
            spec.nnz,
            spec.nonzero_diagonals,
            spec.max_nnz_per_row,
            format!("{}x{}", stats.rows, stats.cols),
            stats.nnz,
            stats.nonzero_diagonals,
            stats.max_nnz_per_row,
        );
    }
    println!();
    println!("Columns: dims, number of nonzeros, number of nonzero diagonals, max nonzeros/row.");
    println!("Set TABLE_SCALE=1.0 for paper-sized matrices (slow for the largest rows).");
}
