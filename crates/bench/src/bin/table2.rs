//! Regenerates Table 2 (structural statistics of the evaluation matrices)
//! and benchmarks the conversion service on representative rows, emitting
//! the machine-readable `BENCH_conversions.json` the perf-trajectory tooling
//! tracks.
//!
//! Usage: `table2 [--route=POLICY] [FORMAT ...]` — the optional positional
//! arguments are conversion *target* formats parsed by `Format::from_str`:
//! stock names (e.g. `CSR CSC BCSR4x4`), registered custom format names, or
//! full spec strings (`NAME:REMAP:DIMS:LEVELS`, e.g.
//! `DCSR:(i,j)->(i,j):i,j:compressed,compressed`) for user-defined formats.
//! The default is the paper's evaluated set (CSR, CSC, DIA, ELL) plus
//! BCSR4x4, whose shuffled-COO rows exercise the planner's multi-hop
//! `COO → CSR → BCSR` route. Each target is converted to from COO and CSR
//! sources through `conv_runtime::ConversionService` at one thread and at
//! `BENCH_THREADS` threads; every emitted row records the spec fingerprint
//! and the route the service took next to the format name.
//!
//! `--route=` overrides the routing policy
//! (`auto|legacy|direct|via-coo|multi-hop`, default `auto` = the planner's
//! cost model). Online calibration is disabled so routing is a
//! deterministic function of the static model and row sets stay comparable
//! across machines.
//!
//! Environment variables:
//!
//! * `TABLE_SCALE` — matrix scale relative to the paper's sizes (default 0.05),
//! * `TABLE_REPS` — repetitions per measurement, median reported (default 3),
//! * `BENCH_THREADS` — pool width of the parallel measurement (default: the
//!   machine's available parallelism),
//! * `BENCH_JSON` — output path (default `BENCH_conversions.json`).

use conv_bench::{env_f64, env_usize, render_bench_json, suite, BenchInputs, BenchRecord};
use conv_runtime::{ConversionService, RoutingPolicy, ServiceConfig, WorkerPool};
use sparse_conv::convert::{evaluated_formats, AnyMatrix, FormatId};
use sparse_conv::Format;
use sparse_tensor::MatrixStats;

/// Splits the CLI into a routing policy (`--route=...`) and the remaining
/// positional arguments.
fn routing_from_cli(args: Vec<String>) -> (RoutingPolicy, Vec<String>) {
    let mut routing = RoutingPolicy::CostModel;
    let mut rest = Vec::new();
    for arg in args {
        if let Some(policy) = arg.strip_prefix("--route=") {
            match policy.parse() {
                Ok(p) => routing = p,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
        } else {
            rest.push(arg);
        }
    }
    (routing, rest)
}

/// The rows benchmarked by default: one banded stencil, one FEM-like blocked
/// matrix, one irregular matrix (same picks as the criterion benches).
const BENCH_MATRICES: [&str; 3] = ["jnlbrng1", "cant", "scircuit"];

fn target_formats_from_cli(args: Vec<String>) -> Vec<Format> {
    if args.is_empty() {
        let mut formats: Vec<Format> = evaluated_formats()
            .into_iter()
            .filter(|f| *f != FormatId::Coo)
            .map(Format::stock)
            .collect();
        // BCSR4x4 is the pair where the planner's multi-hop route pays off:
        // shuffled COO sources go COO -> CSR -> BCSR instead of direct.
        formats.push("BCSR4x4".parse().expect("stock BCSR4x4 parses"));
        formats
    } else {
        let mut formats = Vec::new();
        for arg in args {
            match arg.parse::<Format>() {
                Ok(f) if f.spec().is_none() => {
                    eprintln!("skipping {f}: it is supported only as a conversion source")
                }
                Ok(f) if f.order() != 2 => {
                    eprintln!("skipping {f}: table2 benchmarks order-2 (matrix) targets only")
                }
                Ok(f) => formats.push(f),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
        }
        if formats.is_empty() {
            eprintln!("error: no benchmarkable target format in the requested set");
            std::process::exit(2);
        }
        formats
    }
}

fn admissible(target: &Format, stats: &MatrixStats) -> bool {
    match target.id() {
        Some(FormatId::Dia) => stats.dia_admissible(),
        Some(FormatId::Ell) => stats.ell_admissible(),
        _ => true,
    }
}

fn main() {
    let scale = env_f64("TABLE_SCALE", 0.05);
    let reps = env_usize("TABLE_REPS", 3);
    let threads = env_usize("BENCH_THREADS", WorkerPool::machine_sized().threads());
    let json_path =
        std::env::var("BENCH_JSON").unwrap_or_else(|_| "BENCH_conversions.json".to_string());
    let (routing, args) = routing_from_cli(std::env::args().skip(1).collect());
    let targets = target_formats_from_cli(args);

    println!("Table 2 reproduction (synthetic stand-ins at scale {scale})");
    println!(
        "{:<18} {:>12} {:>10} {:>10} {:>9} | {:>12} {:>10} {:>10} {:>9}",
        "Matrix",
        "paper dims",
        "paper nnz",
        "paper diag",
        "paper mr",
        "gen dims",
        "gen nnz",
        "gen diag",
        "gen mr"
    );
    let mut measured = Vec::new();
    for spec in suite(None) {
        let matrix = spec.generate(scale);
        let stats = MatrixStats::compute(&matrix);
        println!(
            "{:<18} {:>12} {:>10} {:>10} {:>9} | {:>12} {:>10} {:>10} {:>9}",
            spec.name,
            format!("{}x{}", spec.dim, spec.dim),
            spec.nnz,
            spec.nonzero_diagonals,
            spec.max_nnz_per_row,
            format!("{}x{}", stats.rows, stats.cols),
            stats.nnz,
            stats.nonzero_diagonals,
            stats.max_nnz_per_row,
        );
        if BENCH_MATRICES.contains(&spec.name) {
            measured.push((BenchInputs::from_triples(spec, &matrix), stats));
        }
    }
    println!();
    println!("Columns: dims, number of nonzeros, number of nonzero diagonals, max nonzeros/row.");
    println!("Set TABLE_SCALE=1.0 for paper-sized matrices (slow for the largest rows).");

    // Conversion-service benchmark on the representative rows.
    // Always measure the 1- and 2-thread points plus the configured pool, so
    // rows stay comparable across documents generated under different
    // BENCH_THREADS settings.
    let mut thread_counts: Vec<usize> = vec![1, 2, threads];
    thread_counts.sort_unstable();
    thread_counts.dedup();
    thread_counts.retain(|&t| t <= threads.max(1));
    let target_names: Vec<String> = targets.iter().map(|t| t.to_string()).collect();
    println!();
    println!(
        "Conversion benchmark ({} reps, median; targets: {}; {} thread pool(s))",
        reps,
        target_names.join(", "),
        thread_counts.len()
    );
    let mut records: Vec<BenchRecord> = Vec::new();
    for (inputs, stats) in &measured {
        let sources = [
            AnyMatrix::Coo(inputs.coo.clone()),
            AnyMatrix::Csr(inputs.csr.clone()),
        ];
        for &threads in &thread_counts {
            // Calibration stays off so the route is a deterministic function
            // of the static cost model and rows compare across regenerations.
            let service = ConversionService::new(ServiceConfig {
                threads,
                parallel_nnz_threshold: 0,
                routing,
                online_calibration: false,
            });
            for src in &sources {
                for target in &targets {
                    if *target == src.format() || !admissible(target, stats) {
                        continue;
                    }
                    // Warm the plan cache so the measurement sees the steady
                    // state the service is designed for.
                    if service.convert(src, target).is_err() {
                        continue;
                    }
                    let route = service.last_report().map(|r| r.route).unwrap_or_default();
                    let median = conv_bench::median_time(reps, || {
                        service
                            .convert(src, target)
                            .expect("warmed conversion")
                            .nnz()
                    });
                    println!(
                        "  {:<10} {:>4} -> {:<8} {} thread(s): {:>12} ns  [{}]",
                        inputs.spec.name,
                        src.format(),
                        target.to_string(),
                        threads,
                        median.as_nanos(),
                        route,
                    );
                    records.push(
                        BenchRecord::for_pair(
                            inputs.spec.name,
                            &src.format(),
                            target,
                            src.nnz() as u64,
                            threads,
                            scale,
                            median.as_nanos(),
                        )
                        .with_route(&route),
                    );
                }
            }
        }
    }

    let json = render_bench_json(scale, reps, &records);
    match std::fs::write(&json_path, &json) {
        Ok(()) => println!("\nwrote {} entries to {json_path}", records.len()),
        Err(e) => eprintln!("\nfailed to write {json_path}: {e}"),
    }
}
