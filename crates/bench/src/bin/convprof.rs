//! `convprof` — per-phase conversion profiler over the observability layer.
//!
//! Runs one format pair through [`ConversionService::convert_traced`] on a
//! synthetic workload and prints a flame-style per-phase breakdown (the span
//! tree recorded by `conv-obs`, one row per phase, bar width proportional to
//! its share of the total) followed by the machine-readable JSON
//! `ConversionReport`.
//!
//! Usage: `convprof [OPTIONS] SOURCE TARGET`
//!
//! `SOURCE`/`TARGET` are parsed by `Format::from_str`: stock names (`COO`,
//! `CSR`, `COO3`, `CSF`, ...), mode-ordered names (`CSF@2,0,1`), or full
//! spec strings. Order-3 pairs profile over a uniform-random tensor,
//! order-2 pairs over an irregular (circuit-like) matrix.
//!
//! Options:
//!
//! * `--smoke` — tiny workload for CI (equivalent to `PROF_SCALE=0.05`),
//! * `--validate` — check the emitted JSON against the documented report
//!   schema (required keys, non-negative durations, phase sum ≤ total) and
//!   exit nonzero on violation,
//! * `--json-out PATH` — additionally write the JSON report to `PATH`,
//! * `--route POLICY` — routing policy
//!   (`auto|legacy|direct|via-coo|multi-hop`, default `auto`); the planned
//!   path is printed in the report header.
//!
//! Environment variables: `PROF_SCALE` (workload size relative to the
//! default, default 1.0), `PROF_THREADS` (service pool width, default: the
//! machine), `PROF_SEED` (workload seed, default 42).

use conv_bench::{env_f64, env_usize};
use conv_runtime::{ConversionService, RoutingPolicy, ServiceConfig, WorkerPool};
use conv_workloads::{irregular, tensor3_uniform};
use obs::{validate_json, ConversionReport, PhaseReport};
use sparse_conv::convert::AnyMatrix;
use sparse_conv::Format;
use sparse_formats::{CooMatrix, CooTensor};
use sparse_tensor::SparseTriples;

struct Options {
    smoke: bool,
    validate: bool,
    json_out: Option<String>,
    routing: RoutingPolicy,
    source: Format,
    target: Format,
}

fn usage() -> ! {
    eprintln!(
        "usage: convprof [--smoke] [--validate] [--json-out PATH] [--route POLICY] SOURCE TARGET"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut smoke = false;
    let mut validate = false;
    let mut json_out = None;
    let mut routing = RoutingPolicy::CostModel;
    let mut formats: Vec<Format> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--validate" => validate = true,
            "--json-out" => match args.next() {
                Some(path) => json_out = Some(path),
                None => usage(),
            },
            "--route" => match args.next().map(|p| p.parse()) {
                Some(Ok(p)) => routing = p,
                Some(Err(e)) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
                None => usage(),
            },
            "--help" | "-h" => usage(),
            name => match name.parse::<Format>() {
                Ok(f) => formats.push(f),
                Err(e) => {
                    eprintln!("error: cannot parse format {name:?}: {e}");
                    std::process::exit(2);
                }
            },
        }
    }
    if formats.len() != 2 {
        usage();
    }
    let target = formats.pop().expect("two formats");
    let source = formats.pop().expect("two formats");
    Options {
        smoke,
        validate,
        json_out,
        routing,
        source,
        target,
    }
}

/// Synthesises the workload for the pair: an order-3 uniform tensor when
/// either side is order 3, otherwise an irregular order-2 matrix.
fn workload(order: usize, scale: f64, seed: u64) -> SparseTriples {
    let s = |n: usize| ((n as f64 * scale).round() as usize).max(4);
    if order == 3 {
        let dims = [s(256), s(256), s(256)];
        let cells: usize = dims.iter().product();
        let nnz = ((300_000_f64 * scale * scale).round().max(64.0) as usize).min(cells);
        tensor3_uniform(dims, nnz, seed).expect("uniform tensor parameters are valid")
    } else {
        let (rows, cols) = (s(2048), s(2048));
        let nnz = ((600_000_f64 * scale * scale).round().max(64.0) as usize).min(rows * cols / 2);
        let max_row = cols.min((2 * nnz / rows).max(4));
        irregular(rows, cols, nnz, max_row, seed).expect("irregular matrix parameters are valid")
    }
}

/// Prints one phase row (indented by depth) and recurses into its children.
fn print_phase(phase: &PhaseReport, total_ns: u64, depth: usize) {
    const BAR_WIDTH: usize = 32;
    let share = if total_ns == 0 {
        0.0
    } else {
        phase.duration_ns as f64 / total_ns as f64
    };
    let filled = ((share * BAR_WIDTH as f64).round() as usize).min(BAR_WIDTH);
    let label = format!("{:indent$}{}", "", phase.name, indent = 2 * depth);
    println!(
        "  {label:<28} {:>10.1} µs {:>5.1}%  |{:<BAR_WIDTH$}|  spans {:>3}  items {:>9}  bytes {:>11}",
        phase.duration_ns as f64 / 1e3,
        share * 100.0,
        "#".repeat(filled),
        phase.spans,
        phase.count,
        phase.bytes,
    );
    for child in &phase.children {
        print_phase(child, total_ns, depth + 1);
    }
}

fn print_report(report: &ConversionReport) {
    let path = if report.path.is_empty() {
        format!("{} -> {}", report.source, report.target)
    } else {
        report.path.join(" -> ")
    };
    println!(
        "\n{} -> {}  [route {} ({path}), plan cache {}, {} thread(s), {}]",
        report.source,
        report.target,
        report.route,
        if report.plan_cache_hit { "hit" } else { "miss" },
        report.threads,
        if report.parallel_kernel {
            "parallel kernel"
        } else {
            "sequential engine"
        },
    );
    println!(
        "  total {:.1} µs, phases cover {:.1} µs, {} bytes moved",
        report.total_ns as f64 / 1e3,
        report.phase_sum_ns() as f64 / 1e3,
        report.bytes_moved,
    );
    for phase in &report.phases {
        print_phase(phase, report.total_ns, 0);
    }
}

fn main() {
    let opts = parse_args();
    let scale = if opts.smoke {
        0.05
    } else {
        env_f64("PROF_SCALE", 1.0)
    };
    let threads = env_usize("PROF_THREADS", WorkerPool::machine_sized().threads());
    let seed = env_usize("PROF_SEED", 42) as u64;

    let order = opts.source.order().max(opts.target.order());
    let triples = workload(order, scale, seed);
    println!(
        "convprof: {} -> {} over {} ({} nnz, scale {scale}, {threads} thread(s))",
        opts.source,
        opts.target,
        triples.shape(),
        triples.nnz(),
    );

    let base = if order == 3 {
        AnyMatrix::Coo3(CooTensor::from_triples(&triples))
    } else {
        AnyMatrix::Coo(CooMatrix::from_triples(&triples))
    };
    // Materialise the source instance with the sequential engine, so the
    // profiled conversion starts from the requested format.
    let src = if base.format() == opts.source {
        base
    } else {
        match sparse_conv::convert(&base, &opts.source) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot build a {} source: {e}", opts.source);
                std::process::exit(1);
            }
        }
    };

    let service = ConversionService::new(ServiceConfig {
        routing: opts.routing,
        ..ServiceConfig::with_threads(threads)
    });
    // Warm-up pass: plans the pair (so the profiled run reports a cache hit)
    // and pages the input in. The profiled run is the second conversion.
    if let Err(e) = service.convert(&src, opts.target.clone()) {
        eprintln!("error: conversion failed: {e}");
        std::process::exit(1);
    }
    let report = match service.convert_traced(&src, opts.target.clone()) {
        Ok((_, report)) => report,
        Err(e) => {
            eprintln!("error: conversion failed: {e}");
            std::process::exit(1);
        }
    };

    print_report(&report);
    let json = report.to_json();
    println!("\n{json}");

    if let Some(path) = &opts.json_out {
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
    if opts.validate {
        if let Err(e) = report.validate().and_then(|()| validate_json(&json)) {
            eprintln!("schema validation FAILED: {e}");
            std::process::exit(1);
        }
        println!("schema validation passed");
    }
}
