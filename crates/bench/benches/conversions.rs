//! Criterion benchmarks for the seven Table 3 conversions, comparing the
//! generated routines against the SPARSKIT-style, MKL-style, and
//! taco-without-extensions baselines on representative Table 2 matrices.
//!
//! One benchmark group per conversion; within a group, one benchmark per
//! (matrix, implementation) pair, so criterion's reports show the same
//! comparisons as Table 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use conv_bench::{env_f64, BenchInputs, Conversion, Impl};

fn representative_inputs() -> Vec<BenchInputs> {
    let scale = env_f64("BENCH_SCALE", 0.02);
    // One banded stencil, one FEM-like blocked matrix, one irregular matrix.
    let picks = ["jnlbrng1", "cant", "scircuit"];
    conv_bench::suite(None)
        .into_iter()
        .filter(|s| picks.contains(&s.name))
        .map(|s| BenchInputs::build(&s, scale))
        .collect()
}

fn bench_conversions(c: &mut Criterion) {
    let inputs = representative_inputs();
    for conversion in Conversion::all() {
        let mut group = c.benchmark_group(conversion.label());
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(600));
        for input in &inputs {
            if !conversion.reported_for(&input.spec) {
                continue;
            }
            for implementation in [Impl::Generated, Impl::Sparskit, Impl::Mkl, Impl::TacoNoExt] {
                if !implementation.supports(conversion) {
                    continue;
                }
                let id = BenchmarkId::new(implementation.label(), input.spec.name);
                group.bench_with_input(id, input, |b, input| {
                    b.iter(|| conv_bench::run_conversion(input, conversion, implementation));
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_conversions);
criterion_main!(benches);
