//! Ablation benchmarks for the design decisions called out in DESIGN.md:
//!
//! * engine path (monomorphised, the analogue of generated C) vs. the
//!   dynamic spec-driven converter vs. executing generated IR through the
//!   interpreter,
//! * the scalar-counter optimisation (CSR→ELL) vs. the counter array that an
//!   unordered source forces (COO→ELL),
//! * answering the CSR row-count query from the `pos` array vs. recomputing
//!   it with a histogram pass (the `simplify-width-count` rewrite's payoff).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use conv_bench::{env_f64, BenchInputs};
use conv_workloads::tensor3_fibered;
use sparse_conv::convert::{AnyMatrix, AnyTensor, FormatId};
use sparse_conv::select::{auto_select, ORDER3_MODE_ORDERS};
use sparse_conv::source::SourceMatrix;
use sparse_conv::spec::FormatSpec;
use sparse_conv::{codegen, engine, generic};
use sparse_formats::CooTensor;

fn inputs() -> BenchInputs {
    let scale = env_f64("BENCH_SCALE", 0.02);
    let spec = conv_bench::suite(None)
        .into_iter()
        .find(|s| s.name == "denormal")
        .expect("denormal is part of the Table 2 suite");
    BenchInputs::build(&spec, scale)
}

fn bench_execution_paths(c: &mut Criterion) {
    let inputs = inputs();
    let coo_any = AnyMatrix::Coo(inputs.coo.clone());
    let csr_spec = FormatSpec::stock(FormatId::Csr).expect("CSR has a stock spec");

    let mut group = c.benchmark_group("execution_paths/coo_to_csr");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    group.bench_function("engine (monomorphised)", |b| {
        b.iter(|| engine::to_csr(&inputs.coo).nnz())
    });
    group.bench_function("dynamic spec-driven", |b| {
        b.iter(|| {
            generic::convert_with_spec(&coo_any, &csr_spec)
                .unwrap()
                .vals
                .len()
        })
    });
    group.bench_function("generated IR + interpreter", |b| {
        b.iter(|| codegen::execute(&coo_any, FormatId::Csr).unwrap().nnz())
    });
    group.finish();
}

fn bench_counter_strategies(c: &mut Criterion) {
    let inputs = inputs();
    let mut group = c.benchmark_group("counters/to_ell");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    group.bench_function("scalar counter (CSR source)", |b| {
        b.iter(|| engine::to_ell(&inputs.csr).slices())
    });
    group.bench_function("counter array (COO source)", |b| {
        b.iter(|| engine::to_ell(&inputs.coo).slices())
    });
    group.finish();
}

fn bench_query_fast_path(c: &mut Criterion) {
    let inputs = inputs();
    let mut group = c.benchmark_group("analysis/row_counts");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    group.bench_function("csr pos differencing", |b| {
        b.iter(|| SourceMatrix::row_counts(&inputs.csr).len())
    });
    group.bench_function("histogram over nonzeros", |b| {
        b.iter(|| SourceMatrix::row_counts(&inputs.coo).len())
    });
    group.finish();
}

fn bench_mode_orders(c: &mut Criterion) {
    // A fibered tensor is exactly the workload where the mode order matters:
    // rooting the fiber tree along the skewed mode collapses the interior
    // fiber count, so the six sort-then-pack times diverge.
    let scale = env_f64("BENCH_SCALE", 0.02);
    let dims = [
        (64.0 * (scale * 50.0).max(0.2)) as usize + 2,
        64,
        (128.0 * (scale * 50.0).max(0.2)) as usize + 2,
    ];
    let triples =
        tensor3_fibered(dims, 16, 24, 42).expect("fibered generator parameters are valid");
    let coo3 = CooTensor::from_triples(&triples);
    let src = AnyTensor::Coo3(coo3.clone());

    let mut group = c.benchmark_group("mode_orders/coo3_to_csf");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for order in ORDER3_MODE_ORDERS {
        let label = format!("CSF@{},{},{}", order[0], order[1], order[2]);
        group.bench_function(&label, |b| {
            b.iter(|| engine::to_csf_ordered(&coo3, &order).nnz())
        });
    }
    group.bench_function("auto_select (stats only)", |b| {
        b.iter(|| auto_select(&src).name().len())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_execution_paths,
    bench_counter_strategies,
    bench_query_fast_path,
    bench_mode_orders
);
criterion_main!(benches);
