//! Throughput benchmarks for the `conv-runtime` conversion service:
//!
//! * the three parallel kernels at one thread vs. `BENCH_THREADS` threads on
//!   the largest Table 2 matrix (the paper's heaviest input, synthesised at
//!   `BENCH_SCALE`),
//! * `convert_batch` scheduling a mixed workload across the pool, with the
//!   plan cache asserted warm — zero plans are built during measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use conv_bench::{env_f64, env_usize, BenchInputs};
use conv_runtime::{ConversionService, ServiceConfig, WorkerPool};
use conv_workloads::generators::tensor3_uniform;
use sparse_conv::convert::{AnyMatrix, FormatId};
use sparse_formats::{CooTensor, SortStrategy};

fn thread_counts() -> Vec<usize> {
    let max = env_usize(
        "BENCH_THREADS",
        WorkerPool::machine_sized().threads().max(4),
    );
    if max > 1 {
        vec![1, max]
    } else {
        vec![1]
    }
}

fn heaviest_inputs() -> BenchInputs {
    let scale = env_f64("BENCH_SCALE", 0.02);
    BenchInputs::build(&conv_bench::largest_spec(), scale)
}

fn bench_parallel_kernels(c: &mut Criterion) {
    let inputs = heaviest_inputs();
    let coo = AnyMatrix::Coo(inputs.coo.clone());
    let csr = AnyMatrix::Csr(inputs.csr.clone());
    let cases: [(&str, &AnyMatrix, FormatId); 3] = [
        ("coo_to_csr", &coo, FormatId::Csr),
        ("csr_to_csc", &csr, FormatId::Csc),
        (
            "csr_to_bcsr",
            &csr,
            FormatId::Bcsr {
                block_rows: 4,
                block_cols: 4,
            },
        ),
    ];
    for (name, src, target) in cases {
        let mut group = c.benchmark_group(format!("service/{name}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(600));
        for threads in thread_counts() {
            let service = ConversionService::new(ServiceConfig {
                threads,
                parallel_nnz_threshold: 0,
                ..ServiceConfig::default()
            });
            service.convert(src, target).expect("warm-up conversion");
            group.bench_function(BenchmarkId::new("threads", threads), |b| {
                b.iter(|| service.convert(src, target).expect("conversion").nnz());
            });
        }
        group.finish();
    }
}

fn bench_batch_throughput(c: &mut Criterion) {
    let inputs = heaviest_inputs();
    let coo = AnyMatrix::Coo(inputs.coo.clone());
    let csr = AnyMatrix::Csr(inputs.csr.clone());
    let jobs: Vec<(AnyMatrix, FormatId)> = vec![
        (coo.clone(), FormatId::Csr),
        (csr.clone(), FormatId::Csc),
        (coo.clone(), FormatId::Jad),
        (
            csr.clone(),
            FormatId::Bcsr {
                block_rows: 4,
                block_cols: 4,
            },
        ),
        (coo, FormatId::Csc),
        (csr, FormatId::Coo),
    ];
    let mut group = c.benchmark_group("service/convert_batch");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for threads in thread_counts() {
        let service = ConversionService::new(ServiceConfig {
            threads,
            parallel_nnz_threshold: usize::MAX, // batch is the parallel axis
            ..ServiceConfig::default()
        });
        // Warm the plan cache, then require that measurement builds no plan.
        for result in service.convert_batch(&jobs) {
            result.expect("warm-up batch");
        }
        let warm_misses = service.stats().plan_misses;
        group.bench_function(BenchmarkId::new("threads", threads), |b| {
            b.iter(|| {
                service
                    .convert_batch(&jobs)
                    .into_iter()
                    .map(|r| r.expect("batch conversion").nnz())
                    .sum::<usize>()
            });
        });
        assert_eq!(
            service.stats().plan_misses,
            warm_misses,
            "plan cache must build zero plans after warm-up"
        );
    }
    group.finish();
}

fn bench_sort_strategies(c: &mut Criterion) {
    // Ablation for the packed-key radix path: the COO3→CSF kernel with the
    // span-sort strategy pinned to radix / comparison / counting, at one
    // thread and at the pool width. The input mirrors table4's uniform3d
    // (unstructured, so the sort dominates the conversion).
    let scale = env_f64("TENSOR_SCALE", 0.1);
    let s = |n: usize| ((n as f64 * scale).round() as usize).max(2);
    let dims = [s(256), s(256), s(256)];
    let nnz = ((200_000_f64 * scale * scale).round().max(16.0) as usize).min(dims.iter().product());
    let triples = tensor3_uniform(dims, nnz, 42).expect("uniform tensor parameters are valid");
    let mut coo = CooTensor::from_triples(&triples);
    let mut state = 0x9e3779b97f4a7c15u64;
    coo.shuffle_with(|bound| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state as usize) % bound
    });
    let strategies = [
        ("radix", SortStrategy::Radix),
        ("comparison", SortStrategy::Comparison),
        ("counting", SortStrategy::Counting),
    ];
    let threads = *thread_counts().last().expect("at least one thread count");
    let mut group = c.benchmark_group("service/sort_strategies");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for (name, strategy) in strategies {
        for t in [1, threads] {
            group.bench_function(BenchmarkId::new(name, t), |b| {
                b.iter(|| conv_runtime::kernels::coo_to_csf_with(&coo, t, strategy).nnz());
            });
            if threads == 1 {
                break;
            }
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_parallel_kernels,
    bench_batch_throughput,
    bench_sort_strategies
);
criterion_main!(benches);
