//! Throughput benchmarks for the `conv-runtime` conversion service:
//!
//! * the three parallel kernels at one thread vs. `BENCH_THREADS` threads on
//!   the largest Table 2 matrix (the paper's heaviest input, synthesised at
//!   `BENCH_SCALE`),
//! * `convert_batch` scheduling a mixed workload across the pool, with the
//!   plan cache asserted warm — zero plans are built during measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use conv_bench::{env_f64, env_usize, BenchInputs};
use conv_runtime::{ConversionService, ServiceConfig, WorkerPool};
use sparse_conv::convert::{AnyMatrix, FormatId};

fn thread_counts() -> Vec<usize> {
    let max = env_usize(
        "BENCH_THREADS",
        WorkerPool::machine_sized().threads().max(4),
    );
    if max > 1 {
        vec![1, max]
    } else {
        vec![1]
    }
}

fn heaviest_inputs() -> BenchInputs {
    let scale = env_f64("BENCH_SCALE", 0.02);
    BenchInputs::build(&conv_bench::largest_spec(), scale)
}

fn bench_parallel_kernels(c: &mut Criterion) {
    let inputs = heaviest_inputs();
    let coo = AnyMatrix::Coo(inputs.coo.clone());
    let csr = AnyMatrix::Csr(inputs.csr.clone());
    let cases: [(&str, &AnyMatrix, FormatId); 3] = [
        ("coo_to_csr", &coo, FormatId::Csr),
        ("csr_to_csc", &csr, FormatId::Csc),
        (
            "csr_to_bcsr",
            &csr,
            FormatId::Bcsr {
                block_rows: 4,
                block_cols: 4,
            },
        ),
    ];
    for (name, src, target) in cases {
        let mut group = c.benchmark_group(format!("service/{name}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(600));
        for threads in thread_counts() {
            let service = ConversionService::new(ServiceConfig {
                threads,
                parallel_nnz_threshold: 0,
            });
            service.convert(src, target).expect("warm-up conversion");
            group.bench_function(BenchmarkId::new("threads", threads), |b| {
                b.iter(|| service.convert(src, target).expect("conversion").nnz());
            });
        }
        group.finish();
    }
}

fn bench_batch_throughput(c: &mut Criterion) {
    let inputs = heaviest_inputs();
    let coo = AnyMatrix::Coo(inputs.coo.clone());
    let csr = AnyMatrix::Csr(inputs.csr.clone());
    let jobs: Vec<(AnyMatrix, FormatId)> = vec![
        (coo.clone(), FormatId::Csr),
        (csr.clone(), FormatId::Csc),
        (coo.clone(), FormatId::Jad),
        (
            csr.clone(),
            FormatId::Bcsr {
                block_rows: 4,
                block_cols: 4,
            },
        ),
        (coo, FormatId::Csc),
        (csr, FormatId::Coo),
    ];
    let mut group = c.benchmark_group("service/convert_batch");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for threads in thread_counts() {
        let service = ConversionService::new(ServiceConfig {
            threads,
            parallel_nnz_threshold: usize::MAX, // batch is the parallel axis
        });
        // Warm the plan cache, then require that measurement builds no plan.
        for result in service.convert_batch(&jobs) {
            result.expect("warm-up batch");
        }
        let warm_misses = service.stats().plan_misses;
        group.bench_function(BenchmarkId::new("threads", threads), |b| {
            b.iter(|| {
                service
                    .convert_batch(&jobs)
                    .into_iter()
                    .map(|r| r.expect("batch conversion").nnz())
                    .sum::<usize>()
            });
        });
        assert_eq!(
            service.stats().plan_misses,
            warm_misses,
            "plan cache must build zero plans after warm-up"
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_kernels, bench_batch_throughput);
criterion_main!(benches);
