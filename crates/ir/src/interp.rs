//! A tree-walking interpreter for the conversion IR.
//!
//! The interpreter executes generated conversion routines against named
//! buffers, so their results can be checked against hand-written reference
//! conversions. It is deliberately simple (no JIT); the performance path of
//! the reproduction is the monomorphised engine in `sparse-conv`.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::expr::{Expr, IrBinOp};
use crate::stmt::{BufferKind, Function, Stmt};

/// A runtime value: a 64-bit integer or a double.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scalar {
    /// Integer value.
    Int(i64),
    /// Floating-point value.
    Float(f64),
}

impl Scalar {
    /// The value as an integer.
    ///
    /// # Errors
    ///
    /// Returns a type error for floating-point values.
    pub fn as_int(self) -> Result<i64, InterpError> {
        match self {
            Scalar::Int(v) => Ok(v),
            Scalar::Float(v) => Err(InterpError::TypeError(format!(
                "expected int, got float {v}"
            ))),
        }
    }

    /// The value as a float (integers are converted).
    pub fn as_float(self) -> f64 {
        match self {
            Scalar::Int(v) => v as f64,
            Scalar::Float(v) => v,
        }
    }
}

/// A named buffer in the execution environment.
#[derive(Debug, Clone, PartialEq)]
pub enum Buffer {
    /// Integer buffer.
    Ints(Vec<i64>),
    /// Floating-point buffer.
    Floats(Vec<f64>),
}

impl Buffer {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            Buffer::Ints(v) => v.len(),
            Buffer::Floats(v) => v.len(),
        }
    }

    /// True when the buffer has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The buffer as an integer slice.
    ///
    /// # Panics
    ///
    /// Panics if the buffer holds floats.
    pub fn as_ints(&self) -> &[i64] {
        match self {
            Buffer::Ints(v) => v,
            Buffer::Floats(_) => panic!("buffer holds floats, not ints"),
        }
    }

    /// The buffer as a float slice.
    ///
    /// # Panics
    ///
    /// Panics if the buffer holds integers.
    pub fn as_floats(&self) -> &[f64] {
        match self {
            Buffer::Floats(v) => v,
            Buffer::Ints(_) => panic!("buffer holds ints, not floats"),
        }
    }

    fn get(&self, index: i64, buffer: &str) -> Result<Scalar, InterpError> {
        if index < 0 || index as usize >= self.len() {
            return Err(InterpError::OutOfBounds {
                buffer: buffer.to_string(),
                index,
                len: self.len(),
            });
        }
        Ok(match self {
            Buffer::Ints(v) => Scalar::Int(v[index as usize]),
            Buffer::Floats(v) => Scalar::Float(v[index as usize]),
        })
    }

    fn set(&mut self, index: i64, value: Scalar, buffer: &str) -> Result<(), InterpError> {
        if index < 0 || index as usize >= self.len() {
            return Err(InterpError::OutOfBounds {
                buffer: buffer.to_string(),
                index,
                len: self.len(),
            });
        }
        match self {
            Buffer::Ints(v) => v[index as usize] = value.as_int()?,
            Buffer::Floats(v) => v[index as usize] = value.as_float(),
        }
        Ok(())
    }
}

/// Errors raised while executing IR.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    /// A scalar variable was read before being defined.
    UndefinedVariable(String),
    /// A buffer was accessed that does not exist in the environment.
    UndefinedBuffer(String),
    /// A buffer access was out of bounds.
    OutOfBounds {
        /// Buffer name.
        buffer: String,
        /// Offending index.
        index: i64,
        /// Buffer length.
        len: usize,
    },
    /// An operation was applied to a value of the wrong type.
    TypeError(String),
    /// Division or remainder by zero.
    DivisionByZero,
    /// A loop exceeded the interpreter's iteration budget (guards against
    /// nontermination in tests).
    IterationLimit,
    /// An allocation size was negative.
    NegativeAllocation(i64),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::UndefinedVariable(name) => write!(f, "undefined variable `{name}`"),
            InterpError::UndefinedBuffer(name) => write!(f, "undefined buffer `{name}`"),
            InterpError::OutOfBounds { buffer, index, len } => {
                write!(
                    f,
                    "index {index} out of bounds for buffer `{buffer}` of length {len}"
                )
            }
            InterpError::TypeError(msg) => write!(f, "type error: {msg}"),
            InterpError::DivisionByZero => write!(f, "division by zero"),
            InterpError::IterationLimit => write!(f, "iteration limit exceeded"),
            InterpError::NegativeAllocation(size) => write!(f, "negative allocation size {size}"),
        }
    }
}

impl Error for InterpError {}

/// The execution environment plus the execution engine.
#[derive(Debug, Default, Clone)]
pub struct Interpreter {
    buffers: HashMap<String, Buffer>,
    scalars: HashMap<String, Scalar>,
    /// Maximum total number of while-loop iterations (safety net).
    while_budget: u64,
}

impl Interpreter {
    /// Creates an interpreter with an empty environment.
    pub fn new() -> Self {
        Interpreter {
            buffers: HashMap::new(),
            scalars: HashMap::new(),
            while_budget: 1 << 32,
        }
    }

    /// Inserts (or replaces) a named buffer.
    pub fn insert_buffer(&mut self, name: &str, buffer: Buffer) {
        self.buffers.insert(name.to_string(), buffer);
    }

    /// Inserts (or replaces) a named integer scalar.
    pub fn insert_int(&mut self, name: &str, value: i64) {
        self.scalars.insert(name.to_string(), Scalar::Int(value));
    }

    /// Looks up a buffer by name.
    pub fn buffer(&self, name: &str) -> Option<&Buffer> {
        self.buffers.get(name)
    }

    /// Looks up an integer scalar by name.
    pub fn int(&self, name: &str) -> Option<i64> {
        match self.scalars.get(name) {
            Some(Scalar::Int(v)) => Some(*v),
            _ => None,
        }
    }

    /// Runs a function against the current environment.
    ///
    /// # Errors
    ///
    /// Returns the first runtime error encountered.
    pub fn run(&mut self, function: &Function) -> Result<(), InterpError> {
        self.exec_block(&function.body)
    }

    fn exec_block(&mut self, stmts: &[Stmt]) -> Result<(), InterpError> {
        for s in stmts {
            self.exec(s)?;
        }
        Ok(())
    }

    fn exec(&mut self, stmt: &Stmt) -> Result<(), InterpError> {
        match stmt {
            Stmt::DeclScalar { name, init } | Stmt::Assign { name, value: init } => {
                let v = self.eval(init)?;
                self.scalars.insert(name.clone(), v);
                Ok(())
            }
            Stmt::Alloc {
                name,
                kind,
                size,
                zero_init: _,
            } => {
                let size = self.eval(size)?.as_int()?;
                if size < 0 {
                    return Err(InterpError::NegativeAllocation(size));
                }
                let buffer = match kind {
                    BufferKind::Int => Buffer::Ints(vec![0; size as usize]),
                    BufferKind::Float => Buffer::Floats(vec![0.0; size as usize]),
                };
                self.buffers.insert(name.clone(), buffer);
                Ok(())
            }
            Stmt::Store {
                buffer,
                index,
                value,
            } => {
                let idx = self.eval(index)?.as_int()?;
                let val = self.eval(value)?;
                self.buffer_mut(buffer)?.set(idx, val, buffer)
            }
            Stmt::StoreAdd {
                buffer,
                index,
                value,
            } => {
                let idx = self.eval(index)?.as_int()?;
                let add = self.eval(value)?;
                let current = self.buffer_ref(buffer)?.get(idx, buffer)?;
                let next = match (current, add) {
                    (Scalar::Int(a), Scalar::Int(b)) => Scalar::Int(a + b),
                    (a, b) => Scalar::Float(a.as_float() + b.as_float()),
                };
                self.buffer_mut(buffer)?.set(idx, next, buffer)
            }
            Stmt::StoreMax {
                buffer,
                index,
                value,
            } => {
                let idx = self.eval(index)?.as_int()?;
                let candidate = self.eval(value)?;
                let current = self.buffer_ref(buffer)?.get(idx, buffer)?;
                let next = match (current, candidate) {
                    (Scalar::Int(a), Scalar::Int(b)) => Scalar::Int(a.max(b)),
                    (a, b) => Scalar::Float(a.as_float().max(b.as_float())),
                };
                self.buffer_mut(buffer)?.set(idx, next, buffer)
            }
            Stmt::StoreOr {
                buffer,
                index,
                value,
            } => {
                let idx = self.eval(index)?.as_int()?;
                let bit = self.eval(value)?.as_int()?;
                let current = self.buffer_ref(buffer)?.get(idx, buffer)?.as_int()?;
                self.buffer_mut(buffer)?
                    .set(idx, Scalar::Int(current | bit), buffer)
            }
            Stmt::For { var, lo, hi, body } => {
                let lo = self.eval(lo)?.as_int()?;
                let hi = self.eval(hi)?.as_int()?;
                for i in lo..hi {
                    self.scalars.insert(var.clone(), Scalar::Int(i));
                    self.exec_block(body)?;
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                let mut budget = self.while_budget;
                while self.eval(cond)?.as_int()? != 0 {
                    if budget == 0 {
                        return Err(InterpError::IterationLimit);
                    }
                    budget -= 1;
                    self.exec_block(body)?;
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then,
                otherwise,
            } => {
                if self.eval(cond)?.as_int()? != 0 {
                    self.exec_block(then)
                } else {
                    self.exec_block(otherwise)
                }
            }
            Stmt::Comment(_) => Ok(()),
        }
    }

    fn buffer_ref(&self, name: &str) -> Result<&Buffer, InterpError> {
        self.buffers
            .get(name)
            .ok_or_else(|| InterpError::UndefinedBuffer(name.to_string()))
    }

    fn buffer_mut(&mut self, name: &str) -> Result<&mut Buffer, InterpError> {
        self.buffers
            .get_mut(name)
            .ok_or_else(|| InterpError::UndefinedBuffer(name.to_string()))
    }

    /// Evaluates an expression in the current environment.
    ///
    /// # Errors
    ///
    /// Returns the first runtime error encountered.
    pub fn eval(&self, expr: &Expr) -> Result<Scalar, InterpError> {
        match expr {
            Expr::Int(v) => Ok(Scalar::Int(*v)),
            Expr::Float(v) => Ok(Scalar::Float(*v)),
            Expr::Var(name) => self
                .scalars
                .get(name)
                .copied()
                .ok_or_else(|| InterpError::UndefinedVariable(name.clone())),
            Expr::Load { buffer, index } => {
                let idx = self.eval(index)?.as_int()?;
                self.buffer_ref(buffer)?.get(idx, buffer)
            }
            Expr::Binary(op, lhs, rhs) => {
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                apply_binary(*op, l, r)
            }
            Expr::Cmp(op, lhs, rhs) => {
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                let result = match (l, r) {
                    (Scalar::Int(a), Scalar::Int(b)) => op.apply_int(a, b),
                    (a, b) => {
                        let (a, b) = (a.as_float(), b.as_float());
                        match op {
                            crate::expr::CmpOp::Eq => a == b,
                            crate::expr::CmpOp::Ne => a != b,
                            crate::expr::CmpOp::Lt => a < b,
                            crate::expr::CmpOp::Le => a <= b,
                            crate::expr::CmpOp::Gt => a > b,
                            crate::expr::CmpOp::Ge => a >= b,
                        }
                    }
                };
                Ok(Scalar::Int(result as i64))
            }
            Expr::Not(e) => Ok(Scalar::Int((self.eval(e)?.as_int()? == 0) as i64)),
            Expr::Min(l, r) => {
                let (l, r) = (self.eval(l)?, self.eval(r)?);
                Ok(match (l, r) {
                    (Scalar::Int(a), Scalar::Int(b)) => Scalar::Int(a.min(b)),
                    (a, b) => Scalar::Float(a.as_float().min(b.as_float())),
                })
            }
            Expr::Max(l, r) => {
                let (l, r) = (self.eval(l)?, self.eval(r)?);
                Ok(match (l, r) {
                    (Scalar::Int(a), Scalar::Int(b)) => Scalar::Int(a.max(b)),
                    (a, b) => Scalar::Float(a.as_float().max(b.as_float())),
                })
            }
            Expr::Select {
                cond,
                then,
                otherwise,
            } => {
                if self.eval(cond)?.as_int()? != 0 {
                    self.eval(then)
                } else {
                    self.eval(otherwise)
                }
            }
        }
    }
}

fn apply_binary(op: IrBinOp, lhs: Scalar, rhs: Scalar) -> Result<Scalar, InterpError> {
    match (lhs, rhs) {
        (Scalar::Int(a), Scalar::Int(b)) => {
            let v = match op {
                IrBinOp::Add => a.wrapping_add(b),
                IrBinOp::Sub => a.wrapping_sub(b),
                IrBinOp::Mul => a.wrapping_mul(b),
                IrBinOp::Div => {
                    if b == 0 {
                        return Err(InterpError::DivisionByZero);
                    }
                    a / b
                }
                IrBinOp::Rem => {
                    if b == 0 {
                        return Err(InterpError::DivisionByZero);
                    }
                    a % b
                }
                IrBinOp::Shl => a << (b & 63),
                IrBinOp::Shr => a >> (b & 63),
                IrBinOp::BitAnd => a & b,
                IrBinOp::BitOr => a | b,
                IrBinOp::BitXor => a ^ b,
                IrBinOp::LogicalAnd => ((a != 0) && (b != 0)) as i64,
                IrBinOp::LogicalOr => ((a != 0) || (b != 0)) as i64,
            };
            Ok(Scalar::Int(v))
        }
        (a, b) => {
            let (a, b) = (a.as_float(), b.as_float());
            let v = match op {
                IrBinOp::Add => a + b,
                IrBinOp::Sub => a - b,
                IrBinOp::Mul => a * b,
                IrBinOp::Div => a / b,
                other => {
                    return Err(InterpError::TypeError(format!(
                        "operator {other} is not defined on floats"
                    )))
                }
            };
            Ok(Scalar::Float(v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;
    use crate::stmt::Function;

    #[test]
    fn runs_histogram_loop() {
        // count[crd[p]]++ over p in [0, 5)
        let f = Function::new(
            "hist",
            vec!["crd".into()],
            vec![
                alloc_int("count", int(3), true),
                for_(
                    "p",
                    int(0),
                    int(5),
                    vec![store_add("count", load("crd", var("p")), int(1))],
                ),
            ],
        );
        let mut interp = Interpreter::new();
        interp.insert_buffer("crd", Buffer::Ints(vec![0, 2, 2, 1, 2]));
        interp.run(&f).unwrap();
        assert_eq!(interp.buffer("count").unwrap().as_ints(), &[1, 1, 3]);
    }

    #[test]
    fn float_stores_and_loads() {
        let f = Function::new(
            "copy",
            vec![],
            vec![
                alloc_float("out", int(2), true),
                store("out", int(0), float(1.5)),
                store("out", int(1), add(load("out", int(0)), float(1.0))),
            ],
        );
        let mut interp = Interpreter::new();
        interp.run(&f).unwrap();
        assert_eq!(interp.buffer("out").unwrap().as_floats(), &[1.5, 2.5]);
    }

    #[test]
    fn if_else_and_while_execute() {
        let f = Function::new(
            "f",
            vec![],
            vec![
                decl("x", int(0)),
                Stmt::While {
                    cond: lt(var("x"), int(5)),
                    body: vec![assign("x", add(var("x"), int(1)))],
                },
                if_else(
                    ge(var("x"), int(5)),
                    vec![decl("ok", int(1))],
                    vec![decl("ok", int(0))],
                ),
            ],
        );
        let mut interp = Interpreter::new();
        interp.run(&f).unwrap();
        assert_eq!(interp.int("x"), Some(5));
        assert_eq!(interp.int("ok"), Some(1));
    }

    #[test]
    fn reports_out_of_bounds_and_undefined_names() {
        let mut interp = Interpreter::new();
        interp.insert_buffer("a", Buffer::Ints(vec![1, 2]));
        assert!(matches!(
            interp.eval(&load("a", int(5))),
            Err(InterpError::OutOfBounds { .. })
        ));
        assert!(matches!(
            interp.eval(&load("missing", int(0))),
            Err(InterpError::UndefinedBuffer(_))
        ));
        assert!(matches!(
            interp.eval(&var("nope")),
            Err(InterpError::UndefinedVariable(_))
        ));
        assert!(matches!(
            interp.eval(&div(int(1), int(0))),
            Err(InterpError::DivisionByZero)
        ));
    }

    #[test]
    fn store_max_and_store_or() {
        let f = Function::new(
            "f",
            vec![],
            vec![
                alloc_int("m", int(1), true),
                store_max("m", int(0), int(4)),
                store_max("m", int(0), int(2)),
                alloc_int("bits", int(1), true),
                store_or("bits", int(0), int(1)),
                store_or("bits", int(0), int(4)),
            ],
        );
        let mut interp = Interpreter::new();
        interp.run(&f).unwrap();
        assert_eq!(interp.buffer("m").unwrap().as_ints(), &[4]);
        assert_eq!(interp.buffer("bits").unwrap().as_ints(), &[5]);
    }

    #[test]
    fn negative_allocation_is_an_error() {
        let f = Function::new("f", vec![], vec![alloc_int("a", int(-1), true)]);
        let mut interp = Interpreter::new();
        assert!(matches!(
            interp.run(&f),
            Err(InterpError::NegativeAllocation(-1))
        ));
    }

    #[test]
    fn select_min_max_not_evaluate() {
        let interp = Interpreter::new();
        let e = Expr::Select {
            cond: Box::new(gt(int(2), int(1))),
            then: Box::new(min(int(5), int(3))),
            otherwise: Box::new(max(int(5), int(3))),
        };
        assert_eq!(interp.eval(&e).unwrap(), Scalar::Int(3));
        assert_eq!(
            interp.eval(&Expr::Not(Box::new(int(0)))).unwrap(),
            Scalar::Int(1)
        );
        assert_eq!(
            interp.eval(&Expr::Not(Box::new(int(7)))).unwrap(),
            Scalar::Int(0)
        );
    }

    #[test]
    fn scalar_conversions() {
        assert_eq!(Scalar::Int(3).as_float(), 3.0);
        assert!(Scalar::Float(1.0).as_int().is_err());
        assert_eq!(Scalar::Int(3).as_int().unwrap(), 3);
    }
}
