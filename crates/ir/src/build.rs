//! Terse constructors for building IR, used by the code generator and tests.

use crate::expr::{CmpOp, Expr, IrBinOp};
use crate::stmt::{BufferKind, Stmt};

/// Integer literal.
pub fn int(v: i64) -> Expr {
    Expr::Int(v)
}

/// Floating-point literal.
pub fn float(v: f64) -> Expr {
    Expr::Float(v)
}

/// Scalar variable reference.
pub fn var(name: &str) -> Expr {
    Expr::Var(name.to_string())
}

/// Buffer load `buffer[index]`.
pub fn load(buffer: &str, index: Expr) -> Expr {
    Expr::Load {
        buffer: buffer.to_string(),
        index: Box::new(index),
    }
}

/// `lhs + rhs`
pub fn add(lhs: Expr, rhs: Expr) -> Expr {
    Expr::binary(IrBinOp::Add, lhs, rhs)
}

/// `lhs - rhs`
pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
    Expr::binary(IrBinOp::Sub, lhs, rhs)
}

/// `lhs * rhs`
pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
    Expr::binary(IrBinOp::Mul, lhs, rhs)
}

/// `lhs / rhs`
pub fn div(lhs: Expr, rhs: Expr) -> Expr {
    Expr::binary(IrBinOp::Div, lhs, rhs)
}

/// `lhs % rhs`
pub fn rem(lhs: Expr, rhs: Expr) -> Expr {
    Expr::binary(IrBinOp::Rem, lhs, rhs)
}

/// `min(lhs, rhs)`
pub fn min(lhs: Expr, rhs: Expr) -> Expr {
    Expr::Min(Box::new(lhs), Box::new(rhs))
}

/// `max(lhs, rhs)`
pub fn max(lhs: Expr, rhs: Expr) -> Expr {
    Expr::Max(Box::new(lhs), Box::new(rhs))
}

/// `lhs < rhs`
pub fn lt(lhs: Expr, rhs: Expr) -> Expr {
    Expr::cmp(CmpOp::Lt, lhs, rhs)
}

/// `lhs <= rhs`
pub fn le(lhs: Expr, rhs: Expr) -> Expr {
    Expr::cmp(CmpOp::Le, lhs, rhs)
}

/// `lhs > rhs`
pub fn gt(lhs: Expr, rhs: Expr) -> Expr {
    Expr::cmp(CmpOp::Gt, lhs, rhs)
}

/// `lhs >= rhs`
pub fn ge(lhs: Expr, rhs: Expr) -> Expr {
    Expr::cmp(CmpOp::Ge, lhs, rhs)
}

/// `lhs == rhs`
pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
    Expr::cmp(CmpOp::Eq, lhs, rhs)
}

/// `lhs != rhs`
pub fn ne(lhs: Expr, rhs: Expr) -> Expr {
    Expr::cmp(CmpOp::Ne, lhs, rhs)
}

/// Declares a scalar with an initial value.
pub fn decl(name: &str, init: Expr) -> Stmt {
    Stmt::DeclScalar {
        name: name.to_string(),
        init,
    }
}

/// Assigns to a scalar.
pub fn assign(name: &str, value: Expr) -> Stmt {
    Stmt::Assign {
        name: name.to_string(),
        value,
    }
}

/// Allocates an integer buffer.
pub fn alloc_int(name: &str, size: Expr, zero_init: bool) -> Stmt {
    Stmt::Alloc {
        name: name.to_string(),
        kind: BufferKind::Int,
        size,
        zero_init,
    }
}

/// Allocates a floating-point buffer.
pub fn alloc_float(name: &str, size: Expr, zero_init: bool) -> Stmt {
    Stmt::Alloc {
        name: name.to_string(),
        kind: BufferKind::Float,
        size,
        zero_init,
    }
}

/// `buffer[index] = value;`
pub fn store(buffer: &str, index: Expr, value: Expr) -> Stmt {
    Stmt::Store {
        buffer: buffer.to_string(),
        index,
        value,
    }
}

/// `buffer[index] += value;`
pub fn store_add(buffer: &str, index: Expr, value: Expr) -> Stmt {
    Stmt::StoreAdd {
        buffer: buffer.to_string(),
        index,
        value,
    }
}

/// `buffer[index] = max(buffer[index], value);`
pub fn store_max(buffer: &str, index: Expr, value: Expr) -> Stmt {
    Stmt::StoreMax {
        buffer: buffer.to_string(),
        index,
        value,
    }
}

/// `buffer[index] |= value;`
pub fn store_or(buffer: &str, index: Expr, value: Expr) -> Stmt {
    Stmt::StoreOr {
        buffer: buffer.to_string(),
        index,
        value,
    }
}

/// `for (var = lo; var < hi; var++) body`
pub fn for_(var: &str, lo: Expr, hi: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::For {
        var: var.to_string(),
        lo,
        hi,
        body,
    }
}

/// `if (cond) then`
pub fn if_(cond: Expr, then: Vec<Stmt>) -> Stmt {
    Stmt::If {
        cond,
        then,
        otherwise: vec![],
    }
}

/// `if (cond) then else otherwise`
pub fn if_else(cond: Expr, then: Vec<Stmt>, otherwise: Vec<Stmt>) -> Stmt {
    Stmt::If {
        cond,
        then,
        otherwise,
    }
}

/// A comment line.
pub fn comment(text: &str) -> Stmt {
    Stmt::Comment(text.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_expected_nodes() {
        assert_eq!(
            add(int(1), int(2)),
            Expr::binary(IrBinOp::Add, Expr::Int(1), Expr::Int(2))
        );
        assert_eq!(
            lt(var("i"), var("n")),
            Expr::cmp(CmpOp::Lt, Expr::Var("i".into()), Expr::Var("n".into()))
        );
        match alloc_float("vals", int(8), true) {
            Stmt::Alloc {
                kind: BufferKind::Float,
                zero_init: true,
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        match for_("i", int(0), int(3), vec![comment("x")]) {
            Stmt::For {
                ref var, ref body, ..
            } => {
                assert_eq!(var, "i");
                assert_eq!(body.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
