//! Imperative intermediate representation for generated conversion routines.
//!
//! The paper's prototype extends taco to *emit C code* like the listings in
//! Figure 6. This crate plays the role of that emitted code in the Rust
//! reproduction: the conversion code generator (`sparse-conv`) lowers a
//! conversion plan to [`Function`]s in this IR, which can be
//!
//! * pretty printed as C-like source (structurally comparable to Figure 6),
//! * simplified (constant folding, algebraic identities), and
//! * executed by a tree-walking [`interp::Interpreter`] against named `i64` /
//!   `f64` buffers, so that generated routines are directly testable against
//!   hand-written conversions.
//!
//! # Example
//!
//! ```
//! use conv_ir::build::*;
//! use conv_ir::interp::{Buffer, Interpreter};
//! use conv_ir::Function;
//!
//! // for (i = 0; i < 4; i++) out[i] = in[i] * 2;
//! let f = Function::new(
//!     "double",
//!     vec!["in".into(), "out".into()],
//!     vec![for_("i", int(0), int(4), vec![
//!         store("out", var("i"), mul(load("in", var("i")), int(2))),
//!     ])],
//! );
//! let mut interp = Interpreter::new();
//! interp.insert_buffer("in", Buffer::Ints(vec![1, 2, 3, 4]));
//! interp.insert_buffer("out", Buffer::Ints(vec![0; 4]));
//! interp.run(&f)?;
//! assert_eq!(interp.buffer("out").unwrap().as_ints(), &[2, 4, 6, 8]);
//! # Ok::<(), conv_ir::interp::InterpError>(())
//! ```

pub mod build;
pub mod expr;
pub mod interp;
pub mod printer;
pub mod simplify;
pub mod stmt;

pub use expr::{CmpOp, Expr, IrBinOp};
pub use stmt::{Function, Stmt};
