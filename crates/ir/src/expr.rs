//! Expressions of the conversion IR.

use std::fmt;

/// Binary operators over IR expressions.
///
/// Arithmetic and bitwise operators follow C semantics on 64-bit integers;
/// `Add`/`Sub`/`Mul`/`Div` are also defined on floating-point values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IrBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `&&` (operands interpreted as booleans: nonzero = true)
    LogicalAnd,
    /// `||`
    LogicalOr,
}

impl IrBinOp {
    /// The operator's C surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            IrBinOp::Add => "+",
            IrBinOp::Sub => "-",
            IrBinOp::Mul => "*",
            IrBinOp::Div => "/",
            IrBinOp::Rem => "%",
            IrBinOp::Shl => "<<",
            IrBinOp::Shr => ">>",
            IrBinOp::BitAnd => "&",
            IrBinOp::BitOr => "|",
            IrBinOp::BitXor => "^",
            IrBinOp::LogicalAnd => "&&",
            IrBinOp::LogicalOr => "||",
        }
    }
}

impl fmt::Display for IrBinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Comparison operators; comparisons evaluate to `1` or `0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The operator's C surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// Applies the comparison to two integers.
    pub fn apply_int(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// An IR expression.
///
/// Expressions are dynamically typed between integers and floating-point
/// values: loads from value buffers produce floats, everything else produces
/// integers, and the interpreter reports a type error on mismatched use.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// A scalar variable reference (loop variables, sizes, accumulators).
    Var(String),
    /// `buffer[index]`.
    Load {
        /// Name of the buffer being indexed.
        buffer: String,
        /// Index expression.
        index: Box<Expr>,
    },
    /// A binary operation.
    Binary(IrBinOp, Box<Expr>, Box<Expr>),
    /// A comparison producing 0 or 1.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical negation (`!e`): 1 if the operand is zero, else 0.
    Not(Box<Expr>),
    /// Two-argument minimum.
    Min(Box<Expr>, Box<Expr>),
    /// Two-argument maximum.
    Max(Box<Expr>, Box<Expr>),
    /// Conditional expression `cond ? then : otherwise`.
    Select {
        /// Condition (nonzero = true).
        cond: Box<Expr>,
        /// Value when the condition holds.
        then: Box<Expr>,
        /// Value when it does not.
        otherwise: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for a binary operation.
    pub fn binary(op: IrBinOp, lhs: Expr, rhs: Expr) -> Self {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor for a comparison.
    pub fn cmp(op: CmpOp, lhs: Expr, rhs: Expr) -> Self {
        Expr::Cmp(op, Box::new(lhs), Box::new(rhs))
    }

    /// True when the expression is the integer literal `value`.
    pub fn is_int(&self, value: i64) -> bool {
        matches!(self, Expr::Int(v) if *v == value)
    }

    /// Names of all buffers the expression reads.
    pub fn buffers_read(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_buffers(&mut out);
        out
    }

    fn collect_buffers(&self, out: &mut Vec<String>) {
        match self {
            Expr::Load { buffer, index } => {
                if !out.contains(buffer) {
                    out.push(buffer.clone());
                }
                index.collect_buffers(out);
            }
            Expr::Binary(_, l, r) | Expr::Cmp(_, l, r) | Expr::Min(l, r) | Expr::Max(l, r) => {
                l.collect_buffers(out);
                r.collect_buffers(out);
            }
            Expr::Not(e) => e.collect_buffers(out),
            Expr::Select {
                cond,
                then,
                otherwise,
            } => {
                cond.collect_buffers(out);
                then.collect_buffers(out);
                otherwise.collect_buffers(out);
            }
            Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_apply_int_covers_all_operators() {
        assert!(CmpOp::Eq.apply_int(2, 2));
        assert!(CmpOp::Ne.apply_int(2, 3));
        assert!(CmpOp::Lt.apply_int(2, 3));
        assert!(CmpOp::Le.apply_int(3, 3));
        assert!(CmpOp::Gt.apply_int(4, 3));
        assert!(CmpOp::Ge.apply_int(3, 3));
        assert!(!CmpOp::Lt.apply_int(3, 3));
    }

    #[test]
    fn buffers_read_collects_unique_names() {
        let e = Expr::binary(
            IrBinOp::Add,
            Expr::Load {
                buffer: "pos".into(),
                index: Box::new(Expr::Var("i".into())),
            },
            Expr::Load {
                buffer: "pos".into(),
                index: Box::new(Expr::binary(
                    IrBinOp::Add,
                    Expr::Var("i".into()),
                    Expr::Int(1),
                )),
            },
        );
        assert_eq!(e.buffers_read(), vec!["pos".to_string()]);
    }

    #[test]
    fn is_int_matches_literals_only() {
        assert!(Expr::Int(3).is_int(3));
        assert!(!Expr::Int(2).is_int(3));
        assert!(!Expr::Var("x".into()).is_int(3));
    }

    #[test]
    fn operator_symbols() {
        assert_eq!(IrBinOp::Add.symbol(), "+");
        assert_eq!(IrBinOp::LogicalOr.symbol(), "||");
        assert_eq!(CmpOp::Ge.symbol(), ">=");
        assert_eq!(format!("{}", IrBinOp::Shl), "<<");
        assert_eq!(format!("{}", CmpOp::Ne), "!=");
    }
}
