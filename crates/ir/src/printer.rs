//! Pretty printer producing C-like listings of IR functions.
//!
//! The printed form is intended to be read side by side with Figure 6 of the
//! paper; it is not guaranteed to be compilable C (buffers are untyped
//! pointers, and `min`/`max` are printed as calls).

use std::fmt::Write as _;

use crate::expr::Expr;
use crate::stmt::{BufferKind, Function, Stmt};

/// Prints an expression as C-like source text.
pub fn print_expr(expr: &Expr) -> String {
    match expr {
        Expr::Int(v) => v.to_string(),
        Expr::Float(v) => format!("{v:?}"),
        Expr::Var(name) => name.clone(),
        Expr::Load { buffer, index } => format!("{buffer}[{}]", print_expr(index)),
        Expr::Binary(op, l, r) => {
            format!("({} {} {})", print_expr(l), op.symbol(), print_expr(r))
        }
        Expr::Cmp(op, l, r) => format!("({} {} {})", print_expr(l), op.symbol(), print_expr(r)),
        Expr::Not(e) => format!("!({})", print_expr(e)),
        Expr::Min(l, r) => format!("min({}, {})", print_expr(l), print_expr(r)),
        Expr::Max(l, r) => format!("max({}, {})", print_expr(l), print_expr(r)),
        Expr::Select {
            cond,
            then,
            otherwise,
        } => format!(
            "({} ? {} : {})",
            print_expr(cond),
            print_expr(then),
            print_expr(otherwise)
        ),
    }
}

fn print_stmt(stmt: &Stmt, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match stmt {
        Stmt::DeclScalar { name, init } => {
            let _ = writeln!(out, "{pad}int {name} = {};", print_expr(init));
        }
        Stmt::Assign { name, value } => {
            let _ = writeln!(out, "{pad}{name} = {};", print_expr(value));
        }
        Stmt::Alloc {
            name,
            kind,
            size,
            zero_init,
        } => {
            let ty = match kind {
                BufferKind::Int => "int",
                BufferKind::Float => "double",
            };
            let alloc = if *zero_init { "calloc" } else { "malloc" };
            let _ = writeln!(
                out,
                "{pad}{ty}* {name} = {alloc}({}, sizeof({ty}));",
                print_expr(size)
            );
        }
        Stmt::Store {
            buffer,
            index,
            value,
        } => {
            let _ = writeln!(
                out,
                "{pad}{buffer}[{}] = {};",
                print_expr(index),
                print_expr(value)
            );
        }
        Stmt::StoreAdd {
            buffer,
            index,
            value,
        } => {
            let _ = writeln!(
                out,
                "{pad}{buffer}[{}] += {};",
                print_expr(index),
                print_expr(value)
            );
        }
        Stmt::StoreMax {
            buffer,
            index,
            value,
        } => {
            let idx = print_expr(index);
            let _ = writeln!(
                out,
                "{pad}{buffer}[{idx}] = max({buffer}[{idx}], {});",
                print_expr(value)
            );
        }
        Stmt::StoreOr {
            buffer,
            index,
            value,
        } => {
            let _ = writeln!(
                out,
                "{pad}{buffer}[{}] |= {};",
                print_expr(index),
                print_expr(value)
            );
        }
        Stmt::For { var, lo, hi, body } => {
            let _ = writeln!(
                out,
                "{pad}for (int {var} = {}; {var} < {}; {var}++) {{",
                print_expr(lo),
                print_expr(hi)
            );
            for s in body {
                print_stmt(s, indent + 1, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::While { cond, body } => {
            let _ = writeln!(out, "{pad}while ({}) {{", print_expr(cond));
            for s in body {
                print_stmt(s, indent + 1, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::If {
            cond,
            then,
            otherwise,
        } => {
            let _ = writeln!(out, "{pad}if ({}) {{", print_expr(cond));
            for s in then {
                print_stmt(s, indent + 1, out);
            }
            if otherwise.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                for s in otherwise {
                    print_stmt(s, indent + 1, out);
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
        Stmt::Comment(text) => {
            let _ = writeln!(out, "{pad}// {text}");
        }
    }
}

/// Prints a whole function as a C-like listing.
pub fn print_function(f: &Function) -> String {
    let mut out = String::new();
    let params = f.params.join(", ");
    let _ = writeln!(out, "void {}({params}) {{", f.name);
    for s in &f.body {
        print_stmt(s, 1, &mut out);
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    #[test]
    fn prints_expressions() {
        assert_eq!(print_expr(&add(var("i"), int(1))), "(i + 1)");
        assert_eq!(print_expr(&load("pos", var("i"))), "pos[i]");
        assert_eq!(print_expr(&max(var("a"), int(0))), "max(a, 0)");
        assert_eq!(print_expr(&lt(var("i"), var("n"))), "(i < n)");
        assert_eq!(print_expr(&Expr::Not(Box::new(var("x")))), "!(x)");
        assert_eq!(
            print_expr(&Expr::Select {
                cond: Box::new(var("c")),
                then: Box::new(int(1)),
                otherwise: Box::new(int(0)),
            }),
            "(c ? 1 : 0)"
        );
        assert_eq!(print_expr(&Expr::Float(1.5)), "1.5");
    }

    #[test]
    fn prints_function_with_loops_and_allocs() {
        let f = Function::new(
            "count_rows",
            vec!["A_pos".into(), "N".into()],
            vec![
                alloc_int("count", var("N"), true),
                for_(
                    "i",
                    int(0),
                    var("N"),
                    vec![store_add(
                        "count",
                        var("i"),
                        sub(
                            load("A_pos", add(var("i"), int(1))),
                            load("A_pos", var("i")),
                        ),
                    )],
                ),
                Stmt::Comment("analysis done".into()),
            ],
        );
        let text = print_function(&f);
        assert!(text.contains("void count_rows(A_pos, N) {"));
        assert!(text.contains("int* count = calloc(N, sizeof(int));"));
        assert!(text.contains("for (int i = 0; i < N; i++) {"));
        assert!(text.contains("count[i] += (A_pos[(i + 1)] - A_pos[i]);"));
        assert!(text.contains("// analysis done"));
        assert!(text.trim_end().ends_with('}'));
    }

    #[test]
    fn prints_if_else_and_while() {
        let f = Function::new(
            "f",
            vec![],
            vec![
                Stmt::If {
                    cond: ge(var("x"), int(0)),
                    then: vec![assign("x", int(1))],
                    otherwise: vec![assign("x", int(2))],
                },
                Stmt::While {
                    cond: lt(var("x"), int(10)),
                    body: vec![assign("x", add(var("x"), int(1)))],
                },
            ],
        );
        let text = print_function(&f);
        assert!(text.contains("if ((x >= 0)) {"));
        assert!(text.contains("} else {"));
        assert!(text.contains("while ((x < 10)) {"));
    }
}
