//! Statements and functions of the conversion IR.

use crate::expr::Expr;

/// The element type of an allocated buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufferKind {
    /// 64-bit integers (`pos`, `crd`, `perm`, counters, bit sets, ...).
    Int,
    /// Double-precision values (`vals`).
    Float,
}

/// An IR statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Declare (or overwrite) a scalar variable with an initial value.
    DeclScalar {
        /// Variable name.
        name: String,
        /// Initialiser.
        init: Expr,
    },
    /// Assign a new value to a scalar variable.
    Assign {
        /// Variable name.
        name: String,
        /// New value.
        value: Expr,
    },
    /// Allocate a buffer of `size` elements.
    Alloc {
        /// Buffer name.
        name: String,
        /// Element type.
        kind: BufferKind,
        /// Number of elements.
        size: Expr,
        /// Whether the buffer is zero-initialised (`calloc`) or left
        /// uninitialised (`malloc`). The interpreter always zero-fills, but
        /// the flag is kept for faithful C listings and for the calloc-based
        /// optimisation discussed in Section 7.2.
        zero_init: bool,
    },
    /// `buffer[index] = value;`
    Store {
        /// Buffer name.
        buffer: String,
        /// Index expression.
        index: Expr,
        /// Stored value.
        value: Expr,
    },
    /// `buffer[index] += value;` (used by count/histogram queries).
    StoreAdd {
        /// Buffer name.
        buffer: String,
        /// Index expression.
        index: Expr,
        /// Added value.
        value: Expr,
    },
    /// `buffer[index] = max(buffer[index], value);` (used by max/min queries).
    StoreMax {
        /// Buffer name.
        buffer: String,
        /// Index expression.
        index: Expr,
        /// Compared value.
        value: Expr,
    },
    /// `buffer[index] |= value;` (boolean OR reduction for `id` queries).
    StoreOr {
        /// Buffer name.
        buffer: String,
        /// Index expression.
        index: Expr,
        /// OR-ed value.
        value: Expr,
    },
    /// `for (var = lo; var < hi; var++) body`
    For {
        /// Loop variable.
        var: String,
        /// Inclusive lower bound.
        lo: Expr,
        /// Exclusive upper bound.
        hi: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `while (cond) body`
    While {
        /// Loop condition (nonzero = continue).
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `if (cond) then else otherwise`
    If {
        /// Condition (nonzero = true).
        cond: Expr,
        /// True branch.
        then: Vec<Stmt>,
        /// False branch (possibly empty).
        otherwise: Vec<Stmt>,
    },
    /// A comment, kept so printed listings can mark the remap / analysis /
    /// assembly phases like the background colours in Figure 6.
    Comment(String),
}

impl Stmt {
    /// Convenience constructor for a `for` loop.
    pub fn for_loop(var: &str, lo: Expr, hi: Expr, body: Vec<Stmt>) -> Self {
        Stmt::For {
            var: var.to_string(),
            lo,
            hi,
            body,
        }
    }
}

/// A generated routine: a name, the buffers/scalars it expects to find in the
/// execution environment, and a statement body.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Routine name, e.g. `convert_csr_to_dia`.
    pub name: String,
    /// Names of buffers and scalars the routine reads as inputs.
    pub params: Vec<String>,
    /// The routine body.
    pub body: Vec<Stmt>,
}

impl Function {
    /// Creates a function.
    pub fn new(name: &str, params: Vec<String>, body: Vec<Stmt>) -> Self {
        Function {
            name: name.to_string(),
            params,
            body,
        }
    }

    /// Total number of statements, counting nested bodies (a crude size
    /// metric used in tests and ablation reports).
    pub fn statement_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::For { body, .. } | Stmt::While { body, .. } => 1 + count(body),
                    Stmt::If {
                        then, otherwise, ..
                    } => 1 + count(then) + count(otherwise),
                    _ => 1,
                })
                .sum()
        }
        count(&self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn statement_count_includes_nested_bodies() {
        let f = Function::new(
            "f",
            vec![],
            vec![
                Stmt::DeclScalar {
                    name: "x".into(),
                    init: Expr::Int(0),
                },
                Stmt::for_loop(
                    "i",
                    Expr::Int(0),
                    Expr::Int(10),
                    vec![
                        Stmt::Assign {
                            name: "x".into(),
                            value: Expr::Var("i".into()),
                        },
                        Stmt::If {
                            cond: Expr::Int(1),
                            then: vec![Stmt::Comment("hi".into())],
                            otherwise: vec![],
                        },
                    ],
                ),
            ],
        );
        assert_eq!(f.statement_count(), 5);
    }
}
