//! Algebraic simplification of IR expressions and statements.
//!
//! The code generator composes expressions mechanically (remapped coordinates
//! are inlined into position computations), which produces terms like
//! `(i * 1) + 0`. Simplification keeps generated listings readable and is a
//! small stand-in for the constant folding the paper mentions in Section 5.2.

use crate::expr::{Expr, IrBinOp};
use crate::stmt::{Function, Stmt};

/// Simplifies an expression: constant folding plus the identities
/// `x + 0`, `0 + x`, `x - 0`, `x * 1`, `1 * x`, `x * 0`, `0 * x`, `x / 1`.
pub fn simplify_expr(expr: &Expr) -> Expr {
    match expr {
        Expr::Binary(op, lhs, rhs) => {
            let l = simplify_expr(lhs);
            let r = simplify_expr(rhs);
            if let (Expr::Int(a), Expr::Int(b)) = (&l, &r) {
                if let Some(v) = fold(*op, *a, *b) {
                    return Expr::Int(v);
                }
            }
            match (op, &l, &r) {
                (IrBinOp::Add, e, z) | (IrBinOp::Add, z, e) if z.is_int(0) => e.clone(),
                (IrBinOp::Sub, e, z) if z.is_int(0) => e.clone(),
                (IrBinOp::Mul, e, one) | (IrBinOp::Mul, one, e) if one.is_int(1) => e.clone(),
                (IrBinOp::Mul, _, z) | (IrBinOp::Mul, z, _) if z.is_int(0) => Expr::Int(0),
                (IrBinOp::Div, e, one) if one.is_int(1) => e.clone(),
                _ => Expr::Binary(*op, Box::new(l), Box::new(r)),
            }
        }
        Expr::Cmp(op, lhs, rhs) => {
            let l = simplify_expr(lhs);
            let r = simplify_expr(rhs);
            if let (Expr::Int(a), Expr::Int(b)) = (&l, &r) {
                return Expr::Int(op.apply_int(*a, *b) as i64);
            }
            Expr::Cmp(*op, Box::new(l), Box::new(r))
        }
        Expr::Not(e) => {
            let inner = simplify_expr(e);
            if let Expr::Int(v) = inner {
                Expr::Int((v == 0) as i64)
            } else {
                Expr::Not(Box::new(inner))
            }
        }
        Expr::Min(l, r) => {
            let (l, r) = (simplify_expr(l), simplify_expr(r));
            if let (Expr::Int(a), Expr::Int(b)) = (&l, &r) {
                Expr::Int(*a.min(b))
            } else {
                Expr::Min(Box::new(l), Box::new(r))
            }
        }
        Expr::Max(l, r) => {
            let (l, r) = (simplify_expr(l), simplify_expr(r));
            if let (Expr::Int(a), Expr::Int(b)) = (&l, &r) {
                Expr::Int(*a.max(b))
            } else {
                Expr::Max(Box::new(l), Box::new(r))
            }
        }
        Expr::Select {
            cond,
            then,
            otherwise,
        } => {
            let cond = simplify_expr(cond);
            match cond {
                Expr::Int(0) => simplify_expr(otherwise),
                Expr::Int(_) => simplify_expr(then),
                _ => Expr::Select {
                    cond: Box::new(cond),
                    then: Box::new(simplify_expr(then)),
                    otherwise: Box::new(simplify_expr(otherwise)),
                },
            }
        }
        Expr::Load { buffer, index } => Expr::Load {
            buffer: buffer.clone(),
            index: Box::new(simplify_expr(index)),
        },
        Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => expr.clone(),
    }
}

fn fold(op: IrBinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        IrBinOp::Add => a.checked_add(b)?,
        IrBinOp::Sub => a.checked_sub(b)?,
        IrBinOp::Mul => a.checked_mul(b)?,
        IrBinOp::Div => a.checked_div(b)?,
        IrBinOp::Rem => a.checked_rem(b)?,
        IrBinOp::Shl => {
            if (0..64).contains(&b) {
                a << b
            } else {
                return None;
            }
        }
        IrBinOp::Shr => {
            if (0..64).contains(&b) {
                a >> b
            } else {
                return None;
            }
        }
        IrBinOp::BitAnd => a & b,
        IrBinOp::BitOr => a | b,
        IrBinOp::BitXor => a ^ b,
        IrBinOp::LogicalAnd => ((a != 0) && (b != 0)) as i64,
        IrBinOp::LogicalOr => ((a != 0) || (b != 0)) as i64,
    })
}

fn simplify_stmt(stmt: &Stmt) -> Option<Stmt> {
    let simplified = match stmt {
        Stmt::DeclScalar { name, init } => Stmt::DeclScalar {
            name: name.clone(),
            init: simplify_expr(init),
        },
        Stmt::Assign { name, value } => Stmt::Assign {
            name: name.clone(),
            value: simplify_expr(value),
        },
        Stmt::Alloc {
            name,
            kind,
            size,
            zero_init,
        } => Stmt::Alloc {
            name: name.clone(),
            kind: *kind,
            size: simplify_expr(size),
            zero_init: *zero_init,
        },
        Stmt::Store {
            buffer,
            index,
            value,
        } => Stmt::Store {
            buffer: buffer.clone(),
            index: simplify_expr(index),
            value: simplify_expr(value),
        },
        Stmt::StoreAdd {
            buffer,
            index,
            value,
        } => Stmt::StoreAdd {
            buffer: buffer.clone(),
            index: simplify_expr(index),
            value: simplify_expr(value),
        },
        Stmt::StoreMax {
            buffer,
            index,
            value,
        } => Stmt::StoreMax {
            buffer: buffer.clone(),
            index: simplify_expr(index),
            value: simplify_expr(value),
        },
        Stmt::StoreOr {
            buffer,
            index,
            value,
        } => Stmt::StoreOr {
            buffer: buffer.clone(),
            index: simplify_expr(index),
            value: simplify_expr(value),
        },
        Stmt::For { var, lo, hi, body } => {
            let lo = simplify_expr(lo);
            let hi = simplify_expr(hi);
            // Drop loops with a statically empty range.
            if let (Expr::Int(a), Expr::Int(b)) = (&lo, &hi) {
                if a >= b {
                    return None;
                }
            }
            Stmt::For {
                var: var.clone(),
                lo,
                hi,
                body: simplify_block(body),
            }
        }
        Stmt::While { cond, body } => {
            let cond = simplify_expr(cond);
            if cond.is_int(0) {
                return None;
            }
            Stmt::While {
                cond,
                body: simplify_block(body),
            }
        }
        Stmt::If {
            cond,
            then,
            otherwise,
        } => {
            let cond = simplify_expr(cond);
            match cond {
                Expr::Int(0) => {
                    let otherwise = simplify_block(otherwise);
                    if otherwise.is_empty() {
                        return None;
                    }
                    return Some(Stmt::If {
                        cond: Expr::Int(1),
                        then: otherwise,
                        otherwise: vec![],
                    });
                }
                Expr::Int(_) => {
                    return Some(Stmt::If {
                        cond: Expr::Int(1),
                        then: simplify_block(then),
                        otherwise: vec![],
                    })
                }
                _ => Stmt::If {
                    cond,
                    then: simplify_block(then),
                    otherwise: simplify_block(otherwise),
                },
            }
        }
        Stmt::Comment(text) => Stmt::Comment(text.clone()),
    };
    Some(simplified)
}

fn simplify_block(stmts: &[Stmt]) -> Vec<Stmt> {
    stmts.iter().filter_map(simplify_stmt).collect()
}

/// Simplifies every statement of a function.
pub fn simplify_function(f: &Function) -> Function {
    Function {
        name: f.name.clone(),
        params: f.params.clone(),
        body: simplify_block(&f.body),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    #[test]
    fn folds_constants_and_identities() {
        assert_eq!(simplify_expr(&add(int(2), int(3))), int(5));
        assert_eq!(simplify_expr(&add(var("i"), int(0))), var("i"));
        assert_eq!(simplify_expr(&mul(var("i"), int(1))), var("i"));
        assert_eq!(simplify_expr(&mul(var("i"), int(0))), int(0));
        assert_eq!(simplify_expr(&sub(var("i"), int(0))), var("i"));
        assert_eq!(simplify_expr(&div(var("i"), int(1))), var("i"));
        assert_eq!(simplify_expr(&lt(int(1), int(2))), int(1));
        assert_eq!(simplify_expr(&min(int(4), int(7))), int(4));
        assert_eq!(simplify_expr(&max(int(4), int(7))), int(7));
    }

    #[test]
    fn simplifies_nested_loads_and_selects() {
        let e = load("pos", add(var("i"), int(0)));
        assert_eq!(simplify_expr(&e), load("pos", var("i")));
        let sel = Expr::Select {
            cond: Box::new(int(1)),
            then: Box::new(add(int(1), int(1))),
            otherwise: Box::new(var("x")),
        };
        assert_eq!(simplify_expr(&sel), int(2));
    }

    #[test]
    fn drops_dead_loops_and_branches() {
        let f = Function::new(
            "f",
            vec![],
            vec![
                for_("i", int(3), int(3), vec![comment("dead")]),
                if_(int(0), vec![comment("dead")]),
                if_else(
                    int(0),
                    vec![comment("dead")],
                    vec![decl("x", add(int(1), int(2)))],
                ),
                Stmt::While {
                    cond: int(0),
                    body: vec![comment("dead")],
                },
                decl("y", mul(var("n"), int(1))),
            ],
        );
        let simplified = simplify_function(&f);
        assert_eq!(simplified.body.len(), 2);
        match &simplified.body[0] {
            Stmt::If { cond, then, .. } => {
                assert_eq!(cond, &int(1));
                assert_eq!(then, &vec![decl("x", int(3))]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(simplified.body[1], decl("y", var("n")));
    }

    #[test]
    fn division_by_zero_is_not_folded() {
        let e = div(int(1), int(0));
        assert_eq!(simplify_expr(&e), e);
    }

    #[test]
    fn not_and_cmp_folding() {
        assert_eq!(simplify_expr(&Expr::Not(Box::new(int(0)))), int(1));
        assert_eq!(
            simplify_expr(&Expr::Not(Box::new(var("x")))),
            Expr::Not(Box::new(var("x")))
        );
        assert_eq!(simplify_expr(&eq(int(2), int(2))), int(1));
        assert_eq!(simplify_expr(&ne(int(2), int(2))), int(0));
    }
}
