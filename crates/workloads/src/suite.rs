//! The Table 2 matrix suite.
//!
//! One [`MatrixSpec`] per row of Table 2, with a generator class chosen from
//! the row's statistics: rows with a handful of nonzero diagonals are stencil
//! (banded) matrices, rows with dense blocks and long rows are FEM-like
//! (blocked), and the rest are irregular. `generate(scale)` synthesises the
//! matrix at a reduced size so the full harness stays tractable.

use sparse_tensor::{MatrixStats, SparseTriples};

use crate::generators::{banded, blocked, irregular, stencil_offsets, GeneratorError};

/// Re-export used by the spec table.
pub use crate::generators;

/// The structural class used to synthesise a Table 2 matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixClass {
    /// A fixed set of fully-populated diagonals (stencil matrices).
    Banded,
    /// Dense tiles on and near the diagonal (FEM matrices).
    Blocked,
    /// Skewed row lengths with uniformly random columns (circuit / web / LP
    /// matrices).
    Irregular,
}

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixSpec {
    /// Matrix name as it appears in the paper.
    pub name: &'static str,
    /// Number of rows (= columns; every Table 2 matrix is square).
    pub dim: usize,
    /// Number of nonzeros reported in the paper.
    pub nnz: usize,
    /// Number of nonzero diagonals reported in the paper.
    pub nonzero_diagonals: usize,
    /// Maximum nonzeros per row reported in the paper.
    pub max_nnz_per_row: usize,
    /// True when the paper marks the matrix as non-symmetric (grey rows);
    /// CSR→CSC results are only reported for these.
    pub non_symmetric: bool,
    /// Generator class used for the synthetic stand-in.
    pub class: MatrixClass,
}

impl MatrixSpec {
    /// True when the paper reports DIA/ELL conversions for this matrix (the
    /// padded format would be at least 25% full).
    pub fn dia_admissible(&self) -> bool {
        self.nnz as f64 / (self.nonzero_diagonals as f64 * self.dim as f64) >= 0.25
    }

    /// See [`MatrixSpec::dia_admissible`].
    pub fn ell_admissible(&self) -> bool {
        self.nnz as f64 / (self.max_nnz_per_row as f64 * self.dim as f64) >= 0.25
    }

    /// Synthesises the matrix at the given scale (`1.0` = paper-sized).
    /// Dimensions and nonzero counts shrink proportionally; per-row and
    /// per-diagonal structure is preserved.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn generate(&self, scale: f64) -> SparseTriples {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let dim = ((self.dim as f64 * scale) as usize).max(64);
        let nnz = ((self.nnz as f64 * scale) as usize).max(dim);
        let seed = fxhash(self.name);
        match self.class {
            MatrixClass::Banded => {
                // Cap the diagonal count at the paper's max-row statistic so
                // both the row-length and the fill statistics match; a few
                // stencil matrices (e.g. majorbasis) have more diagonals than
                // nonzeros per row, which this stand-in approximates from
                // below (see EXPERIMENTS.md).
                let count = self
                    .nonzero_diagonals
                    .min(self.max_nnz_per_row)
                    .min(dim / 2);
                let offsets = stencil_offsets(count);
                banded(dim, dim, &offsets, seed).expect("banded parameters are valid")
            }
            MatrixClass::Blocked => {
                let block = (self.max_nnz_per_row / 12).clamp(2, 8);
                let blocks_per_row = (self.max_nnz_per_row / block).clamp(1, dim / block.max(1));
                blocked(dim, dim, block, blocks_per_row, nnz, seed)
                    .expect("blocked parameters are valid")
            }
            MatrixClass::Irregular => {
                let max_row = self.max_nnz_per_row.min(dim);
                let target = nnz.min(dim * max_row);
                irregular(dim, dim, target, max_row, seed).expect("irregular parameters are valid")
            }
        }
    }

    /// Generates the matrix and returns its measured statistics alongside it.
    ///
    /// # Errors
    ///
    /// Propagates generator errors (none occur for the stock suite).
    pub fn generate_with_stats(
        &self,
        scale: f64,
    ) -> Result<(SparseTriples, MatrixStats), GeneratorError> {
        let m = self.generate(scale);
        let stats = MatrixStats::compute(&m);
        Ok((m, stats))
    }
}

/// A tiny deterministic string hash for per-matrix seeds.
fn fxhash(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

/// The 21 matrices of Table 2.
pub fn table2() -> Vec<MatrixSpec> {
    use MatrixClass::*;
    let spec = |name, dim, nnz, diags, max_row, non_symmetric, class| MatrixSpec {
        name,
        dim,
        nnz,
        nonzero_diagonals: diags,
        max_nnz_per_row: max_row,
        non_symmetric,
        class,
    };
    vec![
        spec("pdb1HYS", 36_400, 4_340_000, 26_000, 204, false, Blocked),
        spec("jnlbrng1", 40_000, 199_000, 5, 5, false, Banded),
        spec("obstclae", 40_000, 199_000, 5, 5, false, Banded),
        spec("chem_master1", 40_400, 201_000, 5, 5, true, Banded),
        spec("rma10", 46_800, 2_370_000, 17_000, 145, false, Blocked),
        spec("dixmaanl", 60_000, 300_000, 7, 5, false, Banded),
        spec("cant", 62_500, 4_010_000, 99, 78, false, Blocked),
        spec("shyy161", 76_500, 330_000, 7, 6, true, Banded),
        spec("consph", 83_300, 6_010_000, 13_000, 81, false, Blocked),
        spec("denormal", 89_400, 1_160_000, 13, 13, false, Banded),
        spec("Baumann", 112_000, 748_000, 7, 7, true, Banded),
        spec(
            "cop20k_A", 121_000, 2_620_000, 221_000, 81, false, Irregular,
        ),
        spec("shipsec1", 141_000, 3_570_000, 10_000, 102, false, Blocked),
        spec("majorbasis", 160_000, 1_750_000, 22, 11, true, Banded),
        spec("scircuit", 171_000, 959_000, 159_000, 353, true, Irregular),
        spec(
            "mac_econ_fwd500",
            207_000,
            1_270_000,
            511,
            44,
            true,
            Irregular,
        ),
        spec("pwtk", 218_000, 11_500_000, 20_000, 180, false, Blocked),
        spec("Lin", 256_000, 1_770_000, 7, 7, false, Banded),
        spec("ecology1", 1_000_000, 5_000_000, 5, 5, false, Banded),
        spec(
            "webbase-1M",
            1_000_000,
            3_110_000,
            564_000,
            4_700,
            true,
            Irregular,
        ),
        spec("atmosmodd", 1_270_000, 8_810_000, 7, 7, true, Banded),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_21_matrices_matching_the_paper() {
        let suite = table2();
        assert_eq!(suite.len(), 21);
        let names: Vec<&str> = suite.iter().map(|s| s.name).collect();
        assert!(names.contains(&"pdb1HYS"));
        assert!(names.contains(&"webbase-1M"));
        assert_eq!(suite.iter().filter(|s| s.non_symmetric).count(), 8);
        // The paper omits DIA/ELL results for the very sparse, very
        // irregular matrices.
        assert!(!suite
            .iter()
            .find(|s| s.name == "webbase-1M")
            .unwrap()
            .dia_admissible());
        assert!(suite
            .iter()
            .find(|s| s.name == "ecology1")
            .unwrap()
            .dia_admissible());
        assert!(suite
            .iter()
            .find(|s| s.name == "Lin")
            .unwrap()
            .ell_admissible());
    }

    #[test]
    fn banded_specs_reproduce_their_statistics_at_scale() {
        let suite = table2();
        for spec in suite
            .iter()
            .filter(|s| s.class == MatrixClass::Banded)
            .take(4)
        {
            let (_, stats) = spec.generate_with_stats(0.02).unwrap();
            assert_eq!(
                stats.nonzero_diagonals,
                spec.nonzero_diagonals.min(spec.max_nnz_per_row),
                "{}",
                spec.name
            );
            assert!(
                stats.max_nnz_per_row <= spec.max_nnz_per_row + 2,
                "{}: {} vs {}",
                spec.name,
                stats.max_nnz_per_row,
                spec.max_nnz_per_row
            );
            // Banded stencils are square and roughly nnz ≈ diagonals * dim.
            assert!(stats.nnz >= stats.rows);
        }
    }

    #[test]
    fn irregular_specs_reproduce_row_caps_at_scale() {
        let spec = table2().into_iter().find(|s| s.name == "scircuit").unwrap();
        let (_, stats) = spec.generate_with_stats(0.01).unwrap();
        assert!(stats.max_nnz_per_row <= spec.max_nnz_per_row);
        assert!(stats.nonzero_diagonals > 100);
        assert!(stats.nnz > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = &table2()[1];
        assert_eq!(spec.generate(0.02), spec.generate(0.02));
    }

    #[test]
    #[should_panic]
    fn zero_scale_is_rejected() {
        table2()[0].generate(0.0);
    }
}
