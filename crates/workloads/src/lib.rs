//! Synthetic matrix workloads reproducing the structural statistics of the
//! paper's evaluation matrices (Table 2).
//!
//! The paper evaluates on 21 SuiteSparse matrices. Those files are not
//! available in this environment, so this crate synthesises one matrix per
//! Table 2 row with matching dimensions, nonzero count, nonzero-diagonal
//! count, and maximum row length — the statistics that govern conversion
//! cost (see DESIGN.md, "Substitutions"). Matrices can be generated at a
//! reduced `scale` so the full benchmark suite runs in minutes rather than
//! hours; scaling divides the dimensions and nonzero count while preserving
//! the matrix *class* (banded, multi-diagonal, blocked, irregular).
//!
//! The crate also synthesises order-3 tensors ([`tensor3_uniform`],
//! [`tensor3_fibered`]) standing in for the third-order inputs of the
//! paper's tensor-conversion evaluation (COO→CSF); the `table4` binary in
//! `conv-bench` benchmarks them.
//!
//! For real-dataset-shaped inputs, [`io`] streams Matrix Market `.mtx`
//! matrices ([`MtxStream`]) and FROSTT `.tns` tensors ([`TnsStream`]) from
//! disk block by block as `conv-stream` [`TensorStream`](conv_stream::TensorStream)s
//! — they never slurp the file, so arbitrarily large datasets feed the
//! out-of-core conversion path — and writes both formats back out
//! ([`write_mtx`], [`write_tns`]).

pub mod generators;
pub mod io;
pub mod suite;

pub use generators::{
    banded, blocked, irregular, tensor3_fibered, tensor3_uniform, GeneratorError,
};
pub use io::{tns_dims, write_mtx, write_tns, MtxStream, TnsStream};
pub use suite::{table2, MatrixClass, MatrixSpec};
