//! Streaming loaders for the real-dataset file formats of the paper's
//! evaluation: Matrix Market (`.mtx`, SuiteSparse) and FROSTT (`.tns`).
//!
//! Both loaders implement [`TensorStream`]: they read line by line and yield
//! bounded [`CoordBlock`]s, so a file larger than memory can flow straight
//! into `ConversionService::convert_stream` without ever being resident.
//! Failures surface as the typed [`ConvertError::Io`] and
//! [`ConvertError::Parse`] variants, the latter carrying the 1-based line
//! number.
//!
//! The writers ([`write_mtx`], [`write_tns`]) exist so tests and examples can
//! round-trip files without external data.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use conv_stream::{CoordBlock, TensorStream};
use sparse_conv::ConvertError;
use sparse_formats::{CooMatrix, CooTensor};
use sparse_tensor::Shape;

/// Default nonzeros per block for the file loaders.
pub const DEFAULT_BLOCK_NNZ: usize = 1 << 16;

fn parse_err(line: u64, message: impl Into<String>) -> ConvertError {
    ConvertError::Parse {
        line,
        message: message.into(),
    }
}

/// Reads the next non-comment, non-blank line into `buf`; returns `false` at
/// end of file. `comment` is the leading comment character (`%` for Matrix
/// Market, `#` for FROSTT).
fn next_data_line<R: BufRead>(
    reader: &mut R,
    buf: &mut String,
    line: &mut u64,
    comment: char,
) -> Result<bool, ConvertError> {
    loop {
        buf.clear();
        if reader.read_line(buf)? == 0 {
            return Ok(false);
        }
        *line += 1;
        let trimmed = buf.trim();
        if !trimmed.is_empty() && !trimmed.starts_with(comment) {
            return Ok(true);
        }
    }
}

fn parse_coord_1based(tok: &str, dim: usize, d: usize, line: u64) -> Result<usize, ConvertError> {
    let c: usize = tok
        .parse()
        .map_err(|_| parse_err(line, format!("expected a coordinate, got {tok:?}")))?;
    if c == 0 || c > dim {
        return Err(parse_err(
            line,
            format!("coordinate {c} out of bounds 1..={dim} in dimension {d}"),
        ));
    }
    Ok(c - 1)
}

fn parse_value(tok: &str, line: u64) -> Result<f64, ConvertError> {
    tok.parse()
        .map_err(|_| parse_err(line, format!("expected a value, got {tok:?}")))
}

/// A streaming Matrix Market (`coordinate`) loader.
///
/// Supports `real`, `integer`, and `pattern` fields (pattern entries get
/// value 1.0) and the `general` / `symmetric` symmetries; a symmetric
/// off-diagonal entry yields its mirror in the same block. Entries keep file
/// order, which downstream sorts treat as the arrival order.
#[derive(Debug)]
pub struct MtxStream<R: BufRead> {
    reader: R,
    shape: Shape,
    block_nnz: usize,
    symmetric: bool,
    pattern: bool,
    /// Entry *lines* still to read (symmetric mirrors not counted).
    remaining: u64,
    declared: u64,
    line: u64,
    buf: String,
}

impl MtxStream<BufReader<File>> {
    /// Opens an `.mtx` file, reading blocks of at most `block_nnz` entry
    /// lines.
    ///
    /// # Errors
    ///
    /// [`ConvertError::Io`] on open/read failure, [`ConvertError::Parse`] on
    /// a malformed banner or size line.
    pub fn open(path: impl AsRef<Path>, block_nnz: usize) -> Result<Self, ConvertError> {
        Self::from_reader(BufReader::new(File::open(path)?), block_nnz)
    }
}

impl<R: BufRead> MtxStream<R> {
    /// Wraps an already-open reader positioned at the `%%MatrixMarket`
    /// banner.
    ///
    /// # Errors
    ///
    /// [`ConvertError::Parse`] when the banner or size line is malformed or
    /// the file is not a coordinate matrix.
    pub fn from_reader(mut reader: R, block_nnz: usize) -> Result<Self, ConvertError> {
        let mut line = 0u64;
        let mut buf = String::new();
        if reader.read_line(&mut buf)? == 0 {
            return Err(parse_err(1, "empty file, expected a %%MatrixMarket banner"));
        }
        line += 1;
        let banner: Vec<String> = buf.split_whitespace().map(str::to_lowercase).collect();
        if banner.len() < 5 || banner[0] != "%%matrixmarket" || banner[1] != "matrix" {
            return Err(parse_err(
                line,
                format!("not a Matrix Market banner: {}", buf.trim()),
            ));
        }
        if banner[2] != "coordinate" {
            return Err(parse_err(
                line,
                format!(
                    "only coordinate matrices are supported, got {:?}",
                    banner[2]
                ),
            ));
        }
        let pattern = match banner[3].as_str() {
            "real" | "integer" => false,
            "pattern" => true,
            other => return Err(parse_err(line, format!("unsupported field type {other:?}"))),
        };
        let symmetric = match banner[4].as_str() {
            "general" => false,
            "symmetric" => true,
            other => return Err(parse_err(line, format!("unsupported symmetry {other:?}"))),
        };
        if !next_data_line(&mut reader, &mut buf, &mut line, '%')? {
            return Err(parse_err(line, "missing size line"));
        }
        let toks: Vec<&str> = buf.split_whitespace().collect();
        if toks.len() != 3 {
            return Err(parse_err(
                line,
                format!("size line needs `rows cols nnz`, got {}", buf.trim()),
            ));
        }
        let dims: Vec<u64> = toks
            .iter()
            .map(|t| {
                t.parse::<u64>()
                    .map_err(|_| parse_err(line, format!("bad size entry {t:?}")))
            })
            .collect::<Result<_, _>>()?;
        Ok(MtxStream {
            reader,
            shape: Shape::matrix(dims[0] as usize, dims[1] as usize),
            block_nnz: block_nnz.max(1),
            symmetric,
            pattern,
            remaining: dims[2],
            declared: dims[2],
            line,
            buf,
        })
    }

    /// Whether the file declared itself symmetric.
    pub fn is_symmetric(&self) -> bool {
        self.symmetric
    }

    /// Entry lines the header declared.
    pub fn declared_entries(&self) -> u64 {
        self.declared
    }
}

impl<R: BufRead> TensorStream for MtxStream<R> {
    fn shape(&self) -> &Shape {
        &self.shape
    }

    fn next_block(&mut self) -> Result<Option<CoordBlock>, ConvertError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let want = (self.block_nnz as u64).min(self.remaining) as usize;
        // A symmetric block can hold up to twice the entry lines.
        let cap = if self.symmetric { want * 2 } else { want };
        let mut block = CoordBlock::with_capacity(self.shape.clone(), cap);
        for _ in 0..want {
            if !next_data_line(&mut self.reader, &mut self.buf, &mut self.line, '%')? {
                return Err(parse_err(
                    self.line,
                    format!("file ended with {} declared entries unread", self.remaining),
                ));
            }
            let toks: Vec<&str> = self.buf.split_whitespace().collect();
            let expected = if self.pattern { 2 } else { 3 };
            if toks.len() != expected {
                return Err(parse_err(
                    self.line,
                    format!("entry needs {expected} fields, got {}", self.buf.trim()),
                ));
            }
            let i = parse_coord_1based(toks[0], self.shape.dim(0), 0, self.line)?;
            let j = parse_coord_1based(toks[1], self.shape.dim(1), 1, self.line)?;
            let v = if self.pattern {
                1.0
            } else {
                parse_value(toks[2], self.line)?
            };
            block
                .push(&[i, j], v)
                .expect("coordinates were bounds-checked");
            if self.symmetric && i != j {
                block
                    .push(&[j, i], v)
                    .expect("mirrored coordinates are in bounds");
            }
            self.remaining -= 1;
        }
        Ok(Some(block))
    }

    fn size_hint(&self) -> Option<u64> {
        // Entry lines; symmetric files expand off-diagonal lines to two
        // nonzeros, which a header cannot predict.
        Some(self.declared)
    }
}

/// A streaming FROSTT (`.tns`) loader: whitespace-separated lines of `N`
/// 1-based coordinates followed by a value, `#` comments allowed. FROSTT
/// files do not carry dimensions, so the shape is supplied (see
/// [`tns_dims`] for a one-pass scan that discovers it).
#[derive(Debug)]
pub struct TnsStream<R: BufRead> {
    reader: R,
    shape: Shape,
    block_nnz: usize,
    line: u64,
    buf: String,
    done: bool,
}

impl TnsStream<BufReader<File>> {
    /// Opens a `.tns` file with a known shape, reading blocks of at most
    /// `block_nnz` entries.
    ///
    /// # Errors
    ///
    /// [`ConvertError::Io`] on open failure.
    pub fn open(
        path: impl AsRef<Path>,
        shape: Shape,
        block_nnz: usize,
    ) -> Result<Self, ConvertError> {
        Ok(Self::from_reader(
            BufReader::new(File::open(path)?),
            shape,
            block_nnz,
        ))
    }
}

impl<R: BufRead> TnsStream<R> {
    /// Wraps an already-open reader.
    pub fn from_reader(reader: R, shape: Shape, block_nnz: usize) -> Self {
        TnsStream {
            reader,
            shape,
            block_nnz: block_nnz.max(1),
            line: 0,
            buf: String::new(),
            done: false,
        }
    }
}

impl<R: BufRead> TensorStream for TnsStream<R> {
    fn shape(&self) -> &Shape {
        &self.shape
    }

    fn next_block(&mut self) -> Result<Option<CoordBlock>, ConvertError> {
        if self.done {
            return Ok(None);
        }
        let order = self.shape.order();
        let mut block = CoordBlock::with_capacity(self.shape.clone(), self.block_nnz);
        let mut coord = vec![0usize; order];
        while block.nnz() < self.block_nnz {
            if !next_data_line(&mut self.reader, &mut self.buf, &mut self.line, '#')? {
                self.done = true;
                break;
            }
            let toks: Vec<&str> = self.buf.split_whitespace().collect();
            if toks.len() != order + 1 {
                return Err(parse_err(
                    self.line,
                    format!(
                        "entry needs {} coordinates and a value, got {}",
                        order,
                        self.buf.trim()
                    ),
                ));
            }
            for d in 0..order {
                coord[d] = parse_coord_1based(toks[d], self.shape.dim(d), d, self.line)?;
            }
            let v = parse_value(toks[order], self.line)?;
            block
                .push(&coord, v)
                .expect("coordinates were bounds-checked");
        }
        if block.nnz() == 0 {
            Ok(None)
        } else {
            Ok(Some(block))
        }
    }
}

/// Scans a `.tns` file once, line by line, and returns the tensor's shape
/// (the per-dimension coordinate maxima) and nonzero count. The order is
/// taken from the first entry line.
///
/// # Errors
///
/// [`ConvertError::Io`] on open/read failure, [`ConvertError::Parse`] on a
/// malformed line or an empty file.
pub fn tns_dims(path: impl AsRef<Path>) -> Result<(Shape, u64), ConvertError> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut line = 0u64;
    let mut buf = String::new();
    let mut dims: Vec<usize> = Vec::new();
    let mut nnz = 0u64;
    while next_data_line(&mut reader, &mut buf, &mut line, '#')? {
        let toks: Vec<&str> = buf.split_whitespace().collect();
        if dims.is_empty() {
            if toks.len() < 2 {
                return Err(parse_err(
                    line,
                    "an entry needs at least one coordinate and a value",
                ));
            }
            dims = vec![0; toks.len() - 1];
        }
        if toks.len() != dims.len() + 1 {
            return Err(parse_err(
                line,
                format!(
                    "entry needs {} coordinates and a value, got {}",
                    dims.len(),
                    buf.trim()
                ),
            ));
        }
        for (d, tok) in toks[..dims.len()].iter().enumerate() {
            let c: usize = tok
                .parse()
                .map_err(|_| parse_err(line, format!("expected a coordinate, got {tok:?}")))?;
            if c == 0 {
                return Err(parse_err(line, "FROSTT coordinates are 1-based"));
            }
            dims[d] = dims[d].max(c);
        }
        parse_value(toks[dims.len()], line)?;
        nnz += 1;
    }
    if dims.is_empty() {
        return Err(parse_err(line, "no entries in .tns file"));
    }
    Ok((Shape::new(dims), nnz))
}

/// Writes a COO matrix as a `general real` coordinate Matrix Market file.
///
/// # Errors
///
/// [`ConvertError::Io`] on any write failure.
pub fn write_mtx(path: impl AsRef<Path>, m: &CooMatrix) -> Result<(), ConvertError> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "{} {} {}", m.rows(), m.cols(), m.nnz())?;
    for (i, j, v) in m.iter() {
        writeln!(w, "{} {} {}", i + 1, j + 1, v)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a COO tensor as a FROSTT `.tns` file (1-based coordinates).
///
/// # Errors
///
/// [`ConvertError::Io`] on any write failure.
pub fn write_tns(path: impl AsRef<Path>, t: &CooTensor) -> Result<(), ConvertError> {
    let mut w = BufWriter::new(File::create(path)?);
    for p in 0..t.nnz() {
        for d in 0..t.order() {
            write!(w, "{} ", t.crd(d)[p] + 1)?;
        }
        writeln!(w, "{}", t.values()[p])?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn drain<S: TensorStream>(s: &mut S) -> Vec<(Vec<usize>, f64)> {
        let mut out = Vec::new();
        while let Some(b) = s.next_block().unwrap() {
            for p in 0..b.nnz() {
                let coord: Vec<usize> = (0..b.order()).map(|d| b.crd(d)[p]).collect();
                out.push((coord, b.values()[p]));
            }
        }
        out
    }

    #[test]
    fn mtx_general_real_streams_in_file_order() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 4 3\n\
                    1 1 2.5\n\
                    3 4 -1\n\
                    2 2 7\n";
        let mut s = MtxStream::from_reader(Cursor::new(text), 2).unwrap();
        assert_eq!(s.shape().dims(), &[3, 4]);
        assert_eq!(s.size_hint(), Some(3));
        assert!(!s.is_symmetric());
        assert_eq!(
            drain(&mut s),
            vec![(vec![0, 0], 2.5), (vec![2, 3], -1.0), (vec![1, 1], 7.0),]
        );
    }

    #[test]
    fn mtx_symmetric_pattern_mirrors_off_diagonals() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    3 3 2\n\
                    2 1\n\
                    3 3\n";
        let mut s = MtxStream::from_reader(Cursor::new(text), 64).unwrap();
        assert!(s.is_symmetric());
        assert_eq!(
            drain(&mut s),
            vec![(vec![1, 0], 1.0), (vec![0, 1], 1.0), (vec![2, 2], 1.0),]
        );
    }

    #[test]
    fn mtx_errors_carry_line_numbers() {
        let truncated = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        let mut s = MtxStream::from_reader(Cursor::new(truncated), 8).unwrap();
        assert!(matches!(
            s.next_block(),
            Err(ConvertError::Parse { line: 3, .. })
        ));
        let bad_coord = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        let mut s = MtxStream::from_reader(Cursor::new(bad_coord), 8).unwrap();
        assert!(matches!(
            s.next_block(),
            Err(ConvertError::Parse { line: 3, .. })
        ));
        assert!(matches!(
            MtxStream::from_reader(Cursor::new("%%MatrixMarket matrix array real general\n"), 8),
            Err(ConvertError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn tns_streams_with_comments_and_reports_dims() {
        let dir = std::env::temp_dir().join(format!("io-tns-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.tns");
        std::fs::write(&path, "# frostt-style\n1 2 3 1.5\n2 1 1 -2\n2 2 4 0.5\n").unwrap();
        let (shape, nnz) = tns_dims(&path).unwrap();
        assert_eq!(shape.dims(), &[2, 2, 4]);
        assert_eq!(nnz, 3);
        let mut s = TnsStream::open(&path, shape, 2).unwrap();
        assert_eq!(
            drain(&mut s),
            vec![
                (vec![0, 1, 2], 1.5),
                (vec![1, 0, 0], -2.0),
                (vec![1, 1, 3], 0.5),
            ]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writers_round_trip_through_the_loaders() {
        let dir = std::env::temp_dir().join(format!("io-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mtx = dir.join("m.mtx");
        let mut m = CooMatrix::new(5, 4);
        m.push(4, 3, 0.125);
        m.push(0, 0, -3.0);
        write_mtx(&mtx, &m).unwrap();
        let mut s = MtxStream::open(&mtx, 1).unwrap();
        assert_eq!(drain(&mut s), vec![(vec![4, 3], 0.125), (vec![0, 0], -3.0)]);

        let tns = dir.join("t.tns");
        let mut t = CooTensor::new(Shape::tensor3(2, 3, 4));
        t.push(&[1, 2, 3], 9.0);
        t.push(&[0, 0, 0], 0.25);
        write_tns(&tns, &t).unwrap();
        let (shape, nnz) = tns_dims(&tns).unwrap();
        assert_eq!(nnz, 2);
        assert_eq!(shape.dims(), &[2, 3, 4]);
        let mut s = TnsStream::open(&tns, shape, 10).unwrap();
        assert_eq!(
            drain(&mut s),
            vec![(vec![1, 2, 3], 9.0), (vec![0, 0, 0], 0.25)]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
