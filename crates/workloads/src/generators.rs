//! Parametric sparse matrix generators.

use std::error::Error;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparse_tensor::{SparseTriples, Value};

/// Errors raised by the generators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeneratorError {
    /// The requested parameters are inconsistent (e.g. more nonzeros than the
    /// matrix has cells).
    InvalidParameters(String),
}

impl fmt::Display for GeneratorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeneratorError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
        }
    }
}

impl Error for GeneratorError {}

fn value_for(rng: &mut StdRng) -> Value {
    // Nonzero values in (0.5, 1.5]; the exact values do not affect conversion
    // cost but must be nonzero so padding is distinguishable.
    0.5 + rng.gen::<f64>()
}

/// Generates a banded matrix whose nonzeros lie on the given diagonal
/// offsets, filling each diagonal completely.
///
/// # Errors
///
/// Returns an error when no offset is valid for the shape.
pub fn banded(
    rows: usize,
    cols: usize,
    offsets: &[i64],
    seed: u64,
) -> Result<SparseTriples, GeneratorError> {
    if offsets
        .iter()
        .all(|&k| k <= -(rows as i64) || k >= cols as i64)
    {
        return Err(GeneratorError::InvalidParameters(
            "no diagonal offset intersects the matrix".to_string(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = SparseTriples::new(sparse_tensor::Shape::matrix(rows, cols));
    for &k in offsets {
        for i in 0..rows {
            let j = i as i64 + k;
            if j >= 0 && j < cols as i64 {
                t.push(vec![i as i64, j], value_for(&mut rng))
                    .expect("in bounds");
            }
        }
    }
    Ok(t)
}

/// The symmetric band offsets `0, ±1, ..., ±((count-1)/2)` (plus one extra
/// positive offset when `count` is even), as used by stencil matrices like
/// `jnlbrng1` or `ecology1`.
pub fn stencil_offsets(count: usize) -> Vec<i64> {
    let mut offsets = vec![0i64];
    let mut d = 1i64;
    while offsets.len() < count {
        offsets.push(d);
        if offsets.len() < count {
            offsets.push(-d);
        }
        // Widen the stencil the way multi-point stencils do: after the
        // immediate neighbours, keep doubling the offset.
        d *= 2;
    }
    offsets.truncate(count);
    offsets
}

/// Generates a block-structured matrix: dense `block x block` tiles placed on
/// and near the diagonal until roughly `target_nnz` nonzeros are stored.
/// Produces the many-diagonals / long-rows structure of FEM matrices such as
/// `cant` or `shipsec1`.
///
/// # Errors
///
/// Returns an error when the block does not fit the matrix.
pub fn blocked(
    rows: usize,
    cols: usize,
    block: usize,
    blocks_per_row: usize,
    target_nnz: usize,
    seed: u64,
) -> Result<SparseTriples, GeneratorError> {
    if block == 0 || block > rows || block > cols {
        return Err(GeneratorError::InvalidParameters(format!(
            "block size {block} does not fit a {rows}x{cols} matrix"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = SparseTriples::with_capacity(sparse_tensor::Shape::matrix(rows, cols), target_nnz);
    let brows = rows / block;
    let bcols = cols / block;
    'outer: for bi in 0..brows {
        let mut chosen: Vec<usize> = Vec::with_capacity(blocks_per_row);
        for n in 0..blocks_per_row {
            // One block on the diagonal, the rest scattered nearby.
            let bj = if n == 0 {
                bi.min(bcols - 1)
            } else {
                let spread = (bcols / 8).max(2);
                let lo = bi.saturating_sub(spread / 2);
                (lo + rng.gen_range(0..spread)).min(bcols - 1)
            };
            if chosen.contains(&bj) {
                continue;
            }
            chosen.push(bj);
            for li in 0..block {
                for lj in 0..block {
                    let (i, j) = (bi * block + li, bj * block + lj);
                    t.push(vec![i as i64, j as i64], value_for(&mut rng))
                        .expect("in bounds");
                    if t.nnz() >= target_nnz {
                        break 'outer;
                    }
                }
            }
        }
    }
    Ok(t)
}

/// Generates an irregular matrix with a prescribed total nonzero count and
/// maximum row length. Row lengths follow a skewed distribution capped at
/// `max_row_nnz` (one row is forced to the cap); columns are drawn uniformly,
/// which produces the large nonzero-diagonal counts of circuit- and web-like
/// matrices.
///
/// # Errors
///
/// Returns an error when the parameters are inconsistent.
pub fn irregular(
    rows: usize,
    cols: usize,
    target_nnz: usize,
    max_row_nnz: usize,
    seed: u64,
) -> Result<SparseTriples, GeneratorError> {
    if max_row_nnz == 0 || max_row_nnz > cols {
        return Err(GeneratorError::InvalidParameters(format!(
            "max_row_nnz {max_row_nnz} does not fit {cols} columns"
        )));
    }
    if target_nnz > rows * max_row_nnz {
        return Err(GeneratorError::InvalidParameters(format!(
            "cannot place {target_nnz} nonzeros with at most {max_row_nnz} per row"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mean = (target_nnz as f64 / rows as f64).max(1.0);
    // Draw provisional row lengths from an exponential-ish distribution.
    let mut lengths = vec![0usize; rows];
    let mut total = 0usize;
    for len in lengths.iter_mut() {
        let draw = (-rng.gen::<f64>().max(1e-12).ln() * mean).round() as usize;
        *len = draw.clamp(1, max_row_nnz);
        total += *len;
    }
    // Rescale towards the target by trimming or topping up round-robin.
    let mut i = 0usize;
    while total > target_nnz {
        if lengths[i % rows] > 1 {
            lengths[i % rows] -= 1;
            total -= 1;
        }
        i += 1;
    }
    while total < target_nnz {
        if lengths[i % rows] < max_row_nnz {
            lengths[i % rows] += 1;
            total += 1;
        }
        i += 1;
    }
    // Force the cap to be reached exactly once so max-row statistics match.
    if let Some(max_pos) = (0..rows).max_by_key(|&r| lengths[r]) {
        total -= lengths[max_pos];
        lengths[max_pos] = max_row_nnz;
        total += max_row_nnz;
        // Re-trim to the target after forcing the cap.
        let mut r = 0usize;
        while total > target_nnz {
            if r % rows != max_pos && lengths[r % rows] > 1 {
                lengths[r % rows] -= 1;
                total -= 1;
            }
            r += 1;
        }
    }
    let mut t = SparseTriples::with_capacity(sparse_tensor::Shape::matrix(rows, cols), total);
    let mut picked: Vec<usize> = Vec::new();
    for (r, &len) in lengths.iter().enumerate() {
        picked.clear();
        while picked.len() < len {
            let j = rng.gen_range(0..cols);
            if !picked.contains(&j) {
                picked.push(j);
            }
        }
        for &j in &picked {
            t.push(vec![r as i64, j as i64], value_for(&mut rng))
                .expect("in bounds");
        }
    }
    Ok(t)
}

/// Generates an order-3 tensor with `target_nnz` distinct components drawn
/// uniformly at random — the unstructured end of the tensor spectrum
/// (hypergraph-/NLP-style data), which maximises the fiber counts a COO→CSF
/// conversion has to discover.
///
/// # Errors
///
/// Returns an error when more components are requested than the tensor has
/// cells.
pub fn tensor3_uniform(
    dims: [usize; 3],
    target_nnz: usize,
    seed: u64,
) -> Result<SparseTriples, GeneratorError> {
    let [d0, d1, d2] = dims;
    let cells = d0
        .checked_mul(d1)
        .and_then(|x| x.checked_mul(d2))
        .unwrap_or(usize::MAX);
    if target_nnz > cells {
        return Err(GeneratorError::InvalidParameters(format!(
            "cannot place {target_nnz} components in a {d0}x{d1}x{d2} tensor"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let shape = sparse_tensor::Shape::new(dims.to_vec());
    let mut t = SparseTriples::with_capacity(shape.clone(), target_nnz);
    let mut seen = std::collections::HashSet::with_capacity(target_nnz);
    while t.nnz() < target_nnz {
        let coord = [
            rng.gen_range(0..d0),
            rng.gen_range(0..d1),
            rng.gen_range(0..d2),
        ];
        if seen.insert(coord) {
            t.push(
                coord.iter().map(|&c| c as i64).collect(),
                value_for(&mut rng),
            )
            .expect("in bounds");
        }
    }
    Ok(t)
}

/// Generates an order-3 tensor with mode-1 fiber structure: every root slice
/// owns `fibers_per_slice` random `(j)` fibers holding `nnz_per_fiber`
/// distinct `k` entries each — the skewed, fiber-dense structure of
/// factorisation workloads, which is what root-fiber-partitioned CSF
/// assembly is balanced against.
///
/// # Errors
///
/// Returns an error when a slice cannot hold the requested fibers or a fiber
/// the requested entries.
pub fn tensor3_fibered(
    dims: [usize; 3],
    fibers_per_slice: usize,
    nnz_per_fiber: usize,
    seed: u64,
) -> Result<SparseTriples, GeneratorError> {
    let [d0, d1, d2] = dims;
    if fibers_per_slice == 0 || fibers_per_slice > d1 {
        return Err(GeneratorError::InvalidParameters(format!(
            "{fibers_per_slice} fibers per slice do not fit {d1} mode-1 coordinates"
        )));
    }
    if nnz_per_fiber == 0 || nnz_per_fiber > d2 {
        return Err(GeneratorError::InvalidParameters(format!(
            "{nnz_per_fiber} entries per fiber do not fit {d2} mode-2 coordinates"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let shape = sparse_tensor::Shape::new(dims.to_vec());
    let mut t = SparseTriples::with_capacity(shape, d0 * fibers_per_slice * nnz_per_fiber);
    let mut fibers: Vec<usize> = Vec::with_capacity(fibers_per_slice);
    let mut entries: Vec<usize> = Vec::with_capacity(nnz_per_fiber);
    for i in 0..d0 {
        fibers.clear();
        while fibers.len() < fibers_per_slice {
            let j = rng.gen_range(0..d1);
            if !fibers.contains(&j) {
                fibers.push(j);
            }
        }
        for &j in &fibers {
            entries.clear();
            while entries.len() < nnz_per_fiber {
                let k = rng.gen_range(0..d2);
                if !entries.contains(&k) {
                    entries.push(k);
                }
            }
            for &k in &entries {
                t.push(vec![i as i64, j as i64, k as i64], value_for(&mut rng))
                    .expect("in bounds");
            }
        }
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_tensor::MatrixStats;

    #[test]
    fn banded_fills_requested_diagonals() {
        let t = banded(100, 100, &[0, 1, -1, 5, -5], 42).unwrap();
        let stats = MatrixStats::compute(&t);
        assert_eq!(stats.nonzero_diagonals, 5);
        assert_eq!(stats.max_nnz_per_row, 5);
        assert_eq!(stats.nnz, 100 + 99 * 2 + 95 * 2);
        assert!(banded(10, 10, &[20], 0).is_err());
    }

    #[test]
    fn stencil_offsets_are_distinct_and_start_at_zero() {
        for count in [1usize, 5, 7, 13, 22] {
            let offsets = stencil_offsets(count);
            assert_eq!(offsets.len(), count);
            assert_eq!(offsets[0], 0);
            let mut sorted = offsets.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), count, "duplicate offsets in {offsets:?}");
        }
    }

    #[test]
    fn blocked_produces_dense_tiles() {
        let t = blocked(200, 200, 4, 8, 5_000, 7).unwrap();
        let stats = MatrixStats::compute(&t);
        assert!(
            stats.nnz >= 3_000 && stats.nnz <= 5_000,
            "nnz = {}",
            stats.nnz
        );
        assert!(stats.max_nnz_per_row >= 4);
        assert!(blocked(10, 10, 0, 1, 10, 0).is_err());
    }

    #[test]
    fn irregular_hits_nnz_and_max_row_targets() {
        let t = irregular(1000, 1000, 20_000, 120, 3).unwrap();
        let stats = MatrixStats::compute(&t);
        assert_eq!(stats.max_nnz_per_row, 120);
        let nnz = stats.nnz as f64;
        assert!((nnz - 20_000.0).abs() / 20_000.0 < 0.05, "nnz = {nnz}");
        assert!(stats.nonzero_diagonals > 500);
        assert!(irregular(10, 10, 200, 5, 0).is_err());
        assert!(irregular(10, 10, 5, 0, 0).is_err());
    }

    #[test]
    fn tensor3_uniform_hits_the_nnz_target() {
        let t = tensor3_uniform([20, 30, 40], 2_000, 11).unwrap();
        assert_eq!(t.order(), 3);
        assert_eq!(t.nnz(), 2_000);
        assert_eq!(t.shape().dims(), &[20, 30, 40]);
        // Components are distinct.
        assert_eq!(t.to_map().len(), 2_000);
        assert!(tensor3_uniform([2, 2, 2], 9, 0).is_err());
        assert_eq!(
            tensor3_uniform([10, 10, 10], 100, 5).unwrap(),
            tensor3_uniform([10, 10, 10], 100, 5).unwrap()
        );
    }

    #[test]
    fn tensor3_fibered_builds_dense_fibers() {
        let t = tensor3_fibered([16, 32, 64], 4, 8, 7).unwrap();
        assert_eq!(t.nnz(), 16 * 4 * 8);
        // Every root slice holds exactly fibers_per_slice distinct (i, j)
        // fibers.
        let mut fibers = std::collections::HashSet::new();
        for tr in t.iter() {
            fibers.insert((tr.coord[0], tr.coord[1]));
        }
        assert_eq!(fibers.len(), 16 * 4);
        assert!(tensor3_fibered([4, 4, 4], 5, 1, 0).is_err());
        assert!(tensor3_fibered([4, 4, 4], 1, 9, 0).is_err());
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        assert_eq!(
            irregular(100, 100, 500, 20, 9).unwrap(),
            irregular(100, 100, 500, 20, 9).unwrap()
        );
        assert_ne!(
            irregular(100, 100, 500, 20, 9).unwrap(),
            irregular(100, 100, 500, 20, 10).unwrap()
        );
    }
}
