//! Spec-first format handles and the format registry.
//!
//! The paper's central abstraction is that a sparse format *is* its
//! specification: a coordinate remapping plus a per-dimension level
//! composition (Section 3). [`Format`] makes that the unit of identity for
//! the whole public API: a cheap, cloneable handle to an interned
//! [`FormatSpec`] whose equality is the spec *fingerprint* — not membership
//! in a closed enum. Stock formats are presets in the global
//! [`FormatRegistry`] (`Format::csr()`, `Format::csf()`, ...); user formats
//! are built with [`Format::builder`] and become first-class citizens of the
//! same registry: they convert in both directions, parse back from their
//! registered name or spec string ([`std::str::FromStr`]), and key plan
//! caches exactly like the stock set.
//!
//! [`FormatId`] remains as a transitional identifier for the stock presets
//! (every `FormatId` resolves to one registry entry); new code should hold
//! `Format` handles instead.
//!
//! # Spec strings
//!
//! [`FromStr`](std::str::FromStr) accepts, in order: a stock name
//! (`"CSR"`, `"BCSR2x2"`), a registered custom format's name, or a full
//! four-field spec string `NAME:REMAP:DIMS:LEVELS`:
//!
//! ```text
//! DCSR:(i,j)->(i,j):i,j:compressed,compressed
//! ```
//!
//! which names the format, gives its coordinate remapping (Section 4
//! notation), the remapped dimension names, and one level kind per remapped
//! dimension. Parsing a spec string interns the format, so bench binaries
//! can select *user-defined* formats from the command line.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

use coord_remap::Remapping;
use level_formats::LevelKind;

use crate::convert::FormatId;
use crate::error::ConvertError;
use crate::spec::FormatSpec;

/// Fingerprint of the DOK pseudo-entry. DOK has no coordinate-hierarchy
/// specification (it is a conversion source only), but it still needs a
/// stable registry identity so `AnyTensor::format()` is total.
fn dok_fingerprint() -> u64 {
    // FNV-1a over a tag no rendered spec can produce (spec fingerprints
    // separate fields with 0xff, and this tag is hashed as a single run).
    let mut h = 0xcbf29ce484222325u64;
    for b in "__dok_source_only__".bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

#[derive(Debug)]
struct FormatInner {
    /// Registry name (unique; `Display` form).
    name: String,
    /// The stock identifier, when this entry is a stock preset. A
    /// `OnceLock` so a custom-interned entry can be *upgraded* in place when
    /// the same spec later arrives through a stock constructor (the upgrade
    /// is visible through every outstanding handle of the entry).
    id: OnceLock<FormatId>,
    /// The interned specification; `None` only for DOK.
    spec: Option<FormatSpec>,
    /// The spec fingerprint (identity).
    fingerprint: u64,
}

/// A cheap, cloneable handle to an interned format specification.
///
/// Equality, ordering into hash maps, and plan-cache keys all use the spec
/// [fingerprint](FormatSpec::fingerprint): two independently built handles
/// over equal specs are the *same* format (and in fact the same registry
/// entry — interning deduplicates). `Display` prints the registered name and
/// [`FromStr`](std::str::FromStr) parses it back, for stock and custom
/// formats alike.
#[derive(Clone)]
pub struct Format {
    inner: Arc<FormatInner>,
}

impl Format {
    /// The handle for a stock format identifier.
    ///
    /// The non-parametric presets are memoised process-wide, so this is an
    /// `Arc` clone on the hot path (`AnyTensor::format()` calls it per
    /// conversion); only parametric BCSR shapes go through the registry
    /// lock.
    pub fn stock(id: FormatId) -> Format {
        let index = match id {
            FormatId::Coo => 0,
            FormatId::Csr => 1,
            FormatId::Csc => 2,
            FormatId::Dia => 3,
            FormatId::Ell => 4,
            FormatId::Skyline => 5,
            FormatId::Jad => 6,
            FormatId::Dok => 7,
            FormatId::Coo3 => 8,
            FormatId::Csf => 9,
            FormatId::Bcsr { .. } => return FormatRegistry::global().stock(id),
        };
        static PRESETS: OnceLock<Vec<Format>> = OnceLock::new();
        PRESETS.get_or_init(|| {
            [
                FormatId::Coo,
                FormatId::Csr,
                FormatId::Csc,
                FormatId::Dia,
                FormatId::Ell,
                FormatId::Skyline,
                FormatId::Jad,
                FormatId::Dok,
                FormatId::Coo3,
                FormatId::Csf,
            ]
            .into_iter()
            .map(|id| FormatRegistry::global().stock(id))
            .collect()
        })[index]
            .clone()
    }

    /// Coordinate format.
    pub fn coo() -> Format {
        Format::stock(FormatId::Coo)
    }

    /// Compressed sparse row.
    pub fn csr() -> Format {
        Format::stock(FormatId::Csr)
    }

    /// Compressed sparse column.
    pub fn csc() -> Format {
        Format::stock(FormatId::Csc)
    }

    /// Diagonal format.
    pub fn dia() -> Format {
        Format::stock(FormatId::Dia)
    }

    /// ELLPACK format.
    pub fn ell() -> Format {
        Format::stock(FormatId::Ell)
    }

    /// Blocked CSR with the given block shape.
    pub fn bcsr(block_rows: usize, block_cols: usize) -> Format {
        Format::stock(FormatId::Bcsr {
            block_rows,
            block_cols,
        })
    }

    /// Skyline (lower-triangle profile) format.
    pub fn skyline() -> Format {
        Format::stock(FormatId::Skyline)
    }

    /// Jagged diagonal format.
    pub fn jad() -> Format {
        Format::stock(FormatId::Jad)
    }

    /// Dictionary of keys (conversion source only; has no spec).
    pub fn dok() -> Format {
        Format::stock(FormatId::Dok)
    }

    /// Order-3 coordinate format.
    pub fn coo3() -> Format {
        Format::stock(FormatId::Coo3)
    }

    /// Compressed sparse fiber.
    pub fn csf() -> Format {
        Format::stock(FormatId::Csf)
    }

    /// Compressed sparse fiber along an explicit mode order: storage level
    /// `d` holds canonical mode `mode_order[d]`, so `&[2, 0, 1]` stores mode
    /// `k` outermost. The format registers under the `CSF@2,0,1` naming
    /// scheme (which [`FromStr`](std::str::FromStr) parses back); the
    /// canonical order-3 identity resolves to the stock [`Format::csf`]
    /// entry.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::UnsupportedSpec`] when `mode_order` is not a
    /// permutation of `0..mode_order.len()`.
    pub fn csf_ordered(mode_order: &[usize]) -> Result<Format, ConvertError> {
        let n = mode_order.len();
        let mut seen = vec![false; n];
        for &m in mode_order {
            if m >= n || seen[m] {
                return Err(ConvertError::UnsupportedSpec {
                    reason: format!("CSF mode order {mode_order:?} is not a permutation of 0..{n}"),
                });
            }
            seen[m] = true;
        }
        if n == 3 && mode_order == [0, 1, 2] {
            return Ok(Format::csf());
        }
        let names = coord_remap::ast::canonical_names(n);
        let spec = FormatSpec::new(
            &crate::mode::csf_ordered_name(mode_order),
            coord_remap::stock::mode_permutation(mode_order),
            mode_order.iter().map(|&m| names[m].as_str()).collect(),
            vec![LevelKind::Compressed; n],
        );
        Format::from_spec(spec)
    }

    /// The CSF mode order when this format stores a tensor as a fiber tree
    /// along a pure mode permutation (every level compressed); `None` for
    /// every other format. The stock [`Format::csf`] reports the identity
    /// order.
    pub fn mode_order(&self) -> Option<Vec<usize>> {
        self.spec().and_then(crate::mode::mode_order_of)
    }

    /// Starts building a user-defined format named `name`; see
    /// [`FormatBuilder`].
    pub fn builder(name: &str) -> FormatBuilder {
        FormatBuilder::new(name)
    }

    /// Interns an explicit specification and returns its handle (the
    /// existing handle when an equal spec was interned before).
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::UnsupportedSpec`] when the spec fails
    /// [`FormatSpec::validate`].
    pub fn from_spec(spec: FormatSpec) -> Result<Format, ConvertError> {
        spec.validate()?;
        Ok(FormatRegistry::global().intern(spec, None))
    }

    /// Interns a specification that is already known to assemble (e.g. the
    /// spec carried by an assembled `CustomTensor`), skipping re-validation.
    /// The spec is only cloned when its fingerprint is not registered yet.
    pub(crate) fn intern_spec(spec: &FormatSpec) -> Format {
        let registry = FormatRegistry::global();
        if let Some(existing) = registry.get_by_fingerprint(spec.fingerprint()) {
            return existing;
        }
        registry.intern(spec.clone(), None)
    }

    /// The registered (display) name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The stock identifier, when this format is a stock preset.
    pub fn id(&self) -> Option<FormatId> {
        self.inner.id.get().copied()
    }

    /// The format's specification; `None` only for DOK, which has no
    /// coordinate hierarchy and is supported only as a conversion source.
    pub fn spec(&self) -> Option<&FormatSpec> {
        self.inner.spec.as_ref()
    }

    /// The spec fingerprint this handle's identity rests on.
    pub fn fingerprint(&self) -> u64 {
        self.inner.fingerprint
    }

    /// Order of the canonical tensors the format stores (2 for matrix
    /// formats, 3 for the stock tensor formats; DOK stores matrices).
    pub fn order(&self) -> usize {
        self.spec().map_or(2, FormatSpec::source_order)
    }

    /// True when both handles point at the same registry entry (interning
    /// makes this equivalent to fingerprint equality for handles obtained
    /// from the registry).
    pub fn same_entry(&self, other: &Format) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Debug for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Format")
            .field("name", &self.inner.name)
            .field("id", &self.id())
            .field("fingerprint", &self.inner.fingerprint)
            .finish()
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.inner.name)
    }
}

impl PartialEq for Format {
    fn eq(&self, other: &Self) -> bool {
        self.inner.fingerprint == other.inner.fingerprint
    }
}

impl Eq for Format {}

impl Hash for Format {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.inner.fingerprint.hash(state);
    }
}

impl PartialEq<FormatId> for Format {
    fn eq(&self, other: &FormatId) -> bool {
        self.inner.fingerprint == Format::stock(*other).fingerprint()
    }
}

impl PartialEq<Format> for FormatId {
    fn eq(&self, other: &Format) -> bool {
        other == self
    }
}

impl From<FormatId> for Format {
    fn from(id: FormatId) -> Format {
        Format::stock(id)
    }
}

impl From<&Format> for Format {
    fn from(f: &Format) -> Format {
        f.clone()
    }
}

/// Error returned when a string resolves to no [`Format`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFormatError(String);

impl fmt::Display for ParseFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown format `{}`: not a stock name (COO, CSR, ..., \
             BCSR<rows>x<cols>), not a registered custom format, and not a \
             spec string `NAME:REMAP:DIMS:LEVELS` (e.g. \
             `DCSR:(i,j)->(i,j):i,j:compressed,compressed`)",
            self.0
        )
    }
}

impl std::error::Error for ParseFormatError {}

impl std::str::FromStr for Format {
    type Err = ParseFormatError;

    /// Resolves a stock name, a registered custom format name, or a full
    /// spec string (which interns the format); see the module docs.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if let Ok(id) = s.parse::<FormatId>() {
            return Ok(Format::stock(id));
        }
        // The `CSF@...` spelling is reserved: it resolves through
        // `csf_ordered` (collapsing the identity order to stock CSF) even
        // when a format with that literal name was interned, so parsing is
        // deterministic regardless of registry state.
        if let Some(order) = crate::mode::parse_csf_ordered_name(s) {
            return Format::csf_ordered(&order).map_err(|detail| {
                ParseFormatError(format!("{s} (mode-ordered CSF rejected: {detail})"))
            });
        }
        if let Some(found) = FormatRegistry::global().get(s) {
            return Ok(found);
        }
        if s.contains(':') {
            return parse_spec_string(s).map_err(|detail| {
                ParseFormatError(format!("{s} (spec string rejected: {detail})"))
            });
        }
        Err(ParseFormatError(s.to_string()))
    }
}

fn parse_spec_string(s: &str) -> Result<Format, String> {
    let fields: Vec<&str> = s.split(':').collect();
    let [name, remap, dims, levels] = fields.as_slice() else {
        return Err(format!(
            "expected 4 `:`-separated fields (NAME:REMAP:DIMS:LEVELS), got {}",
            fields.len()
        ));
    };
    if name.trim().is_empty() {
        return Err("empty format name".to_string());
    }
    let mut builder = Format::builder(name.trim())
        .remap_str(remap)
        .map_err(|e| e.to_string())?;
    for dim in dims.split(',') {
        builder = builder.dim(dim.trim());
    }
    for level in levels.split(',') {
        let kind: LevelKind = level.parse().map_err(|e| format!("{e}"))?;
        builder = builder.level(kind);
    }
    builder.build().map_err(|e| e.to_string())
}

/// Composes a user-defined [`Format`]: a coordinate remapping, the remapped
/// dimension names, and one level kind per remapped dimension (Section 3's
/// complete format specification). `build` validates the composition and
/// interns it in the global [`FormatRegistry`].
///
/// ```
/// use sparse_conv::prelude::*;
///
/// let dcsr = Format::builder("DCSR-doc")
///     .remap_str("(i,j) -> (i,j)")?
///     .dims(["i", "j"])
///     .levels([LevelKind::Compressed, LevelKind::Compressed])
///     .build()?;
/// assert_eq!(dcsr.name(), "DCSR-doc");
/// assert!(dcsr.id().is_none(), "not a stock preset");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct FormatBuilder {
    name: String,
    remapping: Option<Remapping>,
    dims: Vec<String>,
    levels: Vec<LevelKind>,
}

impl FormatBuilder {
    fn new(name: &str) -> Self {
        FormatBuilder {
            name: name.to_string(),
            remapping: None,
            dims: Vec::new(),
            levels: Vec::new(),
        }
    }

    /// Sets the coordinate remapping.
    pub fn remapping(mut self, remapping: Remapping) -> Self {
        self.remapping = Some(remapping);
        self
    }

    /// Parses and sets the coordinate remapping from Section 4 notation.
    ///
    /// # Errors
    ///
    /// Propagates the remapping parser's error.
    pub fn remap_str(self, s: &str) -> Result<Self, coord_remap::RemapError> {
        Ok(self.remapping(coord_remap::parse_remapping(s)?))
    }

    /// Appends one remapped dimension name (outer to inner).
    pub fn dim(mut self, name: &str) -> Self {
        self.dims.push(name.to_string());
        self
    }

    /// Sets all remapped dimension names at once (outer to inner).
    pub fn dims<'a>(mut self, names: impl IntoIterator<Item = &'a str>) -> Self {
        self.dims = names.into_iter().map(str::to_string).collect();
        self
    }

    /// Appends one level kind (outer to inner).
    pub fn level(mut self, kind: LevelKind) -> Self {
        self.levels.push(kind);
        self
    }

    /// Sets all level kinds at once (outer to inner).
    pub fn levels(mut self, kinds: impl IntoIterator<Item = LevelKind>) -> Self {
        self.levels = kinds.into_iter().collect();
        self
    }

    /// Validates the composition and interns the format.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::UnsupportedSpec`] when the remapping is
    /// missing, the dimension or level counts do not match the remapping's
    /// destination order, or the level composition fails
    /// [`FormatSpec::validate`].
    pub fn build(self) -> Result<Format, ConvertError> {
        let reject = |reason: String| Err(ConvertError::UnsupportedSpec { reason });
        let Some(remapping) = self.remapping else {
            return reject(format!(
                "format {}: no coordinate remapping given",
                self.name
            ));
        };
        if self.dims.len() != remapping.dest_order() {
            return reject(format!(
                "format {}: {} dimension name(s) for a remapping of \
                 destination order {}",
                self.name,
                self.dims.len(),
                remapping.dest_order()
            ));
        }
        if self.levels.len() != remapping.dest_order() {
            return reject(format!(
                "format {}: {} level kind(s) for a remapping of destination \
                 order {}",
                self.name,
                self.levels.len(),
                remapping.dest_order()
            ));
        }
        let spec = FormatSpec::new(
            &self.name,
            remapping,
            self.dims.iter().map(String::as_str).collect(),
            self.levels,
        );
        Format::from_spec(spec)
    }
}

struct RegistryInner {
    by_fingerprint: HashMap<u64, Format>,
    by_name: HashMap<String, u64>,
}

/// The process-wide intern table of format specifications.
///
/// Every [`Format`] handle points into this registry: interning deduplicates
/// by spec fingerprint, and each entry gets a stable unique name (the spec's
/// own name, suffixed with a fingerprint prefix on collision) so
/// `Display`/`FromStr` round-trip for custom formats exactly like stock
/// ones. The stock presets are registered eagerly under their `FormatId`
/// display names.
pub struct FormatRegistry {
    inner: Mutex<RegistryInner>,
}

impl FormatRegistry {
    /// The global registry.
    pub fn global() -> &'static FormatRegistry {
        static REGISTRY: OnceLock<FormatRegistry> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            let registry = FormatRegistry {
                inner: Mutex::new(RegistryInner {
                    by_fingerprint: HashMap::new(),
                    by_name: HashMap::new(),
                }),
            };
            // Register the non-parametric stock presets eagerly so builder
            // specs that happen to equal one resolve to the stock entry (and
            // its engine fast path) from the start. BCSR's block shapes are
            // unbounded and intern lazily.
            for id in [
                FormatId::Coo,
                FormatId::Csr,
                FormatId::Csc,
                FormatId::Dia,
                FormatId::Ell,
                FormatId::Skyline,
                FormatId::Jad,
                FormatId::Dok,
                FormatId::Coo3,
                FormatId::Csf,
            ] {
                registry.stock(id);
            }
            registry
        })
    }

    /// The handle of a stock preset, registering it on first use.
    pub fn stock(&self, id: FormatId) -> Format {
        if matches!(id, FormatId::Dok) {
            let mut inner = self.inner.lock().unwrap();
            return Self::entry(&mut inner, dok_fingerprint(), None, Some(id), "DOK");
        }
        let spec = FormatSpec::stock(id).expect("every non-DOK stock id has a spec");
        let mut inner = self.inner.lock().unwrap();
        Self::entry(
            &mut inner,
            spec.fingerprint(),
            Some(spec),
            Some(id),
            &id.to_string(),
        )
    }

    /// Interns a specification, returning the existing handle when an equal
    /// spec (same fingerprint) is already registered. `id` tags stock
    /// presets; an already-registered custom entry is upgraded in place when
    /// the same spec later arrives through a stock constructor.
    fn intern(&self, spec: FormatSpec, id: Option<FormatId>) -> Format {
        let fingerprint = spec.fingerprint();
        let name = spec.name.clone();
        let mut inner = self.inner.lock().unwrap();
        Self::entry(&mut inner, fingerprint, Some(spec), id, &name)
    }

    fn entry(
        inner: &mut RegistryInner,
        fingerprint: u64,
        spec: Option<FormatSpec>,
        id: Option<FormatId>,
        preferred_name: &str,
    ) -> Format {
        if let Some(existing) = inner.by_fingerprint.get(&fingerprint) {
            // Upgrade: when the same spec arrives through a stock
            // constructor after being interned as a custom format, attach
            // the id in place — every outstanding handle of the entry sees
            // it (the name stays as first published).
            if let Some(id) = id {
                let _ = existing.inner.id.set(id);
            }
            return existing.clone();
        }
        // Pick a stable unique name: the preferred name, or — when another
        // fingerprint already claimed it — the name suffixed with this
        // fingerprint's leading hex digits.
        let name = match inner.by_name.get(preferred_name) {
            None => preferred_name.to_string(),
            Some(&fp) if fp == fingerprint => preferred_name.to_string(),
            Some(_) => format!("{preferred_name}#{:08x}", (fingerprint >> 32) as u32),
        };
        let stock_id = OnceLock::new();
        if let Some(id) = id {
            let _ = stock_id.set(id);
        }
        let format = Format {
            inner: Arc::new(FormatInner {
                name: name.clone(),
                id: stock_id,
                spec,
                fingerprint,
            }),
        };
        inner.by_fingerprint.insert(fingerprint, format.clone());
        inner.by_name.insert(name, fingerprint);
        format
    }

    /// Looks a format up by its registered name.
    pub fn get(&self, name: &str) -> Option<Format> {
        let inner = self.inner.lock().unwrap();
        let fp = inner.by_name.get(name)?;
        inner.by_fingerprint.get(fp).cloned()
    }

    /// Looks a format up by its spec fingerprint.
    pub fn get_by_fingerprint(&self, fingerprint: u64) -> Option<Format> {
        self.inner
            .lock()
            .unwrap()
            .by_fingerprint
            .get(&fingerprint)
            .cloned()
    }

    /// Number of registered formats.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().by_fingerprint.len()
    }

    /// True when nothing is registered (never the case for the global
    /// registry, which pre-registers the stock presets).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The registered names, sorted (stock presets included).
    pub fn names(&self) -> Vec<String> {
        let inner = self.inner.lock().unwrap();
        let mut names: Vec<String> = inner.by_name.keys().cloned().collect();
        names.sort();
        names
    }
}

impl fmt::Debug for FormatRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FormatRegistry")
            .field("formats", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_handles_compare_to_their_ids() {
        assert_eq!(Format::csr(), FormatId::Csr);
        assert_eq!(FormatId::Csr, Format::csr());
        assert_ne!(Format::csr(), FormatId::Csc);
        assert_eq!(
            Format::bcsr(2, 3),
            FormatId::Bcsr {
                block_rows: 2,
                block_cols: 3
            }
        );
        assert_eq!(Format::csr().to_string(), "CSR");
        assert_eq!(Format::bcsr(2, 3).to_string(), "BCSR2x3");
        assert_eq!(Format::csr().id(), Some(FormatId::Csr));
        assert_eq!(Format::csr().order(), 2);
        assert_eq!(Format::csf().order(), 3);
        assert!(Format::csr().spec().is_some());
    }

    #[test]
    fn dok_has_a_handle_but_no_spec() {
        let dok = Format::dok();
        assert_eq!(dok.id(), Some(FormatId::Dok));
        assert!(dok.spec().is_none());
        assert_eq!(dok.to_string(), "DOK");
        assert_eq!("DOK".parse::<Format>().unwrap(), dok);
        assert_ne!(dok, Format::coo());
    }

    #[test]
    fn stock_names_parse_back_to_the_same_handle() {
        for (name, format) in [
            ("COO", Format::coo()),
            ("csr", Format::csr()),
            ("CSC", Format::csc()),
            ("DIA", Format::dia()),
            ("ELL", Format::ell()),
            ("BCSR4x2", Format::bcsr(4, 2)),
            ("SKY", Format::skyline()),
            ("JAD", Format::jad()),
            ("COO3", Format::coo3()),
            ("CSF", Format::csf()),
        ] {
            let parsed: Format = name.parse().unwrap();
            assert_eq!(parsed, format, "{name}");
            assert!(parsed.same_entry(&format), "{name}");
        }
    }

    #[test]
    fn equal_builder_specs_intern_to_the_same_entry() {
        let build = || {
            Format::builder("REG-TEST-DCSR")
                .remap_str("(i,j) -> (i,j)")
                .unwrap()
                .dims(["i", "j"])
                .levels([LevelKind::Compressed, LevelKind::Compressed])
                .build()
                .unwrap()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        assert!(a.same_entry(&b), "interning deduplicates");
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(a.id().is_none());
        // Display/FromStr round-trips through the registry.
        let parsed: Format = a.to_string().parse().unwrap();
        assert!(parsed.same_entry(&a));
    }

    #[test]
    fn builder_spec_equal_to_a_stock_preset_is_the_stock_entry() {
        // CSR's stock spec, rebuilt by hand: same fingerprint, so the
        // registry hands back the stock entry with its id and fast path.
        let rebuilt = Format::builder("CSR")
            .remapping(coord_remap::stock::row_major_matrix())
            .dims(["i", "j"])
            .levels([LevelKind::Dense, LevelKind::Compressed])
            .build()
            .unwrap();
        assert!(rebuilt.same_entry(&Format::csr()));
        assert_eq!(rebuilt.id(), Some(FormatId::Csr));
    }

    #[test]
    fn name_collisions_get_fingerprint_suffixes() {
        let first = Format::builder("REG-TEST-COLLIDE")
            .remap_str("(i,j) -> (i,j)")
            .unwrap()
            .dims(["i", "j"])
            .levels([LevelKind::Dense, LevelKind::Hashed])
            .build()
            .unwrap();
        let second = Format::builder("REG-TEST-COLLIDE")
            .remap_str("(i,j) -> (j,i)")
            .unwrap()
            .dims(["j", "i"])
            .levels([LevelKind::Dense, LevelKind::Hashed])
            .build()
            .unwrap();
        assert_ne!(first, second);
        assert_eq!(first.to_string(), "REG-TEST-COLLIDE");
        assert!(second.to_string().starts_with("REG-TEST-COLLIDE#"));
        // Both names resolve back to their own entries.
        let p1: Format = first.to_string().parse().unwrap();
        let p2: Format = second.to_string().parse().unwrap();
        assert!(p1.same_entry(&first));
        assert!(p2.same_entry(&second));
    }

    #[test]
    fn spec_strings_parse_and_intern() {
        let parsed: Format = "REG-TEST-SPECSTR:(i,j)->(j,i):jj,ii:dense,compressed"
            .parse()
            .unwrap();
        assert_eq!(parsed.name(), "REG-TEST-SPECSTR");
        let spec = parsed.spec().unwrap();
        assert_eq!(spec.dim_names, vec!["jj", "ii"]);
        assert_eq!(spec.levels, vec![LevelKind::Dense, LevelKind::Compressed]);
        // Parsing the registered name afterwards resolves the same entry.
        let by_name: Format = "REG-TEST-SPECSTR".parse().unwrap();
        assert!(by_name.same_entry(&parsed));
        // Malformed spec strings report what went wrong.
        let err = "X:(i,j)->(i,j):i,j:dense".parse::<Format>().unwrap_err();
        assert!(err.to_string().contains("level"), "{err}");
        let err = "X:(i,j)->(i,j):i:j:dense,dense"
            .parse::<Format>()
            .unwrap_err();
        assert!(err.to_string().contains("4"), "{err}");
        assert!("NOSUCHFMT".parse::<Format>().is_err());
    }

    #[test]
    fn builder_rejects_incomplete_and_invalid_compositions() {
        let no_remap = Format::builder("REG-TEST-EMPTY").build();
        assert!(matches!(
            no_remap,
            Err(ConvertError::UnsupportedSpec { .. })
        ));
        let wrong_dims = Format::builder("REG-TEST-DIMS")
            .remap_str("(i,j) -> (i,j)")
            .unwrap()
            .dim("i")
            .levels([LevelKind::Dense, LevelKind::Compressed])
            .build();
        assert!(matches!(
            wrong_dims,
            Err(ConvertError::UnsupportedSpec { .. })
        ));
        let banded_root = Format::builder("REG-TEST-BANDROOT")
            .remap_str("(i,j) -> (i,j)")
            .unwrap()
            .dims(["i", "j"])
            .levels([LevelKind::Banded, LevelKind::Dense])
            .build();
        assert!(matches!(
            banded_root,
            Err(ConvertError::UnsupportedSpec { .. })
        ));
    }

    #[test]
    fn registry_lists_names() {
        let names = FormatRegistry::global().names();
        assert!(names.iter().any(|n| n == "CSR"));
        assert!(names.iter().any(|n| n == "DOK"));
        assert!(!FormatRegistry::global().is_empty());
        assert!(FormatRegistry::global().len() >= 10);
        let dbg = format!("{:?}", FormatRegistry::global());
        assert!(dbg.contains("FormatRegistry"));
    }
}
