//! Stats-driven automatic format selection.
//!
//! The paper's conversion machinery makes "which format?" a runtime decision
//! rather than a compile-time commitment; this module closes that loop with
//! a small attribute-driven selector in the spirit of Chou et al.'s format
//! abstraction: compute the tensor's structural statistics
//! ([`MatrixStats`]/[`TensorStats`]) and pick the storage format those
//! statistics pay for.
//!
//! The decision table (mirrored in `docs/ARCHITECTURE.md`):
//!
//! | order | condition (first match wins)            | format      |
//! |-------|-----------------------------------------|-------------|
//! | 2     | empty                                   | CSR         |
//! | 2     | DIA fill ≥ 25% (banded)                 | DIA         |
//! | 2     | 2×2 block fill ≥ 50%                    | BCSR2x2     |
//! | 2     | fewer nonempty columns than rows        | CSC         |
//! | 2     | otherwise                               | CSR         |
//! | 3     | min fiber overhead > 25% (no structure) | COO3        |
//! | 3     | otherwise                               | CSF@best    |
//!
//! where `CSF@best` is the mode ordering minimising the CSF tree's interior
//! fiber count ([`TensorStats::csf_fibers`]), canonical order winning ties.

use std::collections::HashSet;

use sparse_tensor::{MatrixStats, SparseTriples, TensorStats};

use crate::convert::AnyTensor;
use crate::format::Format;

/// All six order-3 mode orderings, canonical first (the selector's tie-break
/// order, and the sweep order the round-trip tests iterate).
pub const ORDER3_MODE_ORDERS: [[usize; 3]; 6] = [
    [0, 1, 2],
    [0, 2, 1],
    [1, 0, 2],
    [1, 2, 0],
    [2, 0, 1],
    [2, 1, 0],
];

/// One structural-statistics pass over a tensor, shared between format
/// selection and the planner's attribute queries.
///
/// [`auto_select`] and `conv_planner::TensorAttrs` both want numbers only a
/// full walk over the coordinates can produce (the decision table's
/// statistics, the densest row's population for pricing ELL targets).
/// Computing the profile once and handing it to both sides keeps that walk
/// to a single pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TensorProfile {
    /// Tensor order.
    pub order: usize,
    /// Number of stored nonzeros (after duplicate summation for order ≤ 3).
    pub nnz: usize,
    /// Maximum number of nonzeros in any row (order-2 inputs only; `None`
    /// when the input's order has no row notion or it cannot be read).
    pub max_nnz_per_row: Option<usize>,
    /// The storage format the decision table picks for this tensor.
    pub selected: Format,
}

impl TensorProfile {
    /// Computes the profile: one statistics pass, yielding both the
    /// auto-selected format and the attributes the planner prices with.
    pub fn compute(t: &AnyTensor) -> Self {
        let Ok(triples) = t.try_to_triples() else {
            return Self {
                order: t.order(),
                nnz: 0,
                max_nnz_per_row: None,
                selected: fallback(t.order()),
            };
        };
        let (selected, max_nnz_per_row) = match triples.order() {
            2 => {
                let stats = MatrixStats::compute(&triples);
                (select_matrix(&triples, &stats), Some(stats.max_nnz_per_row))
            }
            3 => (select_tensor3(&triples), None),
            _ => (fallback(triples.order()), None),
        };
        Self {
            order: triples.order(),
            nnz: triples.nnz(),
            max_nnz_per_row,
            selected,
        }
    }
}

/// Picks a storage format for the tensor from its structural statistics; see
/// the module docs for the decision table. Always returns a format the
/// conversion stack accepts as a target for this tensor's order; inputs the
/// statistics cannot judge (unreadable custom sources, orders above 3) fall
/// back to the canonical format of their order. Callers that also feed the
/// planner should compute a [`TensorProfile`] instead and use both of its
/// halves.
pub fn auto_select(t: &AnyTensor) -> Format {
    TensorProfile::compute(t).selected
}

fn fallback(order: usize) -> Format {
    if order == 2 {
        Format::csr()
    } else {
        Format::csf()
    }
}

fn select_matrix(m: &SparseTriples, stats: &MatrixStats) -> Format {
    if stats.nnz == 0 {
        return Format::csr();
    }
    // Bandwidth: few nonzero diagonals that are mostly full store densely
    // per diagonal (the paper's DIA admissibility rule).
    if stats.dia_admissible() {
        return Format::dia();
    }
    let mut coords: HashSet<(i64, i64)> = HashSet::with_capacity(m.nnz());
    let mut blocks: HashSet<(i64, i64)> = HashSet::new();
    for tr in m.iter() {
        coords.insert((tr.coord[0], tr.coord[1]));
        blocks.insert((tr.coord[0] / 2, tr.coord[1] / 2));
    }
    // Density in blocks: nonzeros clustered into mostly-full 2x2 tiles
    // amortise the block machinery.
    let block_fill = coords.len() as f64 / (4.0 * blocks.len() as f64);
    if block_fill >= 0.5 {
        return Format::bcsr(2, 2);
    }
    // Fiber skew: root the compressed chain on the mode with fewer (hence
    // longer) fibers.
    let nonempty_rows = coords.iter().map(|&(i, _)| i).collect::<HashSet<_>>().len();
    let nonempty_cols = coords.iter().map(|&(_, j)| j).collect::<HashSet<_>>().len();
    if nonempty_cols < nonempty_rows {
        return Format::csc();
    }
    Format::csr()
}

fn select_tensor3(t: &SparseTriples) -> Format {
    let stats = TensorStats::compute(t);
    if stats.nnz == 0 {
        return Format::csf();
    }
    let best = *ORDER3_MODE_ORDERS
        .iter()
        .min_by_key(|order| stats.csf_fibers(&order[..]))
        .expect("six candidate orders");
    // When even the best ordering opens a fresh innermost fiber for most
    // nonzeros, the pos arrays are pure overhead: keep plain coordinates.
    if stats.fiber_overhead(&best) > 0.25 {
        return Format::coo3();
    }
    Format::csf_ordered(&best).expect("candidate orders are permutations")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_tensor::Shape;

    fn tensor3(coords: &[[i64; 3]]) -> AnyTensor {
        let dims = (0..3)
            .map(|d| coords.iter().map(|c| c[d] as usize + 1).max().unwrap_or(1))
            .collect();
        let mut t = SparseTriples::new(Shape::new(dims));
        for c in coords {
            t.push(c.to_vec(), 1.0).unwrap();
        }
        AnyTensor::Coo3(sparse_formats::CooTensor::from_triples(&t))
    }

    #[test]
    fn empty_matrix_defaults_to_csr() {
        let m = SparseTriples::new(Shape::matrix(4, 4));
        let src = AnyTensor::Coo(sparse_formats::CooMatrix::from_triples(&m));
        assert_eq!(auto_select(&src), Format::csr());
    }

    #[test]
    fn tridiagonal_matrix_selects_dia() {
        let mut m = SparseTriples::new(Shape::matrix(16, 16));
        for i in 0..16i64 {
            for j in [i - 1, i, i + 1] {
                if (0..16).contains(&j) {
                    m.push(vec![i, j], 1.0).unwrap();
                }
            }
        }
        let src = AnyTensor::Coo(sparse_formats::CooMatrix::from_triples(&m));
        assert_eq!(auto_select(&src), Format::dia());
    }

    #[test]
    fn scattered_dense_blocks_select_bcsr() {
        // Full 2x2 tiles at scattered block coordinates: block fill 1.0 but
        // only two sparse diagonals' worth of DIA fill.
        let mut m = SparseTriples::new(Shape::matrix(64, 64));
        for &(bi, bj) in &[(0i64, 7i64), (5, 1), (9, 30), (20, 2), (31, 31)] {
            for di in 0..2 {
                for dj in 0..2 {
                    m.push(vec![2 * bi + di, 2 * bj + dj], 1.0).unwrap();
                }
            }
        }
        let src = AnyTensor::Coo(sparse_formats::CooMatrix::from_triples(&m));
        assert_eq!(auto_select(&src), Format::bcsr(2, 2));
    }

    #[test]
    fn column_skew_selects_csc() {
        // 24 nonempty rows but only 2 nonempty columns: column-rooted fibers
        // are 12x longer.
        let mut m = SparseTriples::new(Shape::matrix(32, 32));
        for i in 0..24i64 {
            m.push(vec![i, 3 + 11 * (i % 2)], 1.0).unwrap();
        }
        let src = AnyTensor::Coo(sparse_formats::CooMatrix::from_triples(&m));
        assert_eq!(auto_select(&src), Format::csc());
    }

    #[test]
    fn long_canonical_fibers_select_stock_csf() {
        let coords: Vec<[i64; 3]> = (0..12).map(|k| [0, 0, k]).collect();
        assert_eq!(auto_select(&tensor3(&coords)), Format::csf());
    }

    #[test]
    fn mode_skew_selects_a_permuted_csf() {
        // Mode 1 is constant and mode 2 binary: rooting at mode 1 then 2
        // yields 3 interior fibers vs 20 for any canonical-rooted order.
        let mut coords = Vec::new();
        for i in 0..10i64 {
            for k in 0..2i64 {
                coords.push([i, 0, k]);
            }
        }
        let selected = auto_select(&tensor3(&coords));
        assert_eq!(selected.mode_order(), Some(vec![1, 2, 0]));
        assert_eq!(selected.name(), "CSF@1,2,0");
    }

    #[test]
    fn profile_agrees_with_auto_select_and_carries_row_stats() {
        let mut m = SparseTriples::new(Shape::matrix(8, 8));
        for j in 0..5i64 {
            m.push(vec![2, j], 1.0).unwrap();
        }
        m.push(vec![6, 1], 1.0).unwrap();
        let src = AnyTensor::Coo(sparse_formats::CooMatrix::from_triples(&m));
        let profile = TensorProfile::compute(&src);
        assert_eq!(profile.selected, auto_select(&src));
        assert_eq!(profile.order, 2);
        assert_eq!(profile.nnz, 6);
        assert_eq!(profile.max_nnz_per_row, Some(5));

        // Order-3 inputs have no row notion to report.
        let coords: Vec<[i64; 3]> = (0..12).map(|k| [0, 0, k]).collect();
        let profile3 = TensorProfile::compute(&tensor3(&coords));
        assert_eq!(profile3.selected, Format::csf());
        assert_eq!(profile3.max_nnz_per_row, None);
    }

    #[test]
    fn structureless_tensor_keeps_coordinates() {
        // A space diagonal: every ordering gives one singleton fiber per
        // nonzero.
        let coords: Vec<[i64; 3]> = (0..10).map(|i| [i, i, i]).collect();
        assert_eq!(auto_select(&tensor3(&coords)), Format::coo3());
    }
}
