//! Per-format specifications.
//!
//! A [`FormatSpec`] is everything a user must provide to add a new target
//! format (Section 3): a coordinate remapping describing how the format
//! groups and orders nonzeros, and the level format of each remapped
//! dimension (which in turn determines the attribute queries to compute and
//! the assembly level functions to call). One spec per format suffices to
//! convert both *to* and *from* every other supported format.

use attr_query::AttrQuery;
use coord_remap::{stock, Remapping};
use level_formats::LevelKind;

use crate::convert::FormatId;
use crate::error::ConvertError;

/// The specification of one tensor format.
#[derive(Debug, Clone, PartialEq)]
pub struct FormatSpec {
    /// Human-readable format name.
    pub name: String,
    /// The coordinate remapping from canonical matrix coordinates to the
    /// format's storage order (Section 4).
    pub remapping: Remapping,
    /// Names of the remapped dimensions, in storage (outer-to-inner) order.
    pub dim_names: Vec<String>,
    /// The level format storing each remapped dimension.
    pub levels: Vec<LevelKind>,
}

impl FormatSpec {
    /// Creates a specification.
    ///
    /// # Panics
    ///
    /// Panics if the number of dimension names or levels does not match the
    /// remapping's destination order.
    pub fn new(
        name: &str,
        remapping: Remapping,
        dim_names: Vec<&str>,
        levels: Vec<LevelKind>,
    ) -> Self {
        assert_eq!(
            dim_names.len(),
            remapping.dest_order(),
            "one name per remapped dimension"
        );
        assert_eq!(
            levels.len(),
            remapping.dest_order(),
            "one level per remapped dimension"
        );
        FormatSpec {
            name: name.to_string(),
            remapping,
            dim_names: dim_names.into_iter().map(str::to_string).collect(),
            levels,
        }
    }

    /// The attribute queries the format's levels require, outer to inner
    /// (Section 5); levels that need no query are skipped.
    pub fn required_queries(&self) -> Vec<AttrQuery> {
        use level_formats::LevelAssembler as _;
        use sparse_tensor::DimBounds;
        let mut out = Vec::new();
        for (k, kind) in self.levels.iter().enumerate() {
            let assembler = crate::generic::make_assembler(*kind, DimBounds::from_extent(1));
            if let Some(q) = assembler.required_query(&self.dim_names, k) {
                out.push(q);
            }
        }
        out
    }

    /// Order of the canonical tensors the format stores (2 for the matrix
    /// formats, 3 for COO3 and CSF).
    pub fn source_order(&self) -> usize {
        self.remapping.source_order()
    }

    /// True when the format stores nonzeros in an order other than the
    /// lexicographic order of their canonical coordinates (DIA, ELL, BCSR,
    /// HiCOO-style formats); such formats are exactly the ones taco without
    /// the paper's extensions cannot assemble.
    pub fn is_structured(&self) -> bool {
        self.remapping.dest_order() > self.remapping.source_order()
    }

    /// Whether any remapped dimension uses a counter (`#i`).
    pub fn uses_counters(&self) -> bool {
        self.remapping.has_counter()
    }

    /// Checks that the dynamic driver can assemble this level composition,
    /// rejecting the shapes that would otherwise panic or silently lose data
    /// mid-assembly. Stock specs always validate; builder-made specs surface
    /// [`ConvertError::UnsupportedSpec`] here instead.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::UnsupportedSpec`] when:
    ///
    /// * a banded level sits at the root (its position arithmetic needs the
    ///   parent dimension's coordinate),
    /// * a singleton level sits at the root (one coordinate per parent
    ///   position means a single-position root collapses every nonzero),
    /// * an edge-insertion level (compressed, compressed-nonunique, banded)
    ///   sits under an ancestor chain that is not full levels (dense,
    ///   sliced) followed by compressed levels — the only two parent
    ///   enumerations the driver implements.
    pub fn validate(&self) -> Result<(), ConvertError> {
        let reject = |reason: String| Err(ConvertError::UnsupportedSpec { reason });
        for (k, kind) in self.levels.iter().enumerate() {
            match kind {
                LevelKind::Banded if k == 0 => {
                    return reject(format!(
                        "format {}: a banded level cannot be the root level \
                         (it addresses positions relative to its parent \
                         dimension's coordinate)",
                        self.name
                    ));
                }
                LevelKind::Singleton if k == 0 => {
                    return reject(format!(
                        "format {}: a singleton level cannot be the root \
                         level (it stores one coordinate per parent position, \
                         and the root has a single position)",
                        self.name
                    ));
                }
                // A singleton stores exactly one coordinate per parent
                // position, so two nonzeros reaching the same parent position
                // would silently overwrite each other. That cannot happen
                // when some ancestor appends one position per nonzero
                // (compressed-nonunique, as in COO) or when the remapping is
                // structured (DIA/ELL/JAD introduce derived dimensions that
                // determine the singleton coordinate from its ancestors).
                LevelKind::Singleton => {
                    let per_nonzero_ancestor = self.levels[..k]
                        .iter()
                        .any(|a| matches!(a, LevelKind::CompressedNonUnique));
                    if !per_nonzero_ancestor && !self.is_structured() {
                        return reject(format!(
                            "format {}: level {k} (singleton) stores one \
                             coordinate per parent position, but no ancestor \
                             yields a position per nonzero (compressed \
                             non-unique) and the remapping adds no derived \
                             dimensions; colliding nonzeros would overwrite \
                             each other",
                            self.name
                        ));
                    }
                }
                LevelKind::Compressed | LevelKind::CompressedNonUnique | LevelKind::Banded
                    if k > 0 =>
                {
                    // The driver enumerates parents either as the cartesian
                    // product of full levels, or as ranks of distinct sorted
                    // prefixes — the latter only matches assembled positions
                    // when compressed levels follow the full ones (a full
                    // level *below* a compressed one yields gappy arithmetic
                    // positions, not ranks).
                    let ancestors_chainable = {
                        let mut seen_compressed = false;
                        self.levels[..k].iter().all(|a| match a {
                            LevelKind::Compressed => {
                                seen_compressed = true;
                                true
                            }
                            LevelKind::Dense | LevelKind::Sliced => !seen_compressed,
                            _ => false,
                        })
                    };
                    if !ancestors_chainable {
                        return reject(format!(
                            "format {}: level {k} ({kind}) needs edge \
                             insertion, but its ancestors are not full \
                             levels (dense/sliced) followed by compressed \
                             levels — the only two parent enumerations the \
                             driver implements",
                            self.name
                        ));
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// True when the format's storage groups nonzeros by the outermost
    /// canonical dimension and iterates it in ascending order — derived from
    /// the specification alone: the remapping must be the identity and every
    /// level an ordered, unique chain kind (dense, compressed, banded). This
    /// is the spec-level counterpart of
    /// [`FormatId::iterates_rows_in_order`](crate::convert::FormatId::iterates_rows_in_order)
    /// and agrees with it on every stock format; the planner consults it for
    /// registry (custom) formats.
    pub fn iterates_rows_in_order(&self) -> bool {
        self.remapping.is_identity()
            && self.levels.iter().all(|k| {
                matches!(
                    k,
                    LevelKind::Dense | LevelKind::Compressed | LevelKind::Banded
                )
            })
    }

    /// True when per-row nonzero counts can be read off the format's
    /// structure without touching nonzeros (the optimised `count` query of
    /// Section 5.2). Exactly the formats of
    /// [`FormatSpec::iterates_rows_in_order`]: an identity-remapped ordered
    /// chain has a root-level `pos` array to difference.
    pub fn counts_from_structure(&self) -> bool {
        self.iterates_rows_in_order()
    }

    /// A structural fingerprint of the specification: two specs that render
    /// the same remapping, dimension names, and level composition hash
    /// equally. Plan caches key on this so a *re-specified* format (e.g. a
    /// user spec shadowing a stock one) invalidates cached plans.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the rendered spec; stable across processes (unlike
        // `DefaultHasher`, whose keys are randomised per process).
        let mut h = 0xcbf29ce484222325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            h = (h ^ 0xff).wrapping_mul(0x100000001b3); // field separator
        };
        eat(self.name.as_bytes());
        eat(self.remapping.to_string().as_bytes());
        for name in &self.dim_names {
            eat(name.as_bytes());
        }
        for level in &self.levels {
            eat(level.to_string().as_bytes());
        }
        h
    }

    /// The stock specification of a built-in format.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::UnsupportedTarget`] for [`FormatId::Dok`],
    /// which is not described by a coordinate hierarchy (it is supported only
    /// as a conversion *source*).
    pub fn stock(id: FormatId) -> Result<FormatSpec, ConvertError> {
        Ok(match id {
            FormatId::Coo => FormatSpec::new(
                "COO",
                stock::row_major_matrix(),
                vec!["i", "j"],
                vec![LevelKind::CompressedNonUnique, LevelKind::Singleton],
            ),
            FormatId::Csr => FormatSpec::new(
                "CSR",
                stock::row_major_matrix(),
                vec!["i", "j"],
                vec![LevelKind::Dense, LevelKind::Compressed],
            ),
            FormatId::Csc => FormatSpec::new(
                "CSC",
                stock::column_major_matrix(),
                vec!["j", "i"],
                vec![LevelKind::Dense, LevelKind::Compressed],
            ),
            FormatId::Dia => FormatSpec::new(
                "DIA",
                stock::dia(),
                vec!["k", "i", "j"],
                vec![LevelKind::Squeezed, LevelKind::Dense, LevelKind::Singleton],
            ),
            FormatId::Ell => FormatSpec::new(
                "ELL",
                stock::ell(),
                vec!["k", "i", "j"],
                vec![LevelKind::Sliced, LevelKind::Dense, LevelKind::Singleton],
            ),
            FormatId::Bcsr {
                block_rows,
                block_cols,
            } => FormatSpec::new(
                // The block shape is part of the name (and so of the
                // fingerprint and registry name): BCSR2x2 and BCSR4x4 are
                // different formats.
                &format!("BCSR{block_rows}x{block_cols}"),
                stock::bcsr_with_blocks(block_rows, block_cols),
                vec!["bi", "bj", "li", "lj"],
                vec![
                    LevelKind::Dense,
                    LevelKind::Compressed,
                    LevelKind::Dense,
                    LevelKind::Dense,
                ],
            ),
            FormatId::Skyline => FormatSpec::new(
                "SKY",
                stock::row_major_matrix(),
                vec!["i", "j"],
                vec![LevelKind::Dense, LevelKind::Banded],
            ),
            FormatId::Jad => FormatSpec::new(
                "JAD",
                stock::jad(),
                vec!["k", "i", "j"],
                vec![
                    LevelKind::Sliced,
                    LevelKind::Compressed,
                    LevelKind::Singleton,
                ],
            ),
            FormatId::Coo3 => FormatSpec::new(
                "COO3",
                Remapping::identity(3),
                vec!["i", "j", "k"],
                vec![
                    LevelKind::CompressedNonUnique,
                    LevelKind::Singleton,
                    LevelKind::Singleton,
                ],
            ),
            FormatId::Csf => FormatSpec::new(
                "CSF",
                Remapping::identity(3),
                vec!["i", "j", "k"],
                vec![
                    LevelKind::Compressed,
                    LevelKind::Compressed,
                    LevelKind::Compressed,
                ],
            ),
            FormatId::Dok => return Err(ConvertError::UnsupportedTarget(id)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_specs_are_consistent() {
        for id in [
            FormatId::Coo,
            FormatId::Csr,
            FormatId::Csc,
            FormatId::Dia,
            FormatId::Ell,
            FormatId::Bcsr {
                block_rows: 2,
                block_cols: 2,
            },
            FormatId::Skyline,
            FormatId::Jad,
            FormatId::Coo3,
            FormatId::Csf,
        ] {
            let spec = FormatSpec::stock(id).unwrap();
            assert_eq!(
                spec.levels.len(),
                spec.remapping.dest_order(),
                "{}",
                spec.name
            );
            assert_eq!(spec.dim_names.len(), spec.levels.len());
        }
    }

    #[test]
    fn structured_formats_are_detected() {
        assert!(!FormatSpec::stock(FormatId::Csr).unwrap().is_structured());
        assert!(!FormatSpec::stock(FormatId::Csc).unwrap().is_structured());
        assert!(FormatSpec::stock(FormatId::Dia).unwrap().is_structured());
        assert!(FormatSpec::stock(FormatId::Ell).unwrap().is_structured());
        assert!(FormatSpec::stock(FormatId::Ell).unwrap().uses_counters());
        assert!(!FormatSpec::stock(FormatId::Dia).unwrap().uses_counters());
    }

    #[test]
    fn required_queries_follow_level_formats() {
        let csr = FormatSpec::stock(FormatId::Csr).unwrap();
        let queries = csr.required_queries();
        assert_eq!(queries.len(), 1);
        assert_eq!(queries[0].to_string(), "select [i] -> count(j) as nir");

        let dia = FormatSpec::stock(FormatId::Dia).unwrap();
        let queries = dia.required_queries();
        assert_eq!(queries.len(), 1);
        assert_eq!(queries[0].to_string(), "select [k] -> id() as nz");

        let ell = FormatSpec::stock(FormatId::Ell).unwrap();
        let queries = ell.required_queries();
        assert_eq!(queries.len(), 1);
        assert_eq!(queries[0].to_string(), "select [] -> max(k) as max_crd");
    }

    #[test]
    fn csf_spec_is_an_order_3_compressed_chain() {
        let csf = FormatSpec::stock(FormatId::Csf).unwrap();
        assert_eq!(csf.source_order(), 3);
        assert!(!csf.is_structured());
        assert!(!csf.uses_counters());
        let queries: Vec<String> = csf
            .required_queries()
            .iter()
            .map(|q| q.to_string())
            .collect();
        assert_eq!(
            queries,
            vec![
                "select [] -> count(i) as nir",
                "select [i] -> count(j) as nir",
                "select [i,j] -> count(k) as nir",
            ]
        );
        let coo3 = FormatSpec::stock(FormatId::Coo3).unwrap();
        assert_eq!(coo3.source_order(), 3);
        assert_eq!(coo3.required_queries().len(), 1);
        assert_eq!(
            coo3.required_queries()[0].to_string(),
            "select [] -> count(i,j,k) as nir"
        );
    }

    #[test]
    fn dok_has_no_stock_spec() {
        assert_eq!(
            FormatSpec::stock(FormatId::Dok),
            Err(ConvertError::UnsupportedTarget(FormatId::Dok))
        );
    }

    #[test]
    fn spec_derived_planner_properties_agree_with_format_ids() {
        for id in [
            FormatId::Coo,
            FormatId::Csr,
            FormatId::Csc,
            FormatId::Dia,
            FormatId::Ell,
            FormatId::Bcsr {
                block_rows: 2,
                block_cols: 2,
            },
            FormatId::Skyline,
            FormatId::Jad,
            FormatId::Coo3,
            FormatId::Csf,
        ] {
            let spec = FormatSpec::stock(id).unwrap();
            assert_eq!(
                spec.iterates_rows_in_order(),
                id.iterates_rows_in_order(),
                "{id}"
            );
            assert_eq!(
                spec.counts_from_structure(),
                id.counts_from_structure(),
                "{id}"
            );
            assert!(spec.validate().is_ok(), "{id}");
        }
    }

    #[test]
    fn banded_root_is_rejected() {
        let spec = FormatSpec::new(
            "BAD-BANDED",
            Remapping::identity(2),
            vec!["i", "j"],
            vec![LevelKind::Banded, LevelKind::Dense],
        );
        assert!(matches!(
            spec.validate(),
            Err(ConvertError::UnsupportedSpec { .. })
        ));
    }

    #[test]
    fn singleton_root_is_rejected() {
        let spec = FormatSpec::new(
            "BAD-SINGLETON",
            Remapping::identity(2),
            vec!["i", "j"],
            vec![LevelKind::Singleton, LevelKind::Singleton],
        );
        assert!(matches!(
            spec.validate(),
            Err(ConvertError::UnsupportedSpec { .. })
        ));
    }

    #[test]
    fn edge_insertion_under_non_chainable_ancestor_is_rejected() {
        // A compressed level under a hashed ancestor: the driver can neither
        // enumerate full positions nor sorted coordinate prefixes.
        let spec = FormatSpec::new(
            "BAD-CHAIN",
            Remapping::identity(2),
            vec!["i", "j"],
            vec![LevelKind::Hashed, LevelKind::Compressed],
        );
        let err = spec.validate().unwrap_err();
        assert!(matches!(err, ConvertError::UnsupportedSpec { .. }));
        assert!(err.to_string().contains("edge insertion"), "{err}");
        // A banded level under a compressed-nonunique ancestor is equally
        // unassemblable (the ancestor is not unique).
        let spec = FormatSpec::new(
            "BAD-BAND-CHAIN",
            Remapping::identity(2),
            vec!["i", "j"],
            vec![LevelKind::CompressedNonUnique, LevelKind::Banded],
        );
        assert!(matches!(
            spec.validate(),
            Err(ConvertError::UnsupportedSpec { .. })
        ));
    }

    #[test]
    fn fingerprints_distinguish_specs() {
        let csr = FormatSpec::stock(FormatId::Csr).unwrap();
        let csc = FormatSpec::stock(FormatId::Csc).unwrap();
        assert_eq!(
            csr.fingerprint(),
            FormatSpec::stock(FormatId::Csr).unwrap().fingerprint()
        );
        assert_ne!(csr.fingerprint(), csc.fingerprint());
        assert_ne!(
            FormatSpec::stock(FormatId::Bcsr {
                block_rows: 2,
                block_cols: 2
            })
            .unwrap()
            .fingerprint(),
            FormatSpec::stock(FormatId::Bcsr {
                block_rows: 2,
                block_cols: 4
            })
            .unwrap()
            .fingerprint()
        );
    }
}
