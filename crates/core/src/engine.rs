//! Monomorphised conversion kernels — the runtime analogue of the code the
//! paper's generator emits (Figure 6).
//!
//! Every kernel is generic over [`SourceMatrix`], so each (source, target)
//! pair instantiates a specialised routine at compile time, just as taco
//! specialises its generated C to the source format's level functions. The
//! kernels follow the three-phase decomposition of Section 3:
//!
//! 1. *coordinate remapping* is fused into the passes (e.g. `k = j - i` for
//!    DIA, the `#i` counter for ELL),
//! 2. *analysis* computes the target's attribute queries, using structural
//!    fast paths when the source provides them (`row_counts` on CSR reads the
//!    `pos` array), and
//! 3. *assembly* sizes the output in one shot from the query results and
//!    scatters nonzeros directly into place — never through a CSR temporary.

use obs::Span;
use sparse_formats::csf::pack_sorted;
use sparse_formats::radix;
use sparse_formats::{
    BcsrMatrix, CooMatrix, CooTensor, CscMatrix, CsfTensor, CsrMatrix, DiaMatrix, EllMatrix,
    JadMatrix, SkylineMatrix,
};
use sparse_tensor::Value;

use crate::error::ConvertError;
use crate::source::{SourceMatrix, SourceTensor};

/// Converts any source to COO, preserving the source's iteration order.
pub fn to_coo<S: SourceMatrix>(src: &S) -> CooMatrix {
    let mut row = Vec::with_capacity(src.nnz());
    let mut col = Vec::with_capacity(src.nnz());
    let mut vals = Vec::with_capacity(src.nnz());
    src.for_each(|i, j, v| {
        row.push(i);
        col.push(j);
        vals.push(v);
    });
    CooMatrix::from_parts(src.rows(), src.cols(), row, col, vals)
        .expect("source coordinates are in bounds")
}

/// Converts any source to CSR (generalises Figure 6c): a row-count analysis
/// pass (answered from the source structure when possible), sequenced edge
/// insertion building `pos`, and a coordinate-insertion pass scattering
/// `crd` / `vals`.
pub fn to_csr<S: SourceMatrix>(src: &S) -> CsrMatrix {
    let rows = src.rows();
    let nnz = src.nnz();
    // Analysis: select [i] -> count(j) as nir.
    let pos = {
        let span = Span::enter("engine.analysis");
        span.add_items(rows as u64);
        let counts = src.row_counts();
        // Sequenced edge insertion over the dense row level.
        let mut pos = vec![0usize; rows + 1];
        for i in 0..rows {
            pos[i + 1] = pos[i] + counts[i];
        }
        pos
    };
    // Coordinate insertion (yield_pos + insert_coord), using pos as cursors
    // and restoring it afterwards, exactly like lines 12-25 of Figure 6c.
    let span = Span::enter("engine.scatter");
    span.add_items(nnz as u64);
    span.add_bytes((nnz * (size_of::<usize>() + size_of::<Value>())) as u64);
    let mut cursor = pos.clone();
    let mut crd = vec![0usize; nnz];
    let mut vals = vec![0.0; nnz];
    src.for_each(|i, j, v| {
        let p = cursor[i];
        cursor[i] += 1;
        crd[p] = j;
        vals[p] = v;
    });
    drop(span);
    CsrMatrix::from_parts(rows, src.cols(), pos, crd, vals)
        .expect("assembled CSR structure is valid")
}

/// Converts any source to CSC (the column-major dual of [`to_csr`]).
pub fn to_csc<S: SourceMatrix>(src: &S) -> CscMatrix {
    let cols = src.cols();
    let nnz = src.nnz();
    let pos = {
        let span = Span::enter("engine.analysis");
        span.add_items(cols as u64);
        let counts = src.col_counts();
        let mut pos = vec![0usize; cols + 1];
        for j in 0..cols {
            pos[j + 1] = pos[j] + counts[j];
        }
        pos
    };
    let span = Span::enter("engine.scatter");
    span.add_items(nnz as u64);
    span.add_bytes((nnz * (size_of::<usize>() + size_of::<Value>())) as u64);
    let mut cursor = pos.clone();
    let mut crd = vec![0usize; nnz];
    let mut vals = vec![0.0; nnz];
    src.for_each(|i, j, v| {
        let p = cursor[j];
        cursor[j] += 1;
        crd[p] = i;
        vals[p] = v;
    });
    drop(span);
    CscMatrix::from_parts(src.rows(), cols, pos, crd, vals)
        .expect("assembled CSC structure is valid")
}

/// Tile width (in columns) of the blocked CSR→CSC transpose: the per-tile
/// cursor window plus the output region it scatters into stay cache-resident
/// (a 4096-column tile is 32 KiB of cursors).
const TRANSPOSE_TILE: usize = 1 << 12;

/// Below this many nonzeros the naive transpose's working set already fits
/// in cache and the extra bucketing pass of the blocked transpose would only
/// add traffic.
const TRANSPOSE_MIN_NNZ: usize = 1 << 15;

/// Blocked, write-combining CSR→CSC transpose, bit-identical to
/// [`to_csc`] on the same input.
///
/// The naive transpose scatters every nonzero straight through a
/// `cols`-wide cursor array, so for matrices wider than the cache each write
/// lands on a cold line. This variant adds one cheap bucketing pass:
///
/// 1. *bucket* — nonzeros are appended, in source (row-major) order, into
///    per-tile buffers of `TRANSPOSE_TILE` columns each (a handful of
///    sequential write streams),
/// 2. *scatter* — each tile then scatters only its own entries, so the
///    cursor slice and the output window both fit in cache.
///
/// Both passes are stable, so each column still receives its rows in
/// source order — exactly the permutation the naive scatter produces. Small
/// or narrow inputs (below `TRANSPOSE_MIN_NNZ`, or at most one tile wide)
/// take the naive path directly.
pub fn csr_to_csc_blocked(csr: &CsrMatrix) -> CscMatrix {
    let rows = csr.rows();
    let cols = csr.cols();
    let nnz = csr.nnz();
    if nnz < TRANSPOSE_MIN_NNZ || cols <= TRANSPOSE_TILE {
        return to_csc(csr);
    }
    let src_pos = csr.pos();
    let src_crd = csr.crd();
    let src_vals = csr.values();
    let tiles = cols.div_ceil(TRANSPOSE_TILE);

    // Analysis: the column histogram and the tile histogram in one scan.
    let (pos, tile_pos) = {
        let span = Span::enter("engine.analysis");
        span.add_items(cols as u64);
        let mut pos = vec![0usize; cols + 1];
        let mut tile_pos = vec![0usize; tiles + 1];
        for &j in src_crd {
            pos[j + 1] += 1;
            tile_pos[j / TRANSPOSE_TILE + 1] += 1;
        }
        for j in 0..cols {
            pos[j + 1] += pos[j];
        }
        for t in 0..tiles {
            tile_pos[t + 1] += tile_pos[t];
        }
        (pos, tile_pos)
    };

    let span = Span::enter("engine.scatter");
    span.add_items(nnz as u64);
    span.add_bytes((nnz * (size_of::<usize>() + size_of::<Value>())) as u64);
    // Bucket pass: tile-major (row, col, value) buffers, source order within
    // each tile.
    let mut tile_cursor = tile_pos.clone();
    let mut brow = vec![0usize; nnz];
    let mut bcol = vec![0usize; nnz];
    let mut bval = vec![0.0 as Value; nnz];
    for i in 0..rows {
        for p in src_pos[i]..src_pos[i + 1] {
            let j = src_crd[p];
            let t = j / TRANSPOSE_TILE;
            let dst = tile_cursor[t];
            tile_cursor[t] += 1;
            brow[dst] = i;
            bcol[dst] = j;
            bval[dst] = src_vals[p];
        }
    }
    // Scatter pass: one cache-resident tile at a time.
    let mut cursor = pos.clone();
    let mut crd = vec![0usize; nnz];
    let mut vals = vec![0.0 as Value; nnz];
    for t in 0..tiles {
        for p in tile_pos[t]..tile_pos[t + 1] {
            let j = bcol[p];
            let dst = cursor[j];
            cursor[j] += 1;
            crd[dst] = brow[p];
            vals[dst] = bval[p];
        }
    }
    drop(span);
    CscMatrix::from_parts(rows, cols, pos, crd, vals).expect("assembled CSC structure is valid")
}

/// Converts any tensor source to rank-`N` COO, preserving the source's
/// iteration order (the tensor counterpart of [`to_coo`]).
pub fn tensor_to_coo<S: SourceTensor>(src: &S) -> CooTensor {
    let shape = src.shape().clone();
    let order = shape.order();
    let mut crd: Vec<Vec<usize>> = vec![Vec::with_capacity(src.nnz()); order];
    let mut vals: Vec<Value> = Vec::with_capacity(src.nnz());
    src.for_each_coord(|coord, v| {
        for (d, &c) in coord.iter().enumerate() {
            crd[d].push(c as usize);
        }
        vals.push(v);
    });
    CooTensor::from_parts(shape, crd, vals).expect("source coordinates are in bounds")
}

/// Converts any tensor source to CSF by the paper's sort-then-pack recipe:
/// a stable lexicographic sort of the coordinates (the packed-key radix
/// sort of [`radix::sort_perm`]; skipped when the source already iterates
/// in order, e.g. CSF itself) followed by a single packing pass that opens
/// a fresh fiber at the first level whose coordinate changes. Works at any
/// order — order-2 sources yield DCSR.
pub fn to_csf<S: SourceTensor>(src: &S) -> CsfTensor {
    let shape = src.shape().clone();
    let order = shape.order();
    let nnz = src.nnz();
    let mut columns: Vec<Vec<usize>> = vec![Vec::with_capacity(nnz); order];
    let mut vals: Vec<Value> = Vec::with_capacity(nnz);
    {
        let span = Span::enter("engine.gather");
        span.add_items(nnz as u64);
        src.for_each_coord(|coord, v| {
            for (d, &c) in coord.iter().enumerate() {
                columns[d].push(c as usize);
            }
            vals.push(v);
        });
    }
    let perm: Vec<usize> = if src.coords_in_order() {
        (0..nnz).collect()
    } else {
        let span = Span::enter("engine.sort");
        span.add_items(nnz as u64);
        radix::sort_perm(&columns)
    };
    let span = Span::enter("engine.pack");
    span.add_items(nnz as u64);
    span.add_bytes((nnz * (order * size_of::<usize>() + size_of::<Value>())) as u64);
    pack_sorted(shape, |d, p| columns[d][perm[p]], |p| vals[perm[p]], nnz)
}

/// Converts any tensor source to CSF along a *mode order*: storage level `d`
/// of the fiber tree holds canonical mode `mode_order[d]`, so `&[2, 0, 1]`
/// packs an `(i,j,k)` tensor with mode `k` outermost. This is [`to_csf`]
/// with the coordinate columns (and the shape) permuted before the
/// sort-then-pack recipe; the identity order reproduces [`to_csf`] exactly.
///
/// The sort is the shared stable lexicographic order ([`radix::sort_perm`],
/// the packed-key radix sort equivalent of
/// [`sparse_formats::csf::lex_sort_perm`]) over the *permuted* columns, so
/// the resulting permutation equals the stable full-tuple sort the dynamic
/// driver performs on remapped coordinates — the root of the three paths'
/// bit-identical outputs.
///
/// # Panics
///
/// Panics if `mode_order` is not a permutation of `0..src.shape().order()`.
pub fn to_csf_ordered<S: SourceTensor>(src: &S, mode_order: &[usize]) -> CsfTensor {
    let canonical = src.shape().clone();
    let order = canonical.order();
    assert_eq!(mode_order.len(), order, "one mode per dimension");
    let mut seen = vec![false; order];
    for &m in mode_order {
        assert!(
            m < order && !seen[m],
            "mode order {mode_order:?} is not a permutation of 0..{order}"
        );
        seen[m] = true;
    }
    let shape = sparse_tensor::Shape::new(mode_order.iter().map(|&m| canonical.dim(m)).collect());
    let nnz = src.nnz();
    let mut columns: Vec<Vec<usize>> = vec![Vec::with_capacity(nnz); order];
    let mut vals: Vec<Value> = Vec::with_capacity(nnz);
    {
        let span = Span::enter("engine.gather");
        span.add_items(nnz as u64);
        src.for_each_coord(|coord, v| {
            for (d, &m) in mode_order.iter().enumerate() {
                columns[d].push(coord[m] as usize);
            }
            vals.push(v);
        });
    }
    let identity = mode_order.iter().enumerate().all(|(d, &m)| d == m);
    let perm: Vec<usize> = if identity && src.coords_in_order() {
        (0..nnz).collect()
    } else {
        let span = Span::enter("engine.sort");
        span.add_items(nnz as u64);
        radix::sort_perm(&columns)
    };
    let span = Span::enter("engine.pack");
    span.add_items(nnz as u64);
    span.add_bytes((nnz * (order * size_of::<usize>() + size_of::<Value>())) as u64);
    pack_sorted(shape, |d, p| columns[d][perm[p]], |p| vals[perm[p]], nnz)
}

/// Converts any source to DIA (generalises Figure 6a to any source and to
/// rectangular matrices). The remapping `k = j - i` is fused into both the
/// analysis pass (building the nonzero-diagonal bit set) and the assembly
/// pass, so no remapped coordinates are materialised and no CSR temporary is
/// needed.
///
/// # Errors
///
/// Returns [`ConvertError::Structure`] if the assembled arrays fail DIA
/// validation (continuing the library-wide panics-to-errors sweep; the
/// engine's own assembly never produces such arrays).
pub fn to_dia<S: SourceMatrix>(src: &S) -> Result<DiaMatrix, ConvertError> {
    let rows = src.rows();
    let cols = src.cols();
    let shift = rows as i64 - 1;
    let ndiag_max = rows + cols - 1;

    // Analysis: select [k] -> id() as nz over the remapped tensor.
    let mut nz = vec![false; ndiag_max];
    src.for_each(|i, j, _| {
        nz[(j as i64 - i as i64 + shift) as usize] = true;
    });
    // init_coords of the squeezed level: collect the offsets (perm)...
    let mut offsets = Vec::new();
    for (d, &present) in nz.iter().enumerate() {
        if present {
            offsets.push(d as i64 - shift);
        }
    }
    // ...and init_get_pos: the reverse permutation for random access.
    let k = offsets.len();
    let mut rperm = vec![usize::MAX; ndiag_max];
    for (n, &off) in offsets.iter().enumerate() {
        rperm[(off + shift) as usize] = n;
    }
    // Assembly: single fused pass (calloc'd output).
    let mut vals = vec![0.0; k * rows];
    src.for_each(|i, j, v| {
        let d = rperm[(j as i64 - i as i64 + shift) as usize];
        vals[d * rows + i] = v;
    });
    Ok(DiaMatrix::from_parts(rows, cols, offsets, vals)?)
}

/// Converts any source to ELL (generalises Figure 6b). The `#i` counter of
/// the ELL remapping is realised as a scalar when the source iterates rows in
/// order and as a counter array otherwise (Section 4.2).
pub fn to_ell<S: SourceMatrix>(src: &S) -> EllMatrix {
    let rows = src.rows();
    // Analysis: select [] -> max(k) as max_crd, computed through the
    // counter-to-histogram rewrite: a row histogram followed by a max. For
    // sources with a row pos array, row_counts avoids touching nonzeros.
    let counts = src.row_counts();
    let k = counts.iter().copied().max().unwrap_or(0);
    let len = k * rows;
    let mut crd = vec![0usize; len];
    let mut vals = vec![0.0; len];
    if src.rows_in_order() {
        // Scalar counter, reset at each new row (Figure 6b lines 8-17).
        let mut current_row = usize::MAX;
        let mut count = 0usize;
        src.for_each(|i, j, v| {
            if i != current_row {
                current_row = i;
                count = 0;
            }
            let p = count * rows + i;
            count += 1;
            crd[p] = j;
            vals[p] = v;
        });
    } else {
        // Counter array indexed by row.
        let mut counter = vec![0usize; rows];
        src.for_each(|i, j, v| {
            let c = counter[i];
            counter[i] += 1;
            let p = c * rows + i;
            crd[p] = j;
            vals[p] = v;
        });
    }
    EllMatrix::from_parts(rows, src.cols(), k, crd, vals).expect("assembled ELL structure is valid")
}

/// Converts any source to BCSR with the given block shape. The remapping
/// `(i,j) -> (i/M, j/N, i%M, j%N)` is fused into both passes.
pub fn to_bcsr<S: SourceMatrix>(src: &S, block_rows: usize, block_cols: usize) -> BcsrMatrix {
    assert!(
        block_rows > 0 && block_cols > 0,
        "block sizes must be positive"
    );
    let rows = src.rows();
    let cols = src.cols();
    let brows = rows.div_ceil(block_rows);

    // Analysis: the set of nonzero blocks per block row
    // (select [bi] -> count(bj) plus the block coordinates themselves).
    let mut blocks: Vec<Vec<usize>> = vec![Vec::new(); brows];
    src.for_each(|i, j, _| {
        blocks[i / block_rows].push(j / block_cols);
    });
    for set in &mut blocks {
        set.sort_unstable();
        set.dedup();
    }
    // Sequenced edge insertion over block rows.
    let mut pos = vec![0usize; brows + 1];
    for bi in 0..brows {
        pos[bi + 1] = pos[bi] + blocks[bi].len();
    }
    let nblocks = pos[brows];
    let mut crd = vec![0usize; nblocks];
    for bi in 0..brows {
        crd[pos[bi]..pos[bi + 1]].copy_from_slice(&blocks[bi]);
    }
    // Assembly: scatter into dense blocks.
    let bsize = block_rows * block_cols;
    let mut vals = vec![0.0; nblocks * bsize];
    src.for_each(|i, j, v| {
        let bi = i / block_rows;
        let bj = j / block_cols;
        let p = pos[bi]
            + blocks[bi]
                .binary_search(&bj)
                .expect("block registered in analysis");
        vals[p * bsize + (i % block_rows) * block_cols + (j % block_cols)] = v;
    });
    BcsrMatrix::from_parts(rows, cols, block_rows, block_cols, pos, crd, vals)
        .expect("assembled BCSR structure is valid")
}

/// Converts any (square) source's lower triangle to the skyline format.
///
/// # Errors
///
/// Returns [`ConvertError::Unsupported`] for non-square inputs.
pub fn to_skyline<S: SourceMatrix>(src: &S) -> Result<SkylineMatrix, ConvertError> {
    let n = src.rows();
    if n != src.cols() {
        return Err(ConvertError::Unsupported(format!(
            "skyline targets require a square matrix, got {}x{}",
            src.rows(),
            src.cols()
        )));
    }
    // Analysis: select [i] -> min(j) as w over the lower triangle.
    let mut first: Vec<usize> = (0..n).collect();
    src.for_each(|i, j, _| {
        if j <= i {
            first[i] = first[i].min(j);
        }
    });
    // Sequenced edge insertion over the banded level.
    let mut pos = vec![0usize; n + 1];
    for i in 0..n {
        pos[i + 1] = pos[i] + (i - first[i] + 1);
    }
    // Assembly: positions are computed arithmetically inside each row's run.
    let mut vals = vec![0.0; pos[n]];
    src.for_each(|i, j, v| {
        if j <= i {
            vals[pos[i] + (j - first[i])] = v;
        }
    });
    Ok(SkylineMatrix::from_parts(n, pos, first, vals)
        .expect("assembled skyline structure is valid"))
}

/// Converts any source to JAD (jagged diagonal storage). Shares the `#i`
/// counter remapping with ELL but additionally permutes rows by decreasing
/// nonzero count.
pub fn to_jad<S: SourceMatrix>(src: &S) -> JadMatrix {
    let rows = src.rows();
    // Analysis: row histogram, then the permutation by decreasing count.
    let counts = src.row_counts();
    let mut perm: Vec<usize> = (0..rows).collect();
    perm.sort_by_key(|&i| std::cmp::Reverse(counts[i]));
    let mut prank = vec![0usize; rows];
    for (r, &i) in perm.iter().enumerate() {
        prank[i] = r;
    }
    let max_len = counts.iter().copied().max().unwrap_or(0);
    // Edge insertion: jagged-diagonal lengths are the histogram of counts.
    let mut jd_pos = vec![0usize; max_len + 1];
    for k in 0..max_len {
        let len_k = counts.iter().filter(|&&c| c > k).count();
        jd_pos[k + 1] = jd_pos[k] + len_k;
    }
    // Assembly with a per-row counter array.
    let nnz = src.nnz();
    let mut crd = vec![0usize; nnz];
    let mut vals = vec![0.0; nnz];
    let mut counter = vec![0usize; rows];
    src.for_each(|i, j, v| {
        let k = counter[i];
        counter[i] += 1;
        let p = jd_pos[k] + prank[i];
        crd[p] = j;
        vals[p] = v;
    });
    JadMatrix::from_parts(rows, src.cols(), perm, jd_pos, crd, vals)
        .expect("assembled JAD structure is valid")
}

/// The value-preservation check used throughout the engine tests: SpMV with a
/// deterministic vector before and after conversion.
pub fn spmv_fingerprint<S: SourceMatrix>(src: &S) -> Vec<Value> {
    let x: Vec<Value> = (0..src.cols()).map(|j| 1.0 + (j % 7) as Value).collect();
    let mut y = vec![0.0; src.rows()];
    src.for_each(|i, j, v| y[i] += v * x[j]);
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_formats::DokMatrix;
    use sparse_tensor::example::figure1_matrix;
    use sparse_tensor::SparseTriples;

    fn example() -> SparseTriples {
        figure1_matrix()
    }

    #[test]
    fn csr_from_every_source_matches_reference() {
        let t = example();
        let reference = CsrMatrix::from_triples(&t);
        assert_eq!(to_csr(&CooMatrix::from_triples(&t)).pos(), reference.pos());
        assert_eq!(to_csr(&CooMatrix::from_triples(&t)).crd(), reference.crd());
        assert!(to_csr(&CscMatrix::from_triples(&t))
            .to_triples()
            .same_values(&t));
        assert!(to_csr(&DiaMatrix::from_triples(&t))
            .to_triples()
            .same_values(&t));
        assert!(to_csr(&EllMatrix::from_triples(&t))
            .to_triples()
            .same_values(&t));
    }

    #[test]
    fn dia_from_every_source_matches_reference() {
        let t = example();
        let reference = DiaMatrix::from_triples(&t);
        for dia in [
            to_dia(&CooMatrix::from_triples(&t)).unwrap(),
            to_dia(&CsrMatrix::from_triples(&t)).unwrap(),
            to_dia(&CscMatrix::from_triples(&t)).unwrap(),
        ] {
            assert_eq!(dia.offsets(), reference.offsets());
            assert_eq!(dia.values(), reference.values());
        }
    }

    #[test]
    fn ell_from_every_source_preserves_values() {
        let t = example();
        let reference = EllMatrix::from_triples(&t);
        let from_csr = to_ell(&CsrMatrix::from_triples(&t));
        assert_eq!(from_csr.slices(), reference.slices());
        assert_eq!(from_csr.crd(), reference.crd());
        assert_eq!(from_csr.values(), reference.values());
        // CSC and COO sources reorder entries within a row but preserve the
        // matrix.
        assert!(to_ell(&CscMatrix::from_triples(&t))
            .to_triples()
            .same_values(&t));
        assert!(to_ell(&CooMatrix::from_triples(&t))
            .to_triples()
            .same_values(&t));
    }

    #[test]
    fn csc_and_coo_targets_preserve_values() {
        let t = example();
        assert!(to_csc(&CsrMatrix::from_triples(&t))
            .to_triples()
            .same_values(&t));
        assert!(to_csc(&CooMatrix::from_triples(&t))
            .to_triples()
            .same_values(&t));
        assert!(to_coo(&CsrMatrix::from_triples(&t))
            .to_triples()
            .same_values(&t));
        assert!(DokMatrix::from_triples(&t).to_triples().same_values(&t));
    }

    #[test]
    fn bcsr_jad_and_skyline_targets() {
        let t = example();
        let bcsr = to_bcsr(&CsrMatrix::from_triples(&t), 2, 3);
        assert!(bcsr.to_triples().same_values(&t));
        let jad = to_jad(&CsrMatrix::from_triples(&t));
        assert!(jad.to_triples().same_values(&t));
        assert_eq!(jad.perm(), JadMatrix::from_triples(&t).perm());

        // Skyline needs a square matrix.
        assert!(to_skyline(&CsrMatrix::from_triples(&t)).is_err());
        let square = SparseTriples::from_matrix_entries(
            3,
            3,
            vec![(0, 0, 1.0), (1, 0, 2.0), (2, 2, 3.0), (0, 2, 9.0)],
        )
        .unwrap();
        let sky = to_skyline(&CsrMatrix::from_triples(&square)).unwrap();
        let lower =
            SparseTriples::from_matrix_entries(3, 3, vec![(0, 0, 1.0), (1, 0, 2.0), (2, 2, 3.0)])
                .unwrap();
        assert!(sky.to_triples().same_values(&lower));
    }

    #[test]
    fn unsorted_coo_sources_are_handled() {
        let t = example();
        let mut coo = CooMatrix::from_triples(&t);
        let mut state = 5usize;
        coo.shuffle_with(|bound| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state % bound
        });
        assert!(to_csr(&coo).to_triples().same_values(&t));
        assert!(to_dia(&coo).unwrap().to_triples().same_values(&t));
        assert!(to_ell(&coo).to_triples().same_values(&t));
        assert!(to_csc(&coo).to_triples().same_values(&t));
    }

    #[test]
    fn blocked_transpose_is_bit_identical_to_the_naive_scatter() {
        // Wide and dense enough to cross both blocked-path cutoffs: several
        // column tiles and > TRANSPOSE_MIN_NNZ nonzeros.
        let rows = 64;
        let cols = 3 * TRANSPOSE_TILE + 17;
        let mut entries = Vec::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        for i in 0..rows {
            for _ in 0..(TRANSPOSE_MIN_NNZ / rows + 2) {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let j = (state as usize) % cols;
                entries.push((i, j, (i + j) as f64));
            }
        }
        let t = SparseTriples::from_matrix_entries(rows, cols, entries).unwrap();
        let csr = CsrMatrix::from_triples(&t);
        assert!(csr.nnz() >= TRANSPOSE_MIN_NNZ, "input crosses the cutoff");
        let naive = to_csc(&csr);
        let blocked = csr_to_csc_blocked(&csr);
        assert_eq!(blocked.pos(), naive.pos());
        assert_eq!(blocked.crd(), naive.crd());
        assert_eq!(blocked.values(), naive.values());
        // Small inputs route through the naive scatter unchanged.
        let small = CsrMatrix::from_triples(&example());
        assert_eq!(csr_to_csc_blocked(&small), to_csc(&small));
    }

    #[test]
    fn spmv_fingerprint_is_preserved_by_conversion() {
        let t = example();
        let csr = CsrMatrix::from_triples(&t);
        let expected = spmv_fingerprint(&csr);
        assert_eq!(spmv_fingerprint(&to_dia(&csr).unwrap()), expected);
        assert_eq!(spmv_fingerprint(&to_ell(&csr)), expected);
        assert_eq!(spmv_fingerprint(&to_csc(&csr)), expected);
        assert_eq!(spmv_fingerprint(&to_bcsr(&csr, 2, 2)), expected);
        assert_eq!(spmv_fingerprint(&to_jad(&csr)), expected);
    }

    #[test]
    fn csf_from_coo3_matches_the_reference_constructor() {
        let t = sparse_tensor::example::example3_tensor();
        let coo = CooTensor::from_triples(&t);
        let csf = to_csf(&coo);
        assert_eq!(csf, CsfTensor::from_triples(&t));
        assert!(csf.to_triples().same_values(&t));
        // CSF sources skip the sort and pack straight through.
        assert_eq!(to_csf(&csf), csf);
        // COO targets preserve the fiber-tree order of a CSF source.
        let back = tensor_to_coo(&csf);
        assert!(back.is_sorted());
        assert!(back.to_triples().same_values(&t));
        // COO→COO preserves source order.
        assert_eq!(tensor_to_coo(&coo), coo);
    }

    #[test]
    fn csf_from_order2_source_is_dcsr() {
        let t = example();
        let csr = CsrMatrix::from_triples(&t);
        let csf = to_csf(&crate::source::MatrixAsTensor::new(&csr));
        assert_eq!(csf.order(), 2);
        assert_eq!(csf, CsfTensor::from_triples(&t));
        assert!(csf.to_triples().same_values(&t));
    }

    #[test]
    fn empty_matrices_convert_cleanly() {
        let t = SparseTriples::new(sparse_tensor::Shape::matrix(5, 4));
        let coo = CooMatrix::from_triples(&t);
        assert_eq!(to_csr(&coo).nnz(), 0);
        assert_eq!(to_dia(&coo).unwrap().num_diagonals(), 0);
        assert_eq!(to_ell(&coo).slices(), 0);
        assert_eq!(to_jad(&coo).num_jagged_diagonals(), 0);
        assert_eq!(to_bcsr(&coo, 2, 2).num_blocks(), 0);
    }
}
